"""Unit tests for CGI result caching (the Swala extension)."""

import pytest

from repro.core.caching import CachingMSPolicy, CGICache
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.request import RequestKind
from repro.workload.traces import KSU


class TestCGICache:
    def test_miss_then_hit(self):
        cache = CGICache(capacity=10, ttl=60.0)
        assert cache.lookup("a", now=0.0) is None
        cache.insert("a", size=1234, now=0.0)
        assert cache.lookup("a", now=1.0) == 1234
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_ttl_expiry(self):
        cache = CGICache(capacity=10, ttl=5.0)
        cache.insert("a", 100, now=0.0)
        assert cache.lookup("a", now=4.9) == 100
        assert cache.lookup("a", now=5.1) is None
        assert cache.stats.expirations == 1

    def test_lru_eviction(self):
        cache = CGICache(capacity=2, ttl=60.0)
        cache.insert("a", 1, now=0.0)
        cache.insert("b", 2, now=0.0)
        cache.lookup("a", now=1.0)     # refresh a
        cache.insert("c", 3, now=1.0)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = CGICache(capacity=4)
        cache.insert("a", 1, now=0.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.lookup("a", now=0.0) is None

    def test_reinsert_updates(self):
        cache = CGICache(capacity=4)
        cache.insert("a", 1, now=0.0)
        cache.insert("a", 99, now=1.0)
        assert len(cache) == 1
        assert cache.lookup("a", now=2.0) == 99

    def test_hit_ratio(self):
        cache = CGICache(capacity=4)
        cache.insert("a", 1, now=0.0)
        cache.lookup("a", now=0.0)
        cache.lookup("b", now=0.0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CGICache(capacity=0)
        with pytest.raises(ValueError):
            CGICache(capacity=1, ttl=0.0)


class TestCachingPolicy:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(KSU, rate=400, duration=6.0, r=1 / 40,
                              seed=11, cacheable_fraction=0.8,
                              distinct_queries=100)

    def test_hits_served_on_masters(self, trace):
        cfg = paper_sim_config(num_nodes=8, seed=1)
        cache = CGICache(capacity=500, ttl=120.0)
        policy = CachingMSPolicy(8, 2, cache,
                                 sampler=pretrain_sampler(trace), seed=2)
        result = replay(cfg, policy, trace, warmup_fraction=0.0)
        assert cache.stats.hits > 0
        # Every request completes exactly once despite substitution.
        assert result.report.completed == len(trace)

    def test_cache_reduces_dynamic_response_time(self, trace):
        from repro.core.policies import make_ms

        cfg = paper_sim_config(num_nodes=8, seed=1)
        sampler = pretrain_sampler(trace)
        base = replay(cfg.copy(), make_ms(8, 2, sampler, seed=2),
                      trace).report
        cache = CGICache(capacity=500, ttl=120.0)
        cached = replay(cfg.copy(),
                        CachingMSPolicy(8, 2, cache, sampler=sampler,
                                        seed=2), trace).report
        assert cached.dynamic.mean_response < base.dynamic.mean_response

    def test_popular_queries_dominate_hits(self, trace):
        """Zipf popularity means a small cache still catches most lookups."""
        cfg = paper_sim_config(num_nodes=8, seed=1)
        small = CGICache(capacity=20, ttl=120.0)
        policy = CachingMSPolicy(8, 2, small,
                                 sampler=pretrain_sampler(trace), seed=2)
        replay(cfg, policy, trace)
        assert small.stats.hit_ratio > 0.25

    def test_uncacheable_requests_bypass(self):
        plain = generate_trace(KSU, rate=200, duration=3.0, r=1 / 40,
                               seed=12)  # cacheable_fraction=0
        cfg = paper_sim_config(num_nodes=8, seed=1)
        cache = CGICache(capacity=100)
        policy = CachingMSPolicy(8, 2, cache, seed=2)
        replay(cfg, policy, plain)
        assert cache.stats.lookups == 0
        assert len(cache) == 0

    def test_hit_rate_validation(self):
        with pytest.raises(ValueError):
            CachingMSPolicy(8, 2, CGICache(10), hit_service_rate=0.0)


class TestGeneratorCacheKeys:
    def test_keys_only_on_dynamic(self):
        trace = generate_trace(KSU, rate=200, n=5000, seed=1,
                               cacheable_fraction=1.0)
        for q in trace:
            if q.kind is RequestKind.STATIC:
                assert q.cache_key is None
            else:
                assert q.cache_key is not None

    def test_fraction_respected(self):
        trace = generate_trace(KSU, rate=200, n=20000, seed=1,
                               cacheable_fraction=0.5)
        dyn = [q for q in trace if q.is_dynamic]
        frac = sum(q.cache_key is not None for q in dyn) / len(dyn)
        assert frac == pytest.approx(0.5, abs=0.05)

    def test_zipf_concentration(self):
        trace = generate_trace(KSU, rate=200, n=30000, seed=1,
                               cacheable_fraction=1.0,
                               distinct_queries=1000, zipf_s=1.2)
        from collections import Counter
        keys = Counter(q.cache_key for q in trace
                       if q.cache_key is not None)
        top10 = sum(c for _, c in keys.most_common(10))
        assert top10 / sum(keys.values()) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(KSU, rate=100, n=10, cacheable_fraction=1.5)
        with pytest.raises(ValueError):
            generate_trace(KSU, rate=100, n=10, cacheable_fraction=0.5,
                           distinct_queries=0)


class TestCachingWithFailures:
    def test_cache_hits_survive_master_failure(self):
        """Hits are served at an alive master even after the preferred
        master dies (emergency promotion path)."""
        from repro.sim.cluster import Cluster

        trace = generate_trace(KSU, rate=300, duration=4.0, r=1 / 40,
                               seed=31, cacheable_fraction=1.0,
                               distinct_queries=20)
        cache = CGICache(capacity=100, ttl=600.0)
        policy = CachingMSPolicy(4, 2, cache,
                                 sampler=pretrain_sampler(trace), seed=32)
        cluster = Cluster(paper_sim_config(num_nodes=4, seed=33), policy)
        cluster.submit_many(trace)
        cluster.engine.schedule_at(2.0, cluster.fail_node, 0)
        cluster.run(until=60.0)
        assert len(cluster.metrics) == len(trace)
        assert cache.stats.hits > 0
