"""Tests for the server-process pool and slow-client transfer model."""

import numpy as np
import pytest

from repro.core.policies import FlatPolicy, Policy, Route, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import ConnectionConfig, SimConfig, paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB
from tests.conftest import make_cgi, make_static


class Pin(Policy):
    def __init__(self, num_nodes, target=0):
        super().__init__(num_nodes, range(num_nodes), seed=0)
        self.target = target

    def route(self, request, view):
        return Route(self.target, remote=False)


def one_node_cluster(max_processes=0, client_bandwidth=0.0):
    cfg = paper_sim_config(num_nodes=1, seed=1)
    cfg.connections.max_processes = max_processes
    cfg.connections.client_bandwidth = client_bandwidth
    cfg.memory.static_miss_base = 0.0
    return Cluster(cfg.validate(), Pin(1))


class TestConfig:
    def test_defaults_off(self):
        conn = ConnectionConfig()
        assert not conn.limited
        assert conn.transfer_time(100000) == 0.0

    def test_transfer_time(self):
        conn = ConnectionConfig(client_bandwidth=3600.0)
        assert conn.transfer_time(7200) == pytest.approx(2.0)
        assert conn.transfer_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionConfig(max_processes=-1).validate()
        with pytest.raises(ValueError):
            ConnectionConfig(client_bandwidth=-1).validate()


class TestProcessPool:
    def test_unlimited_pool_runs_everything_concurrently(self):
        cluster = one_node_cluster(max_processes=0)
        for i in range(5):
            cluster.submit(make_cgi(req_id=i, arrival=0.0, cpu=0.01,
                                    io=0.0, mem_pages=0))
        cluster.run(until=0.001)
        assert cluster.nodes[0].active == 5

    def test_pool_caps_concurrency(self):
        cluster = one_node_cluster(max_processes=2)
        for i in range(5):
            cluster.submit(make_cgi(req_id=i, arrival=0.0, cpu=0.01,
                                    io=0.0, mem_pages=0))
        cluster.run(until=0.001)
        node = cluster.nodes[0]
        assert node.busy_slots == 2
        assert len(node.backlog) == 3

    def test_backlogged_requests_eventually_complete(self):
        cluster = one_node_cluster(max_processes=1)
        for i in range(4):
            cluster.submit(make_static(req_id=i, arrival=0.0, cpu=0.001))
        cluster.run(until=5.0)
        assert len(cluster.metrics) == 4
        # Serialised: responses are staggered by at least the demand.
        finishes = sorted(cluster.metrics.finishes)
        gaps = np.diff(finishes)
        assert (gaps >= 0.001 - 1e-9).all()

    def test_backlog_wait_included_in_response(self):
        cluster = one_node_cluster(max_processes=1)
        cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=0.1, io=0.0,
                                mem_pages=0))
        cluster.submit(make_static(req_id=1, arrival=0.0, cpu=0.001))
        cluster.run(until=5.0)
        # The static waited for the whole CGI to release the only worker.
        idx = cluster.metrics.kinds.index(0)
        resp = (cluster.metrics.finishes[idx]
                - cluster.metrics.arrivals[idx])
        assert resp > 0.1

    def test_transfer_holds_slot_but_not_metrics(self):
        # 3600 B/s modem; 7168-byte file -> ~2s transfer.
        cluster = one_node_cluster(max_processes=1,
                                   client_bandwidth=3600.0)
        cluster.submit(make_static(req_id=0, arrival=0.0, cpu=0.001,
                                   size=7168))
        cluster.submit(make_static(req_id=1, arrival=0.0, cpu=0.001,
                                   size=7168))
        cluster.run(until=10.0)
        assert len(cluster.metrics) == 2
        resp0, resp1 = [f - a for f, a in zip(cluster.metrics.finishes,
                                              cluster.metrics.arrivals)]
        # First response is processing-only (transfer excluded)...
        assert min(resp0, resp1) < 0.01
        # ...but the second request waited out the first one's transfer.
        assert max(resp0, resp1) > 1.9
        assert cluster.nodes[0].transfers == 2

    def test_failure_drops_backlog_and_restarts(self):
        cfg = paper_sim_config(num_nodes=2, seed=1)
        cfg.connections.max_processes = 1
        cluster = Cluster(cfg.validate(), FlatPolicy(2, seed=2))
        # Saturate node pools so backlogs form.
        reqs = [make_cgi(req_id=i, arrival=0.0, cpu=0.2, io=0.0,
                         mem_pages=0) for i in range(8)]
        cluster.submit_many(reqs)
        cluster.run(until=0.01)
        victim = max(cluster.nodes, key=lambda n: len(n.backlog))
        assert len(victim.backlog) > 0
        restarted = cluster.fail_node(victim.node_id)
        assert restarted >= len(victim.backlog) + 1 - 1  # inflight+queued
        cluster.run(until=30.0)
        assert len(cluster.metrics) == 8

    def test_slot_freed_on_node_recovery_path(self):
        cluster = one_node_cluster(max_processes=1)
        cluster.submit(make_static(req_id=0, arrival=0.0, cpu=0.001))
        cluster.run(until=1.0)
        assert cluster.nodes[0].busy_slots == 0


class TestSlowClientsEndToEnd:
    def test_modem_clients_throttle_a_small_pool(self):
        """With modem clients and a small worker pool, throughput is
        transfer-bound; a big pool restores it."""
        trace = generate_trace(UCB, rate=150, duration=4.0, r=1 / 40,
                               seed=3)

        def run(max_processes):
            cfg = paper_sim_config(num_nodes=4, seed=1)
            cfg.connections.max_processes = max_processes
            cfg.connections.client_bandwidth = 3600.0
            result = replay(cfg.validate(), FlatPolicy(4, seed=2), trace,
                            warmup_fraction=0.0, drain=300.0)
            return result.report

        small = run(8)
        large = run(256)
        assert small.overall.mean_response > 2 * large.overall.mean_response
