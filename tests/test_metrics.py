"""Unit tests for metrics collection and reporting."""

import math

import pytest

from repro.sim.metrics import MetricsCollector
from repro.sim.process import CPU_BURST, SimProcess
from tests.conftest import make_cgi, make_static


def finished_proc(req, finish, node=0):
    proc = SimProcess(req, node, [(CPU_BURST, req.demand)],
                      admit_time=req.arrival_time)
    proc.finish_time = finish
    return proc


class TestCollector:
    def test_record_and_report(self):
        mc = MetricsCollector()
        req = make_static(req_id=0, arrival=0.0, cpu=0.001)
        mc.record(finished_proc(req, 0.002), remote=False, on_master=True)
        report = mc.report()
        assert report.completed == 1
        assert report.overall.stretch == pytest.approx(2.0)
        assert report.static.count == 1
        assert report.dynamic.count == 0

    def test_per_class_split(self):
        mc = MetricsCollector()
        s = make_static(req_id=0, arrival=0.0, cpu=0.001)
        d = make_cgi(req_id=1, arrival=0.0, cpu=0.01, io=0.01)
        mc.record(finished_proc(s, 0.002), remote=False, on_master=True)
        mc.record(finished_proc(d, 0.06), remote=True, on_master=False)
        rep = mc.report()
        assert rep.static.stretch == pytest.approx(2.0)
        assert rep.dynamic.stretch == pytest.approx(3.0)
        assert rep.overall.stretch == pytest.approx(2.5)
        assert rep.remote_dispatches == 1

    def test_warmup_filters_early_arrivals(self):
        mc = MetricsCollector()
        early = make_static(req_id=0, arrival=0.0, cpu=0.001)
        late = make_static(req_id=1, arrival=10.0, cpu=0.001)
        mc.record(finished_proc(early, 0.1), remote=False, on_master=True)
        mc.record(finished_proc(late, 10.001), remote=False, on_master=True)
        rep = mc.report(warmup=5.0)
        assert rep.completed == 1
        assert rep.overall.stretch == pytest.approx(1.0)

    def test_cutoff_filters_late_arrivals(self):
        mc = MetricsCollector()
        a = make_static(req_id=0, arrival=0.0, cpu=0.001)
        b = make_static(req_id=1, arrival=10.0, cpu=0.001)
        mc.record(finished_proc(a, 0.001), remote=False, on_master=True)
        mc.record(finished_proc(b, 10.1), remote=False, on_master=True)
        rep = mc.report(cutoff=5.0)
        assert rep.completed == 1

    def test_master_dynamic_fraction(self):
        mc = MetricsCollector()
        for i, on_master in enumerate([True, False, False, False]):
            d = make_cgi(req_id=i, arrival=0.0)
            mc.record(finished_proc(d, 0.1), remote=not on_master,
                      on_master=on_master)
        rep = mc.report()
        assert rep.master_dynamic_fraction == pytest.approx(0.25)
        assert rep.dynamic_total == 4

    def test_empty_class_stats_are_nan(self):
        mc = MetricsCollector()
        s = make_static(req_id=0, arrival=0.0, cpu=0.001)
        mc.record(finished_proc(s, 0.002), remote=False, on_master=True)
        rep = mc.report()
        assert math.isnan(rep.dynamic.stretch)

    def test_throughput(self):
        mc = MetricsCollector()
        for i in range(10):
            s = make_static(req_id=i, arrival=float(i), cpu=0.001)
            mc.record(finished_proc(s, i + 0.001), remote=False,
                      on_master=True)
        rep = mc.report()
        assert rep.throughput == pytest.approx(10 / rep.duration)

    def test_percentiles_ordered(self):
        mc = MetricsCollector()
        for i in range(100):
            s = make_static(req_id=i, arrival=0.0, cpu=0.001)
            mc.record(finished_proc(s, 0.001 * (1 + i)), remote=False,
                      on_master=True)
        rep = mc.report()
        assert rep.overall.median_response <= rep.overall.p95_response
        assert rep.overall.mean_response > 0

    def test_len(self):
        mc = MetricsCollector()
        assert len(mc) == 0
        s = make_static(req_id=0, arrival=0.0, cpu=0.001)
        mc.record(finished_proc(s, 0.01), remote=False, on_master=True)
        assert len(mc) == 1
