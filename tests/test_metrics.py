"""Unit tests for metrics collection and reporting."""

import math

import pytest

from repro.sim.metrics import MetricsCollector
from repro.sim.process import CPU_BURST, SimProcess
from tests.conftest import make_cgi, make_static


def finished_proc(req, finish, node=0):
    proc = SimProcess(req, node, [(CPU_BURST, req.demand)],
                      admit_time=req.arrival_time)
    proc.finish_time = finish
    return proc


class TestCollector:
    def test_record_and_report(self):
        mc = MetricsCollector()
        req = make_static(req_id=0, arrival=0.0, cpu=0.001)
        mc.record(finished_proc(req, 0.002), remote=False, on_master=True)
        report = mc.report()
        assert report.completed == 1
        assert report.overall.stretch == pytest.approx(2.0)
        assert report.static.count == 1
        assert report.dynamic.count == 0

    def test_per_class_split(self):
        mc = MetricsCollector()
        s = make_static(req_id=0, arrival=0.0, cpu=0.001)
        d = make_cgi(req_id=1, arrival=0.0, cpu=0.01, io=0.01)
        mc.record(finished_proc(s, 0.002), remote=False, on_master=True)
        mc.record(finished_proc(d, 0.06), remote=True, on_master=False)
        rep = mc.report()
        assert rep.static.stretch == pytest.approx(2.0)
        assert rep.dynamic.stretch == pytest.approx(3.0)
        assert rep.overall.stretch == pytest.approx(2.5)
        assert rep.remote_dispatches == 1

    def test_warmup_filters_early_arrivals(self):
        mc = MetricsCollector()
        early = make_static(req_id=0, arrival=0.0, cpu=0.001)
        late = make_static(req_id=1, arrival=10.0, cpu=0.001)
        mc.record(finished_proc(early, 0.1), remote=False, on_master=True)
        mc.record(finished_proc(late, 10.001), remote=False, on_master=True)
        rep = mc.report(warmup=5.0)
        assert rep.completed == 1
        assert rep.overall.stretch == pytest.approx(1.0)

    def test_cutoff_filters_late_arrivals(self):
        mc = MetricsCollector()
        a = make_static(req_id=0, arrival=0.0, cpu=0.001)
        b = make_static(req_id=1, arrival=10.0, cpu=0.001)
        mc.record(finished_proc(a, 0.001), remote=False, on_master=True)
        mc.record(finished_proc(b, 10.1), remote=False, on_master=True)
        rep = mc.report(cutoff=5.0)
        assert rep.completed == 1

    def test_master_dynamic_fraction(self):
        mc = MetricsCollector()
        for i, on_master in enumerate([True, False, False, False]):
            d = make_cgi(req_id=i, arrival=0.0)
            mc.record(finished_proc(d, 0.1), remote=not on_master,
                      on_master=on_master)
        rep = mc.report()
        assert rep.master_dynamic_fraction == pytest.approx(0.25)
        assert rep.dynamic_total == 4

    def test_empty_class_stats_are_nan(self):
        mc = MetricsCollector()
        s = make_static(req_id=0, arrival=0.0, cpu=0.001)
        mc.record(finished_proc(s, 0.002), remote=False, on_master=True)
        rep = mc.report()
        assert math.isnan(rep.dynamic.stretch)

    def test_throughput(self):
        mc = MetricsCollector()
        for i in range(10):
            s = make_static(req_id=i, arrival=float(i), cpu=0.001)
            mc.record(finished_proc(s, i + 0.001), remote=False,
                      on_master=True)
        rep = mc.report()
        assert rep.throughput == pytest.approx(10 / rep.duration)

    def test_percentiles_ordered(self):
        mc = MetricsCollector()
        for i in range(100):
            s = make_static(req_id=i, arrival=0.0, cpu=0.001)
            mc.record(finished_proc(s, 0.001 * (1 + i)), remote=False,
                      on_master=True)
        rep = mc.report()
        assert rep.overall.median_response <= rep.overall.p95_response
        assert rep.overall.mean_response > 0

    def test_len(self):
        mc = MetricsCollector()
        assert len(mc) == 0
        s = make_static(req_id=0, arrival=0.0, cpu=0.001)
        mc.record(finished_proc(s, 0.01), remote=False, on_master=True)
        assert len(mc) == 1


class TestWindowSlicing:
    """Warmup/cutoff edge cases: the report must degrade to well-defined
    empty statistics, never raise or divide by zero."""

    def _filled(self, n=5):
        mc = MetricsCollector()
        for i in range(n):
            s = make_static(req_id=i, arrival=float(i), cpu=0.001)
            mc.record(finished_proc(s, i + 0.002), remote=False,
                      on_master=True)
        return mc

    def test_empty_window_after_all_arrivals(self):
        mc = self._filled()
        rep = mc.report(warmup=100.0)
        assert rep.completed == 0
        assert rep.duration == 0.0
        assert rep.throughput == 0.0
        assert math.isnan(rep.overall.stretch)
        assert math.isnan(rep.static.mean_response)
        assert rep.remote_dispatches == 0
        assert rep.master_dynamic_fraction == 0.0

    def test_cutoff_before_warmup_is_empty(self):
        mc = self._filled()
        rep = mc.report(warmup=3.0, cutoff=1.0)
        assert rep.completed == 0
        assert math.isnan(rep.overall.stretch)

    def test_window_boundaries_are_inclusive(self):
        mc = self._filled()
        # warmup keeps arrivals >= warmup; cutoff keeps arrivals <= cutoff.
        rep = mc.report(warmup=1.0, cutoff=3.0)
        assert rep.completed == 3

    def test_report_on_empty_collector(self):
        mc = MetricsCollector()
        rep = mc.report()
        assert rep.completed == 0
        assert rep.duration == 0.0
        assert math.isnan(rep.overall.p95_response)

    def test_all_dropped_run_reports_empty(self):
        """A run where nothing completed (everything dropped/lost) must
        still produce a coherent report from the empty collector."""
        mc = MetricsCollector()
        rep = mc.report(warmup=0.5, cutoff=20.0)
        assert rep.completed == 0
        assert rep.dynamic_total == 0
        assert rep.master_dynamic == 0
        assert math.isnan(rep.overall.stretch)
        assert math.isnan(rep.dynamic.mean_demand)


class TestSnapshotCache:
    def test_snapshot_is_cached_between_reads(self):
        mc = self._two_sample_collector()
        first = mc.snapshot()
        assert mc.snapshot() is first  # identical tuple, no rebuild
        # Reports share the cached arrays rather than re-materialising.
        mc.report()
        assert mc.snapshot() is first

    def test_record_invalidates_snapshot(self):
        mc = self._two_sample_collector()
        first = mc.snapshot()
        s = make_static(req_id=99, arrival=5.0, cpu=0.001)
        mc.record(finished_proc(s, 5.01), remote=False, on_master=True)
        second = mc.snapshot()
        assert second is not first
        assert len(second[0]) == len(first[0]) + 1
        # The new sample is visible through report() as well.
        assert mc.report().completed == 3

    @staticmethod
    def _two_sample_collector():
        mc = MetricsCollector()
        for i in range(2):
            s = make_static(req_id=i, arrival=float(i), cpu=0.001)
            mc.record(finished_proc(s, i + 0.01), remote=False,
                      on_master=True)
        return mc
