"""Unit tests for the span recorder and its serialisation helpers."""

import numpy as np
import pytest

from repro.obs import (
    Tracer,
    load_jsonl,
    save_jsonl,
    span_digest,
    summarize_spans,
)
from repro.obs.trace import ARRIVE, COMPLETE, DISPATCH, RUN
from repro.sim.engine import Engine


def _sample_spans():
    eng = Engine()
    tr = Tracer()
    tr.bind(eng)
    tr.record(ARRIVE, 0, -1, (1, 0.25))
    eng.schedule(1.5, tr.record, DISPATCH, 0, 3,
                 (True, False, 0.7, 1.2, None, None, None))
    eng.schedule(2.0, tr.record, COMPLETE, 0, 3, (0.25, True, False))
    eng.run()
    tr.record_meta(RUN, 2)
    return tr


class TestTracer:
    def test_records_engine_time(self):
        tr = _sample_spans()
        assert [s[0] for s in tr.spans] == [0.0, 1.5, 2.0, 2.0]
        assert [s[1] for s in tr.spans] == [ARRIVE, DISPATCH, COMPLETE, RUN]

    def test_meta_spans_have_no_request(self):
        tr = _sample_spans()
        t, kind, req_id, node_id, data = tr.spans[-1]
        assert (req_id, node_id) == (-1, -1)
        assert data == (2,)

    def test_len_and_clear(self):
        tr = _sample_spans()
        assert len(tr) == 4
        tr.clear()
        assert len(tr) == 0 and tr.spans == []


class TestSerialisation:
    def test_roundtrip_preserves_digest(self, tmp_path):
        tr = _sample_spans()
        path = tmp_path / "spans.jsonl"
        save_jsonl(tr.spans, path, meta={"case": "roundtrip"})
        loaded, header = load_jsonl(path)
        assert header["count"] == len(tr.spans)
        assert header["meta"] == {"case": "roundtrip"}
        assert span_digest(loaded) == span_digest(tr.spans)
        assert loaded[0][:4] == (0.0, ARRIVE, 0, -1)
        assert loaded[0][4] == (1, 0.25)

    def test_numpy_payloads_serialise(self, tmp_path):
        spans = [(0.0, ARRIVE, 0, -1, (np.bool_(True), np.float64(0.5),
                                       np.int64(3)))]
        path = tmp_path / "np.jsonl"
        save_jsonl(spans, path)
        loaded, _ = load_jsonl(path)
        assert loaded[0][4] == (True, 0.5, 3)
        # The digest must agree between the numpy and plain encodings.
        assert span_digest(spans) == span_digest(loaded)

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format":"something-else"}\n')
        with pytest.raises(ValueError, match="not a repro.obs/1"):
            load_jsonl(path)

    def test_digest_is_order_sensitive(self):
        tr = _sample_spans()
        reordered = list(reversed(tr.spans))
        assert span_digest(reordered) != span_digest(tr.spans)

    def test_digest_sensitive_to_payload(self):
        tr = _sample_spans()
        tampered = list(tr.spans)
        t, kind, req_id, node_id, data = tampered[0]
        tampered[0] = (t, kind, req_id, node_id, (2, 0.25))
        assert span_digest(tampered) != span_digest(tr.spans)


class TestSummary:
    def test_summary_counts(self):
        tr = _sample_spans()
        s = summarize_spans(tr.spans)
        assert s["spans"] == 4
        assert s["requests"] == 1          # req 0; meta spans excluded
        assert s["nodes"] == 1             # node 3
        assert s["t_min"] == 0.0 and s["t_max"] == 2.0
        assert s["kinds"] == {ARRIVE: 1, DISPATCH: 1, COMPLETE: 1, RUN: 1}
        assert s["digest"] == span_digest(tr.spans)

    def test_empty_stream(self):
        s = summarize_spans([])
        assert s["spans"] == 0
        assert s["t_min"] == 0.0 and s["t_max"] == 0.0
