"""Live-cluster tests: an in-process master and a full loopback cluster.

The integration test boots the real thing — one master in-process plus
two slave subprocesses — replays ~200 mixed requests over actual HTTP,
and then holds the emitted span stream to the same audit the simulator's
traces must pass: lifecycle, conservation, and the theta'_2 reservation
invariant.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live.cluster import LiveCluster, LiveClusterConfig
from repro.live.loadgen import run_loadgen
from repro.live.master import MasterServer
from repro.live.validate import make_validation_trace
from repro.obs.audit import audit_spans

from tests.conftest import make_cgi, make_static


def test_single_node_master_serves_in_process():
    """A one-node master (no slaves, reservation off) executes statics
    and CGIs locally through serve_request, and its span stream audits."""

    async def scenario():
        master = MasterServer(node_id=0, num_nodes=1, workers=2)
        await master.start()
        try:
            results = []
            for i in range(6):
                if i % 2 == 0:
                    req = make_static(req_id=i, cpu=0.001)
                else:
                    req = make_cgi(req_id=i, cpu=0.002, io=0.005)
                results.append(await master.serve_request(req))
            return master, results
        finally:
            await master.stop()

    master, results = asyncio.run(scenario())
    assert all(r["status"] == "ok" for r in results)
    assert all(r["node"] == 0 and not r["remote"] for r in results)
    ledger = master.conservation()
    assert ledger["completed"] == 6 and ledger["in_flight"] == 0
    report = audit_spans(master.tracer.spans, conservation=ledger)
    assert report.ok, report.render()


@pytest.mark.integration
def test_loopback_cluster_end_to_end():
    """1 master + 2 slave processes, ~200 mixed requests over real HTTP."""
    trace = make_validation_trace(rate=80.0, duration=2.5, mu_h=240.0,
                                  inv_r=12.0, seed=3)
    assert len(trace) >= 150

    async def scenario():
        cfg = LiveClusterConfig(num_slaves=2, seed=3)
        async with LiveCluster(cfg) as cluster:
            result = await run_loadgen(cluster.master.host,
                                       cluster.master.http_port, trace)
            # stop() clears the peer registry: snapshot the counters now.
            peer_stats = [(peer.submitted, peer.completed)
                          for peer in cluster.master.peers.values()]
            return cluster.master, result, peer_stats

    master, result, peer_stats = asyncio.run(scenario())

    # Every submitted request got a definite outcome, none errored.
    assert result.submitted == len(trace)
    assert result.errors == 0, result.error_messages[:5]
    assert result.ok + result.denied == result.submitted
    assert result.ok > 0.9 * result.submitted

    # The ledger drained and balances.
    ledger = master.conservation()
    assert ledger["submitted"] == len(trace)
    assert ledger["in_flight"] == 0
    assert ledger["completed"] == result.ok

    # Remote CGI really round-tripped through the slave processes.
    assert len(peer_stats) == 2
    assert sum(s for s, _ in peer_stats) > 0
    assert sum(c for _, c in peer_stats) > 0
    assert any(c[4] for c in result.completions)   # remote completions

    # The span stream passes the simulator's audit, including the
    # reservation invariant — and that check actually ran.
    report = audit_spans(master.tracer.spans, conservation=ledger)
    assert report.ok, report.render()
    assert report.checked.get("reservation_decisions", 0) > 0

    # The adaptive cap was live on the master (gate honesty per decision
    # is asserted span-by-span by the audit's reservation check above).
    res = master.policy.reservation
    assert res is not None
    assert 0.0 < res.effective_cap <= 1.0
    assert 0.0 <= res.master_fraction <= 1.0
