"""Unit tests for the BSD-style multilevel-feedback CPU scheduler."""

import pytest

from repro.sim.config import CPUConfig
from repro.sim.cpu import CPU
from repro.sim.engine import Engine
from repro.sim.process import CPU_BURST, ProcState, SimProcess
from tests.conftest import make_cgi, make_static


def make_cpu(engine, done, **overrides):
    cfg = CPUConfig(**overrides)
    cfg.validate()
    return CPU(engine, cfg, done.append)


def proc_with_cpu(duration, req=None, admit=0.0, node=0):
    req = req or make_cgi(cpu=duration, io=0.0)
    return SimProcess(req, node, [(CPU_BURST, duration)], admit_time=admit)


class TestSingleProcess:
    def test_short_burst_completes_with_switch_overhead(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        proc = proc_with_cpu(0.004)
        cpu.make_runnable(proc)
        engine.run()
        assert done == [proc]
        # 50us switch + 4ms work
        assert engine.now == pytest.approx(0.004 + 50e-6)
        assert proc.cpu_time_used == pytest.approx(0.004)

    def test_long_burst_spans_quanta(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        proc = proc_with_cpu(0.025)
        cpu.make_runnable(proc)
        engine.run()
        assert done == [proc]
        assert proc.cpu_time_used == pytest.approx(0.025)
        # One switch at the start only: the CPU stays with the sole process.
        assert cpu.switches == 1

    def test_busy_time_includes_overhead(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        cpu.make_runnable(proc_with_cpu(0.004))
        engine.run()
        assert cpu.busy_time == pytest.approx(0.004 + 50e-6)

    def test_no_switch_overhead_config(self, engine):
        done = []
        cpu = make_cpu(engine, done, context_switch_overhead=0.0)
        cpu.make_runnable(proc_with_cpu(0.004))
        engine.run()
        assert engine.now == pytest.approx(0.004)


class TestTimeSharing:
    def test_equal_processes_share_fairly(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        a = proc_with_cpu(0.050)
        b = proc_with_cpu(0.050)
        cpu.make_runnable(a)
        cpu.make_runnable(b)
        engine.run()
        assert set(done) == {a, b}
        # Both finish near the end: round-robin interleaves them.
        assert a.cpu_time_used == pytest.approx(0.050)
        assert b.cpu_time_used == pytest.approx(0.050)
        assert engine.now == pytest.approx(0.100, rel=0.05)

    def test_short_job_preempts_cpu_hog(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        hog = proc_with_cpu(0.200)
        cpu.make_runnable(hog)
        engine.run(until=0.050)  # hog has burned several quanta
        short = proc_with_cpu(0.001, req=make_static(cpu=0.001))
        cpu.make_runnable(short)
        engine.run()
        assert done[0] is short
        # The short job waited at most ~a quantum, not for the hog to end.
        finish_of_short = short.cpu_time_used  # ran to completion
        assert finish_of_short == pytest.approx(0.001)
        assert cpu.preemptions >= 1

    def test_hog_demotes_below_fresh_arrivals(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        hog = proc_with_cpu(0.100)
        cpu.make_runnable(hog)
        engine.run(until=0.030)
        assert hog.priority >= 1  # demoted after quanta burned

    def test_usage_decays_over_time(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        proc = proc_with_cpu(0.020)
        cpu.make_runnable(proc)
        engine.run()
        usage_after = proc.cpu_usage
        # Lazy decay: recompute the level far in the future.
        engine.schedule(1.0, lambda: None)
        engine.run()
        level = cpu._level(proc, engine.now)
        assert proc.cpu_usage < usage_after
        assert level == 0  # fully decayed back to top priority

    def test_work_conserved_across_many_processes(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        procs = [proc_with_cpu(0.005 + 0.001 * i) for i in range(10)]
        for p in procs:
            cpu.make_runnable(p)
        engine.run()
        assert len(done) == 10
        for p in procs:
            assert p.cpu_time_used == pytest.approx(p.plan[0][1])

    def test_runnable_count(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        assert cpu.runnable == 0
        cpu.make_runnable(proc_with_cpu(0.05))
        cpu.make_runnable(proc_with_cpu(0.05))
        assert cpu.runnable == 2


class TestPreemptionAccounting:
    def test_preempted_work_is_not_lost(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        hog = proc_with_cpu(0.015)
        cpu.make_runnable(hog)
        # Arrive mid-quantum with a better-priority process.
        engine.run(until=0.004)
        short = proc_with_cpu(0.001, req=make_static(cpu=0.001))
        # Force the hog to look worse so the wakeup preempts.
        hog.cpu_usage = 0.05
        cpu.make_runnable(short)
        engine.run()
        assert set(done) == {hog, short}
        assert hog.cpu_time_used == pytest.approx(0.015)
        assert short.cpu_time_used == pytest.approx(0.001)

    def test_state_transitions(self, engine):
        done = []
        cpu = make_cpu(engine, done)
        proc = proc_with_cpu(0.004)
        cpu.make_runnable(proc)
        assert proc.state in (ProcState.READY, ProcState.RUNNING)
        engine.run()
        # Completion callback does not change state; the node does that.
        assert proc.burst_remaining == 0.0
