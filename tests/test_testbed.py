"""Unit tests for the Sun-cluster testbed emulator."""

import numpy as np
import pytest

from repro.core.policies import FlatPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.testbed.emulator import (
    SUN_CLUSTER_NODES,
    SUN_ULTRA1_STATIC_RATE,
    TestbedConfig,
    replay_on_testbed,
)
from repro.testbed.noise import BackgroundLoad, NoiseConfig, jitter_demands
from repro.workload.generator import generate_trace
from repro.workload.traces import UCB
from tests.conftest import make_cgi, make_static


class TestNoiseConfig:
    def test_defaults_validate(self):
        NoiseConfig().validate()

    def test_bad_values(self):
        with pytest.raises(ValueError):
            NoiseConfig(bg_rate=-1).validate()
        with pytest.raises(ValueError):
            NoiseConfig(bg_demand=0).validate()
        with pytest.raises(ValueError):
            NoiseConfig(demand_jitter=-0.1).validate()


class TestJitter:
    def test_zero_sigma_is_copy(self):
        reqs = [make_static(req_id=i) for i in range(5)]
        out = jitter_demands(reqs, 0.0)
        assert [q.demand for q in out] == [q.demand for q in reqs]

    def test_jitter_preserves_mean(self):
        reqs = [make_cgi(req_id=i, cpu=0.03, io=0.003)
                for i in range(20000)]
        out = jitter_demands(reqs, 0.2, seed=1)
        mean_in = np.mean([q.demand for q in reqs])
        mean_out = np.mean([q.demand for q in out])
        assert mean_out == pytest.approx(mean_in, rel=0.02)

    def test_jitter_changes_individuals(self):
        reqs = [make_cgi(req_id=i) for i in range(10)]
        out = jitter_demands(reqs, 0.2, seed=1)
        assert any(a.demand != b.demand for a, b in zip(reqs, out))

    def test_metadata_preserved(self):
        reqs = [make_cgi(req_id=7, mem_pages=55)]
        out = jitter_demands(reqs, 0.2, seed=1)
        assert out[0].req_id == 7
        assert out[0].mem_pages == 55
        assert out[0].type_key == reqs[0].type_key


class TestBackgroundLoad:
    def test_injects_until_stop(self):
        tb = TestbedConfig()
        cluster = Cluster(tb.sim_config(), FlatPolicy(tb.num_nodes, seed=1))
        bg = BackgroundLoad(cluster, NoiseConfig(bg_rate=5.0, seed=2),
                            stop_at=2.0)
        bg.start()
        cluster.run(until=10.0)
        assert bg.injected > 0
        # Roughly rate * nodes * stop_at injections.
        expected = 5.0 * tb.num_nodes * 2.0
        assert bg.injected == pytest.approx(expected, rel=0.5)

    def test_zero_rate_injects_nothing(self):
        tb = TestbedConfig()
        cluster = Cluster(tb.sim_config(), FlatPolicy(tb.num_nodes, seed=1))
        bg = BackgroundLoad(cluster, NoiseConfig(bg_rate=0.0), stop_at=2.0)
        bg.start()
        cluster.run(until=5.0)
        assert bg.injected == 0


class TestEmulator:
    def test_paper_constants(self):
        tb = TestbedConfig()
        assert tb.num_nodes == SUN_CLUSTER_NODES == 6
        assert tb.static_rate == SUN_ULTRA1_STATIC_RATE == 110.0
        cfg = tb.sim_config()
        assert cfg.num_nodes == 6
        assert cfg.static_rate == 110.0

    def test_replay_runs_and_reports(self):
        trace = generate_trace(UCB, rate=30, duration=5.0, mu_h=110,
                               r=1 / 40, seed=4)
        report = replay_on_testbed(make_ms(6, 3, seed=5), trace)
        assert report.completed > 0
        assert report.overall.stretch >= 1.0

    def test_noise_degrades_vs_clean_sim(self):
        """The noisy testbed should be slower than the clean simulator on
        the same trace and policy."""
        from repro.workload.replay import replay

        tb = TestbedConfig(noise=NoiseConfig(bg_rate=6.0, bg_demand=0.08,
                                             demand_jitter=0.0, seed=9))
        trace = generate_trace(UCB, rate=60, duration=5.0, mu_h=110,
                               r=1 / 40, seed=4)
        noisy = replay_on_testbed(make_ms(6, 3, seed=5), trace, tb)
        clean = replay(tb.sim_config(), make_ms(6, 3, seed=5), trace)
        assert noisy.overall.stretch > clean.report.overall.stretch

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_on_testbed(make_ms(6, 3), [])


class TestBackgroundStopBoundary:
    """Regression (control-plane PR): injected background demand must
    never outlive ``stop_at`` — long-tailed exponential demands drawn
    just before the boundary used to spill into the drain phase and
    perturb post-trace measurements."""

    def _run(self, stop_at=2.0, bg_demand=1.5, seed=3):
        # A huge mean demand makes any unclipped draw obvious.
        tb = TestbedConfig()
        cluster = Cluster(tb.sim_config(), FlatPolicy(tb.num_nodes, seed=1))
        bg = BackgroundLoad(
            cluster, NoiseConfig(bg_rate=4.0, bg_demand=bg_demand,
                                 seed=seed), stop_at=stop_at)
        bg.start()
        cluster.run(until=stop_at + 60.0)
        return bg

    def test_no_injection_at_or_past_stop(self):
        bg = self._run()
        assert bg.injected > 0
        assert all(t < bg.stop_at for t, _ in bg.injections)

    def test_injected_demand_clipped_to_budget(self):
        bg = self._run()
        # The CPU floor (1e-6 s, keeps the burst planner happy) is the
        # only permitted overshoot.
        assert all(t + demand <= bg.stop_at + 1e-6
                   for t, demand in bg.injections)
        # With mean demand 1.5s against a 2s window, clipping must have
        # actually engaged for at least one draw.
        assert any(t + demand >= bg.stop_at - 1e-9
                   for t, demand in bg.injections)

    def test_no_bg_admit_span_after_stop(self):
        from repro.obs import Tracer
        from repro.obs.trace import BG_ADMIT

        tb = TestbedConfig()
        cluster = Cluster(tb.sim_config(), FlatPolicy(tb.num_nodes, seed=1),
                          tracer=Tracer())
        bg = BackgroundLoad(cluster, NoiseConfig(bg_rate=4.0, seed=5),
                            stop_at=1.5)
        bg.start()
        cluster.run(until=30.0)
        bg_spans = [s for s in cluster.tracer.spans if s[1] == BG_ADMIT]
        assert bg_spans
        assert all(s[0] < 1.5 for s in bg_spans)
