"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Engine, Event


class TestScheduling:
    def test_runs_in_time_order(self, engine):
        hits = []
        engine.schedule(2.0, hits.append, "late")
        engine.schedule(1.0, hits.append, "early")
        engine.schedule(3.0, hits.append, "last")
        engine.run()
        assert hits == ["early", "late", "last"]

    def test_ties_broken_by_insertion_order(self, engine):
        hits = []
        for tag in "abc":
            engine.schedule(1.0, hits.append, tag)
        engine.run()
        assert hits == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        engine.schedule(1.5, lambda: None)
        engine.run()
        assert engine.now == pytest.approx(1.5)

    def test_schedule_at_absolute_time(self, engine):
        hits = []
        engine.schedule_at(4.0, hits.append, "x")
        engine.run()
        assert hits == ["x"] and engine.now == pytest.approx(4.0)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_into_past_rejected(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self, engine):
        hits = []

        def outer():
            hits.append(("outer", engine.now))
            engine.schedule(1.0, inner)

        def inner():
            hits.append(("inner", engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert hits == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        hits = []
        ev = engine.schedule(1.0, hits.append, "no")
        ev.cancel()
        engine.run()
        assert hits == []

    def test_cancel_is_idempotent(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert engine.run() == 0

    def test_cancel_mid_run(self, engine):
        hits = []
        later = engine.schedule(2.0, hits.append, "later")
        engine.schedule(1.0, later.cancel)
        engine.run()
        assert hits == []


class TestRunControl:
    def test_run_until_stops_before_later_events(self, engine):
        hits = []
        engine.schedule(1.0, hits.append, "in")
        engine.schedule(5.0, hits.append, "out")
        engine.run(until=2.0)
        assert hits == ["in"]
        assert engine.now == pytest.approx(2.0)

    def test_run_until_then_continue(self, engine):
        hits = []
        engine.schedule(1.0, hits.append, 1)
        engine.schedule(3.0, hits.append, 3)
        engine.run(until=2.0)
        engine.run()
        assert hits == [1, 3]

    def test_run_returns_event_count(self, engine):
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.run() == 5

    def test_max_events_guard(self, engine):
        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        with pytest.raises(RuntimeError, match="max_events"):
            engine.run(max_events=10)

    def test_not_reentrant(self, engine):
        def recurse():
            engine.run()

        engine.schedule(1.0, recurse)
        with pytest.raises(RuntimeError, match="reentrant"):
            engine.run()

    def test_step_processes_one_event(self, engine):
        hits = []
        engine.schedule(1.0, hits.append, 1)
        engine.schedule(2.0, hits.append, 2)
        assert engine.step() is True
        assert hits == [1]
        assert engine.step() is True
        assert engine.step() is False
        assert hits == [1, 2]


class TestIntrospection:
    def test_peek_skips_cancelled(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        ev.cancel()
        assert engine.peek() == pytest.approx(2.0)

    def test_peek_empty(self, engine):
        assert engine.peek() is None

    def test_pending_counts_live_events(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending == 2
        ev.cancel()
        assert engine.pending == 1

    def test_processed_accumulates(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 2

    def test_event_ordering_dunder(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        c = Event(0.5, 2, lambda: None, ())
        assert c < a < b


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run_once():
            eng = Engine()
            log = []
            for i in range(50):
                eng.schedule(((i * 7919) % 101) / 10.0, log.append, i)
            eng.run()
            return log

        assert run_once() == run_once()
