"""Unit tests for the SPECweb96 file mix."""

import numpy as np
import pytest

from repro.workload.specweb import (
    CLASS_WEIGHTS,
    FILE_SIZES,
    MEAN_FILE_SIZE,
    closest_file,
    sample_files,
)


class TestFileSet:
    def test_36_distinct_sizes(self):
        assert len(FILE_SIZES) == 36
        assert len(set(FILE_SIZES)) == 36

    def test_sorted_ascending(self):
        assert list(FILE_SIZES) == sorted(FILE_SIZES)

    def test_size_range(self):
        assert FILE_SIZES[0] == 102            # ~0.1 KB
        assert FILE_SIZES[-1] == 900 * 1024    # 900 KB

    def test_weights_sum_to_one(self):
        assert sum(CLASS_WEIGHTS) == pytest.approx(1.0)

    def test_mean_file_size_consistent(self):
        # Analytic mean vs empirical sampling.
        rng = np.random.default_rng(0)
        sizes = sample_files(200000, rng)
        assert sizes.mean() == pytest.approx(MEAN_FILE_SIZE, rel=0.05)


class TestClosestFile:
    def test_exact_match(self):
        assert closest_file(2048) == 2048

    def test_rounds_to_nearest(self):
        assert closest_file(7400) == 7168    # 7 KB file
        assert closest_file(7900) == 8192    # 8 KB file

    def test_below_minimum(self):
        assert closest_file(0) == 102
        assert closest_file(50) == 102

    def test_above_maximum(self):
        assert closest_file(10**9) == 900 * 1024

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            closest_file(-1)

    def test_always_in_set(self):
        rng = np.random.default_rng(1)
        for size in rng.integers(0, 2_000_000, size=200):
            assert closest_file(int(size)) in FILE_SIZES


class TestSampling:
    def test_small_files_dominate(self):
        rng = np.random.default_rng(2)
        sizes = sample_files(10000, rng)
        small = (sizes < 10 * 1024).mean()
        assert small > 0.8  # classes 0+1 are 85% of accesses

    def test_sizes_from_the_set(self):
        rng = np.random.default_rng(3)
        assert set(sample_files(1000, rng)) <= set(FILE_SIZES)

    def test_zero_count(self):
        rng = np.random.default_rng(4)
        assert len(sample_files(0, rng)) == 0

    def test_negative_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            sample_files(-1, rng)
