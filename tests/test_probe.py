"""Tests for the cluster state probe."""

import numpy as np
import pytest

from repro.core.policies import FlatPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.sim.probe import ClusterProbe
from repro.workload.generator import generate_trace
from repro.workload.traces import UCB
from tests.conftest import make_cgi


def build(policy=None, p=4):
    cfg = paper_sim_config(num_nodes=p, seed=1)
    return Cluster(cfg, policy or FlatPolicy(p, seed=2))


class TestProbe:
    def test_samples_on_schedule(self):
        cluster = build()
        probe = ClusterProbe(cluster, period=0.5, until=3.0).start()
        cluster.run(until=5.0)
        assert len(probe.times) == 6  # 0.5 .. 3.0
        assert probe.time[0] == pytest.approx(0.5)
        assert probe.time[-1] == pytest.approx(3.0)

    def test_series_shape(self):
        cluster = build(p=3)
        probe = ClusterProbe(cluster, period=1.0, until=2.0).start()
        cluster.run(until=3.0)
        assert probe.series("cpu_queue").shape == (2, 3)
        assert probe.series("memory_pressure").shape == (2, 3)

    def test_observes_load(self):
        cluster = build()
        for i in range(30):
            cluster.submit(make_cgi(req_id=i, arrival=0.0, cpu=0.5,
                                    io=0.0, mem_pages=0))
        probe = ClusterProbe(cluster, period=0.2, until=2.0).start()
        cluster.run(until=3.0)
        assert probe.peak("active") > 0
        assert probe.series("cpu_queue").max() > 0

    def test_theta_cap_tracked_for_ms(self):
        trace = generate_trace(UCB, rate=300, duration=4.0, seed=3)
        cluster = build(policy=make_ms(4, 2, seed=2))
        cluster.submit_many(trace)
        probe = ClusterProbe(cluster, period=0.5, until=4.0).start()
        cluster.run(until=6.0)
        caps = probe.theta_cap
        assert np.isfinite(caps).all()
        assert (caps >= 0).all() and (caps <= 1).all()

    def test_theta_cap_nan_for_flat(self):
        cluster = build()
        probe = ClusterProbe(cluster, period=0.5, until=1.0).start()
        cluster.run(until=2.0)
        assert np.isnan(probe.theta_cap).all()

    def test_throughput_series(self):
        trace = generate_trace(UCB, rate=200, duration=4.0, seed=3)
        cluster = build()
        cluster.submit_many(trace)
        probe = ClusterProbe(cluster, period=1.0, until=4.0).start()
        cluster.run(until=6.0)
        thr = probe.throughput()
        assert thr.shape == (3,)
        assert thr.mean() == pytest.approx(200, rel=0.3)

    def test_completed_monotone(self):
        trace = generate_trace(UCB, rate=200, duration=3.0, seed=3)
        cluster = build()
        cluster.submit_many(trace)
        probe = ClusterProbe(cluster, period=0.5, until=3.0).start()
        cluster.run(until=5.0)
        done = probe.completed
        assert (np.diff(done) >= 0).all()

    def test_node_mean(self):
        cluster = build(p=2)
        probe = ClusterProbe(cluster, period=0.5, until=1.0).start()
        cluster.run(until=2.0)
        assert probe.node_mean("active").shape == (2,)

    def test_unknown_metric(self):
        cluster = build()
        probe = ClusterProbe(cluster, period=0.5, until=1.0).start()
        with pytest.raises(KeyError):
            probe.series("flux_capacitor")

    def test_double_start_rejected(self):
        cluster = build()
        probe = ClusterProbe(cluster, period=0.5, until=1.0).start()
        with pytest.raises(RuntimeError):
            probe.start()

    def test_bad_period(self):
        cluster = build()
        with pytest.raises(ValueError):
            ClusterProbe(cluster, period=0.0)
