"""Tests for the capacity-planning helpers."""

import pytest

from repro.analysis.planner import (
    ClusterPlan,
    headroom,
    max_sustainable_rate,
    ms_design_stretch,
    size_cluster,
)
from repro.core.queuing import Workload
from repro.core.theorem import optimal_masters


class TestSizeCluster:
    def test_meets_target(self):
        plan = size_cluster(2.0, lam=1000, a=0.4, r=1 / 40)
        assert plan.predicted_stretch <= 2.0
        assert plan.margin >= 0.0

    def test_minimality(self):
        plan = size_cluster(2.0, lam=1000, a=0.4, r=1 / 40)
        smaller = ms_design_stretch(1000, 0.4, 1200.0, 1 / 40, plan.p - 1)
        assert smaller is None or smaller > 2.0

    def test_tighter_target_needs_more_nodes(self):
        loose = size_cluster(3.0, lam=1000, a=0.4, r=1 / 40)
        tight = size_cluster(1.3, lam=1000, a=0.4, r=1 / 40)
        assert tight.p > loose.p

    def test_costlier_cgi_needs_more_nodes(self):
        cheap = size_cluster(2.0, lam=1000, a=0.4, r=1 / 20)
        costly = size_cluster(2.0, lam=1000, a=0.4, r=1 / 160)
        assert costly.p > cheap.p

    def test_design_consistent_with_theorem(self):
        plan = size_cluster(2.0, lam=800, a=0.3, r=1 / 40)
        w = Workload.from_ratios(lam=800, a=0.3, mu_h=1200.0, r=1 / 40,
                                 p=plan.p)
        assert optimal_masters(w).m == plan.m

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="no cluster"):
            size_cluster(1.01, lam=100000, a=1.0, r=1 / 160, max_nodes=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            size_cluster(0.5, lam=100, a=0.3)
        with pytest.raises(ValueError):
            size_cluster(2.0, lam=100, a=0.3, max_nodes=0)


class TestMaxSustainableRate:
    def test_rate_meets_target(self):
        rate = max_sustainable_rate(16, target_stretch=2.0, a=0.4,
                                    r=1 / 40)
        s = ms_design_stretch(rate, 0.4, 1200.0, 1 / 40, 16)
        assert s is not None and s <= 2.0 + 1e-6

    def test_slightly_higher_rate_misses_target(self):
        rate = max_sustainable_rate(16, target_stretch=2.0, a=0.4,
                                    r=1 / 40)
        s = ms_design_stretch(rate * 1.05, 0.4, 1200.0, 1 / 40, 16)
        assert s is None or s > 2.0

    def test_monotone_in_cluster_size(self):
        small = max_sustainable_rate(8, target_stretch=2.0, a=0.4,
                                     r=1 / 40)
        large = max_sustainable_rate(32, target_stretch=2.0, a=0.4,
                                     r=1 / 40)
        assert large > 2 * small

    def test_monotone_in_target(self):
        strict = max_sustainable_rate(16, target_stretch=1.3, a=0.4,
                                      r=1 / 40)
        loose = max_sustainable_rate(16, target_stretch=4.0, a=0.4,
                                     r=1 / 40)
        assert loose > strict

    def test_validation(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(0, target_stretch=2.0, a=0.4)
        with pytest.raises(ValueError):
            max_sustainable_rate(8, target_stretch=0.9, a=0.4)


class TestHeadroom:
    def test_consistency_with_max_rate(self):
        limit = max_sustainable_rate(16, target_stretch=2.0, a=0.4,
                                     r=1 / 40)
        assert headroom(limit / 2, p=16, target_stretch=2.0, a=0.4,
                        r=1 / 40) == pytest.approx(2.0, rel=0.01)

    def test_at_limit_is_one(self):
        limit = max_sustainable_rate(16, target_stretch=2.0, a=0.4,
                                     r=1 / 40)
        assert headroom(limit, p=16, target_stretch=2.0, a=0.4,
                        r=1 / 40) == pytest.approx(1.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            headroom(0.0, p=16, target_stretch=2.0, a=0.4)


class TestRoundTripWithSimulation:
    def test_plan_is_roughly_honest_in_simulation(self):
        """A plan with comfortable margin should hold up in the simulator
        (the model is an optimistic envelope, so allow 2x)."""
        from repro.core.policies import make_ms
        from repro.sim.config import paper_sim_config
        from repro.workload.generator import generate_trace
        from repro.workload.replay import pretrain_sampler, replay
        from repro.workload.traces import KSU

        plan = size_cluster(1.5, lam=600, a=KSU.arrival_ratio_a,
                            r=1 / 40)
        trace = generate_trace(KSU, rate=600, duration=6.0, r=1 / 40,
                               seed=1)
        policy = make_ms(plan.p, plan.m, pretrain_sampler(trace), seed=2)
        report = replay(paper_sim_config(plan.p, seed=3), policy,
                        trace).report
        assert report.overall.stretch <= 2.0 * plan.target_stretch
