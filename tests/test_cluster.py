"""Unit tests for cluster assembly, routing, and background jobs."""

import pytest

from repro.core.policies import FlatPolicy, Policy, Route, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from tests.conftest import make_cgi, make_static


class PinPolicy(Policy):
    """Test policy: pins every request to a fixed node."""

    def __init__(self, num_nodes, target, remote=False):
        super().__init__(num_nodes, range(num_nodes), seed=0)
        self.target = target
        self.remote = remote
        self.completions = []

    def route(self, request, view):
        return Route(self.target, remote=self.remote)

    def on_complete(self, request, response_time, on_master, node_id):
        self.completions.append((request.req_id, response_time, node_id))


class TestRouting:
    def test_requests_land_on_routed_node(self, small_config):
        cluster = Cluster(small_config, PinPolicy(4, target=2))
        cluster.submit(make_static(req_id=0, arrival=0.0))
        cluster.run(until=1.0)
        assert cluster.nodes[2].completed == 1
        assert all(n.completed == 0 for i, n in enumerate(cluster.nodes)
                   if i != 2)

    def test_remote_route_adds_latency(self, small_config):
        local = Cluster(small_config, PinPolicy(4, target=1, remote=False))
        local.submit(make_cgi(req_id=0, arrival=0.0, mem_pages=0))
        local.run(until=2.0)

        remote = Cluster(small_config, PinPolicy(4, target=1, remote=True))
        remote.submit(make_cgi(req_id=0, arrival=0.0, mem_pages=0))
        remote.run(until=2.0)

        t_local = local.policy.completions[0][1]
        t_remote = remote.policy.completions[0][1]
        assert t_remote == pytest.approx(
            t_local + small_config.network.remote_cgi_latency)

    def test_invalid_route_raises(self, small_config):
        cluster = Cluster(small_config, PinPolicy(4, target=9))
        cluster.submit(make_static(req_id=0, arrival=0.0))
        with pytest.raises(ValueError, match="invalid node"):
            cluster.run(until=1.0)

    def test_policy_size_mismatch_rejected(self, small_config):
        with pytest.raises(ValueError, match="sized for"):
            Cluster(small_config, FlatPolicy(8))

    def test_completion_feedback_reaches_policy(self, small_config):
        policy = PinPolicy(4, target=0)
        cluster = Cluster(small_config, policy)
        cluster.submit(make_static(req_id=5, arrival=0.0))
        cluster.run(until=1.0)
        assert len(policy.completions) == 1
        req_id, resp, node_id = policy.completions[0]
        assert req_id == 5 and node_id == 0 and resp > 0


class TestMetricsIntegration:
    def test_all_submitted_complete_under_light_load(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        reqs = [make_static(req_id=i, arrival=0.01 * i) for i in range(50)]
        assert cluster.submit_many(reqs) == 50
        cluster.run(until=5.0)
        assert len(cluster.metrics) == 50

    def test_replay_returns_report(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        reqs = [make_static(req_id=i, arrival=0.01 * i) for i in range(50)]
        report = cluster.replay(reqs)
        assert report.completed == 50
        assert report.overall.stretch >= 1.0

    def test_replay_empty_trace_rejected(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        with pytest.raises(ValueError):
            cluster.replay([])


class TestBackgroundJobs:
    def test_background_excluded_from_metrics(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        cluster.admit_background(make_cgi(req_id=100, arrival=0.0), 0)
        cluster.submit(make_static(req_id=0, arrival=0.0))
        cluster.run(until=5.0)
        assert len(cluster.metrics) == 1
        assert cluster.background_completed == 1

    def test_background_consumes_resources(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        cluster.admit_background(
            make_cgi(req_id=100, arrival=0.0, cpu=0.5, io=0.0,
                     mem_pages=0), 3)
        cluster.run(until=1.0)
        assert cluster.nodes[3].cpu.busy_time > 0.4

    def test_background_invalid_node_rejected(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        with pytest.raises(ValueError):
            cluster.admit_background(make_cgi(req_id=1), 17)


class TestView:
    def test_view_exposes_monitor_arrays(self, small_config):
        cluster = Cluster(small_config, FlatPolicy(4, seed=1))
        assert cluster.view.num_nodes == 4
        assert cluster.view.cpu_idle(0) == pytest.approx(1.0)
        assert cluster.view.disk_avail(3) == pytest.approx(1.0)
        assert cluster.view.cpu_idle_array().shape == (4,)

    def test_view_active_requests(self, small_config):
        cluster = Cluster(small_config, PinPolicy(4, target=1))
        cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=0.5))
        cluster.run(until=0.01)
        assert cluster.view.active_requests(1) == 1
        assert cluster.view.active_requests(0) == 0

    def test_deterministic_replay(self, small_config):
        def run():
            cluster = Cluster(paper_sim_config(num_nodes=4, seed=7),
                              make_ms(4, 2, seed=3))
            reqs = ([make_static(req_id=i, arrival=0.002 * i)
                     for i in range(100)]
                    + [make_cgi(req_id=100 + i, arrival=0.01 * i)
                       for i in range(20)])
            return cluster.replay(reqs)

        r1, r2 = run(), run()
        assert r1.overall.stretch == r2.overall.stretch
        assert r1.remote_dispatches == r2.remote_dispatches
