"""Unit tests for the CGI demand profiles."""

import numpy as np
import pytest

from repro.workload.cgi_profiles import (
    ADL_CATALOG,
    BALANCED,
    CGIProfile,
    PROFILES,
    WEBGLIMPSE_SEARCH,
    WEBSTONE_SPIN,
    get_profile,
)


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestPaperProfiles:
    def test_spin_is_cpu_bound(self):
        assert WEBSTONE_SPIN.w_cpu > 0.85

    def test_search_is_ninety_percent_cpu(self):
        assert WEBGLIMPSE_SEARCH.w_cpu == pytest.approx(0.90)

    def test_catalog_is_io_bound(self):
        assert ADL_CATALOG.w_cpu == pytest.approx(0.10)

    def test_balanced_is_half(self):
        assert BALANCED.w_cpu == pytest.approx(0.50)

    def test_registry_lookup(self):
        assert get_profile("spin") is WEBSTONE_SPIN
        assert get_profile("catalog") is ADL_CATALOG
        with pytest.raises(ValueError):
            get_profile("nope")

    def test_type_keys_unique(self):
        keys = {p.type_key for p in PROFILES.values()}
        assert len(keys) == len(PROFILES)


class TestSamplers:
    def test_w_samples_near_mean(self, rng):
        ws = WEBGLIMPSE_SEARCH.sample_w(20000, rng)
        assert ws.mean() == pytest.approx(0.90, abs=0.01)
        assert (ws >= 0.02).all() and (ws <= 0.98).all()

    def test_demand_mean_matches_request(self, rng):
        demands = ADL_CATALOG.sample_demand(0.033, 50000, rng)
        assert demands.mean() == pytest.approx(0.033, rel=0.05)
        assert (demands > 0).all()

    def test_demand_cv_respected(self, rng):
        demands = WEBGLIMPSE_SEARCH.sample_demand(1.0, 100000, rng)
        cv = demands.std() / demands.mean()
        assert cv == pytest.approx(WEBGLIMPSE_SEARCH.demand_cv, rel=0.1)

    def test_zero_cv_is_deterministic(self, rng):
        profile = CGIProfile(name="det", w_cpu=0.5, w_jitter=0.0,
                             demand_cv=0.0, mem_pages_mean=10,
                             mem_pages_sigma=0.0)
        demands = profile.sample_demand(0.5, 100, rng)
        assert (demands == 0.5).all()
        pages = profile.sample_mem_pages(100, rng)
        assert (pages == 10).all()

    def test_mem_pages_at_least_one(self, rng):
        profile = CGIProfile(name="tiny", w_cpu=0.5, w_jitter=0.0,
                             demand_cv=0.0, mem_pages_mean=1,
                             mem_pages_sigma=1.0)
        assert (profile.sample_mem_pages(1000, rng) >= 1).all()

    def test_mem_pages_mean(self, rng):
        pages = WEBSTONE_SPIN.sample_mem_pages(50000, rng)
        assert pages.mean() == pytest.approx(WEBSTONE_SPIN.mem_pages_mean,
                                             rel=0.1)

    def test_bad_demand_mean_rejected(self, rng):
        with pytest.raises(ValueError):
            BALANCED.sample_demand(0.0, 10, rng)


class TestValidation:
    def test_w_bounds(self):
        with pytest.raises(ValueError):
            CGIProfile(name="x", w_cpu=0.0, w_jitter=0.0, demand_cv=0.0,
                       mem_pages_mean=1, mem_pages_sigma=0.0)
        with pytest.raises(ValueError):
            CGIProfile(name="x", w_cpu=1.0, w_jitter=0.0, demand_cv=0.0,
                       mem_pages_mean=1, mem_pages_sigma=0.0)

    def test_negative_params(self):
        with pytest.raises(ValueError):
            CGIProfile(name="x", w_cpu=0.5, w_jitter=-0.1, demand_cv=0.0,
                       mem_pages_mean=1, mem_pages_sigma=0.0)
        with pytest.raises(ValueError):
            CGIProfile(name="x", w_cpu=0.5, w_jitter=0.0, demand_cv=0.0,
                       mem_pages_mean=0, mem_pages_sigma=0.0)
