"""Unit tests for the demand-paged virtual-memory manager."""

import numpy as np
import pytest

from repro.sim.config import MemoryConfig
from repro.sim.memory import MemoryManager
from repro.sim.process import CPU_BURST, SimProcess
from tests.conftest import make_cgi


def make_mm(**overrides):
    cfg = MemoryConfig(**overrides)
    cfg.validate()
    return MemoryManager(cfg, np.random.default_rng(0))


def proc(pages, rid=0):
    req = make_cgi(req_id=rid, mem_pages=pages)
    return SimProcess(req, 0, [(CPU_BURST, 0.01)], admit_time=0.0)


class TestAdmitRelease:
    def test_admit_grants_working_set(self):
        mm = make_mm(total_pages=1024, reserved_pages=0)
        p = proc(100)
        mm.admit(p)
        assert p.resident_pages == 100
        assert mm.free_pages == 924
        assert mm.used_pages == 100

    def test_release_returns_pages(self):
        mm = make_mm(total_pages=1024, reserved_pages=0)
        p = proc(100)
        mm.admit(p)
        mm.release(p)
        assert mm.free_pages == 1024
        assert p.resident_pages == 0

    def test_release_is_idempotent(self):
        mm = make_mm(total_pages=1024, reserved_pages=0)
        p = proc(100)
        mm.admit(p)
        mm.release(p)
        mm.release(p)
        assert mm.free_pages == 1024

    def test_zero_pages_needs_nothing(self):
        mm = make_mm()
        p = proc(0)
        assert mm.admit(p) == 0
        assert p.resident_pages == 0

    def test_paging_disabled_grants_nothing(self):
        mm = make_mm(enable_paging=False)
        p = proc(500)
        assert mm.admit(p) == 0
        assert mm.free_pages == mm.cfg.total_pages - mm.cfg.reserved_pages

    def test_coldstart_faults_proportional(self):
        mm = make_mm(total_pages=1024, reserved_pages=0,
                     coldstart_fraction=0.25)
        cold = mm.admit(proc(100))
        assert cold == 25
        assert mm.faults == 25


class TestStealing:
    def test_steal_from_largest_resident(self):
        mm = make_mm(total_pages=1000, reserved_pages=0,
                     refault_fraction=0.5)
        big = proc(600, rid=1)
        small = proc(200, rid=2)
        mm.admit(big)
        mm.admit(small)
        newcomer = proc(300, rid=3)
        mm.admit(newcomer)
        # Shortfall of 100 pages stolen from the biggest resident.
        assert big.resident_pages == 500
        assert newcomer.resident_pages == 300
        assert mm.steals == 100
        assert big.pending_fault_pages == 50

    def test_collect_refaults_drains(self):
        mm = make_mm(total_pages=1000, reserved_pages=0)
        victim = proc(800, rid=1)
        mm.admit(victim)
        mm.admit(proc(400, rid=2))
        pending = victim.pending_fault_pages
        assert pending > 0
        assert mm.collect_refaults(victim) == pending
        assert victim.pending_fault_pages == 0
        assert mm.collect_refaults(victim) == 0

    def test_oversubscription_grants_what_exists(self):
        mm = make_mm(total_pages=100, reserved_pages=0)
        p = proc(500)
        mm.admit(p)
        assert p.resident_pages == 100
        assert mm.free_pages == 0

    def test_pressure_range(self):
        mm = make_mm(total_pages=1000, reserved_pages=200)
        assert mm.pressure == pytest.approx(0.0)
        mm.admit(proc(400))
        assert mm.pressure == pytest.approx(0.5)


class TestFileCache:
    def test_miss_probability_grows_with_pressure(self):
        mm = make_mm(total_pages=1000, reserved_pages=0,
                     static_miss_base=0.02, static_miss_max=0.95)
        low = mm.static_miss_probability()
        mm.admit(proc(800))
        high = mm.static_miss_probability()
        assert low == pytest.approx(0.02)
        assert high > low
        assert high == pytest.approx(0.02 + 0.93 * 0.8)

    def test_miss_probability_bounded(self):
        mm = make_mm(total_pages=100, reserved_pages=0)
        mm.admit(proc(100))
        assert 0.0 <= mm.static_miss_probability() <= 0.95 + 1e-12


class TestConfigValidation:
    def test_bad_reserved(self):
        with pytest.raises(ValueError):
            MemoryConfig(total_pages=100, reserved_pages=100).validate()

    def test_bad_miss_ordering(self):
        with pytest.raises(ValueError):
            MemoryConfig(static_miss_base=0.9, static_miss_max=0.1).validate()

    def test_bad_coldstart(self):
        with pytest.raises(ValueError):
            MemoryConfig(coldstart_fraction=1.5).validate()
