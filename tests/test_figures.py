"""Tests for the plain-text chart renderers."""

import pytest

from repro.analysis.figures import bar_chart, grouped_bar_chart, line_plot


class TestBarChart:
    def test_renders_values(self):
        txt = bar_chart([("alpha", 2.0), ("b", 1.0)], width=10)
        lines = txt.splitlines()
        assert lines[0].startswith("alpha")
        assert "2.00" in lines[0]
        assert "1.00" in lines[1]

    def test_max_value_fills_width(self):
        txt = bar_chart([("a", 4.0), ("b", 2.0)], width=8)
        a_line, b_line = txt.splitlines()
        assert a_line.count("█") == 8
        assert b_line.count("█") == 4

    def test_title_and_unit(self):
        txt = bar_chart([("a", 1.0)], title="T", unit="%")
        assert txt.splitlines()[0] == "T"
        assert "1.00%" in txt

    def test_zero_values_ok(self):
        txt = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "0.00" in txt

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)


class TestGroupedBarChart:
    def test_groups_rendered(self):
        txt = grouped_bar_chart([
            ("UCB", [("MS", 10.0), ("flat", 20.0)]),
            ("KSU", [("MS", 5.0), ("flat", 8.0)]),
        ], unit="%")
        assert "UCB:" in txt and "KSU:" in txt
        assert txt.count("MS") == 2

    def test_negative_values_flagged(self):
        txt = grouped_bar_chart([("g", [("x", -3.0)])])
        assert "(negative)" in txt

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([])


class TestLinePlot:
    def test_plots_points_within_frame(self):
        txt = line_plot({"s": [(1, 1.0), (2, 2.0), (3, 3.0)]},
                        width=20, height=6)
        lines = txt.splitlines()
        body = [ln for ln in lines if ln.startswith("|")]
        assert len(body) == 6
        assert sum(ln.count("o") for ln in body) >= 2

    def test_legend_lists_series(self):
        txt = line_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o=a" in txt and "x=b" in txt

    def test_axis_annotations(self):
        txt = line_plot({"s": [(10, 2.0), (80, 5.0)]}, xlabel="1/r",
                        ylabel="improvement")
        assert "1/r: 10 .. 80" in txt
        assert "top=5.0" in txt

    def test_constant_series_ok(self):
        txt = line_plot({"s": [(1, 2.0), (2, 2.0)]})
        assert "o" in txt

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"s": []})
        with pytest.raises(ValueError):
            line_plot({"s": [(0, 0)]}, width=2)
