"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.workload.generator import generate_trace, trace_statistics
from repro.workload.request import RequestKind
from repro.workload.specweb import FILE_SIZES
from repro.workload.traces import ADL, KSU, UCB


class TestShape:
    def test_count_by_n(self):
        trace = generate_trace(UCB, rate=100, n=500, seed=0)
        assert len(trace) == 500

    def test_count_by_duration(self):
        trace = generate_trace(UCB, rate=100, duration=5.0, seed=0)
        assert len(trace) == 500

    def test_exactly_one_length_spec(self):
        with pytest.raises(ValueError):
            generate_trace(UCB, rate=100, seed=0)
        with pytest.raises(ValueError):
            generate_trace(UCB, rate=100, n=10, duration=1.0, seed=0)

    def test_request_ids_dense(self):
        trace = generate_trace(UCB, rate=100, n=100, seed=0)
        assert [q.req_id for q in trace] == list(range(100))

    def test_arrivals_increase(self):
        trace = generate_trace(UCB, rate=100, n=500, seed=0)
        times = [q.arrival_time for q in trace]
        assert times == sorted(times)

    def test_reproducible(self):
        a = generate_trace(KSU, rate=100, n=200, seed=5)
        b = generate_trace(KSU, rate=100, n=200, seed=5)
        assert all(x.demand == y.demand and x.kind == y.kind
                   for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = generate_trace(KSU, rate=100, n=200, seed=5)
        b = generate_trace(KSU, rate=100, n=200, seed=6)
        assert any(x.demand != y.demand for x, y in zip(a, b))


class TestStatistics:
    def test_cgi_fraction_matches_spec(self):
        trace = generate_trace(ADL, rate=100, n=20000, seed=1)
        stats = trace_statistics(trace)
        assert stats["pct_cgi"] == pytest.approx(ADL.pct_cgi, abs=1.5)

    def test_mean_interval_matches_rate(self):
        trace = generate_trace(UCB, rate=250, n=20000, seed=1)
        stats = trace_statistics(trace)
        assert stats["mean_interval"] == pytest.approx(1 / 250, rel=0.05)

    def test_html_sizes_near_spec(self):
        trace = generate_trace(UCB, rate=100, n=30000, seed=1)
        stats = trace_statistics(trace)
        assert stats["html_size"] == pytest.approx(UCB.html_size, rel=0.15)

    def test_static_demand_calibrated(self):
        """Mean static demand is pinned to 1/mu_h."""
        trace = generate_trace(UCB, rate=100, n=20000, mu_h=1200, seed=1)
        statics = [q for q in trace if q.kind is RequestKind.STATIC]
        mean = np.mean([q.demand for q in statics])
        assert mean == pytest.approx(1 / 1200, rel=1e-6)

    def test_dynamic_demand_scales_with_r(self):
        for r in (1 / 20, 1 / 80):
            trace = generate_trace(ADL, rate=100, n=30000, mu_h=1200, r=r,
                                   seed=1)
            dyn = [q.demand for q in trace if q.is_dynamic]
            assert np.mean(dyn) == pytest.approx(1 / (1200 * r), rel=0.1)

    def test_static_sizes_are_specweb_files(self):
        trace = generate_trace(KSU, rate=100, n=2000, seed=1)
        sizes = {q.size_bytes for q in trace
                 if q.kind is RequestKind.STATIC}
        assert sizes <= set(FILE_SIZES)

    def test_statics_are_pure_cpu(self):
        trace = generate_trace(KSU, rate=100, n=2000, seed=1)
        for q in trace:
            if q.kind is RequestKind.STATIC:
                assert q.io_demand == 0.0
                assert q.cpu_demand > 0.0

    def test_cgi_split_follows_profiles(self):
        trace = generate_trace(ADL, rate=100, n=30000, seed=1)
        catalog = [q for q in trace if q.type_key == "cgi:catalog"]
        fracs = np.array([q.cpu_fraction for q in catalog])
        assert fracs.mean() == pytest.approx(0.10, abs=0.03)

    def test_cgi_mix_ratio(self):
        trace = generate_trace(ADL, rate=100, n=40000, seed=1)
        dyn = [q for q in trace if q.is_dynamic]
        catalog_share = np.mean([q.type_key == "cgi:catalog" for q in dyn])
        assert catalog_share == pytest.approx(0.85, abs=0.03)

    def test_mem_pages_positive_for_cgi(self):
        trace = generate_trace(KSU, rate=100, n=2000, seed=1)
        assert all(q.mem_pages >= 1 for q in trace if q.is_dynamic)


class TestValidation:
    def test_bad_mu_h(self):
        with pytest.raises(ValueError):
            generate_trace(UCB, rate=100, n=10, mu_h=0)

    def test_bad_r(self):
        with pytest.raises(ValueError):
            generate_trace(UCB, rate=100, n=10, r=0)

    def test_statistics_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics([])


class TestArrivalKinds:
    def test_mmpp_traces_are_burstier(self):
        import numpy as np

        pois = generate_trace(UCB, rate=300, n=20000, seed=4,
                              arrival="poisson")
        mmpp = generate_trace(UCB, rate=300, n=20000, seed=4,
                              arrival="mmpp2")

        def cv2(trace):
            gaps = np.diff([q.arrival_time for q in trace])
            return gaps.var() / gaps.mean() ** 2

        assert cv2(mmpp) > cv2(pois) * 1.1

    def test_uniform_arrivals(self):
        import numpy as np

        trace = generate_trace(UCB, rate=100, n=500, seed=4,
                               arrival="uniform")
        gaps = np.diff([q.arrival_time for q in trace])
        assert np.allclose(gaps, 0.01)

    def test_start_offset(self):
        trace = generate_trace(UCB, rate=100, n=50, seed=4, start=7.5)
        assert min(q.arrival_time for q in trace) >= 7.5
