"""Property-based check of the engine's two-tier ladder queue.

The engine replaced a textbook binary heap with a sorted-run + insertion
-buffer ladder, a handle-free tuple fast path, and Event pooling.  These
tests pit it against an obviously-correct ``heapq`` reference model: both
sides replay the same randomly generated program of ``call_at`` /
``call_at_many`` / ``schedule_at`` calls — including callbacks that
schedule more work and cancel pending handles mid-run — and must fire
callbacks in exactly the same order, FIFO within equal timestamps.

Times are drawn from a coarse 0.25s grid so timestamp ties (the
tie-break path) occur constantly.
"""

import heapq
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

#: Coarse time grid => frequent exact ties.
_TIMES = st.integers(min_value=0, max_value=12).map(lambda k: k * 0.25)
_DELAYS = st.integers(min_value=0, max_value=8).map(lambda k: k * 0.25)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("call_at"), _TIMES),
        st.tuples(st.just("call_at_many"),
                  st.lists(_TIMES, min_size=0, max_size=4)),
        st.tuples(st.just("schedule_at"), _TIMES),
        st.tuples(st.just("chain"), _TIMES,
                  st.lists(_DELAYS, min_size=1, max_size=3)),
    ),
    max_size=30,
)


class _HeapModel:
    """Reference semantics: one binary heap, (time, seq) ordering, lazy
    cancellation on pop — exactly what the seed kernel did."""

    def __init__(self):
        self.heap = []
        self.seq = itertools.count()
        self.cancelled = set()

    def push(self, t, entry_id, payload):
        heapq.heappush(self.heap, (t, next(self.seq), entry_id, payload))

    def run(self):
        """Pop everything; returns the fired tags in order."""
        fired = []
        while self.heap:
            t, _seq, entry_id, payload = heapq.heappop(self.heap)
            if entry_id in self.cancelled:
                continue
            tag, children, cancel_entry = payload
            fired.append(tag)
            if cancel_entry is not None:
                self.cancelled.add(cancel_entry)
            for dt, child_tag in children:
                self.push(t + dt, child_tag, (child_tag, (), None))
        return fired


@settings(deadline=None, max_examples=150)
@given(ops=_OPS, data=st.data())
def test_ladder_queue_matches_heap_model(ops, data):
    eng = Engine()
    model = _HeapModel()
    fired = []
    tags = itertools.count()

    # Handles eligible for cancellation: (engine_handle, time, setup_seq,
    # model_entry_id).  setup_seq mirrors the engine's internal sequence
    # counter so "does this handle fire after that chain?" is decidable
    # statically, which keeps every cancel() within the pooling contract
    # (never cancel a handle whose callback already ran).
    handles = []
    setup_seq = itertools.count()

    def fire(tag):
        fired.append(tag)

    def fire_chain(tag, dts_tags, victim):
        fired.append(tag)
        if victim is not None:
            victim.cancel()
        for dt, child_tag in dts_tags:
            eng.call_at(eng.now + dt, fire, child_tag)

    for op in ops:
        if op[0] == "call_at":
            _, t = op
            tag = next(tags)
            eng.call_at(t, fire, tag)
            model.push(t, tag, (tag, (), None))
            next(setup_seq)
        elif op[0] == "call_at_many":
            _, ts = op
            batch = []
            for t in ts:
                tag = next(tags)
                batch.append((t, fire, (tag,)))
                model.push(t, tag, (tag, (), None))
                next(setup_seq)
            eng.call_at_many(batch)
        elif op[0] == "schedule_at":
            _, t = op
            tag = next(tags)
            handle = eng.schedule_at(t, fire, tag)
            model.push(t, tag, (tag, (), None))
            handles.append((handle, t, next(setup_seq), tag))
        else:  # chain
            _, t, dts = op
            tag = next(tags)
            my_seq = next(setup_seq)
            dts_tags = tuple((dt, next(tags)) for dt in dts)
            # Maybe cancel a handle that provably fires after this chain.
            victims = [h for h in handles
                       if (h[1], h[2]) > (t, my_seq)]
            victim = (data.draw(st.sampled_from(victims),
                                label="victim") if victims
                      and data.draw(st.booleans(), label="do_cancel")
                      else None)
            eng.call_at(t, fire_chain, tag, dts_tags,
                        None if victim is None else victim[0])
            model.push(t, tag, (tag, dts_tags,
                                None if victim is None else victim[3]))

    # Some handles are cancelled up front too (before anything fires).
    if handles:
        for handle, _t, _s, entry_id in data.draw(
                st.lists(st.sampled_from(handles), max_size=3, unique=True),
                label="pre_cancel"):
            handle.cancel()
            handle.cancel()  # cancellation is idempotent
            model.cancelled.add(entry_id)

    eng.run()
    assert fired == model.run()


@settings(deadline=None, max_examples=60)
@given(ts=st.lists(_TIMES, min_size=2, max_size=12))
def test_equal_times_fire_in_submission_order(ts):
    """FIFO tie-break: ties must fire in exact submission order even when
    submitted through different entry points."""
    eng = Engine()
    fired = []
    expected = sorted(range(len(ts)), key=lambda i: (ts[i], i))
    for i, t in enumerate(ts):
        if i % 3 == 0:
            eng.call_at(t, fired.append, i)
        elif i % 3 == 1:
            eng.schedule_at(t, fired.append, i)
        else:
            eng.call_at_many([(t, fired.append, (i,))])
    eng.run()
    assert fired == expected
