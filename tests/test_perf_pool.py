"""The parallel experiment runner: determinism, crash and exception
isolation, and ordering guarantees of :mod:`repro.perf.pool`.

The determinism tests are the contract the whole perf subsystem rests on:
``--jobs N`` must be a pure wall-clock knob, never a results knob.
"""

from __future__ import annotations

import dataclasses
import math
import os

import pytest

from repro.analysis.sweep import BakeoffSpec, run_bakeoff_grid
from repro.perf.pool import TaskResult, run_tasks, run_values


def _double(x):
    return 2 * x


def _flaky(x):
    if x == 2:
        raise ValueError("boom on two")
    return 10 * x


def _crashy(x):
    if x == -1:
        os._exit(3)
    return x * x


# -- basic contract ----------------------------------------------------------


def test_inline_path_preserves_order_and_values():
    results = run_tasks(_double, [3, 1, 4, 1, 5], jobs=1)
    assert [r.index for r in results] == [0, 1, 2, 3, 4]
    assert [r.value for r in results] == [6, 2, 8, 2, 10]
    assert all(r.ok for r in results)


def test_parallel_path_preserves_order_and_values():
    results = run_tasks(_double, list(range(10)), jobs=3)
    assert [r.index for r in results] == list(range(10))
    assert [r.value for r in results] == [2 * i for i in range(10)]


def test_chunked_assignment_preserves_order():
    results = run_tasks(_double, list(range(11)), jobs=2, chunk_size=4)
    assert [r.value for r in results] == [2 * i for i in range(11)]


def test_empty_and_singleton_payloads():
    assert run_tasks(_double, [], jobs=4) == []
    (only,) = run_tasks(_double, [21], jobs=4)
    assert only.value == 42


def test_run_values_unwraps():
    assert run_values(_double, [1, 2], jobs=1) == [2, 4]
    with pytest.raises(RuntimeError, match="boom on two"):
        run_values(_flaky, [1, 2, 3], jobs=1)


# -- failure isolation -------------------------------------------------------


def test_exception_fails_only_its_task():
    results = run_tasks(_flaky, [1, 2, 3, 4], jobs=2)
    assert [r.ok for r in results] == [True, False, True, True]
    assert "boom on two" in results[1].error
    assert [r.value for r in results if r.ok] == [10, 30, 40]
    with pytest.raises(RuntimeError, match="task 1 failed"):
        results[1].unwrap()


def test_worker_crash_fails_only_its_task():
    """A worker dying mid-task (os._exit, OOM-kill, segfault) must fail
    that one payload and leave the rest of the run intact."""
    results = run_tasks(_crashy, [2, -1, 3, 4, 5], jobs=2)
    assert [r.ok for r in results] == [True, False, True, True, True]
    assert "worker process died" in results[1].error
    assert "exitcode=3" in results[1].error
    assert [r.value for r in results if r.ok] == [4, 9, 16, 25]


def test_every_worker_crashing_still_terminates():
    results = run_tasks(_crashy, [-1, -1, -1], jobs=2)
    assert all(not r.ok for r in results)
    assert all("worker process died" in r.error for r in results)


# -- determinism: jobs is a wall-clock knob, not a results knob --------------


def _assert_identical(a, b, path=""):
    """Recursive equality that treats NaN == NaN (empty metric classes
    hold NaN percentiles)."""
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b), path
        for f in dataclasses.fields(a):
            _assert_identical(getattr(a, f.name), getattr(b, f.name),
                              f"{path}.{f.name}")
    elif isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for k in a:
            _assert_identical(a[k], b[k], f"{path}[{k!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_identical(x, y, f"{path}[{i}]")
    elif isinstance(a, float):
        assert (a == b) or (math.isnan(a) and math.isnan(b)), \
            f"{path}: {a!r} != {b!r}"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


@pytest.mark.integration
def test_grid_results_identical_across_job_counts():
    points = [
        BakeoffSpec(spec_name="UCB", lam=260.0, r=1.0 / 40, p=4,
                    duration=1.5, seed=7, policies=("MS", "Flat")),
        BakeoffSpec(spec_name="KSU", lam=220.0, r=1.0 / 20, p=4,
                    duration=1.5, seed=19, policies=("MS", "Flat")),
    ]
    serial = run_bakeoff_grid(points, jobs=1)
    fanned = run_bakeoff_grid(points, jobs=4)
    chunked = run_bakeoff_grid(points, jobs=2, chunk_size=2)
    assert len(serial) == len(fanned) == len(chunked) == len(points)
    for s, f, c in zip(serial, fanned, chunked):
        assert s.m == f.m == c.m
        _assert_identical(s.reports, f.reports, "jobs4")
        _assert_identical(s.reports, c.reports, "chunked")


def test_derive_seed_is_deterministic_and_distinct():
    base = BakeoffSpec(spec_name="UCB", lam=100.0, r=0.05, p=4,
                       duration=1.0, seed=5)
    seeds = [base.derive_seed(i).seed for i in range(4)]
    assert seeds == [base.derive_seed(i).seed for i in range(4)]
    assert len(set(seeds)) == 4
    assert base.seed == 5  # replace(), not mutation


def test_task_result_repr_fields():
    r = TaskResult(index=3, value="x")
    assert r.ok and r.unwrap() == "x"
