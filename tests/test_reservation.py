"""Unit tests for the adaptive reservation controller."""

import pytest

from repro.core.reservation import ReservationConfig, ReservationController
from repro.core.theorem import reservation_ratio
from repro.workload.request import RequestKind


def feed(ctrl, now, n_static, n_dynamic):
    for _ in range(n_static):
        ctrl.observe_arrival(RequestKind.STATIC, now)
    for _ in range(n_dynamic):
        ctrl.observe_arrival(RequestKind.DYNAMIC, now)


class TestGate:
    def test_initial_cap_admits(self):
        ctrl = ReservationController(4, 32,
                                     ReservationConfig(theta_init=0.3))
        assert ctrl.admit_to_master()

    def test_zero_cap_blocks(self):
        ctrl = ReservationController(4, 32,
                                     ReservationConfig(theta_init=0.0))
        assert not ctrl.admit_to_master()

    def test_fraction_tracking_closes_gate(self):
        cfg = ReservationConfig(theta_init=0.2, smoothing=0.5)
        ctrl = ReservationController(4, 32, cfg)
        for _ in range(20):
            ctrl.record_decision(True)
        assert ctrl.master_fraction > 0.9
        assert not ctrl.admit_to_master()

    def test_gate_reopens_as_fraction_decays(self):
        cfg = ReservationConfig(theta_init=0.2, smoothing=0.5)
        ctrl = ReservationController(4, 32, cfg)
        for _ in range(10):
            ctrl.record_decision(True)
        for _ in range(10):
            ctrl.record_decision(False)
        assert ctrl.admit_to_master()


class TestEstimation:
    def test_a_estimated_from_arrivals(self):
        cfg = ReservationConfig(update_period=1.0, min_arrivals=10,
                                smoothing=1.0)
        ctrl = ReservationController(4, 32, cfg)
        feed(ctrl, 0.5, n_static=30, n_dynamic=15)
        ctrl.observe_arrival(RequestKind.STATIC, 1.5)  # crosses the period
        assert ctrl.a_estimate == pytest.approx(15 / 31, abs=0.05)

    def test_r_estimated_from_response_ratio(self):
        ctrl = ReservationController(4, 32, ReservationConfig(smoothing=1.0))
        ctrl.observe_response(RequestKind.STATIC, 0.001)
        ctrl.observe_response(RequestKind.DYNAMIC, 0.040)
        assert ctrl.r_estimate == pytest.approx(0.025)

    def test_r_capped_at_one(self):
        ctrl = ReservationController(4, 32, ReservationConfig(smoothing=1.0))
        ctrl.observe_response(RequestKind.STATIC, 0.080)
        ctrl.observe_response(RequestKind.DYNAMIC, 0.040)
        assert ctrl.r_estimate == 1.0

    def test_no_estimate_without_both_classes(self):
        ctrl = ReservationController(4, 32)
        ctrl.observe_response(RequestKind.STATIC, 0.001)
        assert ctrl.r_estimate is None

    def test_cap_tracks_theorem_formula(self):
        cfg = ReservationConfig(update_period=1.0, min_arrivals=10,
                                smoothing=1.0)
        ctrl = ReservationController(4, 32, cfg)
        ctrl.observe_response(RequestKind.STATIC, 0.001)
        ctrl.observe_response(RequestKind.DYNAMIC, 0.040)
        feed(ctrl, 0.5, n_static=20, n_dynamic=10)
        ctrl.observe_arrival(RequestKind.STATIC, 1.5)
        expected = reservation_ratio(ctrl.a_estimate, ctrl.r_estimate, 4, 32)
        assert ctrl.theta_cap == pytest.approx(expected)
        assert ctrl.updates >= 1


class TestSelfStabilization:
    def _converge(self, theta_init):
        """Drive the controller with a stationary synthetic workload."""
        cfg = ReservationConfig(theta_init=theta_init, update_period=1.0,
                                min_arrivals=10, smoothing=0.5)
        ctrl = ReservationController(4, 32, cfg)
        now = 0.0
        for _ in range(50):
            now += 1.0
            ctrl.observe_response(RequestKind.STATIC, 0.001)
            ctrl.observe_response(RequestKind.DYNAMIC, 0.040)
            feed(ctrl, now - 0.5, n_static=20, n_dynamic=10)
            ctrl.observe_arrival(RequestKind.STATIC, now + 0.01)
        return ctrl.theta_cap

    def test_converges_from_extremes(self):
        lo = self._converge(0.0)
        hi = self._converge(1.0)
        assert lo == pytest.approx(hi, abs=1e-6)

    def test_converged_value_is_formula(self):
        cap = self._converge(0.5)
        assert cap == pytest.approx(reservation_ratio(0.5, 0.025, 4, 32),
                                    abs=0.01)


class TestValidation:
    def test_bad_m(self):
        with pytest.raises(ValueError):
            ReservationController(0, 32)
        with pytest.raises(ValueError):
            ReservationController(33, 32)

    def test_bad_config(self):
        with pytest.raises(ValueError):
            ReservationConfig(update_period=0).validate()
        with pytest.raises(ValueError):
            ReservationConfig(smoothing=0).validate()
        with pytest.raises(ValueError):
            ReservationConfig(theta_init=2).validate()


class TestExternalCap:
    """With ``external_cap`` set (control plane owns theta'_2), the
    local feedback loop keeps estimating but stops actuating."""

    def test_update_frozen_under_external_cap(self):
        cfg = ReservationConfig(theta_init=0.3, update_period=1.0)
        ctrl = ReservationController(4, 32, cfg)
        ctrl.external_cap = True
        for t in range(1, 6):
            ctrl.observe_response(RequestKind.STATIC, 0.01)
            ctrl.observe_response(RequestKind.DYNAMIC, 0.40)
            feed(ctrl, float(t), n_static=40, n_dynamic=20)
        assert ctrl.theta_cap == 0.3     # exactly as externally set
        assert ctrl.updates == 0

    def test_estimation_continues(self):
        cfg = ReservationConfig(theta_init=0.3, update_period=1.0,
                                smoothing=1.0)
        ctrl = ReservationController(4, 32, cfg)
        ctrl.external_cap = True
        feed(ctrl, 1.0, n_static=40, n_dynamic=20)
        # The next window boundary folds the accumulated counts in.
        feed(ctrl, 2.0, n_static=1, n_dynamic=0)
        assert ctrl.a_estimate == pytest.approx(20 / 41)

    def test_release_resumes_actuation(self):
        cfg = ReservationConfig(theta_init=0.9, update_period=1.0)
        ctrl = ReservationController(4, 32, cfg)
        ctrl.external_cap = True
        ctrl.observe_response(RequestKind.STATIC, 0.01)
        ctrl.observe_response(RequestKind.DYNAMIC, 0.40)
        feed(ctrl, 1.0, n_static=40, n_dynamic=20)
        assert ctrl.updates == 0
        ctrl.external_cap = False
        feed(ctrl, 2.0, n_static=40, n_dynamic=20)
        assert ctrl.updates == 1
        assert ctrl.theta_cap != 0.9
