"""Unit tests for the reconciliation loop: hysteresis, cooldown, clamps,
dry-run, and the CONTROL span log — driven through a fake adapter so
every substrate behaviour is scripted."""

import pytest

from repro.control import (
    DEMOTE,
    PROMOTE,
    RETUNE_THETA,
    SET_W,
    ControlConfig,
    Controller,
    ControlLog,
    EstimatorConfig,
)
from repro.control.estimator import WorkloadEstimator
from repro.core.queuing import Workload
from repro.core.theorem import optimal_masters
from repro.obs import Tracer
from repro.obs.trace import CONTROL

DS = 1.0 / 1200.0
DD = 1.0 / 30.0


class FakeAdapter:
    """Scripted substrate: time, completions and role state by hand."""

    def __init__(self, p=8, masters=(0, 1), theta=0.5, w=0.5):
        self.t = 0.0
        self.p = p
        self.masters = sorted(masters)
        self.theta = theta
        self.w = w
        self.owned = False
        self.pending = []            # (kind, cpu, io) fed at next poll
        self.apply_log = []

    # observation --------------------------------------------------------------
    @property
    def now(self):
        return self.t

    @property
    def num_nodes(self):
        return self.p

    def master_ids(self):
        return tuple(self.masters)

    def poll(self, estimator: WorkloadEstimator):
        n = len(self.pending)
        for kind, cpu, io in self.pending:
            estimator.observe(kind, cpu, io)
        self.pending = []
        return n

    def theta_cap(self):
        return self.theta

    def rsrc_w(self):
        return self.w

    def own_cap(self):
        self.owned = True

    # role candidates ----------------------------------------------------------
    def promote_candidate(self):
        for i in range(self.p):
            if i not in self.masters:
                return i
        return None

    def demote_candidate(self, min_masters):
        if len(self.masters) <= min_masters:
            return None
        return self.masters[-1]

    # actuation ----------------------------------------------------------------
    def apply(self, action):
        self.apply_log.append(action)
        if action.kind == RETUNE_THETA:
            self.theta = action.value
        elif action.kind == SET_W:
            self.w = action.value
        elif action.kind == PROMOTE:
            self.masters = sorted(self.masters + [action.node_id])
        elif action.kind == DEMOTE:
            self.masters = [i for i in self.masters
                            if i != action.node_id]
        return True

    # scripting ----------------------------------------------------------------
    def feed(self, n_static, n_dynamic, w=0.6, ds=DS, dd=DD):
        self.pending += [(0, ds, 0.0)] * n_static
        self.pending += [(1, w * dd, (1.0 - w) * dd)] * n_dynamic


def fast_cfg(**kwargs):
    kwargs.setdefault("period", 1.0)
    kwargs.setdefault("cooldown", 0.0)
    kwargs.setdefault("confirm_ticks", 1)
    kwargs.setdefault("estimator",
                      EstimatorConfig(min_class_samples=5, warm_windows=1))
    return ControlConfig(**kwargs)


def tick(controller, adapter, dt=1.0):
    adapter.t += dt
    return controller.tick()


#: A feed whose Theorem-1 optimum is known: static-heavy at high rate,
#: the drift benchmark's phase-1 mix (a ~ 0.05, r = 1/40, lam = 2000/s
#: on p = 8 -> m* = 4).
PROMOTE_FEED = dict(n_static=1900, n_dynamic=100)


def expected_m(n_static, n_dynamic, p=8, rate=None):
    a = n_dynamic / n_static
    lam = rate if rate is not None else n_static + n_dynamic
    w = Workload.from_ratios(lam=lam, a=a, mu_h=1200.0, r=1 / 40, p=p)
    return optimal_masters(w).m


class TestColdAndGuards:
    def test_cold_window_never_actuates(self):
        ad = FakeAdapter()
        ctl = Controller(ad, fast_cfg())
        for _ in range(3):
            out = tick(ctl, ad)          # nothing fed: estimator cold
            assert out == []
        assert ad.apply_log == []
        assert ctl.applied == []

    def test_attach_takes_cap_ownership(self):
        ad = FakeAdapter()
        Controller(ad, fast_cfg()).attach()
        assert ad.owned

    def test_dry_run_proposes_but_never_touches(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg(dry_run=True))
        ctl.attach()
        assert not ad.owned             # shadow mode: cap stays local
        for _ in range(4):
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
        assert ctl.proposed             # it wanted to act...
        assert ctl.applied == []        # ...but touched nothing
        assert ad.apply_log == []
        assert ad.masters == [0, 1]


class TestReconciliation:
    def test_promotes_toward_theorem_target(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg())
        target = expected_m(**PROMOTE_FEED)
        assert target > 2               # the scenario really wants more
        for _ in range(8):
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
        assert len(ad.masters) == target
        assert ctl.last_design is not None
        assert ctl.last_design.m == target

    def test_one_role_step_per_tick(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg())
        ad.feed(**PROMOTE_FEED)
        out = tick(ctl, ad)
        promotes = [a for a in out if a.kind == PROMOTE]
        assert len(promotes) == 1       # never jumps multiple nodes

    def test_demotes_down_to_target(self):
        ad = FakeAdapter(masters=(0, 1, 2, 3, 4, 5))
        ctl = Controller(ad, fast_cfg())
        # Low-rate mix: the optimum is fewer masters than current.
        feed = dict(n_static=90, n_dynamic=30)
        target = expected_m(**feed)
        assert target < 6
        for _ in range(10):
            ad.feed(**feed)
            tick(ctl, ad)
        assert len(ad.masters) == target

    def test_retune_follows_role_change(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg())
        ad.feed(**PROMOTE_FEED)
        out = tick(ctl, ad)
        kinds = [a.kind for a in out]
        assert PROMOTE in kinds
        # The cap formula depends on m: a role step forces the retune.
        assert kinds.index(RETUNE_THETA) > kinds.index(PROMOTE)

    def test_set_w_on_split_drift(self):
        ad = FakeAdapter(masters=(0, 1), w=0.2)
        ctl = Controller(ad, fast_cfg(max_masters=2))
        ad.feed(n_static=90, n_dynamic=30, w=0.7)
        tick(ctl, ad)
        assert ad.w == pytest.approx(0.7)

    def test_small_w_drift_suppressed(self):
        ad = FakeAdapter(masters=(0, 1), w=0.62)
        ctl = Controller(ad, fast_cfg(max_masters=2, w_tolerance=0.05))
        ad.feed(n_static=90, n_dynamic=30, w=0.6)
        tick(ctl, ad)
        assert ad.w == 0.62             # |0.60 - 0.62| < tolerance


class TestStability:
    def test_hysteresis_needs_consecutive_confirmation(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg(confirm_ticks=3))
        for i in range(2):
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
            assert ad.masters == [0, 1], f"acted after {i + 1} ticks"
        ad.feed(**PROMOTE_FEED)
        tick(ctl, ad)                    # third consecutive tick: act
        assert len(ad.masters) == 3

    def test_cooldown_spaces_role_steps(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg(cooldown=5.0))
        for _ in range(4):               # ticks at t=1..4: one promote max
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
        assert len(ad.masters) == 3
        for _ in range(3):               # t=5..7: cooldown expired at 6
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
        assert len(ad.masters) == 4

    def test_max_masters_clamp(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg(max_masters=3))
        for _ in range(8):
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
        assert len(ad.masters) == 3      # wanted 4, clamped

    def test_never_promotes_to_all_masters(self):
        """Default upper clamp is p-1: the reservation gate needs slaves."""
        ad = FakeAdapter(p=3, masters=(0, 1))
        ctl = Controller(ad, fast_cfg())
        for _ in range(8):
            ad.feed(**PROMOTE_FEED)
            tick(ctl, ad)
        assert len(ad.masters) == 2

    def test_min_masters_floor(self):
        ad = FakeAdapter(masters=(0, 1, 2))
        ctl = Controller(ad, fast_cfg(min_masters=2))
        # CGI-heavy low-rate mix: the unconstrained optimum is m = 1.
        feed = dict(n_static=30, n_dynamic=90)
        assert expected_m(**feed) < 2
        for _ in range(8):
            ad.feed(**feed)
            tick(ctl, ad)
        assert len(ad.masters) == 2


class TestControlLog:
    def test_spans_cover_the_loop(self):
        ad = FakeAdapter(masters=(0, 1))
        tracer = Tracer(ad)              # any .now-bearing clock works
        ctl = Controller(ad, fast_cfg(), ControlLog(tracer))
        ctl.attach()
        ad.feed(**PROMOTE_FEED)
        tick(ctl, ad)
        tags = [span[4][0] for span in tracer.spans
                if span[1] == CONTROL]
        assert "attach" in tags
        assert "roles" in tags
        assert "estimate" in tags
        assert "decision" in tags
        assert "action" in tags

    def test_roles_span_follows_applied_step(self):
        ad = FakeAdapter(masters=(0, 1))
        tracer = Tracer(ad)
        ctl = Controller(ad, fast_cfg(), ControlLog(tracer))
        ad.feed(**PROMOTE_FEED)
        tick(ctl, ad)
        control = [s for s in tracer.spans if s[1] == CONTROL]
        role_spans = [s for s in control if s[4][0] == "roles"]
        # attach() logged the initial roles; the applied promote logged
        # the new set.
        assert len(role_spans) == 2
        assert len(role_spans[-1][4][1]) == 3

    def test_no_tracer_is_silent_noop(self):
        ad = FakeAdapter(masters=(0, 1))
        ctl = Controller(ad, fast_cfg(), ControlLog(None))
        ad.feed(**PROMOTE_FEED)
        tick(ctl, ad)                    # must not raise
        assert ctl.applied
