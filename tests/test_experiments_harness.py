"""Tiny-scale integration tests of the experiment harnesses.

The benchmarks run these at real scale; here they run at toy scale so the
code paths (grid construction, aggregation, chart rendering) stay covered
by the fast suite.
"""

import pytest

from repro.analysis.experiments import (
    FIG5_CONFIGS,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_table3,
)
from repro.testbed.emulator import TestbedConfig
from repro.testbed.noise import NoiseConfig

pytestmark = pytest.mark.integration


class TestFig3Harness:
    def test_render_includes_table_and_plot(self):
        out = run_fig3().render()
        assert "Figure 3" in out
        assert "legend:" in out
        assert "MS>flat %" in out

    def test_series_accessor(self):
        result = run_fig3(a_values=(0.25,), inv_r_values=(10, 20))
        series = result.series(0.25, "flat")
        assert [x for x, _ in series] == [10, 20]
        with pytest.raises(KeyError):
            result.series(0.25, "bogus")


class TestFig4Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(p_values=(4,), inv_r_values=(40,),
                        utilizations=(0.6,), base_duration=24.0, seed=3)

    def test_grid_size(self, result):
        assert len(result.results) == 3  # three traces

    def test_improvements_accessors(self, result):
        assert len(result.improvements("Flat")) == 3
        assert isinstance(result.max_improvement("MS-nr"), float)

    def test_render_has_table_and_bars(self, result):
        out = result.render()
        assert "Figure 4" in out
        assert "vs MS-nr" in out  # grouped bar chart section

    def test_utilizations_recorded(self, result):
        assert all(u == 0.6 for u in result.utilizations.values())


class TestFig5Harness:
    def test_runs_and_renders(self):
        configs = {4: (("UCB", 0.6, 40), ("ADL", 0.6, 40))}
        result = run_fig5(p_values=(4,), duration=16.0, configs=configs,
                          seed=5)
        assert len(result.rows) == 2
        out = result.render()
        assert "Figure 5" in out
        assert "fixed vs adaptive" in out
        assert result.m_fixed[4] >= 1


class TestTableHarnesses:
    def test_table1_rows(self):
        result = run_table1(n=1500)
        assert {r.name for r in result.rows} == {"DEC", "UCB", "KSU",
                                                 "ADL"}

    def test_table2_respects_grid(self):
        result = run_table2(p_values=(4,), inv_r_values=(40,),
                            utilizations=(0.6,))
        assert len(result.rows) == 3
        assert all(p == 4 for _, p, _, _, _ in result.rows)

    def test_table3_tiny(self):
        tb = TestbedConfig(noise=NoiseConfig(bg_rate=0.5, seed=1))
        result = run_table3(rates=(30.0,), duration=8.0,
                            comparisons=("MS-1",), testbed=tb)
        assert len(result.rows) == 3  # one per trace
        assert "Table 3" in result.render()
        for row in result.rows:
            assert row.gap == pytest.approx(row.simulated - row.actual)
