"""Unit tests for the replay harness."""

import pytest

from repro.core.policies import FlatPolicy, make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import KSU, UCB


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(UCB, rate=200, duration=4.0, mu_h=1200,
                          r=1 / 40, seed=3)


class TestReplay:
    def test_basic_replay(self, small_trace):
        cfg = paper_sim_config(num_nodes=4, seed=1)
        result = replay(cfg, FlatPolicy(4, seed=2), small_trace)
        assert result.report.completed > 0
        assert result.stretch >= 1.0

    def test_warmup_excludes_prefix(self, small_trace):
        cfg = paper_sim_config(num_nodes=4, seed=1)
        full = replay(cfg.copy(), FlatPolicy(4, seed=2), small_trace,
                      warmup_fraction=0.0)
        trimmed = replay(cfg.copy(), FlatPolicy(4, seed=2), small_trace,
                         warmup_fraction=0.5)
        assert trimmed.report.completed < full.report.completed

    def test_empty_trace_rejected(self):
        cfg = paper_sim_config(num_nodes=4)
        with pytest.raises(ValueError):
            replay(cfg, FlatPolicy(4), [])

    def test_bad_warmup_rejected(self, small_trace):
        cfg = paper_sim_config(num_nodes=4)
        with pytest.raises(ValueError):
            replay(cfg, FlatPolicy(4), small_trace, warmup_fraction=1.0)

    def test_all_complete_under_light_load(self, small_trace):
        cfg = paper_sim_config(num_nodes=4, seed=1)
        result = replay(cfg, FlatPolicy(4, seed=2), small_trace,
                        warmup_fraction=0.0)
        assert result.report.completed == len(small_trace)

    def test_ms_policy_replay_records_remote(self, small_trace):
        cfg = paper_sim_config(num_nodes=4, seed=1)
        result = replay(cfg, make_ms(4, 2, seed=2), small_trace)
        assert result.report.remote_dispatches > 0


class TestPretrainSampler:
    def test_learns_trace_families(self, small_trace):
        sampler = pretrain_sampler(small_trace)
        assert sampler.w("cgi:spin") > 0.8
        assert sampler.w("static") == pytest.approx(1.0)

    def test_sample_fraction_limits_training(self, small_trace):
        sampler = pretrain_sampler(small_trace, sample_fraction=0.01)
        total = sum(sampler.sample_count(k) for k in sampler.families)
        assert total <= max(1, int(0.01 * len(small_trace)))

    def test_bad_fraction_rejected(self, small_trace):
        with pytest.raises(ValueError):
            pretrain_sampler(small_trace, sample_fraction=0.0)

    def test_mixed_families_learned(self):
        trace = generate_trace(KSU, rate=200, duration=4.0, seed=5)
        sampler = pretrain_sampler(trace, sample_fraction=0.5)
        assert sampler.w("cgi:search") > 0.7
        assert sampler.w("cgi:catalog") < 0.3
