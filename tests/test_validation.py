"""Tests calibrating the simulator against closed-form queuing theory."""

import pytest

from repro.analysis.validation import (
    CalibrationRow,
    class_level_stretch,
    exponential_trace,
    flat_cluster_calibration,
    mm1_calibration,
    ms_model_calibration,
)
from repro.core.queuing import Workload


class TestExponentialTrace:
    def test_shape(self):
        trace = exponential_trace(lam=100, mean_demand=0.001,
                                  duration=2.0, seed=1)
        assert len(trace) == 200
        assert all(q.io_demand == 0.0 for q in trace)
        times = [q.arrival_time for q in trace]
        assert times == sorted(times)

    def test_mean_demand(self):
        import numpy as np

        trace = exponential_trace(lam=1000, mean_demand=0.002,
                                  duration=30.0, seed=2)
        assert np.mean([q.demand for q in trace]) == pytest.approx(
            0.002, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_trace(lam=0, mean_demand=1, duration=1, seed=0)


class TestMM1Calibration:
    """The simulator must collapse to M/M/1 when its OS features are off.

    This is the fidelity check behind every Figure-4 claim: if the clean
    simulator disagreed with 1/(1-rho), comparisons against Theorem 1
    would be meaningless.
    """

    @pytest.fixture(scope="class")
    def rows(self):
        return mm1_calibration(rho_values=(0.3, 0.5, 0.7), duration=50.0,
                               seed=3)

    def test_within_five_percent(self, rows):
        for row in rows:
            assert row.relative_error < 0.05, row

    def test_monotone_in_rho(self, rows):
        sims = [row.simulated for row in rows]
        assert sims == sorted(sims)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            mm1_calibration(rho_values=(1.5,))


class TestTwoClassCalibration:
    """Two-class comparisons expose a *documented* model gap: the BSD-style
    MLFQ is size-based, so its count-weighted stretch dominates (is no
    worse than) the paper's discipline-free station model.  EXPERIMENTS.md
    discusses the consequences for the M/S-1 comparison."""

    @pytest.fixture(scope="class")
    def w(self):
        return Workload.from_ratios(lam=600, a=0.4, mu_h=1200, r=1 / 40,
                                    p=8)

    def test_flat_simulated_at_most_model(self, w):
        row = flat_cluster_calibration(w, duration=25.0, seed=4)
        assert row.simulated <= row.predicted * 1.10
        assert row.simulated >= 1.0

    def test_ms_simulated_at_most_model(self, w):
        row = ms_model_calibration(w, m=2, theta=0.05, duration=25.0,
                                   seed=5)
        assert row.simulated <= row.predicted * 1.10
        assert row.simulated >= 1.0

    def test_model_load_ordering_transfers(self, w):
        """More offered load -> more simulated stretch, as in the model."""
        light = Workload.from_ratios(lam=300, a=0.4, mu_h=1200, r=1 / 40,
                                     p=8)
        lo = flat_cluster_calibration(light, duration=25.0, seed=6)
        hi = flat_cluster_calibration(w, duration=25.0, seed=6)
        assert lo.simulated < hi.simulated
        assert lo.predicted < hi.predicted


class TestClassLevelStretch:
    def test_single_class_report(self):
        from repro.sim.metrics import MetricsCollector
        from repro.sim.process import CPU_BURST, SimProcess
        from tests.conftest import make_static

        mc = MetricsCollector()
        req = make_static(req_id=0, arrival=0.0, cpu=0.001)
        proc = SimProcess(req, 0, [(CPU_BURST, 0.001)], admit_time=0.0)
        proc.finish_time = 0.003
        mc.record(proc, remote=False, on_master=True)
        assert class_level_stretch(mc.report()) == pytest.approx(3.0)

    def test_two_class_weighting(self):
        from repro.sim.metrics import MetricsCollector
        from repro.sim.process import CPU_BURST, SimProcess
        from tests.conftest import make_cgi, make_static

        mc = MetricsCollector()
        # 3 statics at class stretch 2, 1 dynamic at class stretch 4.
        for i in range(3):
            req = make_static(req_id=i, arrival=0.0, cpu=0.001)
            proc = SimProcess(req, 0, [(CPU_BURST, 0.001)], admit_time=0.0)
            proc.finish_time = 0.002
            mc.record(proc, remote=False, on_master=True)
        req = make_cgi(req_id=9, arrival=0.0, cpu=0.01, io=0.0)
        proc = SimProcess(req, 0, [(CPU_BURST, 0.01)], admit_time=0.0)
        proc.finish_time = 0.04
        mc.record(proc, remote=False, on_master=False)
        assert class_level_stretch(mc.report()) == pytest.approx(
            (3 * 2.0 + 1 * 4.0) / 4)
