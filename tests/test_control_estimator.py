"""Unit tests for the online Theorem-1 workload estimator."""

import pytest

from repro.control import EstimatorConfig, WorkloadEstimator

# One "request" of each class at the paper's Section-5 operating point:
# static demand 1/1200 s (pure CPU), dynamic demand 1/30 s split 60/40.
DS = 1.0 / 1200.0
DD = 1.0 / 30.0


def feed(est, n_static, n_dynamic, w=0.6, ds=DS, dd=DD):
    for _ in range(n_static):
        est.observe(kind=0, cpu=ds, io=0.0)
    for _ in range(n_dynamic):
        est.observe(kind=1, cpu=w * dd, io=(1.0 - w) * dd)


class TestConfig:
    def test_defaults_validate(self):
        EstimatorConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        dict(smoothing=0.0), dict(smoothing=1.5),
        dict(min_class_samples=0), dict(warm_windows=0),
    ])
    def test_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            EstimatorConfig(**kwargs).validate()


class TestColdWindow:
    def test_fresh_estimator_not_ready(self):
        est = WorkloadEstimator()
        assert not est.ready
        assert est.workload(8) is None
        snap = est.snapshot()
        assert snap.a is None and snap.r is None and snap.w is None

    def test_empty_fold_does_not_warm(self):
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=1,
                                                warm_windows=1))
        for _ in range(10):
            snap = est.fold(elapsed=1.0)
        assert not snap.ready

    def test_single_class_never_ready(self):
        """Static-only streams must never actuate: a is degenerate."""
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=2,
                                                warm_windows=1))
        for _ in range(5):
            feed(est, n_static=100, n_dynamic=0)
            est.fold(elapsed=1.0)
        assert not est.ready
        assert est.workload(8) is None

    def test_warm_windows_guard(self):
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=1,
                                                warm_windows=3))
        for i in range(3):
            feed(est, 50, 10)
            snap = est.fold(elapsed=1.0)
            assert snap.ready == (i == 2)

    def test_min_class_samples_guard(self):
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=25,
                                                warm_windows=1))
        feed(est, 100, 10)           # dynamic count below the floor
        est.fold(elapsed=1.0)
        assert not est.ready
        feed(est, 100, 20)           # lifetime dynamic now 30 >= 25
        est.fold(elapsed=1.0)
        assert est.ready


class TestEstimates:
    def test_recovers_known_parameters(self):
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=10,
                                                warm_windows=2))
        for _ in range(3):
            feed(est, n_static=90, n_dynamic=30)
            snap = est.fold(elapsed=1.0)
        assert snap.ready
        assert snap.a == pytest.approx(30 / 90)
        assert snap.r == pytest.approx(DS / DD)      # = 1/40
        assert snap.w == pytest.approx(0.6)
        assert snap.rate == pytest.approx(120.0)

    def test_workload_round_trip(self):
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=10,
                                                warm_windows=1))
        feed(est, 90, 30)
        est.fold(elapsed=1.0)
        w = est.workload(p=8)
        assert w is not None
        assert w.p == 8
        assert w.a == pytest.approx(1 / 3)
        assert w.r == pytest.approx(1 / 40)
        assert w.mu_h == pytest.approx(1200.0)
        assert w.lam_h + w.lam_c == pytest.approx(120.0)

    def test_ewma_tracks_drift(self):
        """After a step change in the mix, the EWMA converges to the new
        ratio within a handful of windows."""
        est = WorkloadEstimator(EstimatorConfig(smoothing=0.35,
                                                min_class_samples=1,
                                                warm_windows=1))
        for _ in range(5):
            feed(est, 80, 20)        # a = 0.25
            est.fold(elapsed=1.0)
        before = est.a
        assert before == pytest.approx(0.25)
        for _ in range(12):
            feed(est, 50, 50)        # a = 1.0
            snap = est.fold(elapsed=1.0)
        assert snap.a == pytest.approx(1.0, rel=0.02)

    def test_elapsed_zero_keeps_rate(self):
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=1,
                                                warm_windows=1))
        feed(est, 10, 10)
        est.fold(elapsed=2.0)
        rate = est.rate
        feed(est, 10, 10)
        est.fold(elapsed=0.0)        # degenerate tick: rate unchanged
        assert est.rate == rate
