"""Tests for multi-seed experiment statistics."""

import pytest

from repro.analysis.stats import Summary, run_bakeoff_multi, summarize
from repro.workload.traces import KSU


class TestSummarize:
    def test_single_sample(self):
        s = summarize([3.5])
        assert s.mean == 3.5
        assert s.half_width == 0.0
        assert s.n == 1

    def test_constant_sample(self):
        s = summarize([2.0, 2.0, 2.0, 2.0])
        assert s.mean == 2.0
        assert s.half_width == 0.0

    def test_ci_contains_mean_of_generating_process(self):
        import numpy as np

        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(100):
            s = summarize(rng.normal(5.0, 1.0, size=10), confidence=0.95)
            if s.lo <= 5.0 <= s.hi:
                hits += 1
        assert hits >= 85  # ~95 expected

    def test_wider_confidence_wider_interval(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert summarize(vals, 0.99).half_width > \
            summarize(vals, 0.90).half_width

    def test_str_formats(self):
        assert str(summarize([2.0])) == "2.00"
        assert "±" in str(summarize([1.0, 3.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.0)


class TestMultiSeedBakeoff:
    @pytest.fixture(scope="class")
    def multi(self):
        return run_bakeoff_multi(KSU, lam=200, r=1 / 40, p=4,
                                 duration=3.0, seeds=(1, 2, 3),
                                 policies=("MS", "Flat"))

    def test_aggregates_all_seeds(self, multi):
        assert len(multi.results) == 3
        assert multi.stretch["MS"].n == 3
        assert multi.improvement["Flat"].n == 3

    def test_stretch_positive(self, multi):
        assert multi.stretch["MS"].mean >= 1.0
        assert multi.stretch["Flat"].mean >= 1.0

    def test_significance_helpers_consistent(self, multi):
        s = multi.improvement["Flat"]
        assert multi.significantly_better("Flat") == (s.lo > 0)
        assert multi.significantly_worse("Flat") == (s.hi < 0)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_bakeoff_multi(KSU, lam=200, r=1 / 40, p=4, duration=2.0,
                              seeds=())
