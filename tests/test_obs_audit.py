"""Tests for the trace auditor: clean runs audit clean, and each check
family catches the corruption it is responsible for."""

import pytest

from repro.core.policies import MSPolicy
from repro.obs import TraceAuditError, Tracer, audit_cluster, audit_spans
from repro.obs.trace import (
    ADMIT,
    ARRIVE,
    COMPLETE,
    CPU_OFF,
    CPU_ON,
    DISPATCH,
    START,
)
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig
from repro.sim.failures import FailurePolicy
from repro.sim.resilience import ResilienceConfig
from repro.workload.generator import generate_trace
from repro.workload.replay import replay
from repro.workload.traces import KSU


@pytest.fixture(scope="module")
def clean_run():
    """A small audited M/S replay; the span stream every tamper test
    corrupts a copy of."""
    cfg = SimConfig(num_nodes=4, seed=11)
    trace = generate_trace(KSU, rate=90.0, duration=6.0, seed=2)
    policy = MSPolicy(num_nodes=4, num_masters=2, seed=5)
    tracer = Tracer()
    result = replay(cfg, policy, trace, tracer=tracer, audit=False)
    return result.cluster, tracer


class TestCleanRuns:
    def test_plain_replay_audits_clean(self, clean_run):
        cluster, _ = clean_run
        report = audit_cluster(cluster)
        assert report.ok, report.render()
        # Every check family must have actually done work.
        for key in ("spans", "requests", "service_intervals",
                    "reservation_decisions", "conservation_checks",
                    "stretch_samples"):
            assert report.checked[key] > 0, key

    def test_crash_and_recovery_audits_clean(self):
        cfg = SimConfig(num_nodes=5, seed=7)
        trace = generate_trace(KSU, rate=150.0, duration=8.0, seed=3)
        policy = MSPolicy(num_nodes=5, num_masters=2, seed=1)
        cluster = Cluster(
            cfg, policy, failure_policy=FailurePolicy(),
            resilience=ResilienceConfig(deadline_dynamic=4.0, max_retries=2),
            tracer=Tracer())
        cluster.submit_many(trace)
        cluster.engine.schedule(2.0, lambda: cluster.fail_node(3))
        cluster.engine.schedule(4.5, lambda: cluster.recover_node(3))
        deadline = 40.0
        cluster.run(until=deadline)
        extensions = 0
        while cluster.pending_requests() > 0 and extensions < 30:
            deadline += 10.0
            cluster.run(until=deadline)
            extensions += 1
        report = audit_cluster(cluster)
        assert report.ok, report.render()

    def test_audit_cluster_requires_tracer(self):
        cfg = SimConfig(num_nodes=2, seed=0)
        cluster = Cluster(cfg, MSPolicy(num_nodes=2, num_masters=1, seed=0))
        with pytest.raises(ValueError, match="tracer"):
            audit_cluster(cluster)

    def test_raise_if_failed_carries_report(self, clean_run):
        cluster, tracer = clean_run
        spans = list(tracer.spans)
        spans.append((0.0, ARRIVE, 10 ** 9, -1, None))  # time goes backwards
        report = audit_spans(spans)
        with pytest.raises(TraceAuditError) as exc:
            report.raise_if_failed()
        assert exc.value.report is report
        assert "causality" in str(exc.value)


def _violations(report, check):
    return [v for v in report.violations if v.check == check]


class TestTamperDetection:
    def test_time_reversal_is_causality_violation(self, clean_run):
        _, tracer = clean_run
        spans = list(tracer.spans)
        spans[40], spans[800] = spans[800], spans[40]
        report = audit_spans(spans)
        assert _violations(report, "causality")

    def test_missing_admit_breaks_lifecycle(self, clean_run):
        _, tracer = clean_run
        spans = list(tracer.spans)
        idx = next(i for i, s in enumerate(spans) if s[1] == ADMIT)
        del spans[idx]
        report = audit_spans(spans)
        bad = _violations(report, "lifecycle")
        assert bad and any("'start'" in v.message for v in bad)

    def test_span_after_terminal_breaks_lifecycle(self, clean_run):
        _, tracer = clean_run
        spans = list(tracer.spans)
        idx = next(i for i, s in enumerate(spans) if s[1] == COMPLETE)
        spans.append(spans[idx])  # request completes twice
        report = audit_spans(spans)
        bad = _violations(report, "lifecycle")
        assert bad and any("terminal" in v.message for v in bad)

    def test_wrong_node_breaks_lifecycle(self, clean_run):
        _, tracer = clean_run
        spans = list(tracer.spans)
        idx = next(i for i, s in enumerate(spans) if s[1] == START)
        t, kind, req, node, data = spans[idx]
        spans[idx] = (t, kind, req, node + 1, data)
        report = audit_spans(spans)
        bad = _violations(report, "lifecycle")
        assert bad and any("dispatched to node" in v.message for v in bad)

    def test_double_booking_breaks_exclusivity(self, clean_run):
        _, tracer = clean_run
        spans = list(tracer.spans)
        idx = next(i for i, s in enumerate(spans) if s[1] == CPU_ON)
        t, kind, req, node, data = spans[idx]
        spans.insert(idx + 1, (t, CPU_ON, req + 1, node, data))
        spans.insert(idx + 3, (t, CPU_OFF, req + 1, node, data))
        report = audit_spans(spans)
        assert any("while still serving" in v.message
                   for v in _violations(report, "exclusivity"))

    def test_unreleased_device_breaks_exclusivity(self, clean_run):
        _, tracer = clean_run
        spans = list(tracer.spans)
        # Drop the final CPU_OFF: device left busy at end of run.
        idx = max(i for i, s in enumerate(spans) if s[1] == CPU_OFF)
        del spans[idx]
        report = audit_spans(spans, complete_run=True)
        assert any("end of run" in v.message or "released" in v.message
                   for v in _violations(report, "exclusivity"))
        # An interrupted run waives only the end-of-run condition.
        partial = audit_spans(spans[:idx], complete_run=False)
        assert not _violations(partial, "exclusivity")

    def test_closed_gate_master_dispatch_breaks_reservation(self):
        # Synthetic stream: dynamic request dispatched to a master while
        # master_fraction >= effective cap.
        spans = [
            (0.0, ARRIVE, 0, -1, (1, 0.5)),
            (0.0, DISPATCH, 0, 0,
             (True, True, 0.7, 1.1, False, 0.30, 0.45)),
        ]
        report = audit_spans(spans, complete_run=False)
        bad = _violations(report, "reservation")
        assert any("gate was closed" in v.message for v in bad)

    def test_inconsistent_gate_verdict_breaks_reservation(self):
        spans = [
            (0.0, ARRIVE, 0, -1, (1, 0.5)),
            # gate=True claimed, but fraction 0.45 >= cap 0.30.
            (0.0, DISPATCH, 0, 3,
             (True, False, 0.7, 1.1, True, 0.30, 0.45)),
        ]
        report = audit_spans(spans, complete_run=False)
        bad = _violations(report, "reservation")
        assert any("inconsistent" in v.message for v in bad)

    def test_ledger_mismatch_breaks_conservation(self, clean_run):
        cluster, tracer = clean_run
        ledger = dict(cluster.conservation())
        ledger["completed"] -= 1
        ledger["balance"] = 1
        report = audit_spans(tracer.spans, conservation=ledger)
        assert len(_violations(report, "conservation")) >= 2

    def test_tampered_demand_breaks_stretch(self, clean_run):
        cluster, tracer = clean_run
        spans = list(tracer.spans)
        idx = next(i for i, s in enumerate(spans) if s[1] == COMPLETE)
        t, kind, req, node, data = spans[idx]
        spans[idx] = (t, kind, req, node, (data[0] * 2.0,) + data[1:])
        report = audit_spans(spans, metrics_report=cluster.metrics.report())
        assert _violations(report, "stretch")

    def test_delayed_completion_breaks_stretch(self, clean_run):
        cluster, tracer = clean_run
        spans = list(tracer.spans)
        idx = max(i for i, s in enumerate(spans) if s[1] == COMPLETE)
        t, kind, req, node, data = spans[idx]
        spans[idx] = (t + 5.0, kind, req, node, data)
        report = audit_spans(spans, metrics_report=cluster.metrics.report())
        assert _violations(report, "stretch")


class TestControlAudit:
    """The control pass: every dispatch must match the CONTROL-span
    configuration in force, and role actions must respect cooldown."""

    ATTACH = ("attach", 2, 4, 0.5, 2.0, 1, 3, 0.40, True)

    def _base(self):
        from repro.obs.trace import CONTROL

        return CONTROL, [
            (0.0, CONTROL, -1, -1, self.ATTACH),
            (0.0, CONTROL, -1, -1, ("roles", (0, 1))),
        ]

    def test_consistent_stream_audits_clean(self):
        CONTROL, spans = self._base()
        spans += [
            (0.1, ARRIVE, 0, -1, (1, 0.5)),
            # On-master dynamic dispatch under the attached cap 0.40.
            (0.1, DISPATCH, 0, 1, (False, True, 0.7, 1.1, True, 0.40, 0.1)),
            (1.0, CONTROL, -1, 2, ("action", "promote", 2, None, True)),
            (1.0, CONTROL, -1, -1, ("roles", (0, 1, 2))),
            (1.0, CONTROL, -1, -1,
             ("action", "retune_theta", -1, 0.30, True)),
            (1.2, ARRIVE, 1, -1, (1, 0.5)),
            (1.2, DISPATCH, 1, 2, (True, True, 0.7, 1.1, True, 0.30, 0.1)),
        ]
        report = audit_spans(spans, complete_run=False)
        assert not _violations(report, "control"), report.render()
        assert report.checked["control_events"] == 5
        assert report.checked["control_dispatches"] == 2

    def test_forged_eff_cap_detected(self):
        CONTROL, spans = self._base()
        spans += [
            (0.1, ARRIVE, 0, -1, (1, 0.5)),
            # Gate evaluated against 0.35, but the control plane owns the
            # cap and last actuated 0.40.
            (0.1, DISPATCH, 0, 1, (False, True, 0.7, 1.1, True, 0.35, 0.1)),
        ]
        report = audit_spans(spans, complete_run=False)
        bad = _violations(report, "control")
        assert any("cap in force" in v.message for v in bad)

    def test_cooldown_violation_detected(self):
        CONTROL, spans = self._base()
        spans += [
            (1.0, CONTROL, -1, 2, ("action", "promote", 2, None, True)),
            (1.0, CONTROL, -1, -1, ("roles", (0, 1, 2))),
            # Only 0.5s later: inside the attach-declared 2.0s cooldown.
            (1.5, CONTROL, -1, 3, ("action", "promote", 3, None, True)),
            (1.5, CONTROL, -1, -1, ("roles", (0, 1, 2, 3))),
        ]
        report = audit_spans(spans, complete_run=False)
        bad = _violations(report, "control")
        assert any("cooldown" in v.message for v in bad)

    def test_roles_mismatch_detected(self):
        CONTROL, spans = self._base()
        spans += [
            (1.0, CONTROL, -1, 2, ("action", "promote", 2, None, True)),
            # The promote said node 2, but the roles span shows node 3.
            (1.0, CONTROL, -1, -1, ("roles", (0, 1, 3))),
        ]
        report = audit_spans(spans, complete_run=False)
        bad = _violations(report, "control")
        assert any("do not match" in v.message for v in bad)

    def test_role_flag_mismatch_detected(self):
        CONTROL, spans = self._base()
        spans += [
            (0.1, ARRIVE, 0, -1, (1, 0.5)),
            # Node 3 is a slave, yet the dispatch claims is_master.
            (0.1, DISPATCH, 0, 3, (True, True, 0.7, 1.1, True, 0.40, 0.1)),
        ]
        report = audit_spans(spans, complete_run=False)
        bad = _violations(report, "control")
        assert any("masters in force" in v.message for v in bad)

    def test_dry_run_actions_do_not_drive_state(self):
        """applied=False actions (dry-run / refused) must not advance the
        auditor's role state or trip the cooldown check."""
        CONTROL, spans = self._base()
        spans += [
            (1.0, CONTROL, -1, 2, ("action", "promote", 2, None, False)),
            (1.1, CONTROL, -1, 2, ("action", "promote", 2, None, False)),
            (1.2, ARRIVE, 0, -1, (1, 0.5)),
            # Masters still (0, 1): node 2 dispatches as a slave.
            (1.2, DISPATCH, 0, 2, (True, False, 0.7, 1.1, True, 0.40, 0.1)),
        ]
        report = audit_spans(spans, complete_run=False)
        assert not _violations(report, "control"), report.render()
