"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.queuing import (
    Workload,
    flat_stretch,
    flat_utilization,
    ms_stretch,
    ms_utilizations,
    msprime_stretch,
)
from repro.core.rsrc import rsrc_cost, select_min_rsrc
from repro.core.stretch import combine_stretch, stretch_factor
from repro.core.theorem import (
    reservation_ratio,
    theta2_closed_form,
    theta_bounds,
)
from repro.sim.engine import Engine
from repro.sim.process import CPU_BURST, IO_BURST, build_plan
from repro.workload.arrival import poisson_arrivals, scale_intervals

# -- strategies -------------------------------------------------------------

feasible_workloads = st.builds(
    Workload.from_ratios,
    lam=st.floats(min_value=10.0, max_value=5000.0),
    a=st.floats(min_value=0.05, max_value=3.0),
    mu_h=st.just(1200.0),
    r=st.floats(min_value=1 / 200, max_value=0.5),
    p=st.integers(min_value=2, max_value=128),
).filter(lambda w: w.total_offered < 0.95 * w.p)


# -- queuing model properties -------------------------------------------------


class TestQueuingProperties:
    @given(w=feasible_workloads)
    @settings(max_examples=200, deadline=None)
    def test_flat_stretch_at_least_one(self, w):
        assert flat_stretch(w) >= 1.0

    @given(w=feasible_workloads, frac=st.floats(0.05, 0.95),
           theta=st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_ms_stretch_classes_at_least_one(self, w, frac, theta):
        m = max(1, min(w.p - 1, int(round(frac * w.p))))
        ms = ms_stretch(w, m, theta)
        assert ms.master >= 1.0
        assert ms.slave >= 1.0
        if ms.stable:
            assert ms.total >= 1.0

    @given(w=feasible_workloads, frac=st.floats(0.05, 0.95))
    @settings(max_examples=200, deadline=None)
    def test_theta2_equalizes_utilizations(self, w, frac):
        """At the closed-form upper root, both tiers match flat load."""
        m = max(1, min(w.p - 1, int(round(frac * w.p))))
        theta2 = theta2_closed_form(w, m)
        assume(0.0 <= theta2 <= 1.0)
        u_m, u_s = ms_utilizations(w, m, theta2)
        u_f = flat_utilization(w)
        assert u_m == pytest.approx(u_f, rel=1e-9)
        assert u_s == pytest.approx(u_f, rel=1e-9)

    @given(w=feasible_workloads, frac=st.floats(0.05, 0.95))
    @settings(max_examples=150, deadline=None)
    def test_numeric_bounds_match_closed_form(self, w, frac):
        m = max(1, min(w.p - 1, int(round(frac * w.p))))
        try:
            t1, t2 = theta_bounds(w, m)
        except ArithmeticError:
            assume(False)
        assert t1 <= t2 + 1e-9
        assert t2 == pytest.approx(theta2_closed_form(w, m), rel=1e-6,
                                   abs=1e-9)

    @given(w=feasible_workloads, k_frac=st.floats(0.05, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_msprime_never_beats_flat(self, w, k_frac):
        """Convexity: spreading static over all nodes while concentrating
        dynamic work cannot beat uniform spreading."""
        k = max(1, min(w.p, int(round(k_frac * w.p))))
        msp = msprime_stretch(w, k)
        if msp.stable:
            assert msp.total >= flat_stretch(w) - 1e-9

    @given(a=st.floats(0.01, 5.0), r=st.floats(0.001, 1.0),
           p=st.integers(2, 256), m_frac=st.floats(0.0, 1.0))
    @settings(max_examples=300, deadline=None)
    def test_reservation_ratio_bounded(self, a, r, p, m_frac):
        m = max(1, min(p, int(round(m_frac * p))))
        cap = reservation_ratio(a, r, m, p)
        assert 0.0 <= cap <= 1.0


# -- stretch metric properties -----------------------------------------------


class TestStretchProperties:
    @given(st.lists(st.tuples(st.floats(1e-6, 100.0),
                              st.floats(0.0, 100.0)),
                    min_size=1, max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_stretch_at_least_one(self, pairs):
        demands = [d for d, _ in pairs]
        responses = [d + wait for d, wait in pairs]
        assert stretch_factor(responses, demands) >= 1.0 - 1e-12

    @given(st.lists(st.floats(1.0, 50.0), min_size=1, max_size=20),
           st.lists(st.floats(0.01, 10.0), min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_combine_within_range(self, stretches, weights):
        n = min(len(stretches), len(weights))
        s, w = stretches[:n], weights[:n]
        combined = combine_stretch(s, w)
        assert min(s) - 1e-9 <= combined <= max(s) + 1e-9


# -- burst plan properties -----------------------------------------------------


class TestPlanProperties:
    @given(cpu=st.floats(0.0, 1.0), io=st.floats(0.0, 1.0),
           chunk=st.floats(0.001, 0.1), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=300, deadline=None)
    def test_plan_conserves_demand(self, cpu, io, chunk, seed):
        rng = np.random.default_rng(seed)
        plan = build_plan(cpu, io, chunk, rng)
        got_cpu = sum(d for k, d in plan if k == CPU_BURST)
        got_io = sum(d for k, d in plan if k == IO_BURST)
        assert got_io == pytest.approx(io, abs=1e-12)
        assert got_cpu == pytest.approx(max(cpu, 20e-6), rel=1e-9)
        assert all(d >= 0 for _, d in plan)

    @given(cpu=st.floats(0.001, 1.0), io=st.floats(0.001, 1.0),
           chunk=st.floats(0.001, 0.1))
    @settings(max_examples=200, deadline=None)
    def test_plan_alternates_and_caps_with_cpu(self, cpu, io, chunk):
        plan = build_plan(cpu, io, chunk)
        assert plan[0][0] == CPU_BURST
        assert plan[-1][0] == CPU_BURST
        for (k1, _), (k2, _) in zip(plan, plan[1:]):
            assert k1 != k2


# -- RSRC properties -------------------------------------------------------------


class TestRSRCProperties:
    @given(w=st.floats(0.0, 1.0),
           cpu=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=16),
           disk=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=16))
    @settings(max_examples=300, deadline=None)
    def test_selection_is_argmin(self, w, cpu, disk):
        n = min(len(cpu), len(disk))
        cpu_arr = np.array(cpu[:n])
        disk_arr = np.array(disk[:n])
        pick = select_min_rsrc(w, cpu_arr, disk_arr, list(range(n)))
        costs = np.atleast_1d(rsrc_cost(w, cpu_arr, disk_arr))
        assert costs[pick] == pytest.approx(costs.min())

    @given(w=st.floats(0.0, 1.0), cpu=st.floats(0.0, 1.0),
           disk=st.floats(0.0, 1.0))
    @settings(max_examples=300, deadline=None)
    def test_cost_positive_and_finite(self, w, cpu, disk):
        c = rsrc_cost(w, cpu, disk)
        assert c > 0 and math.isfinite(c)

    @given(w=st.floats(0.0, 1.0), disk=st.floats(0.01, 1.0),
           idle_hi=st.floats(0.51, 1.0), idle_lo=st.floats(0.01, 0.5))
    @settings(max_examples=200, deadline=None)
    def test_cost_monotone_in_idleness(self, w, disk, idle_hi, idle_lo):
        assert rsrc_cost(w, idle_hi, disk) <= rsrc_cost(w, idle_lo, disk)


# -- engine properties -------------------------------------------------------------


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(d, lambda t=d: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(0.0, 10.0), min_size=2, max_size=50),
           st.floats(1.0, 1000.0))
    @settings(max_examples=200, deadline=None)
    def test_scale_intervals_property(self, gaps, target):
        arrivals = np.cumsum(np.abs(gaps))
        assume(arrivals[-1] - arrivals[0] > 1e-9)
        scaled = scale_intervals(arrivals, target)
        rate = (len(scaled) - 1) / (scaled[-1] - scaled[0])
        assert rate == pytest.approx(target, rel=1e-6)
        assert (np.diff(scaled) >= -1e-12).all()


# -- Theorem-1 interval properties (control-plane satellite) ------------------


class TestThetaIntervalProperties:
    @given(w=feasible_workloads, frac=st.floats(0.05, 0.95))
    @settings(max_examples=200, deadline=None)
    def test_feasible_interval_within_unit_interval(self, w, frac):
        from repro.core.theorem import theta_feasible_interval

        m = max(1, min(w.p - 1, int(round(frac * w.p))))
        lo, hi = theta_feasible_interval(w, m)
        assert 0.0 <= lo <= 1.0
        assert 0.0 <= hi <= 1.0

    @given(w=feasible_workloads, frac=st.floats(0.05, 0.95))
    @settings(max_examples=200, deadline=None)
    def test_theta_opt_inside_clamped_bounds(self, w, frac):
        from repro.core.theorem import theta_opt

        assume(w.p >= 3)
        m = max(1, min(w.p - 1, int(round(frac * w.p))))
        try:
            t1, t2 = theta_bounds(w, m)
        except (ValueError, ArithmeticError):
            assume(False)
        theta = theta_opt(w, m)
        assert 0.0 <= theta <= 1.0
        # The paper's midpoint rule, clamped into [0, 1].
        assert theta == pytest.approx(
            min(1.0, max((t1 + t2) / 2.0, 0.0)))

    @given(w=feasible_workloads, frac=st.floats(0.05, 0.95))
    @settings(max_examples=200, deadline=None)
    def test_interval_interior_is_stable(self, w, frac):
        from repro.core.queuing import ms_utilizations
        from repro.core.theorem import theta_feasible_interval

        assume(w.p >= 3)
        m = max(1, min(w.p - 1, int(round(frac * w.p))))
        lo, hi = theta_feasible_interval(w, m)
        assume(hi - lo > 1e-6)
        mid = (lo + hi) / 2.0
        u_master, u_slave = ms_utilizations(w, m, mid)
        assert u_master < 1.0 + 1e-9
        assert u_slave < 1.0 + 1e-9
