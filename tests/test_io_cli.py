"""Tests for trace persistence and the command-line interface."""

import json

import pytest

from repro.analysis.cli import build_parser, main
from repro.workload.generator import generate_trace
from repro.workload.io import (
    load_trace,
    request_from_dict,
    request_to_dict,
    save_trace,
)
from repro.workload.request import RequestKind
from repro.workload.traces import KSU, UCB
from tests.conftest import make_cgi, make_static


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(UCB, rate=100, n=200, seed=1,
                               cacheable_fraction=0.5)
        path = tmp_path / "trace.jsonl"
        assert save_trace(trace, path) == 200
        loaded = load_trace(path)
        assert len(loaded) == 200
        for a, b in zip(trace, loaded):
            assert a.req_id == b.req_id
            assert a.arrival_time == b.arrival_time
            assert a.kind == b.kind
            assert a.cpu_demand == b.cpu_demand
            assert a.io_demand == b.io_demand
            assert a.cache_key == b.cache_key

    def test_dict_roundtrip(self):
        req = make_cgi(req_id=5, cpu=0.03, io=0.01, mem_pages=77)
        again = request_from_dict(request_to_dict(req))
        assert again == req

    def test_kind_serialised_as_int(self):
        data = request_to_dict(make_static())
        assert data["kind"] == int(RequestKind.STATIC)
        json.dumps(data)  # must be JSON-safe

    def test_rejects_unknown_fields(self):
        data = request_to_dict(make_static())
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            request_from_dict(data)

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing"):
            request_from_dict({"req_id": 1})

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_rejects_corrupt_line(self, tmp_path):
        trace = generate_trace(UCB, rate=100, n=5, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        with path.open("a") as fh:
            fh.write("not json\n")
        with pytest.raises(ValueError, match="bad request"):
            load_trace(path)

    def test_skips_blank_lines(self, tmp_path):
        trace = generate_trace(UCB, rate=100, n=5, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        with path.open("a") as fh:
            fh.write("\n\n")
        assert len(load_trace(path)) == 5


class TestCLI:
    def test_design_command(self, capsys):
        assert main(["design", "--lam", "1000", "--a", "0.43",
                     "--p", "32"]) == 0
        out = capsys.readouterr().out
        assert "masters m*" in out
        assert "improvement" in out

    def test_design_infeasible(self, capsys):
        assert main(["design", "--lam", "1000000", "--a", "1.0",
                     "--p", "4"]) == 1

    def test_trace_command_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        assert main(["trace", "--trace", "KSU", "--rate", "100",
                     "--duration", "2", "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert len(load_trace(out_path)) == 200

    def test_replay_command(self, capsys):
        assert main(["replay", "--trace", "UCB", "--rate", "200",
                     "--nodes", "4", "--duration", "3",
                     "--policy", "Flat"]) == 0
        out = capsys.readouterr().out
        assert "stretch" in out

    def test_replay_from_file(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        save_trace(generate_trace(KSU, rate=150, duration=3.0, seed=1),
                   path)
        assert main(["replay", "--trace", "KSU", "--nodes", "4",
                     "--policy", "MS", "--masters", "2",
                     "--from-file", str(path)]) == 0

    def test_fig3_command(self, capsys):
        assert main(["fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        assert main(["table1", "--n", "2000"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_calibrate_command(self, capsys):
        assert main(["calibrate", "--duration", "3"]) == 0
        assert "M/M/1" in capsys.readouterr().out

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bare_invocation_prints_help_and_exits_2(self, capsys):
        # No subcommand is not a crash: help on stderr, exit status 2.
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err and "a command is required" in err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestHelpCoverage:
    """Satellite guard: ``python -m repro`` (bare) lists every registered
    subcommand — a new verb wired into ``build_parser`` without a help
    line would otherwise be undiscoverable."""

    @staticmethod
    def _registered():
        parser = build_parser()
        actions = [a for a in parser._subparsers._group_actions
                   if hasattr(a, "choices")]
        return parser, sorted(actions[0].choices)

    def test_every_subcommand_listed_in_help(self):
        parser, commands = self._registered()
        help_text = parser.format_help()
        for name in commands:
            assert name in help_text, (
                f"subcommand {name!r} missing from --help output")

    def test_control_registered(self):
        _, commands = self._registered()
        assert "control" in commands

    def test_bare_help_matches_registry(self, capsys):
        main([])
        err = capsys.readouterr().err
        _, commands = self._registered()
        for name in commands:
            assert name in err
