"""Tests for session workloads and the DNS-affinity front end."""

import numpy as np
import pytest

from repro.core.policies import DNSAffinityPolicy
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.sessions import (
    SessionConfig,
    client_concentration,
    sessionize,
)
from repro.workload.traces import UCB
from tests.conftest import make_static


class TestSessionize:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(UCB, rate=200, n=4000, seed=1)

    def test_preserves_everything_but_client(self, trace):
        out = sessionize(trace, SessionConfig(seed=2))
        assert len(out) == len(trace)
        for a, b in zip(sorted(trace, key=lambda q: q.arrival_time), out):
            assert a.arrival_time == b.arrival_time
            assert a.demand == b.demand
            assert a.kind == b.kind
            assert b.client_id >= 0

    def test_mean_session_length(self, trace):
        out = sessionize(trace, SessionConfig(mean_session_length=10.0,
                                              num_clients=10 ** 9, seed=2))
        # With a huge pool, consecutive same-client runs ARE sessions.
        runs = []
        current, length = out[0].client_id, 0
        for q in out:
            if q.client_id == current:
                length += 1
            else:
                runs.append(length)
                current, length = q.client_id, 1
        runs.append(length)
        assert np.mean(runs) == pytest.approx(10.0, rel=0.2)

    def test_small_pool_concentrates(self, trace):
        few = sessionize(trace, SessionConfig(num_clients=5, seed=2))
        many = sessionize(trace, SessionConfig(num_clients=5000, seed=2))
        assert client_concentration(few) > client_concentration(many)

    def test_empty_ok(self):
        assert sessionize([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(mean_session_length=0.5).validate()
        with pytest.raises(ValueError):
            SessionConfig(num_clients=0).validate()
        with pytest.raises(ValueError):
            client_concentration([])


class TestDNSAffinity:
    def test_same_client_same_node(self):
        import dataclasses

        policy = DNSAffinityPolicy(4, seed=0)
        nodes = set()
        for i in range(10):
            req = dataclasses.replace(make_static(req_id=i), client_id=7)
            nodes.add(policy.route(req, None).node_id)
        assert len(nodes) == 1

    def test_distinct_clients_rotate(self):
        import dataclasses
        from tests.conftest import make_static as mk

        policy = DNSAffinityPolicy(4, seed=0)
        nodes = [policy.route(dataclasses.replace(mk(req_id=i),
                                                  client_id=i), None).node_id
                 for i in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]
        assert policy.distinct_bindings == 8

    def test_anonymous_requests_rotate(self):
        policy = DNSAffinityPolicy(3, seed=0)
        nodes = [policy.route(make_static(req_id=i), None).node_id
                 for i in range(6)]
        assert nodes == [0, 1, 2, 0, 1, 2]
        assert policy.distinct_bindings == 0

    def test_dns_affinity_imbalances_load(self):
        """The paper's claim: with few heavy clients, cached DNS answers
        concentrate load while per-request randomisation spreads it."""
        from repro.core.policies import FlatPolicy

        trace = sessionize(
            generate_trace(UCB, rate=400, duration=6.0, seed=3),
            SessionConfig(num_clients=12, mean_session_length=30,
                          seed=4))

        def per_node_requests(policy):
            cluster = Cluster(paper_sim_config(num_nodes=8, seed=5),
                              policy)
            cluster.submit_many(trace)
            cluster.run(until=60.0)
            return np.array([n.admitted for n in cluster.nodes])

        dns = per_node_requests(DNSAffinityPolicy(8, seed=6))
        flat = per_node_requests(FlatPolicy(8, seed=6))

        def cov(x):
            return x.std() / x.mean()

        assert cov(dns) > 2 * cov(flat)
