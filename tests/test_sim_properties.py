"""Property-based tests of whole-simulator invariants.

Hypothesis generates small random traces and cluster shapes; each replay
must satisfy conservation and causality invariants regardless of the
workload, policy, or seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import make_policy
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.workload.request import Request, RequestKind


@st.composite
def small_traces(draw):
    """A handful of mixed requests with bounded demands."""
    n = draw(st.integers(min_value=1, max_value=40))
    requests = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=0.02))
        dynamic = draw(st.booleans())
        if dynamic:
            demand = draw(st.floats(min_value=1e-4, max_value=0.08))
            w = draw(st.floats(min_value=0.05, max_value=0.95))
            cpu, io = demand * w, demand * (1 - w)
            pages = draw(st.integers(min_value=0, max_value=512))
        else:
            cpu = draw(st.floats(min_value=1e-5, max_value=0.003))
            io, pages = 0.0, 2
        requests.append(Request(
            req_id=i, arrival_time=t,
            kind=RequestKind.DYNAMIC if dynamic else RequestKind.STATIC,
            cpu_demand=cpu, io_demand=io, mem_pages=pages,
            size_bytes=draw(st.integers(min_value=64, max_value=100_000)),
            type_key="cgi:spin" if dynamic else "static",
        ))
    return requests


POLICY_NAMES = ("MS", "MS-nr", "MS-1", "Flat", "RoundRobin",
                "LeastActive", "MSPrime")


@st.composite
def cluster_shapes(draw):
    p = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=1, max_value=p))
    name = draw(st.sampled_from(POLICY_NAMES))
    if p == 1 and name in ("MS", "MS-nr", "MSPrime"):
        m = 1
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return p, m, name, seed


def run_replay(trace, p, m, name, seed):
    cfg = paper_sim_config(num_nodes=p, seed=seed)
    policy = make_policy(name, p, m, seed=seed + 1)
    cluster = Cluster(cfg, policy)
    cluster.submit_many(trace)
    deadline = max(q.arrival_time for q in trace) + 30.0
    cluster.run(until=deadline)
    extensions = 0
    while any(n.active for n in cluster.nodes) and extensions < 30:
        deadline += 30.0
        cluster.run(until=deadline)
        extensions += 1
    return cluster


class TestReplayInvariants:
    @given(trace=small_traces(), shape=cluster_shapes())
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_causality(self, trace, shape):
        p, m, name, seed = shape
        cluster = run_replay(trace, p, m, name, seed)

        # Every request completes exactly once.
        assert len(cluster.metrics) == len(trace)
        assert sum(n.completed for n in cluster.nodes) == len(trace)
        assert all(n.active == 0 for n in cluster.nodes)
        assert all(n.busy_slots == 0 for n in cluster.nodes)
        assert all(len(n.backlog) == 0 for n in cluster.nodes)

        # Causality: nothing finishes before it arrives plus its demand.
        for arr, fin, dem in zip(cluster.metrics.arrivals,
                                 cluster.metrics.finishes,
                                 cluster.metrics.demands):
            assert fin >= arr + dem - 1e-9

        # Memory fully returned on every node.
        for node in cluster.nodes:
            allocatable = (node.cfg.memory.total_pages
                           - node.cfg.memory.reserved_pages)
            assert node.memory.free_pages == allocatable

    @given(trace=small_traces(), shape=cluster_shapes())
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, trace, shape):
        p, m, name, seed = shape
        a = run_replay(trace, p, m, name, seed)
        b = run_replay(trace, p, m, name, seed)
        assert a.metrics.finishes == b.metrics.finishes
        assert a.metrics.nodes == b.metrics.nodes

    @given(trace=small_traces(), shape=cluster_shapes())
    @settings(max_examples=25, deadline=None)
    def test_work_conservation_without_paging(self, trace, shape):
        p, m, name, seed = shape
        cfg = paper_sim_config(num_nodes=p, seed=seed)
        cfg.memory.enable_paging = False
        policy = make_policy(name, p, m, seed=seed + 1)
        cluster = Cluster(cfg, policy)
        cluster.submit_many(trace)
        deadline = max(q.arrival_time for q in trace) + 60.0
        cluster.run(until=deadline)

        from repro.sim.process import MIN_CPU_SLIVER

        # The plan builder pads every request's CPU to the sliver minimum
        # (parse/respond work exists even for near-zero demands).
        cpu_demand = sum(max(q.cpu_demand, MIN_CPU_SLIVER) for q in trace)
        forks = sum(q.is_dynamic for q in trace) * cfg.cpu.fork_overhead
        switches = sum(n.cpu.switches for n in cluster.nodes) \
            * cfg.cpu.context_switch_overhead
        busy = sum(n.cpu.busy_time for n in cluster.nodes)
        # Preemption can cut a context switch short, so the overhead term
        # is an upper bound; the work terms are exact.
        floor = cpu_demand + forks
        ceiling = cpu_demand + forks + switches
        assert floor - 1e-9 <= busy <= ceiling + 1e-9
        io_demand = sum(q.io_demand for q in trace)
        disk_busy = sum(n.disk.busy_time for n in cluster.nodes)
        assert disk_busy == pytest.approx(io_demand, rel=1e-6, abs=1e-9)
