"""Unit tests for the dispatch policies."""

import numpy as np
import pytest

from repro.core.policies import (
    DNSAffinityPolicy,
    FlatPolicy,
    LeastActivePolicy,
    MSPolicy,
    MSPrimePolicy,
    RedirectMSPolicy,
    RoundRobinPolicy,
    make_ms,
    make_ms_1,
    make_ms_ns,
    make_ms_nr,
    make_policy,
)
from repro.core.sampling import DemandSampler
from tests.conftest import make_cgi, make_static


class FakeView:
    """Deterministic load view for policy unit tests."""

    def __init__(self, num_nodes, cpu_idle=None, disk_avail=None, now=0.0,
                 alive=None):
        self.num_nodes = num_nodes
        self.now = now
        self._cpu = np.array(cpu_idle if cpu_idle is not None
                             else [1.0] * num_nodes)
        self._disk = np.array(disk_avail if disk_avail is not None
                              else [1.0] * num_nodes)
        self.active = [0] * num_nodes
        self.alive = np.array(alive if alive is not None
                              else [True] * num_nodes, dtype=bool)

    def cpu_idle(self, i):
        return float(self._cpu[i])

    def disk_avail(self, i):
        return float(self._disk[i])

    def cpu_idle_array(self):
        return self._cpu

    def disk_avail_array(self):
        return self._disk

    def active_requests(self, i):
        return self.active[i]

    def is_alive(self, i):
        return bool(self.alive[i])

    def all_alive(self):
        return bool(self.alive.all())

    def alive_array(self):
        return self.alive


class TestBaselines:
    def test_flat_routes_uniformly(self):
        policy = FlatPolicy(4, seed=0)
        view = FakeView(4)
        nodes = [policy.route(make_static(req_id=i), view).node_id
                 for i in range(400)]
        counts = np.bincount(nodes, minlength=4)
        assert (counts > 60).all()
        assert not any(policy.route(make_cgi(req_id=i), view).remote
                       for i in range(10))

    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy(3)
        view = FakeView(3)
        nodes = [policy.route(make_static(req_id=i), view).node_id
                 for i in range(6)]
        assert nodes == [0, 1, 2, 0, 1, 2]

    def test_least_active_prefers_empty(self):
        policy = LeastActivePolicy(3, seed=0)
        view = FakeView(3)
        view.active = [5, 0, 2]
        assert policy.route(make_static(), view).node_id == 1

    def test_every_node_is_master_in_flat(self):
        policy = FlatPolicy(4)
        assert all(policy.is_master(i) for i in range(4))


class TestMSPolicy:
    def test_static_goes_to_masters_only(self):
        policy = make_ms(8, 3, seed=1)
        view = FakeView(8)
        for i in range(100):
            route = policy.route(make_static(req_id=i), view)
            assert route.node_id < 3
            assert not route.remote

    def test_dynamic_prefers_idle_slave(self):
        policy = make_ms_nr(8, 2, seed=1)
        cpu = np.ones(8)
        cpu[5] = 1.0
        cpu[:5] = 0.3
        cpu[6:] = 0.3
        view = FakeView(8, cpu_idle=cpu)
        route = policy.route(make_cgi(req_id=0), view)
        assert route.node_id == 5

    def test_reservation_gate_blocks_masters(self):
        policy = make_ms(8, 3, seed=1)
        policy.reservation.theta_cap = 0.0
        view = FakeView(8)
        for i in range(50):
            route = policy.route(make_cgi(req_id=i), view)
            assert route.node_id >= 3  # slaves only

    def test_no_reservation_allows_masters(self):
        policy = make_ms_nr(8, 3, seed=1)
        # Make masters look far idler than slaves.
        cpu = np.concatenate([np.ones(3), np.full(5, 0.05)])
        view = FakeView(8, cpu_idle=cpu)
        nodes = {policy.route(make_cgi(req_id=i), view).node_id
                 for i in range(20)}
        assert any(n < 3 for n in nodes)

    def test_ms1_all_masters_no_remote_escape(self):
        policy = make_ms_1(8, seed=1)
        view = FakeView(8)
        route = policy.route(make_cgi(req_id=0), view)
        assert 0 <= route.node_id < 8
        assert policy.num_masters == 8

    def test_remote_flag_set_when_exec_differs_from_accept(self):
        policy = make_ms(8, 1, seed=1)  # single master accepts everything
        policy.reservation.theta_cap = 0.0
        view = FakeView(8)
        route = policy.route(make_cgi(req_id=0), view)
        assert route.node_id != 0
        assert route.remote

    def test_sampler_weight_used(self):
        sampler = DemandSampler()
        sampler.observe("cgi:catalog", cpu_time=0.01, io_time=0.09)
        policy = make_ms_nr(4, 1, sampler=sampler, seed=1)
        # Node 2: great disk, bad cpu.  Node 3: great cpu, bad disk.
        cpu = np.array([1.0, 1.0, 0.1, 0.9])
        disk = np.array([0.1, 0.1, 0.9, 0.1])
        view = FakeView(4, cpu_idle=cpu, disk_avail=disk)
        route = policy.route(
            make_cgi(req_id=0, type_key="cgi:catalog"), view)
        assert route.node_id == 2  # io-bound job follows the disk

    def test_ns_variant_ignores_sampler(self):
        policy = make_ms_ns(4, 1, seed=1)
        assert policy.sampler is None
        assert policy.default_w == pytest.approx(0.5)

    def test_outstanding_bookkeeping(self):
        policy = make_ms_nr(4, 1, seed=1)
        view = FakeView(4)
        req = make_cgi(req_id=7)
        route = policy.route(req, view)
        assert policy._outstanding_cpu.sum() > 0
        policy.on_complete(req, 0.05, False, route.node_id)
        assert policy._outstanding_cpu.sum() == pytest.approx(0.0)
        assert policy._outstanding_disk.sum() == pytest.approx(0.0)

    def test_outstanding_spreads_consecutive_dispatches(self):
        policy = make_ms(4, 1, seed=1)
        policy.reservation.theta_cap = 0.0  # masters excluded
        view = FakeView(4)  # all equally idle, stale between updates
        nodes = [policy.route(make_cgi(req_id=i), view).node_id
                 for i in range(9)]
        counts = np.bincount(nodes, minlength=4)
        # Slaves are 1..3; 9 jobs over 3 slaves should spread 3/3/3.
        assert counts[0] == 0
        assert counts[1:].max() == 3

    def test_reservation_observes_completions(self):
        policy = make_ms(8, 3, seed=1)
        view = FakeView(8)
        req = make_cgi(req_id=0)
        route = policy.route(req, view)
        policy.on_complete(req, 0.05, policy.is_master(route.node_id),
                           route.node_id)
        assert policy.reservation._resp_dynamic is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            MSPolicy(4, 0)
        with pytest.raises(ValueError):
            MSPolicy(4, 5)
        with pytest.raises(ValueError):
            MSPolicy(4, 2, herding_discount=0.0)


class TestMSPrime:
    def test_static_spreads_everywhere(self):
        policy = MSPrimePolicy(8, 2, seed=0)
        view = FakeView(8)
        nodes = {policy.route(make_static(req_id=i), view).node_id
                 for i in range(200)}
        assert len(nodes) == 8

    def test_dynamic_pinned_to_subset(self):
        policy = MSPrimePolicy(8, 2, seed=0)
        view = FakeView(8)
        for i in range(50):
            route = policy.route(make_cgi(req_id=i), view)
            assert route.node_id < 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MSPrimePolicy(8, 0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("MS", MSPolicy), ("ms-ns", MSPolicy), ("MS-nr", MSPolicy),
        ("ms-1", MSPolicy), ("flat", FlatPolicy),
        ("msprime", MSPrimePolicy), ("roundrobin", RoundRobinPolicy),
        ("leastactive", LeastActivePolicy),
        ("redirect", RedirectMSPolicy), ("dns", DNSAffinityPolicy),
    ])
    def test_make_policy(self, name, cls):
        policy = make_policy(name, 8, 2)
        assert isinstance(policy, cls)
        assert policy.num_nodes == 8

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("banana", 8)

    def test_variant_flags(self):
        assert make_ms(8, 2).use_sampling
        assert make_ms(8, 2).use_reservation
        assert not make_ms_ns(8, 2).use_sampling
        assert not make_ms_nr(8, 2).use_reservation
        assert make_ms_1(8).num_masters == 8
        assert not make_ms_1(8).use_reservation  # no slaves to protect


class TestSetMasters:
    """Mid-run role reconfiguration (the control plane's actuation)."""

    def test_swaps_role_arrays(self):
        policy = make_ms(8, 2, seed=1)
        policy.set_masters({0, 1, 4})
        assert policy.master_ids == frozenset({0, 1, 4})
        assert policy.num_masters == 3
        assert list(policy._masters) == [0, 1, 4]
        assert list(policy._slaves) == [2, 3, 5, 6, 7]

    def test_reservation_m_follows(self):
        policy = make_ms(8, 2, seed=1)
        assert policy.reservation.m == 2
        policy.set_masters({0, 1, 2, 3})
        assert policy.reservation.m == 4

    def test_empty_set_rejected(self):
        policy = make_ms(8, 2)
        with pytest.raises(ValueError, match="at least one master"):
            policy.set_masters(set())

    def test_out_of_range_rejected(self):
        policy = make_ms(8, 2)
        with pytest.raises(ValueError, match="out of range"):
            policy.set_masters({0, 8})

    def test_front_end_keeps_accept_node(self):
        from repro.core.policies import FrontEndMSPolicy

        policy = FrontEndMSPolicy(8, 2, accept_node=0, seed=1)
        with pytest.raises(ValueError, match="must remain a master"):
            policy.set_masters({1, 2})
        policy.set_masters({0, 2})      # keeping the front end is fine
        assert policy.master_ids == frozenset({0, 2})

    def test_hetero_reweights_static_dispatch(self):
        from repro.core.policies import HeteroMSPolicy

        speeds = [4.0, 1.0, 1.0, 1.0]
        policy = HeteroMSPolicy(4, 2, cpu_speeds=speeds, seed=1)
        assert policy._master_weights == pytest.approx([0.8, 0.2])
        policy.set_masters({1, 2})
        assert policy._master_weights == pytest.approx([0.5, 0.5])

    def test_routing_uses_new_masters(self):
        policy = make_ms(4, 1, seed=1)
        view = FakeView(4)
        policy.set_masters({3})
        for i in range(10):
            route = policy.route(make_static(req_id=i), view)
            assert route.node_id == 3
