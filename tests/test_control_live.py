"""Live-substrate control tests: the ROLE frame round-trip on a real
socket, the asyncio reconciliation loop on an in-process master, and the
full loopback cluster with the controller attached."""

from __future__ import annotations

import asyncio

import pytest

from repro.control import ControlConfig, EstimatorConfig, LiveControlLoop
from repro.live import protocol
from repro.live.cluster import LiveCluster, LiveClusterConfig
from repro.live.kernel import BusyMeter
from repro.live.loadgen import run_loadgen
from repro.live.master import MasterServer
from repro.live.node import CGIService, WorkerPool
from repro.live.validate import make_validation_trace
from repro.obs.audit import audit_spans
from repro.obs.trace import CONTROL


def fast_control(**kwargs):
    kwargs.setdefault("period", 0.1)
    kwargs.setdefault("cooldown", 0.2)
    kwargs.setdefault("confirm_ticks", 1)
    kwargs.setdefault("estimator",
                      EstimatorConfig(min_class_samples=10, warm_windows=1))
    return ControlConfig(**kwargs)


def test_role_frame_round_trip():
    """A ROLE frame flips the node's announced role and is acked with
    role_ok carrying the same sequence number."""

    async def scenario():
        pool = WorkerPool(node_id=1, workers=1, meter=BusyMeter(1))
        service = CGIService(node_id=1, pool=pool)
        port = await service.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            protocol.send_message(writer, protocol.hello(0))
            await writer.drain()
            await protocol.expect_hello(reader)

            protocol.send_message(writer, {"op": "role", "node": 1,
                                           "role": "master", "seq": 7})
            await writer.drain()
            ack = await protocol.read_message(reader)

            # In-flight execution is role-agnostic: the node still
            # serves CGI frames after the transition.
            protocol.send_message(writer, {"op": "cgi", "id": 42,
                                           "cpu": 0.001, "io": 0.0})
            await writer.drain()
            ops = []
            while len(ops) < 3:
                msg = await protocol.read_message(reader)
                ops.append(msg["op"])
            writer.close()
            await writer.wait_closed()
            return service, ack, ops
        finally:
            await service.stop()
            pool.shutdown()

    service, ack, ops = asyncio.run(scenario())
    assert ack == {"op": "role_ok", "node": 1, "role": "master", "seq": 7}
    assert service.role == "master"
    assert service.role_changes == 1
    assert ops == ["admit", "start", "done"]


def test_live_control_loop_on_in_process_master():
    """The asyncio loop ticks a one-node master: cold-window discipline
    holds (nothing to promote), CONTROL spans land on the master's
    tracer, and the stream still audits."""
    from tests.conftest import make_cgi, make_static

    async def scenario():
        master = MasterServer(node_id=0, num_nodes=1, workers=2)
        await master.start()
        loop = LiveControlLoop(master, fast_control()).start()
        try:
            for i in range(8):
                req = (make_static(req_id=i, cpu=0.001) if i % 2
                       else make_cgi(req_id=i, cpu=0.002, io=0.002))
                await master.serve_request(req)
            await asyncio.sleep(0.35)    # a few control periods
        finally:
            await loop.stop()
            await master.stop()
        return master, loop.controller

    master, controller = asyncio.run(scenario())
    assert controller.ticks >= 2
    # One node: nothing may ever be promoted/demoted.
    assert controller.applied == []
    control = [s for s in master.tracer.spans if s[1] == CONTROL]
    tags = {s[4][0] for s in control}
    assert "attach" in tags and "roles" in tags
    report = audit_spans(master.tracer.spans,
                         conservation=master.conservation())
    assert report.ok, report.render()


@pytest.mark.integration
def test_loopback_cluster_with_controller():
    """1 master + 2 slave processes under load with the reconciliation
    loop armed: no request lost, and the span stream (CONTROL spans
    included) passes the auditor."""
    trace = make_validation_trace(rate=60.0, duration=2.0, mu_h=240.0,
                                  inv_r=12.0, seed=11)

    async def scenario():
        cfg = LiveClusterConfig(num_slaves=2, seed=11)
        async with LiveCluster(cfg) as cluster:
            loop = LiveControlLoop(cluster.master, fast_control()).start()
            try:
                result = await run_loadgen(cluster.master.host,
                                           cluster.master.http_port, trace)
            finally:
                await loop.stop()
            ledger = cluster.master.conservation()
            return (cluster.master, result, loop.controller, ledger)

    master, result, controller, ledger = asyncio.run(scenario())
    assert result.errors == 0
    assert result.ok == len(trace)
    assert controller.ticks > 0
    assert ledger["in_flight"] == 0
    report = audit_spans(master.tracer.spans, conservation=ledger)
    assert report.ok, report.render()
