"""Unit tests for the live load daemon: heartbeats, staleness, suspicion."""

from __future__ import annotations

import numpy as np

from repro.live.kernel import BusyMeter, LiveClock
from repro.live.loadd import (
    LiveLoadView,
    LoadReporter,
    LoadTable,
    decode_heartbeat,
    encode_heartbeat,
)
from repro.sim.config import MonitorConfig


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def cfg() -> MonitorConfig:
    return MonitorConfig(period=0.2, smoothing=0.7, suspect_after=1.0,
                         probation_samples=2)


def test_heartbeat_codec_and_garbage():
    payload = encode_heartbeat(3, 17, 0.93, 0.71, 2)
    msg = decode_heartbeat(payload)
    assert msg == {"node": 3, "seq": 17, "cpu_idle": 0.93,
                   "disk_avail": 0.71, "active": 2}
    assert decode_heartbeat(b"\xff\x00 not json") is None
    assert decode_heartbeat(b'{"seq": 1}') is None   # no node field


def test_table_rejects_replayed_and_out_of_range():
    table = LoadTable(2, cfg())
    assert table.observe(0, 1, 0.5, 0.5, 1, now=0.0)
    assert not table.observe(0, 1, 0.5, 0.5, 1, now=0.1)   # duplicate seq
    assert not table.observe(0, 0, 0.5, 0.5, 1, now=0.1)   # reordered
    assert not table.observe(5, 2, 0.5, 0.5, 1, now=0.1)   # unknown node
    assert table.rejected == 3
    assert table.heartbeats == 1


def test_smoothing_is_ewma():
    table = LoadTable(1, cfg())
    table.observe(0, 1, 0.0, 0.0, 0, now=0.0)
    # smoothing 0.7 over the optimistic 1.0 prior.
    assert np.isclose(table.cpu_idle[0], 0.3)
    table.observe(0, 2, 0.0, 0.0, 0, now=0.2)
    assert np.isclose(table.cpu_idle[0], 0.09)


def test_never_heard_is_suspect_until_probation_clears():
    table = LoadTable(2, cfg())
    view = LiveLoadView(table, FakeClock(0.0))
    assert view.is_suspect(0) and view.is_suspect(1)
    assert not view.all_healthy()
    # One heartbeat is not enough (probation_samples=2)...
    table.observe(0, 1, 1.0, 1.0, 0, now=0.0)
    assert view.is_suspect(0)
    # ...a second consecutive one clears it.
    table.observe(0, 2, 1.0, 1.0, 0, now=0.2)
    assert not view.is_suspect(0)
    assert view.is_suspect(1)
    assert list(view.healthy_array()) == [True, False]


def test_staleness_restarts_probation():
    table = LoadTable(1, cfg())
    clock = FakeClock(0.0)
    view = LiveLoadView(table, clock)
    table.observe(0, 1, 1.0, 1.0, 0, now=0.0)
    table.observe(0, 2, 1.0, 1.0, 0, now=0.2)
    assert not view.is_suspect(0)
    # Silence for longer than suspect_after -> suspect again.
    clock.now = 2.0
    assert view.is_suspect(0)
    # A single heartbeat after the gap is on probation...
    table.observe(0, 3, 1.0, 1.0, 0, now=2.0)
    clock.now = 2.1
    assert view.is_suspect(0)
    # ...and an unbroken stream works it off.
    table.observe(0, 4, 1.0, 1.0, 0, now=2.2)
    clock.now = 2.3
    assert not view.is_suspect(0)


def test_dead_flag_and_reconnect_probation():
    table = LoadTable(1, cfg())
    view = LiveLoadView(table, FakeClock(0.5))
    table.observe(0, 1, 1.0, 1.0, 0, now=0.0)
    table.observe(0, 2, 1.0, 1.0, 0, now=0.2)
    assert view.all_healthy() and view.all_alive()
    table.mark_dead(0)
    assert not view.is_alive(0)
    assert not view.all_healthy()
    table.mark_alive(0)
    # Reconnection puts the node back on probation despite fresh samples.
    assert view.is_alive(0)
    assert view.is_suspect(0)


def test_busy_meter_windows():
    meter = BusyMeter(capacity=2, now=0.0)
    meter.add(0.5, 1.0)
    cpu_idle, disk_avail = meter.sample(now=1.0)
    # 0.5 busy-seconds over a 1 s window with capacity 2 -> 25% busy.
    assert np.isclose(cpu_idle, 0.75)
    assert np.isclose(disk_avail, 0.5)
    # The next window starts fresh.
    cpu_idle, disk_avail = meter.sample(now=2.0)
    assert cpu_idle == 1.0 and disk_avail == 1.0


def test_reporter_beat_once_delivers_locally():
    table = LoadTable(1, cfg())
    clock = LiveClock()
    meter = BusyMeter(capacity=1, now=clock.now)
    seen = []

    def local_observe(payload: bytes) -> None:
        seen.append(payload)
        table.observe_datagram(payload, clock.now)

    reporter = LoadReporter(0, meter, clock, local_observe=local_observe,
                            cfg=cfg())
    reporter.beat_once(clock.now)
    reporter.beat_once(clock.now)
    assert len(seen) == 2
    assert table.heartbeats == 2
    assert reporter.seq == 2
