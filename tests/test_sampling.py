"""Unit tests for the offline demand sampler."""

import numpy as np
import pytest

from repro.core.sampling import DemandSampler
from tests.conftest import make_cgi, make_static


class TestObserve:
    def test_single_observation(self):
        s = DemandSampler()
        s.observe("cgi:spin", cpu_time=0.9, io_time=0.1)
        assert s.w("cgi:spin") == pytest.approx(0.9)

    def test_running_mean_over_observations(self):
        s = DemandSampler()
        s.observe("x", 1.0, 0.0)
        s.observe("x", 0.0, 1.0)
        assert s.w("x") == pytest.approx(0.5)

    def test_time_weighted_not_count_weighted(self):
        s = DemandSampler()
        s.observe("x", 3.0, 1.0)   # w=0.75 but heavy
        s.observe("x", 0.0, 0.1)   # tiny io-only
        assert s.w("x") == pytest.approx(3.0 / 4.1)

    def test_unknown_family_uses_default(self):
        s = DemandSampler(default_w=0.4)
        assert s.w("nope") == pytest.approx(0.4)

    def test_zero_observation_ignored(self):
        s = DemandSampler()
        s.observe("x", 0.0, 0.0)
        assert s.sample_count("x") == 0

    def test_budget_cap(self):
        s = DemandSampler(max_samples_per_family=3)
        for _ in range(10):
            s.observe("x", 1.0, 0.0)
        assert s.sample_count("x") == 3

    def test_negative_rejected(self):
        s = DemandSampler()
        with pytest.raises(ValueError):
            s.observe("x", -1.0, 0.0)

    def test_families_listing(self):
        s = DemandSampler()
        s.observe("a", 1, 1)
        s.observe("b", 1, 1)
        assert set(s.families) == {"a", "b"}


class TestOfflineTraining:
    def test_train_from_requests(self):
        s = DemandSampler()
        reqs = [make_cgi(req_id=i, cpu=0.03, io=0.003) for i in range(20)]
        n = s.train_offline(reqs)
        assert n == 20
        assert s.w("cgi:spin") == pytest.approx(0.03 / 0.033)

    def test_noise_keeps_estimate_close(self):
        s = DemandSampler()
        reqs = [make_cgi(req_id=i, cpu=0.03, io=0.003) for i in range(200)]
        s.train_offline(reqs, noise=0.1, rng=np.random.default_rng(1))
        assert s.w("cgi:spin") == pytest.approx(0.03 / 0.033, abs=0.05)

    def test_mixed_families_tracked_separately(self):
        s = DemandSampler()
        reqs = ([make_cgi(req_id=i, cpu=0.03, io=0.003) for i in range(5)]
                + [make_cgi(req_id=5 + i, cpu=0.003, io=0.03,
                            type_key="cgi:catalog") for i in range(5)]
                + [make_static(req_id=100 + i) for i in range(5)])
        s.train_offline(reqs)
        assert s.w("cgi:spin") > 0.8
        assert s.w("cgi:catalog") < 0.2
        assert s.w("static") == pytest.approx(1.0)

    def test_respects_budget_during_training(self):
        s = DemandSampler(max_samples_per_family=10)
        reqs = [make_cgi(req_id=i) for i in range(50)]
        n = s.train_offline(reqs)
        assert n == 10

    def test_bad_noise_rejected(self):
        s = DemandSampler()
        with pytest.raises(ValueError):
            s.train_offline([], noise=-0.5)


class TestConstruction:
    def test_bad_default_w(self):
        with pytest.raises(ValueError):
            DemandSampler(default_w=2.0)

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            DemandSampler(max_samples_per_family=0)
