"""Integration tests: whole-pipeline behaviour across modules.

These encode the paper's qualitative claims at small scale so the suite
stays fast while still catching regressions that only appear end-to-end.
"""

import pytest

from repro.analysis.experiments import iso_load_rate
from repro.analysis.sweep import run_bakeoff
from repro.core.policies import FlatPolicy, make_ms
from repro.core.queuing import Workload, flat_stretch
from repro.core.theorem import optimal_masters
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import ADL, KSU, UCB


pytestmark = pytest.mark.integration


class TestConservation:
    def test_every_request_completes_exactly_once(self):
        cfg = paper_sim_config(num_nodes=8, seed=1)
        trace = generate_trace(UCB, rate=400, duration=5.0, seed=2)
        result = replay(cfg, make_ms(8, 3, seed=3), trace,
                        warmup_fraction=0.0)
        assert result.report.completed == len(trace)
        assert sum(n.completed for n in result.cluster.nodes) == len(trace)
        assert sum(n.admitted for n in result.cluster.nodes) == len(trace)
        assert all(n.active == 0 for n in result.cluster.nodes)

    def test_cpu_work_matches_demand(self):
        """Total CPU busy time = demands + forks + switch overheads."""
        cfg = paper_sim_config(num_nodes=2, seed=1)
        cfg.memory.enable_paging = False
        trace = generate_trace(UCB, rate=100, duration=4.0, seed=2)
        result = replay(cfg, FlatPolicy(2, seed=3), trace,
                        warmup_fraction=0.0)
        cluster = result.cluster
        cpu_demand = sum(q.cpu_demand for q in trace)
        forks = sum(1 for q in trace if q.is_dynamic) \
            * cfg.cpu.fork_overhead
        switches = sum(n.cpu.switches for n in cluster.nodes) \
            * cfg.cpu.context_switch_overhead
        busy = sum(n.cpu.busy_time for n in cluster.nodes)
        assert busy == pytest.approx(cpu_demand + forks + switches,
                                     rel=1e-6)

    def test_disk_work_matches_demand_without_paging(self):
        cfg = paper_sim_config(num_nodes=2, seed=1)
        cfg.memory.enable_paging = False  # no cache misses, no refaults
        trace = generate_trace(ADL, rate=60, duration=4.0, seed=2)
        result = replay(cfg, FlatPolicy(2, seed=3), trace,
                        warmup_fraction=0.0)
        io_demand = sum(q.io_demand for q in trace)
        busy = sum(n.disk.busy_time for n in result.cluster.nodes)
        assert busy == pytest.approx(io_demand, rel=1e-6)


class TestPaperClaims:
    def test_ms_beats_flat_on_cgi_heavy_workload(self):
        """The headline direction: under a CGI-heavy load at meaningful
        utilisation, optimized M/S beats uniform random dispatch."""
        lam = iso_load_rate(ADL, 1200.0, 1 / 40, 8, 0.75)
        res = run_bakeoff(ADL, lam=lam, r=1 / 40, p=8, duration=8.0,
                          seed=5, policies=("MS", "Flat"))
        assert res.improvement("Flat") > 10.0

    def test_reservation_protects_statics_under_pressure(self):
        """M/S-nr lets CGI swamp the masters; full M/S must keep static
        stretch lower at high load."""
        lam = iso_load_rate(UCB, 1200.0, 1 / 80, 8, 0.88)
        res = run_bakeoff(UCB, lam=lam, r=1 / 80, p=8, duration=8.0,
                          seed=5, policies=("MS", "MS-nr"))
        ms = res.reports["MS"]
        nr = res.reports["MS-nr"]
        assert ms.overall.stretch < nr.overall.stretch

    def test_masters_host_all_statics(self):
        cfg = paper_sim_config(num_nodes=8, seed=1)
        trace = generate_trace(KSU, rate=300, duration=4.0, seed=2)
        result = replay(cfg, make_ms(8, 2, seed=3), trace)
        metrics = result.cluster.metrics
        for kind, node in zip(metrics.kinds, metrics.nodes):
            if kind == 0:  # static
                assert node < 2

    def test_reservation_cap_respected_in_aggregate(self):
        cfg = paper_sim_config(num_nodes=8, seed=1)
        trace = generate_trace(ADL, rate=300, duration=6.0, seed=2)
        policy = make_ms(8, 2, pretrain_sampler(trace), seed=3)
        result = replay(cfg, policy, trace, warmup_fraction=0.0)
        frac = result.report.master_dynamic_fraction
        # The achieved fraction hovers at/below the cap; allow headroom for
        # the EWMA gate's lag.
        assert frac <= max(policy.theta_cap, 0.05) + 0.15

    def test_analytic_sizing_transfers_to_simulation(self):
        """Theorem-1's m should be within a factor of ~2 of the best
        simulated m on a moderate workload."""
        lam = 400.0
        w = Workload.from_ratios(lam=lam, a=KSU.arrival_ratio_a,
                                 mu_h=1200.0, r=1 / 40, p=8)
        m_model = optimal_masters(w).m
        stretches = {}
        for m in range(1, 8):
            res = run_bakeoff(KSU, lam=lam, r=1 / 40, p=8, duration=6.0,
                              seed=7, policies=("MS",), m=m)
            stretches[m] = res.stretch("MS")
        m_sim = min(stretches, key=stretches.get)
        assert abs(m_model - m_sim) <= 3
        # And the model's choice must not be catastrophic in simulation.
        assert stretches[m_model] <= 1.8 * stretches[m_sim]


class TestCrossSeedStability:
    def test_improvement_sign_stable_across_seeds(self):
        """MS vs Flat at high utilisation should win for every seed."""
        lam = iso_load_rate(ADL, 1200.0, 1 / 40, 8, 0.8)
        for seed in (1, 2, 3):
            res = run_bakeoff(ADL, lam=lam, r=1 / 40, p=8, duration=6.0,
                              seed=seed, policies=("MS", "Flat"))
            assert res.improvement("Flat") > 0.0
