"""The bench harness edges: scale resolution, the conftest usage error,
and the baseline record/compare round trip."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf.bench import resolve_scale
from repro.perf.record import (
    BenchRecord,
    compare_to_baseline,
    load_baseline,
    write_baseline,
    write_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# -- REPRO_BENCH_SCALE resolution --------------------------------------------


def test_resolve_scale_defaults_to_quick(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert resolve_scale() == "quick"
    assert resolve_scale(env="quick") == "quick"
    assert resolve_scale(env="FULL") == "full"


def test_resolve_scale_quick_flag_overrides_env():
    assert resolve_scale(quick_flag=True, env="full") == "quick"


def test_resolve_scale_rejects_garbage():
    with pytest.raises(SystemExit, match="REPRO_BENCH_SCALE"):
        resolve_scale(env="jumbo")


def test_bad_scale_is_a_pytest_usage_error_not_a_traceback():
    """`REPRO_BENCH_SCALE=bogus pytest benchmarks/...` must exit with
    pytest's usage-error code (4) and a one-line ERROR, not an
    import-time ValueError traceback aborting collection."""
    env = dict(os.environ, REPRO_BENCH_SCALE="bogus",
               PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/conftest.py",
         "--collect-only", "-q", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == 4, proc.stdout + proc.stderr
    combined = proc.stdout + proc.stderr
    assert "REPRO_BENCH_SCALE must be one of quick|full" in combined
    assert "Traceback" not in combined


# -- perf ledger -------------------------------------------------------------


def _record(**overrides) -> BenchRecord:
    rec = BenchRecord(scale="quick", jobs=2, engine_events_per_sec=1_000_000.0,
                      config_fingerprint="abc123")
    rec.figures["fig4-quick"] = {"wall_s": 3.5, "configs": 8.0, "jobs": 2.0}
    for k, v in overrides.items():
        setattr(rec, k, v)
    return rec


def test_write_record_and_baseline_roundtrip(tmp_path):
    rec = _record().finalize()
    path = write_record(rec, tmp_path)
    assert path.name.startswith("BENCH_") and path.name.endswith(".json")
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == "repro-bench/1"
    assert on_disk["engine_events_per_sec"] == rec.engine_events_per_sec
    assert on_disk["figures"]["fig4-quick"]["wall_s"] == 3.5

    base_path = write_baseline(rec, tmp_path / "baseline.json")
    baseline = load_baseline(base_path)
    assert baseline["engine_events_per_sec"] == rec.engine_events_per_sec
    assert baseline["figures"] == {"fig4-quick": 3.5}


def test_gate_passes_within_tolerance_and_fails_beyond():
    baseline = {"scale": "quick", "config_fingerprint": "abc123",
                "engine_events_per_sec": 1_000_000.0}
    ok, _ = compare_to_baseline(_record(engine_events_per_sec=850_000.0),
                                baseline)
    assert ok  # -15% is inside the 20% tolerance
    ok, msg = compare_to_baseline(_record(engine_events_per_sec=700_000.0),
                                  baseline)
    assert not ok and msg.startswith("PERF REGRESSION")


def test_gate_skips_on_scale_or_fingerprint_mismatch():
    baseline = {"scale": "quick", "config_fingerprint": "abc123",
                "engine_events_per_sec": 1_000_000.0}
    ok, msg = compare_to_baseline(
        _record(scale="full", engine_events_per_sec=1.0), baseline)
    assert ok and "skipping comparison" in msg
    ok, msg = compare_to_baseline(
        _record(config_fingerprint="zzz", engine_events_per_sec=1.0),
        baseline)
    assert ok and "fingerprint changed" in msg


def test_missing_baseline_is_none(tmp_path):
    assert load_baseline(tmp_path / "nope.json") is None
