"""Deterministic dispatch tests: the simulator's M/S policy driven by a
live :class:`LoadTable` instead of the simulated monitor.

These pin down the live master's routing semantics without sockets: the
reservation gate (theta'_2) really closes masters to dynamic work, the
min-RSRC rule really follows the heartbeat telemetry, and suspect nodes
are really excluded.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import FrontEndMSPolicy
from repro.live.loadd import LiveLoadView, LoadTable
from repro.sim.config import MonitorConfig

from tests.conftest import make_cgi, make_static


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def make_view(idle_by_node, now: float = 1.0):
    """A healthy LiveLoadView where node i reports ``idle_by_node[i]``
    for both resources (smoothing=1.0 makes heartbeats take effect
    verbatim)."""
    cfg = MonitorConfig(period=0.2, smoothing=1.0, suspect_after=1.0,
                        probation_samples=2)
    table = LoadTable(len(idle_by_node), cfg)
    for node, idle in enumerate(idle_by_node):
        table.observe(node, 1, idle, idle, 0, now=now - 0.2)
        table.observe(node, 2, idle, idle, 0, now=now)
    clock = FakeClock(now)
    return table, LiveLoadView(table, clock), clock


def make_policy(**kwargs):
    policy = FrontEndMSPolicy(num_nodes=3, num_masters=1, accept_node=0,
                              seed=0, **kwargs)
    policy.trace_decisions = True
    return policy


def test_static_pinned_to_accepting_master():
    _, view, _ = make_view([0.1, 1.0, 1.0])
    policy = make_policy()
    route = policy.route(make_static(req_id=1), view)
    # Statics never leave the front end, however loaded it looks.
    assert route.node_id == 0 and not route.remote


def test_dynamic_follows_min_rsrc_from_heartbeats():
    _, view, _ = make_view([0.2, 0.9, 0.5])
    policy = make_policy()
    route = policy.route(make_cgi(req_id=1), view)
    # RSRC = w/cpu_idle + (1-w)/disk_avail is minimised by node 1.
    assert route.node_id == 1 and route.remote
    w, rsrc, gate, eff_cap, master_frac = policy.last_decision
    assert w == 0.5
    assert np.isclose(rsrc, 0.5 / 0.9 + 0.5 / 0.9)
    assert gate is True          # fraction 0 < theta_init: masters allowed
    assert master_frac == 0.0


def test_closed_reservation_gate_excludes_masters():
    _, view, _ = make_view([1.0, 0.3, 0.3])
    policy = make_policy()
    assert policy.reservation is not None
    # Saturate the running master-admission fraction above the cap.
    for _ in range(200):
        policy.reservation.record_decision(True)
    assert not policy.reservation.admit_to_master()
    for req_id in range(1, 6):
        route = policy.route(make_cgi(req_id=req_id), view)
        # Master 0 advertises the best RSRC but the gate holds it out.
        assert route.node_id in (1, 2)
        gate = policy.last_decision[2]
        assert gate is False


def test_gate_reopens_as_fraction_decays():
    _, view, _ = make_view([1.0, 0.3, 0.3])
    policy = make_policy()
    for _ in range(200):
        policy.reservation.record_decision(True)
    # Slave-side decisions decay the fraction back under the cap.
    for _ in range(200):
        policy.reservation.record_decision(False)
    route = policy.route(make_cgi(req_id=1), view)
    assert route.node_id == 0       # the idlest node is eligible again
    assert policy.last_decision[2] is True


def test_suspect_node_is_avoided():
    table, view, clock = make_view([0.5, 1.0, 0.4], now=1.0)
    # Node 1 goes silent; nodes 0 and 2 keep heartbeating.
    clock.now = 3.0
    for seq, t in ((3, 2.8), (4, 3.0)):
        table.observe(0, seq, 0.5, 0.5, 0, now=t)
        table.observe(2, seq, 0.4, 0.4, 0, now=t)
    assert view.is_suspect(1) and not view.is_suspect(0)
    policy = make_policy()
    for req_id in range(1, 6):
        route = policy.route(make_cgi(req_id=req_id), view)
        assert route.node_id != 1


def test_on_abort_unwinds_outstanding_work():
    _, view, _ = make_view([0.2, 0.9, 0.5])
    policy = make_policy()
    request = make_cgi(req_id=1)
    route = policy.route(request, view)
    assert policy._outstanding_cpu[route.node_id] > 0
    policy.on_abort(request, route.node_id)
    assert policy._outstanding_cpu[route.node_id] == 0
    assert policy._outstanding_disk[route.node_id] == 0
    assert request.req_id not in policy._dispatched_w
