"""Unit tests for burst-plan construction and process state."""

import numpy as np
import pytest

from repro.sim.process import (
    CPU_BURST,
    IO_BURST,
    MIN_CPU_SLIVER,
    ProcState,
    SimProcess,
    build_plan,
)
from tests.conftest import make_cgi, make_static


def cpu_total(plan):
    return sum(d for k, d in plan if k == CPU_BURST)


def io_total(plan):
    return sum(d for k, d in plan if k == IO_BURST)


class TestBuildPlan:
    def test_pure_cpu_single_burst(self):
        plan = build_plan(0.03, 0.0, 0.016)
        assert plan == [(CPU_BURST, 0.03)]

    def test_totals_conserved(self):
        plan = build_plan(0.030, 0.020, 0.016)
        assert cpu_total(plan) == pytest.approx(0.030)
        assert io_total(plan) == pytest.approx(0.020)

    def test_starts_and_ends_with_cpu(self):
        plan = build_plan(0.010, 0.050, 0.016)
        assert plan[0][0] == CPU_BURST
        assert plan[-1][0] == CPU_BURST

    def test_alternates(self):
        plan = build_plan(0.010, 0.050, 0.016)
        for (k1, _), (k2, _) in zip(plan, plan[1:]):
            assert k1 != k2

    def test_io_chunking(self):
        plan = build_plan(0.010, 0.064, 0.016)
        io_bursts = [d for k, d in plan if k == IO_BURST]
        assert len(io_bursts) == 4

    def test_pure_io_gets_cpu_sliver(self):
        plan = build_plan(0.0, 0.020, 0.016)
        assert cpu_total(plan) == pytest.approx(MIN_CPU_SLIVER)
        assert io_total(plan) == pytest.approx(0.020)

    def test_jitter_preserves_totals(self):
        rng = np.random.default_rng(3)
        plan = build_plan(0.030, 0.064, 0.016, rng)
        assert cpu_total(plan) == pytest.approx(0.030)
        assert io_total(plan) == pytest.approx(0.064)

    def test_all_durations_positive(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            plan = build_plan(0.010, 0.033, 0.008, rng)
            assert all(d > 0 for _, d in plan)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_plan(-1.0, 0.0, 0.016)
        with pytest.raises(ValueError):
            build_plan(0.01, 0.01, 0.0)


class TestSimProcess:
    def _proc(self, plan):
        return SimProcess(make_cgi(), node_id=0, plan=plan, admit_time=0.0)

    def test_initial_cursor(self):
        proc = self._proc([(CPU_BURST, 0.01), (IO_BURST, 0.02)])
        assert proc.current_kind == CPU_BURST
        assert proc.burst_remaining == pytest.approx(0.01)
        assert proc.state is ProcState.NEW
        assert not proc.finished

    def test_advance_walks_plan(self):
        proc = self._proc([(CPU_BURST, 0.01), (IO_BURST, 0.02),
                           (CPU_BURST, 0.03)])
        assert proc.advance() == IO_BURST
        assert proc.burst_remaining == pytest.approx(0.02)
        assert proc.advance() == CPU_BURST
        assert proc.advance() is None
        assert proc.finished

    def test_splice_io_inserts_after_cursor(self):
        proc = self._proc([(CPU_BURST, 0.01), (CPU_BURST, 0.03)])
        proc.splice_io(0.005)
        assert proc.plan[1] == (IO_BURST, 0.005)
        assert proc.advance() == IO_BURST

    def test_splice_zero_is_noop(self):
        proc = self._proc([(CPU_BURST, 0.01)])
        proc.splice_io(0.0)
        assert len(proc.plan) == 1

    def test_static_request_helpers(self):
        req = make_static(cpu=0.8e-3)
        assert req.demand == pytest.approx(0.8e-3)
        assert not req.is_dynamic
        assert req.cpu_fraction == pytest.approx(1.0)

    def test_dynamic_request_helpers(self):
        req = make_cgi(cpu=0.03, io=0.01)
        assert req.is_dynamic
        assert req.cpu_fraction == pytest.approx(0.75)


class TestRequestValidation:
    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError):
            make_cgi(cpu=0.0, io=0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            make_cgi(cpu=-0.1)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            make_static(arrival=-1.0)

    def test_negative_mem_rejected(self):
        with pytest.raises(ValueError):
            make_cgi(mem_pages=-1)
