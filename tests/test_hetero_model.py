"""Tests for the heterogeneous Theorem-1 extension."""

import pytest

from repro.core.hetero import (
    HeteroDesign,
    hetero_flat_stretch,
    hetero_ms_stretch,
    hetero_reservation_ratio,
    optimal_masters_hetero,
)
from repro.core.queuing import Workload, flat_stretch, ms_stretch
from repro.core.theorem import optimal_masters, reservation_ratio


@pytest.fixture
def w():
    # Offered load ~5.3 node-equivalents on p=8: comfortably feasible.
    return Workload.from_ratios(lam=500, a=3 / 7, mu_h=1200, r=1 / 40,
                                p=8)


class TestHomogeneousReduction:
    """With unit speeds the heterogeneous forms must reproduce the
    homogeneous ones exactly."""

    def test_flat_reduces(self, w):
        speeds = [1.0] * w.p
        assert hetero_flat_stretch(w, speeds) == pytest.approx(
            flat_stretch(w))

    def test_ms_reduces(self, w):
        speeds = [1.0] * w.p
        hom = ms_stretch(w, m=3, theta=0.1)
        het = hetero_ms_stretch(w, speeds, master_ids=(0, 1, 2), theta=0.1)
        assert het.total == pytest.approx(hom.total)
        assert het.master == pytest.approx(hom.master)
        assert het.slave == pytest.approx(hom.slave)

    def test_reservation_reduces(self, w):
        assert hetero_reservation_ratio(w.a, w.r, 3.0, 8.0) == \
            pytest.approx(reservation_ratio(w.a, w.r, 3, 8))

    def test_optimal_close_to_homogeneous(self, w):
        speeds = [1.0] * w.p
        het = optimal_masters_hetero(w, speeds)
        hom = optimal_masters(w)
        # Same analysis family: designs must agree within a node.
        assert abs(len(het.master_ids) - hom.m) <= 1
        assert het.sm == pytest.approx(hom.sm, rel=0.15)


class TestCapacityScaling:
    def test_doubling_all_speeds_halves_utilisation_effects(self, w):
        slow = hetero_flat_stretch(w, [1.0] * w.p)
        fast = hetero_flat_stretch(w, [2.0] * w.p)
        assert fast < slow

    def test_master_capacity_governs_stability(self, w):
        # One very slow master cannot absorb the static stream.
        speeds = [0.05] + [2.0] * (w.p - 1)
        res = hetero_ms_stretch(w, speeds, master_ids=(0,), theta=0.0)
        assert not res.stable
        # A fast master can.
        speeds = [2.0] + [1.0] * (w.p - 1)
        res = hetero_ms_stretch(w, speeds, master_ids=(0,), theta=0.0)
        assert res.stable


class TestDesignChoice:
    def test_fastest_first_wins_under_count_weighted_stretch(self, w):
        """The stretch metric favours the numerous small statics, which
        finish fastest on fast machines — so the fast nodes become
        masters (see the module docstring's count/capacity analysis)."""
        speeds = [0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0]
        design = optimal_masters_hetero(w, speeds)
        assert design.order == "fastest-first"
        assert set(design.master_ids) <= {6, 7}

    def test_explicit_order_respected(self, w):
        speeds = [0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0]
        design = optimal_masters_hetero(w, speeds, order="fastest-first")
        assert design.order == "fastest-first"

    def test_beats_hetero_flat(self, w):
        speeds = [0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0]
        design = optimal_masters_hetero(w, speeds)
        assert design.sm < hetero_flat_stretch(w, speeds)

    def test_theta_in_unit_interval(self, w):
        speeds = [0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 4.0]
        design = optimal_masters_hetero(w, speeds)
        assert 0.0 <= design.theta <= 1.0


class TestValidation:
    def test_speed_length_mismatch(self, w):
        with pytest.raises(ValueError):
            hetero_flat_stretch(w, [1.0] * (w.p - 1))

    def test_nonpositive_speed(self, w):
        with pytest.raises(ValueError):
            hetero_flat_stretch(w, [1.0] * (w.p - 1) + [0.0])

    def test_bad_master_ids(self, w):
        with pytest.raises(ValueError):
            hetero_ms_stretch(w, [1.0] * w.p, master_ids=(), theta=0.0)
        with pytest.raises(ValueError):
            hetero_ms_stretch(w, [1.0] * w.p, master_ids=(99,), theta=0.0)

    def test_all_masters_needs_theta_one(self, w):
        with pytest.raises(ValueError):
            hetero_ms_stretch(w, [1.0] * w.p,
                              master_ids=tuple(range(w.p)), theta=0.5)

    def test_infeasible_load(self):
        w = Workload.from_ratios(lam=100000, a=1.0, mu_h=1200, r=1 / 40,
                                 p=4)
        with pytest.raises(ValueError):
            optimal_masters_hetero(w, [1.0] * 4)

    def test_bad_reservation_args(self):
        with pytest.raises(ValueError):
            hetero_reservation_ratio(0.5, 0.025, 0.0, 8.0)
        with pytest.raises(ValueError):
            hetero_reservation_ratio(0.5, 0.025, 9.0, 8.0)
