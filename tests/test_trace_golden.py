"""Golden-trace regression: the span stream of a small fixed-seed M/S
replay is committed to the repo; any silent change to dispatch order,
device interleaving, or timestamps fails here with a span-level diff.

Regenerate the golden file after an *intentional* scheduling change:

    PYTHONPATH=src python tests/test_trace_golden.py --regen
"""

from pathlib import Path

from repro.core.policies import MSPolicy
from repro.obs import Tracer, load_jsonl, save_jsonl, span_digest
from repro.sim.config import SimConfig
from repro.workload.generator import generate_trace
from repro.workload.replay import replay
from repro.workload.traces import KSU

GOLDEN = Path(__file__).parent / "data" / "golden_trace.jsonl"

#: Frozen run parameters.  Changing ANY of these invalidates the golden
#: file — regenerate it in the same commit.
PARAMS = dict(nodes=4, masters=2, rate=40.0, duration=3.0,
              trace_seed=9, sim_seed=11, policy_seed=3)


def _golden_run() -> Tracer:
    trace = generate_trace(KSU, rate=PARAMS["rate"],
                           duration=PARAMS["duration"],
                           seed=PARAMS["trace_seed"])
    policy = MSPolicy(num_nodes=PARAMS["nodes"],
                      num_masters=PARAMS["masters"],
                      seed=PARAMS["policy_seed"])
    tracer = Tracer()
    replay(SimConfig(num_nodes=PARAMS["nodes"], seed=PARAMS["sim_seed"]),
           policy, trace, tracer=tracer, audit=True)
    return tracer


def _span_line(span) -> str:
    t, kind, req, node, data = span
    return f"t={t:.9f} {kind} req={req} node={node} data={data!r}"


def _diff_message(got, want) -> str:
    """Human-readable first divergence between two span streams."""
    limit = min(len(got), len(want))
    at = next((i for i in range(limit)
               if span_digest([got[i]]) != span_digest([want[i]])), limit)
    lines = [f"span streams diverge at span #{at} "
             f"(got {len(got)} spans, golden has {len(want)}):"]
    for i in range(max(0, at - 2), min(limit, at + 3)):
        marker = ">>" if i == at else "  "
        lines.append(f"{marker} #{i} golden: {_span_line(want[i])}")
        lines.append(f"{marker} #{i} got:    {_span_line(got[i])}")
    lines.append("If this change to scheduling is intentional, regenerate "
                 "with: PYTHONPATH=src python tests/test_trace_golden.py "
                 "--regen")
    return "\n".join(lines)


def test_golden_trace_digest_is_stable():
    golden_spans, header = load_jsonl(GOLDEN)
    tracer = _golden_run()
    got = span_digest(tracer.spans)
    want = span_digest(golden_spans)
    assert header["meta"]["digest"] == want, (
        "golden file header digest does not match its own spans — the "
        "file was hand-edited; regenerate it")
    if got != want:
        raise AssertionError(_diff_message(tracer.spans, golden_spans))


def test_golden_file_replays_through_auditor():
    """The committed stream itself passes the structural audit."""
    from repro.obs import audit_spans

    golden_spans, _ = load_jsonl(GOLDEN)
    report = audit_spans(golden_spans)
    assert report.ok, report.render()


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("refusing to regenerate without --regen")
    tracer = _golden_run()
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    save_jsonl(tracer.spans, GOLDEN,
               meta={**PARAMS, "digest": span_digest(tracer.spans)})
    print(f"wrote {len(tracer.spans)} spans to {GOLDEN}")
