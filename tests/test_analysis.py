"""Unit tests for the analysis layer (reporting, sweep machinery, and the
cheap experiment harnesses)."""

import pytest

from repro.analysis.experiments import (
    FIG3_A_VALUES,
    fixed_master_count,
    iso_load_rate,
    run_fig3,
    run_table1,
    run_table2,
)
from repro.analysis.reporting import format_series, format_table, percent
from repro.analysis.sweep import (
    choose_masters,
    feasible_rate,
    make_bakeoff_policy,
    resource_utilization,
    run_bakeoff,
)
from repro.core.queuing import Workload
from repro.workload.traces import ADL, KSU, UCB


class TestReporting:
    def test_format_table_alignment(self):
        txt = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = txt.splitlines()
        assert lines[0].startswith("name")
        assert "22.25" in lines[3]

    def test_format_table_title(self):
        txt = format_table(["x"], [[1]], title="T")
        assert txt.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        txt = format_series("ms", [10, 20], [1.5, 2.5])
        assert "10:1.5" in txt and "20:2.5" in txt

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1.0, 2.0])

    def test_percent(self):
        assert percent(42.4) == "+42%"
        assert percent(-3.0) == "-3%"


class TestSweepHelpers:
    def test_resource_utilization_scales_with_rate(self):
        cpu1, disk1 = resource_utilization(ADL, 100, 1200, 1 / 40, 16)
        cpu2, disk2 = resource_utilization(ADL, 200, 1200, 1 / 40, 16)
        assert cpu2 == pytest.approx(2 * cpu1)
        assert disk2 == pytest.approx(2 * disk1)

    def test_adl_is_disk_bound(self):
        cpu, disk = resource_utilization(ADL, 400, 1200, 1 / 40, 16)
        assert disk > cpu

    def test_ucb_is_cpu_bound(self):
        cpu, disk = resource_utilization(UCB, 1000, 1200, 1 / 40, 16)
        assert cpu > disk

    def test_feasible_rate_boundary(self):
        assert feasible_rate(UCB, 100, 1200, 1 / 40, 32)
        assert not feasible_rate(UCB, 1_000_000, 1200, 1 / 40, 32)

    def test_choose_masters_in_range(self):
        for spec in (UCB, KSU, ADL):
            m = choose_masters(spec, 500, 1200, 1 / 40, 32)
            assert 1 <= m <= 31

    def test_choose_masters_single_node(self):
        assert choose_masters(UCB, 10, 1200, 1 / 40, 1) == 1

    def test_choose_masters_infeasible_fallback(self):
        # Way past single-server capacity: the two-resource fallback kicks
        # in and still returns a sane split.
        m = choose_masters(UCB, 3000, 1200, 1 / 80, 16)
        assert 1 <= m <= 15

    def test_make_bakeoff_policy_names(self):
        for name in ("MS", "MS-ns", "MS-nr", "MS-1", "Flat"):
            policy = make_bakeoff_policy(name, 8, 2, None, 0)
            assert policy.num_nodes == 8
        with pytest.raises(ValueError):
            make_bakeoff_policy("bogus", 8, 2, None, 0)

    def test_iso_load_rate_hits_target(self):
        lam = iso_load_rate(ADL, 1200, 1 / 40, 32, 0.8)
        w = Workload.from_ratios(lam=lam, a=ADL.arrival_ratio_a,
                                 mu_h=1200, r=1 / 40, p=32)
        assert w.total_offered == pytest.approx(0.8 * 32)

    def test_iso_load_rate_validation(self):
        with pytest.raises(ValueError):
            iso_load_rate(ADL, 1200, 1 / 40, 32, 1.5)


class TestBakeoff:
    def test_bakeoff_runs_requested_policies(self):
        res = run_bakeoff(KSU, lam=150, r=1 / 40, p=4, duration=2.0,
                          seed=1, policies=("MS", "Flat"))
        assert set(res.reports) == {"MS", "Flat"}
        assert res.stretch("MS") >= 1.0
        assert isinstance(res.improvement("Flat"), float)

    def test_bakeoff_fixed_m(self):
        res = run_bakeoff(KSU, lam=150, r=1 / 40, p=4, duration=2.0,
                          seed=1, policies=("MS",), m=2)
        assert res.m == 2


class TestCheapHarnesses:
    def test_fig3_shape(self):
        fig3 = run_fig3()
        assert len(fig3.rows) == 12
        # Improvement grows with CGI cost for every a-curve.
        for a in FIG3_A_VALUES:
            series = fig3.series(a, "flat")
            values = [v for _, v in series]
            assert values == sorted(values)
        # Headline: up to ~60% over flat.
        assert 40.0 <= fig3.max_improvement("flat") <= 90.0
        assert "Figure 3" in fig3.render()

    def test_table1_matches_spec_within_tolerance(self):
        t1 = run_table1(n=4000)
        for row in t1.rows:
            assert row.got_pct_cgi == pytest.approx(row.spec_pct_cgi,
                                                    abs=2.5)
            assert row.got_interval == pytest.approx(row.spec_interval,
                                                     rel=0.1)
            assert row.got_html == pytest.approx(row.spec_html, rel=0.25)
            assert row.got_cgi_size == pytest.approx(row.spec_cgi_size,
                                                     rel=0.25)
        assert "Table 1" in t1.render()

    def test_table2_grid(self):
        t2 = run_table2(p_values=(32,), inv_r_values=(20, 40),
                        utilizations=(0.6,))
        assert len(t2.rows) == 3
        assert "Table 2" in t2.render()

    def test_fixed_master_count_reference(self):
        # Paper reports m=6 for p=32 and m=25 for p=128 at the reference
        # parameters; our model should land near those.
        m32 = fixed_master_count(32)
        m128 = fixed_master_count(128)
        assert 4 <= m32 <= 8
        assert 18 <= m128 <= 32
