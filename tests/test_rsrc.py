"""Unit tests for the RSRC cost predictor and node selection."""

import numpy as np
import pytest

from repro.core.rsrc import IDLE_FLOOR, rsrc_cost, select_min_rsrc


class TestCost:
    def test_idle_node_costs_one(self):
        assert rsrc_cost(0.5, 1.0, 1.0) == pytest.approx(1.0)

    def test_pure_cpu_ignores_disk(self):
        assert rsrc_cost(1.0, 0.5, 0.001) == pytest.approx(2.0)

    def test_pure_io_ignores_cpu(self):
        assert rsrc_cost(0.0, 0.001, 0.25) == pytest.approx(4.0)

    def test_equation_five(self):
        w, cpu, disk = 0.7, 0.4, 0.8
        assert rsrc_cost(w, cpu, disk) == pytest.approx(
            w / cpu + (1 - w) / disk)

    def test_floor_prevents_division_blowup(self):
        assert np.isfinite(rsrc_cost(0.5, 0.0, 0.0))
        assert rsrc_cost(0.5, 0.0, 0.0) == pytest.approx(1.0 / IDLE_FLOOR)

    def test_vectorized(self):
        cpu = np.array([1.0, 0.5])
        disk = np.array([1.0, 1.0])
        out = rsrc_cost(0.5, cpu, disk)
        assert out.shape == (2,)
        assert out[1] > out[0]

    def test_rejects_bad_w(self):
        with pytest.raises(ValueError):
            rsrc_cost(1.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            rsrc_cost(-0.1, 1.0, 1.0)


class TestSelection:
    def test_picks_minimum(self):
        cpu = np.array([0.2, 0.9, 0.5])
        disk = np.ones(3)
        assert select_min_rsrc(0.9, cpu, disk, [0, 1, 2]) == 1

    def test_respects_candidate_subset(self):
        cpu = np.array([0.9, 0.2, 0.5])
        disk = np.ones(3)
        assert select_min_rsrc(0.9, cpu, disk, [1, 2]) == 2

    def test_weight_changes_choice(self):
        cpu = np.array([0.9, 0.1])
        disk = np.array([0.1, 0.9])
        assert select_min_rsrc(0.95, cpu, disk, [0, 1]) == 0
        assert select_min_rsrc(0.05, cpu, disk, [0, 1]) == 1

    def test_tie_break_random_covers_all(self):
        rng = np.random.default_rng(0)
        cpu = np.ones(4)
        disk = np.ones(4)
        picks = {select_min_rsrc(0.5, cpu, disk, [0, 1, 2, 3], rng)
                 for _ in range(100)}
        assert picks == {0, 1, 2, 3}

    def test_deterministic_without_rng(self):
        cpu = np.ones(4)
        disk = np.ones(4)
        assert select_min_rsrc(0.5, cpu, disk, [2, 0, 1]) == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_min_rsrc(0.5, np.ones(2), np.ones(2), [])

    def test_load_penalty_shifts_choice(self):
        cpu = np.array([0.9, 0.8])
        disk = np.ones(2)
        penalty = np.array([5.0, 1.0])
        # Node 0 is idler but carries outstanding work.
        assert select_min_rsrc(0.9, cpu, disk, [0, 1],
                               load_penalty=penalty) == 1

    def test_penalty_below_one_rejected(self):
        with pytest.raises(ValueError):
            select_min_rsrc(0.5, np.ones(2), np.ones(2), [0, 1],
                            load_penalty=np.array([0.5, 1.0]))

    def test_single_candidate(self):
        assert select_min_rsrc(0.5, np.ones(3), np.ones(3), [2]) == 2
