"""Tests for the Apache access-log (CLF) import adapter."""

import pytest

from repro.workload.clf import (
    CLFImportOptions,
    import_clf,
    parse_clf_line,
)
from repro.workload.request import RequestKind


def clf(ts: str, url: str, status: int = 200, size="2326",
        method: str = "GET") -> str:
    return (f'host - frank [{ts}] "{method} {url} HTTP/1.0" '
            f'{status} {size}')


T0 = "10/Oct/1999:13:55:36 -0700"
T1 = "10/Oct/1999:13:55:37 -0700"
T2 = "10/Oct/1999:13:55:40 -0700"


class TestParseLine:
    def test_basic(self):
        rec = parse_clf_line(clf(T0, "/index.html"))
        assert rec.url == "/index.html"
        assert rec.status == 200
        assert rec.size_bytes == 2326
        assert rec.method == "GET"

    def test_dash_size_is_zero(self):
        rec = parse_clf_line(clf(T0, "/x", size="-"))
        assert rec.size_bytes == 0

    def test_combined_format_tail_ignored(self):
        line = clf(T0, "/a") + ' "http://ref" "Mozilla/4.0"'
        rec = parse_clf_line(line)
        assert rec.url == "/a"

    def test_garbage_returns_none(self):
        assert parse_clf_line("not a log line") is None
        assert parse_clf_line("") is None

    def test_bad_date_returns_none(self):
        assert parse_clf_line(clf("99/XXX/1999:25:00:00 -0700", "/a")) \
            is None

    def test_timestamps_ordered(self):
        a = parse_clf_line(clf(T0, "/a"))
        b = parse_clf_line(clf(T2, "/b"))
        assert b.timestamp - a.timestamp == pytest.approx(4.0)


class TestImport:
    def test_basic_import(self):
        lines = [clf(T0, "/index.html"),
                 clf(T1, "/cgi-bin/search?q=x", size="9000"),
                 clf(T2, "/pic.gif", size="512")]
        result = import_clf(lines)
        assert result.parsed == 3
        assert len(result.requests) == 3
        assert result.dynamic_count == 1
        kinds = [q.kind for q in result.requests]
        assert kinds == [RequestKind.STATIC, RequestKind.DYNAMIC,
                         RequestKind.STATIC]

    def test_arrivals_rebased_to_zero(self):
        result = import_clf([clf(T0, "/a"), clf(T2, "/b")])
        times = [q.arrival_time for q in result.requests]
        assert times[0] == 0.0
        assert times[1] == pytest.approx(4.0)

    def test_out_of_order_lines_sorted(self):
        result = import_clf([clf(T2, "/late"), clf(T0, "/early")])
        assert result.requests[0].size_bytes == \
            result.requests[1].size_bytes  # both 2326
        assert result.requests[0].arrival_time == 0.0

    def test_malformed_counted_not_fatal(self):
        result = import_clf(["garbage", clf(T0, "/a"), ""])
        assert result.parsed == 1
        assert result.skipped_malformed == 1

    def test_status_filter(self):
        lines = [clf(T0, "/a", status=200), clf(T1, "/b", status=404),
                 clf(T2, "/c", status=500)]
        result = import_clf(lines)
        assert result.parsed == 1
        assert result.skipped_status == 2

    def test_status_filter_disabled(self):
        opts = CLFImportOptions(keep_statuses=None)
        lines = [clf(T0, "/a", status=404)]
        assert import_clf(lines, opts).parsed == 1

    def test_dynamic_patterns(self):
        lines = [clf(T0, "/app.php"), clf(T1, "/run.cgi"),
                 clf(T2, "/page?x=1")]
        result = import_clf(lines)
        assert result.dynamic_count == 3

    def test_dynamic_demand_scale(self):
        opts = CLFImportOptions(mu_h=1200.0, r=1 / 40, seed=1)
        lines = [clf(T0, f"/cgi-bin/x{i}") for i in range(300)]
        # All at the same timestamp is fine for demand statistics.
        result = import_clf(lines, opts)
        import numpy as np

        mean = np.mean([q.demand for q in result.requests])
        assert mean == pytest.approx(1 / (1200 / 40), rel=0.2)

    def test_cache_keys_optional(self):
        opts = CLFImportOptions(assign_cache_keys=True)
        result = import_clf([clf(T0, "/cgi-bin/s?q=1#frag")], opts)
        assert result.requests[0].cache_key == "/cgi-bin/s?q=1"
        result2 = import_clf([clf(T0, "/cgi-bin/s?q=1")])
        assert result2.requests[0].cache_key is None

    def test_import_from_file(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("\n".join([clf(T0, "/a"),
                                   clf(T1, "/cgi-bin/b")]) + "\n")
        result = import_clf(path)
        assert result.parsed == 2

    def test_replayable_end_to_end(self):
        """An imported log replays through the simulator."""
        from repro.core.policies import FlatPolicy
        from repro.sim.config import paper_sim_config
        from repro.workload.replay import replay

        lines = [clf(f"10/Oct/1999:13:55:{36 + i % 20:02d} -0700",
                     "/a.html" if i % 3 else "/cgi-bin/q")
                 for i in range(60)]
        result = import_clf(lines)
        report = replay(paper_sim_config(num_nodes=2, seed=1),
                        FlatPolicy(2, seed=2), result.requests,
                        warmup_fraction=0.0).report
        assert report.completed == len(result.requests)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            CLFImportOptions(mu_h=0).validate()
        with pytest.raises(ValueError):
            CLFImportOptions(cgi_profile="nope").validate()
        with pytest.raises(ValueError):
            CLFImportOptions(keep_statuses=(700, 800)).validate()
