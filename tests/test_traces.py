"""Unit tests for the Table-1 trace specifications."""

import pytest

from repro.workload.traces import (
    ADL,
    DEC,
    EXPERIMENT_TRACES,
    KSU,
    TRACES,
    UCB,
    UCB_SEGMENT_REQUESTS,
    TraceSpec,
    get_trace,
)


class TestTable1Constants:
    """The published Table-1 numbers, verbatim."""

    @pytest.mark.parametrize("spec,year,n,pct,intv,html,cgi", [
        (DEC, 1996, 24_500_000, 8.7, 0.09, 8821, 5735),
        (UCB, 1996, 9_200_000, 11.2, 0.139, 7519, 4591),
        (KSU, 1998, 47_364, 29.1, 18.486, 482, 8730),
        (ADL, 1997, 73_610, 44.3, 22.418, 2186, 2027),
    ])
    def test_row(self, spec, year, n, pct, intv, html, cgi):
        assert spec.year == year
        assert spec.n_requests == n
        assert spec.pct_cgi == pytest.approx(pct)
        assert spec.mean_interval == pytest.approx(intv)
        assert spec.html_size == html
        assert spec.cgi_size == cgi

    def test_experiment_traces_exclude_dec(self):
        names = [t.name for t in EXPERIMENT_TRACES]
        assert names == ["UCB", "KSU", "ADL"]

    def test_ucb_segment(self):
        assert UCB_SEGMENT_REQUESTS == 128_668


class TestDerived:
    def test_arrival_ratio(self):
        # 44.3% CGI -> a = 0.443/0.557
        assert ADL.arrival_ratio_a == pytest.approx(0.443 / 0.557)

    def test_native_rate(self):
        assert UCB.native_rate == pytest.approx(1 / 0.139)

    def test_cgi_fraction(self):
        assert KSU.cgi_fraction == pytest.approx(0.291)

    def test_cgi_mix_weights_sum_to_one(self):
        for spec in TRACES.values():
            assert sum(wt for _, wt in spec.cgi_mix) == pytest.approx(1.0)

    def test_profiles_resolvable(self):
        from repro.workload.cgi_profiles import get_profile
        for spec in TRACES.values():
            for name, _ in spec.cgi_mix:
                get_profile(name)


class TestLookup:
    def test_case_insensitive(self):
        assert get_trace("ucb") is UCB
        assert get_trace("ADL") is ADL

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_trace("NCSA")


class TestValidation:
    def test_bad_pct(self):
        with pytest.raises(ValueError):
            TraceSpec(name="x", year=2000, n_requests=1, pct_cgi=150,
                      mean_interval=1.0, html_size=1, cgi_size=1,
                      cgi_mix=(("spin", 1.0),))

    def test_bad_mix_weights(self):
        with pytest.raises(ValueError):
            TraceSpec(name="x", year=2000, n_requests=1, pct_cgi=10,
                      mean_interval=1.0, html_size=1, cgi_size=1,
                      cgi_mix=(("spin", 0.5),))

    def test_empty_mix(self):
        with pytest.raises(ValueError):
            TraceSpec(name="x", year=2000, n_requests=1, pct_cgi=10,
                      mean_interval=1.0, html_size=1, cgi_size=1,
                      cgi_mix=())
