"""Unit tests for the stretch-factor metric helpers."""

import math

import pytest

from repro.core.stretch import (
    combine_stretch,
    improvement_percent,
    stretch_factor,
)


class TestStretchFactor:
    def test_basic(self):
        assert stretch_factor([2.0, 4.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_no_contention_is_one(self):
        assert stretch_factor([1.0, 0.5], [1.0, 0.5]) == pytest.approx(1.0)

    def test_mean_not_ratio_of_sums(self):
        # mean(t/d) = (3 + 1)/2 = 2, not (3+1)/(1+1) = 2 here; distinguish
        # with asymmetric demands: mean(6/2, 1/1) = 2 vs sum ratio 7/3.
        assert stretch_factor([6.0, 1.0], [2.0, 1.0]) == pytest.approx(2.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            stretch_factor([1.0], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stretch_factor([], [])

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            stretch_factor([1.0], [0.0])

    def test_rejects_impossible_response(self):
        with pytest.raises(ValueError):
            stretch_factor([0.5], [1.0])


class TestCombineStretch:
    def test_weighted_mean(self):
        assert combine_stretch([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_equal_weights(self):
        assert combine_stretch([2.0, 4.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_paper_equation_two_form(self):
        # SM = [(1 + a*theta)*S_m + a*(1-theta)*S_s] / (1 + a)
        a, theta, s_m, s_s = 0.5, 0.2, 1.5, 2.5
        expected = ((1 + a * theta) * s_m + a * (1 - theta) * s_s) / (1 + a)
        got = combine_stretch([s_m, s_s], [1 + a * theta, a * (1 - theta)])
        assert got == pytest.approx(expected)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            combine_stretch([1.0], [-1.0])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ValueError):
            combine_stretch([1.0], [0.0])


class TestImprovement:
    def test_positive_when_candidate_better(self):
        assert improvement_percent(3.0, 2.0) == pytest.approx(50.0)

    def test_zero_when_equal(self):
        assert improvement_percent(2.0, 2.0) == pytest.approx(0.0)

    def test_negative_when_candidate_worse(self):
        assert improvement_percent(2.0, 4.0) == pytest.approx(-50.0)

    def test_infinite_baseline(self):
        assert improvement_percent(math.inf, 2.0) == math.inf

    def test_rejects_bad_candidate(self):
        with pytest.raises(ValueError):
            improvement_percent(2.0, 0.0)
        with pytest.raises(ValueError):
            improvement_percent(2.0, math.inf)
