"""SimAdapter + end-to-end control tests on the simulated substrate,
including the chaos race (role transitions vs node failures)."""

import dataclasses

import pytest

from repro.analysis.experiments import iso_load_rate, run_chaos
from repro.control import (
    ControlAction,
    ControlConfig,
    DEMOTE,
    EstimatorConfig,
    PROMOTE,
    SimAdapter,
    SimControlLoop,
    WorkloadEstimator,
)
from repro.core.policies import FrontEndMSPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import replay
from repro.workload.traces import UCB


def small_cluster(p=4, m=2, policy=None):
    cfg = paper_sim_config(num_nodes=p, seed=3)
    return Cluster(cfg, policy or make_ms(p, m, seed=3))


def fast_control(**kwargs):
    kwargs.setdefault("period", 0.5)
    kwargs.setdefault("cooldown", 1.0)
    kwargs.setdefault("confirm_ticks", 1)
    kwargs.setdefault("estimator",
                      EstimatorConfig(min_class_samples=10, warm_windows=1))
    return ControlConfig(**kwargs)


class TestSimAdapterPoll:
    def test_poll_feeds_completions_incrementally(self):
        cluster = small_cluster()
        trace = generate_trace(UCB, rate=150, duration=2.0, mu_h=1200,
                               r=1 / 40, seed=4)
        adapter = SimAdapter(cluster)
        est = WorkloadEstimator()
        cluster.submit_many(trace)
        cluster.run(until=1.0)
        n1 = adapter.poll(est)
        assert n1 == len(cluster.metrics.kinds)
        cluster.run(until=30.0)
        n2 = adapter.poll(est)
        assert n1 + n2 == len(cluster.metrics.kinds)
        assert adapter.poll(est) == 0      # nothing new: no double count

    def test_poll_recovers_cgi_split(self):
        """The estimator's w must come from the CPU/disk split the
        metrics recorded, not from demand totals."""
        cluster = small_cluster()
        trace = generate_trace(UCB, rate=200, duration=3.0, mu_h=1200,
                               r=1 / 40, seed=4)
        cluster.submit_many(trace)
        cluster.run(until=60.0)
        est = WorkloadEstimator(EstimatorConfig(min_class_samples=10,
                                                warm_windows=1))
        SimAdapter(cluster).poll(est)
        snap = est.fold(elapsed=3.0)
        assert snap.ready
        assert 0.0 < snap.w < 1.0
        assert snap.a == pytest.approx(UCB.arrival_ratio_a, rel=0.5)


class TestSimAdapterRoles:
    def test_promote_adds_master_and_rebaselines(self):
        cluster = small_cluster(p=4, m=2)
        adapter = SimAdapter(cluster)
        assert adapter.master_ids() == (0, 1)
        ok = adapter.apply(ControlAction(PROMOTE, node_id=2))
        assert ok
        assert adapter.master_ids() == (0, 1, 2)
        # Monitor re-baselined: the new master's next sample starts fresh.
        assert 2 in cluster.policy.master_ids

    def test_promote_existing_master_refused(self):
        adapter = SimAdapter(small_cluster(p=4, m=2))
        assert not adapter.apply(ControlAction(PROMOTE, node_id=1))

    def test_demote_removes_master(self):
        adapter = SimAdapter(small_cluster(p=4, m=3))
        assert adapter.apply(ControlAction(DEMOTE, node_id=2))
        assert adapter.master_ids() == (0, 1)

    def test_demote_last_master_refused(self):
        adapter = SimAdapter(small_cluster(p=4, m=1))
        assert not adapter.apply(ControlAction(DEMOTE, node_id=0))
        assert adapter.master_ids() == (0,)

    def test_demote_accept_node_refused(self):
        policy = FrontEndMSPolicy(4, 2, accept_node=0, seed=3)
        adapter = SimAdapter(small_cluster(p=4, policy=policy))
        assert not adapter.apply(ControlAction(DEMOTE, node_id=0))
        assert adapter.apply(ControlAction(DEMOTE, node_id=1))

    def test_candidates_skip_failed_and_draining(self):
        cluster = small_cluster(p=4, m=2)
        adapter = SimAdapter(cluster)
        cluster.nodes[2].failed = True
        assert adapter.promote_candidate() == 3
        cluster._draining.add(3)
        assert adapter.promote_candidate() is None

    def test_demote_candidate_respects_floor(self):
        adapter = SimAdapter(small_cluster(p=4, m=2))
        assert adapter.demote_candidate(min_masters=2) is None
        assert adapter.demote_candidate(min_masters=1) == 1


class TestReplayControl:
    def test_replay_attaches_control_loop(self):
        """An undersized design (m=1 for a static-heavy mix at scale)
        gets corrected mid-run by ``replay(control=...)``."""
        spec = dataclasses.replace(UCB, pct_cgi=5.0)
        rate = iso_load_rate(spec, mu_h=1200.0, r=1 / 40, p=4,
                             utilization=0.6)
        trace = generate_trace(spec, rate=rate, duration=6.0, mu_h=1200,
                               r=1 / 40, seed=5)
        cfg = paper_sim_config(num_nodes=4, seed=5)
        result = replay(cfg, make_ms(4, 1, seed=5), trace,
                        control=fast_control(), audit=True)
        assert result.control is not None
        ctl = result.control.controller
        assert ctl.ticks > 0
        applied = {a.kind for a in ctl.applied}
        assert PROMOTE in applied          # the loop actually re-designed
        assert len(result.cluster.policy.master_ids) > 1
        # Role transitions lost nothing: every submitted request completed
        # (the report itself trims the warmup prefix, so count the raw
        # metrics stream).
        assert len(result.cluster.metrics.kinds) == len(trace)

    def test_replay_control_dry_run_leaves_design_alone(self):
        spec = dataclasses.replace(UCB, pct_cgi=5.0)
        rate = iso_load_rate(spec, mu_h=1200.0, r=1 / 40, p=4,
                             utilization=0.6)
        trace = generate_trace(spec, rate=rate, duration=4.0, mu_h=1200,
                               r=1 / 40, seed=5)
        cfg = paper_sim_config(num_nodes=4, seed=5)
        result = replay(cfg, make_ms(4, 1, seed=5), trace,
                        control=fast_control(dry_run=True), audit=True)
        ctl = result.control.controller
        assert ctl.applied == []
        assert ctl.proposed                # it saw the same drift
        assert sorted(result.cluster.policy.master_ids) == [0]


class TestChaosRace:
    """Satellite: promotion/demotion racing node failure must keep the
    conservation and trace-audit invariants (both asserted inside
    ``run_chaos``; any violation raises)."""

    @pytest.mark.parametrize("scenario", ["crash-storm", "storm-burst"])
    def test_chaos_with_controller_attached(self, scenario):
        result = run_chaos(scenario=scenario, p=8, rate=150.0,
                           duration=8.0, drain=30.0, seed=2,
                           include_reference=False, audit=True,
                           control=fast_control(cooldown=0.5))
        assert result.audited
        assert result.audit_spans > 0
        for row in result.rows:
            assert row.completed > 0
