"""Tests for the end-to-end resilience layer: deadlines, bounded retries,
overload shedding, suspicion-based health, graceful drains, and the
request-conservation invariant under chaos."""

import numpy as np
import pytest

from repro.core.policies import FlatPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.sim.failures import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    FailureInjector,
    FailurePolicy,
    RecruitmentSchedule,
)
from repro.sim.resilience import DROP_REASONS, ResilienceConfig
from repro.workload.generator import generate_trace
from repro.workload.traces import UCB
from tests.conftest import make_cgi, make_static


def build(num_nodes=4, masters=2, seed=1, failure_policy=None,
          resilience=None):
    cfg = paper_sim_config(num_nodes=num_nodes, seed=seed)
    policy = make_ms(num_nodes, masters, seed=seed + 1)
    return Cluster(cfg, policy, failure_policy=failure_policy,
                   resilience=resilience)


class TestValidationWiring:
    def test_cluster_init_validates_failure_policy(self):
        cfg = paper_sim_config(num_nodes=2, seed=0)
        with pytest.raises(ValueError, match="detection_delay"):
            Cluster(cfg, FlatPolicy(2),
                    failure_policy=FailurePolicy(detection_delay=-1.0))

    def test_detection_mode_validated(self):
        with pytest.raises(ValueError, match="detection_mode"):
            FailurePolicy(detection_mode="psychic").validate()

    def test_cluster_init_validates_resilience_config(self):
        cfg = paper_sim_config(num_nodes=2, seed=0)
        with pytest.raises(ValueError, match="max_retries"):
            Cluster(cfg, FlatPolicy(2),
                    resilience=ResilienceConfig(max_retries=-1))

    @pytest.mark.parametrize("kwargs", [
        {"deadline_dynamic": 0.0},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"shed_period": 0.0},
        {"shed_hysteresis": 0.0},
        {"shed_decay": 1.5},
        {"slo_stretch": -1.0},
    ])
    def test_resilience_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs).validate()


class TestDeadlines:
    def test_timeout_aborts_and_drops_after_budget(self):
        # One node, one endless CGI: every attempt times out, and after
        # the retry budget the request is a counted failure, not a zombie.
        cluster = build(num_nodes=1, masters=1,
                        resilience=ResilienceConfig(
                            deadline_dynamic=0.05, max_retries=2,
                            backoff_base=0.01, jitter=0.0,
                            shed_enabled=False))
        cluster.submit(make_cgi(req_id=0, cpu=30.0))
        cluster.run(until=5.0)
        mgr = cluster.resilience
        assert mgr.timeouts == 3          # initial attempt + 2 retries
        assert mgr.drops == {"timeout": 1}
        assert cluster.nodes[0].active == 0
        cluster.assert_conservation()

    def test_fast_request_beats_deadline(self):
        cluster = build(num_nodes=2, masters=1,
                        resilience=ResilienceConfig(
                            deadline_dynamic=5.0, shed_enabled=False))
        cluster.submit(make_cgi(req_id=0, cpu=0.02))
        cluster.run(until=10.0)
        assert len(cluster.metrics) == 1
        assert cluster.resilience.timeouts == 0
        assert not cluster.resilience._deadline_ev  # timer disarmed
        cluster.assert_conservation()

    def test_timeout_frees_node_resources(self):
        cluster = build(num_nodes=1, masters=1,
                        resilience=ResilienceConfig(
                            deadline_dynamic=0.05, max_retries=0,
                            shed_enabled=False))
        cluster.submit(make_cgi(req_id=0, cpu=30.0))
        cluster.submit(make_cgi(req_id=1, arrival=0.5, cpu=0.01))
        cluster.run(until=5.0)
        # The hog was evicted, so the second request completed.
        assert len(cluster.metrics) == 1
        assert cluster.metrics.demands[0] < 1.0
        cluster.assert_conservation()


class TestRetries:
    def test_crash_restart_counts_against_budget(self):
        cluster = build(num_nodes=4, masters=2,
                        resilience=ResilienceConfig(shed_enabled=False))
        cluster.submit(make_cgi(req_id=0, cpu=0.5))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        assert cluster.fail_node(victim.node_id) == 1
        cluster.run(until=10.0)
        assert len(cluster.metrics) == 1
        assert cluster.resilience.retries == 1
        cluster.assert_conservation()

    def test_crash_without_restart_is_counted_drop(self):
        cluster = build(num_nodes=4, masters=2,
                        failure_policy=FailurePolicy(restart_inflight=False),
                        resilience=ResilienceConfig(shed_enabled=False))
        cluster.submit(make_cgi(req_id=0, cpu=0.5))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        cluster.fail_node(victim.node_id)
        cluster.run(until=5.0)
        assert cluster.resilience.drops == {"crash": 1}
        assert cluster.lost_requests == 0  # accounted, not lost
        cluster.assert_conservation()

    def test_dead_node_denials_retry_with_backoff(self):
        # A failure-unaware front end keeps hitting the dead node; the
        # resilience layer re-routes against the budget instead of looping
        # on the 3-second client timeout forever.
        cfg = paper_sim_config(num_nodes=2, seed=3)
        policy = FlatPolicy(2, seed=4, failure_aware=False)
        cluster = Cluster(cfg, policy,
                          resilience=ResilienceConfig(
                              max_retries=6, backoff_base=0.02,
                              shed_enabled=False, seed=9))
        cluster.fail_node(1)
        reqs = [make_cgi(req_id=i, arrival=0.01 * i, cpu=0.01)
                for i in range(40)]
        cluster.submit_many(reqs)
        cluster.run(until=30.0)
        mgr = cluster.resilience
        assert mgr.retries > 0
        assert len(cluster.metrics) + mgr.total_dropped == 40
        assert set(mgr.drops) <= {"dead_node"}
        cluster.assert_conservation()

    def test_drop_reasons_are_canonical(self):
        cluster = build(resilience=ResilienceConfig())
        cluster.submit(make_cgi(req_id=0, cpu=0.01))
        cluster.run(until=5.0)
        assert set(cluster.resilience.drops) <= set(DROP_REASONS)


class TestShedding:
    def make_overloaded(self):
        res = ResilienceConfig(shed_backlog=2.0, shed_stretch=1e9,
                               shed_period=0.05, shed_hysteresis=0.9,
                               jitter=0.0)
        cluster = build(num_nodes=2, masters=1, resilience=res)
        # Far more slow CGI than 2 nodes can absorb.
        reqs = [make_cgi(req_id=i, arrival=0.001 * i, cpu=0.5)
                for i in range(60)]
        cluster.submit_many(reqs)
        return cluster

    def test_escalates_to_shedding_and_tightens_cap(self):
        cluster = self.make_overloaded()
        cluster.run(until=1.0)
        mgr = cluster.resilience
        assert mgr.shed_level == 2
        assert mgr.drops.get("shed", 0) > 0
        assert cluster.policy.reservation.cap_scale == 0.0
        assert not cluster.policy.reservation.admit_to_master()

    def test_deescalates_after_drain(self):
        cluster = self.make_overloaded()
        cluster.run(until=120.0)
        mgr = cluster.resilience
        assert mgr.shed_level == 0
        assert cluster.policy.reservation.cap_scale == 1.0
        assert mgr.shed_transitions >= 2
        assert len(cluster.metrics) + mgr.total_dropped == 60
        cluster.assert_conservation()

    def test_static_not_shed(self):
        res = ResilienceConfig(shed_backlog=0.5, shed_period=0.05)
        cluster = build(num_nodes=2, masters=1, resilience=res)
        reqs = [make_cgi(req_id=i, arrival=0.02 * i, cpu=0.5)
                for i in range(40)]
        reqs += [make_static(req_id=100 + i, arrival=0.5 + 0.01 * i)
                 for i in range(20)]
        cluster.submit_many(reqs)
        cluster.run(until=60.0)
        mgr = cluster.resilience
        assert mgr.drops.get("shed", 0) > 0
        # All statics completed: shedding only gates dynamic admissions.
        static_done = sum(1 for d in cluster.metrics.demands if d < 0.01)
        assert static_done == 20


class TestSuspicion:
    def test_crash_marks_suspect_before_detection(self):
        fp = FailurePolicy(detection_mode="monitor", detection_delay=5.0)
        cluster = build(num_nodes=4, masters=2, failure_policy=fp)
        cluster.run(until=0.5)
        cluster.fail_node(3)
        assert bool(cluster.alive[3])  # not yet formally detected
        cluster.run(until=1.0)         # a couple of monitor ticks
        assert bool(cluster.monitor.suspect[3])
        assert not cluster.view.all_healthy()
        assert not cluster.view.healthy_array()[3]
        assert cluster.view.is_suspect(3)
        cluster.run(until=6.0)
        assert not cluster.alive[3]    # detection flipped membership

    def test_policies_avoid_suspect_nodes(self):
        fp = FailurePolicy(detection_mode="monitor", detection_delay=30.0)
        cluster = build(num_nodes=4, masters=2, failure_policy=fp,
                        resilience=ResilienceConfig(shed_enabled=False))
        cluster.run(until=0.5)
        cluster.fail_node(3)
        cluster.run(until=1.0)  # suspicion raised, detection far away
        admitted_before = cluster.nodes[3].admitted
        reqs = [make_cgi(req_id=i, arrival=1.0 + 0.01 * i, cpu=0.01)
                for i in range(50)]
        cluster.submit_many(reqs)
        cluster.run(until=20.0)
        assert cluster.nodes[3].admitted == admitted_before
        assert len(cluster.metrics) == 50
        cluster.assert_conservation()

    def test_recovered_node_passes_probation(self):
        cluster = build(num_nodes=4, masters=2)
        period = cluster.cfg.monitor.period
        cluster.run(until=0.5)
        cluster.fail_node(3)
        cluster.run(until=1.0)
        assert bool(cluster.monitor.suspect[3])
        cluster.recover_node(3)
        cluster.run(until=1.0 + period)
        assert bool(cluster.monitor.suspect[3])   # still on probation
        cluster.run(until=1.0 + 4 * period)
        assert not cluster.monitor.suspect[3]     # trusted again
        assert not cluster.monitor.any_suspect

    def test_all_suspect_falls_back_to_alive(self):
        # Suspicion must degrade to the alive set, never to "no service".
        fp = FailurePolicy(detection_mode="monitor", detection_delay=60.0)
        cluster = build(num_nodes=2, masters=1, failure_policy=fp,
                        resilience=ResilienceConfig(max_retries=10,
                                                    shed_enabled=False))
        cluster.run(until=0.5)
        cluster.fail_node(1)  # the only slave; master stays healthy
        cluster.run(until=1.0)
        cluster.submit(make_cgi(req_id=0, arrival=1.0, cpu=0.01))
        cluster.run(until=10.0)
        assert len(cluster.metrics) == 1


class TestGracefulDrain:
    def test_drain_finishes_inflight_then_retires(self):
        cluster = build(num_nodes=4, masters=2)
        cluster.submit(make_cgi(req_id=0, cpu=0.3))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        draining = cluster.drain_node(victim.node_id)
        assert draining == 1
        assert not cluster.alive[victim.node_id]
        assert not victim.failed          # still finishing its work
        cluster.run(until=10.0)
        assert len(cluster.metrics) == 1  # the in-flight request completed
        assert cluster.metrics.nodes[0] == victim.node_id
        assert victim.failed              # now retired
        assert cluster.restarted_requests == 0

    def test_drain_idle_node_retires_immediately(self):
        cluster = build()
        assert cluster.drain_node(3) == 0
        assert cluster.nodes[3].failed
        assert not cluster.alive[3]

    def test_drain_is_idempotent_and_recoverable(self):
        cluster = build()
        cluster.drain_node(3)
        assert cluster.drain_node(3) == 0
        cluster.recover_node(3)
        assert cluster.alive[3]
        assert not cluster.nodes[3].failed

    def test_recruitment_leave_graceful_vs_eviction(self):
        for graceful in (False, True):
            cluster = build(num_nodes=6, masters=2, seed=11)
            sched = RecruitmentSchedule(cluster, pool=[5])
            sched.join(5, at=0.0)
            sched.leave(5, at=1.0, graceful=graceful)
            reqs = [make_cgi(req_id=i, arrival=0.02 * i, cpu=0.3)
                    for i in range(40)]
            cluster.submit_many(reqs)
            cluster.run(until=60.0)
            assert len(cluster.metrics) == 40
            assert not cluster.alive[5]
            if graceful:
                # Nothing was aborted: every request ran exactly once.
                assert cluster.restarted_requests == 0
            else:
                assert cluster.nodes[5].failures == 1

    def test_unavailability_accounts_drain_and_crash(self):
        cluster = build()
        cluster.fail_node(2)
        cluster.drain_node(3)
        cluster.run(until=10.0)
        unavail = cluster.unavailability()
        assert unavail[2] == pytest.approx(1.0)
        assert unavail[3] == pytest.approx(1.0)
        assert unavail[0] == 0.0


class TestConservation:
    @pytest.mark.integration
    def test_conservation_under_random_crashes(self):
        # Satellite: every submitted request is accounted for (completed,
        # dropped-with-reason, or in flight) under a seeded crash storm.
        trace = generate_trace(UCB, rate=300.0, duration=10.0, seed=21)
        for res in (None, ResilienceConfig(deadline_dynamic=5.0, seed=2)):
            cluster = build(num_nodes=8, masters=2, seed=5, resilience=res)
            injector = FailureInjector(cluster)
            n = injector.random_crashes(
                rate=0.4, horizon=10.0, mttr=3.0,
                rng=np.random.default_rng(77),
                nodes=range(2, 8))
            assert n > 0
            cluster.submit_many(trace)
            deadline = 40.0
            cluster.run(until=deadline)
            while (any(node.active for node in cluster.nodes)
                   or cluster.pending_requests()):
                deadline += 20.0
                cluster.run(until=deadline)
                assert deadline < 500.0
            ledger = cluster.conservation()
            assert ledger["balance"] == 0
            assert ledger["in_flight"] == 0 and ledger["pending"] == 0
            dropped = (cluster.resilience.total_dropped
                       if cluster.resilience else 0)
            assert len(cluster.metrics) + dropped == len(trace)
            cluster.assert_conservation()

    def test_conservation_mid_run(self):
        # The ledger balances at any instant, not just at the end.
        cluster = build(resilience=ResilienceConfig())
        trace = generate_trace(UCB, rate=200.0, duration=2.0, seed=8)
        cluster.submit_many(trace)
        for t in (0.5, 1.0, 1.7, 2.5, 30.0):
            cluster.run(until=t)
            cluster.assert_conservation()

    def test_baseline_crash_without_restart_counts_lost(self):
        cluster = build(num_nodes=4, masters=2,
                        failure_policy=FailurePolicy(restart_inflight=False))
        cluster.submit(make_cgi(req_id=0, cpu=0.5))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        cluster.fail_node(victim.node_id)
        cluster.run(until=5.0)
        assert cluster.lost_requests == 1
        cluster.assert_conservation()


class TestAvailabilityReport:
    def test_report_fields_consistent(self):
        cluster = build(num_nodes=4, masters=2,
                        resilience=ResilienceConfig(slo_stretch=20.0))
        trace = generate_trace(UCB, rate=150.0, duration=3.0, seed=13)
        cluster.submit_many(trace)
        cluster.run(until=30.0)
        avail = cluster.availability()
        assert avail.submitted == len(trace)
        assert avail.completed == len(cluster.metrics)
        assert avail.good + avail.slo_violations == avail.completed
        assert avail.balance == 0
        assert avail.goodput == pytest.approx(
            avail.good / cluster.engine.now)
        assert avail.unavailability.shape == (4,)
        assert 0.0 <= avail.drop_rate <= 1.0

    def test_probe_tracks_resilience_series(self):
        from repro.sim.probe import ClusterProbe
        cluster = build(num_nodes=4, masters=2,
                        resilience=ResilienceConfig())
        probe = ClusterProbe(cluster, period=0.1).start()
        cluster.submit(make_cgi(req_id=0, cpu=0.05))
        cluster.fail_node(3)
        cluster.run(until=2.0)
        alive = probe.series("alive")
        suspect = probe.series("suspect")
        assert alive.shape == suspect.shape
        assert (alive[:, 3] == 0.0).all()
        assert suspect[:, 3].any()
        assert probe.scalar_series("dropped").shape == (len(probe.times),)
        with pytest.raises(KeyError):
            probe.scalar_series("nope")


class TestChaosScenarios:
    def test_registry_entries_validate(self):
        for name, scenario in CHAOS_SCENARIOS.items():
            assert scenario.name == name
            scenario.validate()

    def test_scenario_validation_rejects(self):
        with pytest.raises(ValueError):
            ChaosScenario(name="x", crash_rate=-1.0).validate()
        with pytest.raises(ValueError):
            ChaosScenario(name="x", churn_fraction=0.5).validate()
        with pytest.raises(ValueError):
            ChaosScenario(name="x", burst_factor=0.5).validate()

    def test_apply_is_deterministic(self):
        scheduled = []
        for _ in range(2):
            cluster = build(num_nodes=6, masters=2, seed=4)
            inj = CHAOS_SCENARIOS["crash-storm"].apply(
                cluster, horizon=30.0, rng=np.random.default_rng(5))
            scheduled.append(list(inj.scheduled))
        assert scheduled[0] == scheduled[1]
        assert scheduled[0]

    def test_burst_window(self):
        start, end = CHAOS_SCENARIOS["overload-burst"].burst_window(100.0)
        assert (start, end) == (30.0, 60.0)

    @pytest.mark.integration
    def test_churn_scenario_conserves_requests(self):
        scenario = CHAOS_SCENARIOS["recruitment-churn"]
        cluster = build(num_nodes=6, masters=2, seed=6,
                        resilience=ResilienceConfig(seed=3))
        scenario.apply(cluster, horizon=50.0,
                       rng=np.random.default_rng(11))
        trace = generate_trace(UCB, rate=200.0, duration=50.0, seed=19)
        cluster.submit_many(trace)
        cluster.run(until=200.0)
        cluster.assert_conservation()
        ledger = cluster.conservation()
        assert ledger["in_flight"] == 0 and ledger["pending"] == 0
        assert ledger["completed"] + ledger["dropped"] == len(trace)
