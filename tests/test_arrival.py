"""Unit tests for arrival processes and interval scaling."""

import numpy as np
import pytest

from repro.workload.arrival import (
    make_arrivals,
    mmpp2_arrivals,
    poisson_arrivals,
    scale_intervals,
    uniform_arrivals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestPoisson:
    def test_count_and_monotonicity(self, rng):
        times = poisson_arrivals(100.0, 500, rng)
        assert len(times) == 500
        assert (np.diff(times) >= 0).all()

    def test_mean_rate(self, rng):
        times = poisson_arrivals(100.0, 20000, rng)
        rate = (len(times) - 1) / (times[-1] - times[0])
        assert rate == pytest.approx(100.0, rel=0.05)

    def test_start_offset(self, rng):
        times = poisson_arrivals(10.0, 10, rng, start=5.0)
        assert times[0] >= 5.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0, rng)


class TestUniform:
    def test_exact_spacing(self):
        times = uniform_arrivals(10.0, 5)
        assert np.allclose(np.diff(times), 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_arrivals(-1.0, 5)


class TestMMPP:
    def test_mean_rate_close_to_target(self, rng):
        times = mmpp2_arrivals(200.0, 30000, rng)
        rate = (len(times) - 1) / (times[-1] - times[0])
        assert rate == pytest.approx(200.0, rel=0.15)

    def test_burstier_than_poisson(self, rng):
        """Squared CV of inter-arrival gaps exceeds 1 (Poisson = 1)."""
        times = mmpp2_arrivals(200.0, 30000, rng, burst_factor=5.0)
        gaps = np.diff(times)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2

    def test_monotone(self, rng):
        times = mmpp2_arrivals(50.0, 1000, rng)
        assert (np.diff(times) >= 0).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            mmpp2_arrivals(10.0, 10, rng, burst_factor=0.5)
        with pytest.raises(ValueError):
            mmpp2_arrivals(10.0, 10, rng, mean_sojourn=0)


class TestDispatch:
    def test_make_arrivals_kinds(self, rng):
        for kind in ("poisson", "mmpp2", "uniform"):
            times = make_arrivals(kind, 50.0, 100, rng)
            assert len(times) == 100

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            make_arrivals("weird", 50.0, 100, rng)


class TestScaling:
    def test_scales_to_target_rate(self, rng):
        times = poisson_arrivals(10.0, 1000, rng)
        scaled = scale_intervals(times, 500.0)
        rate = (len(scaled) - 1) / (scaled[-1] - scaled[0])
        assert rate == pytest.approx(500.0, rel=1e-9)

    def test_preserves_relative_structure(self, rng):
        times = np.array([0.0, 1.0, 1.1, 5.0])
        scaled = scale_intervals(times, 10.0)
        gaps = np.diff(times)
        sgaps = np.diff(scaled)
        assert np.allclose(sgaps / sgaps[0], gaps / gaps[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_intervals(np.array([1.0]), 5.0)
        with pytest.raises(ValueError):
            scale_intervals(np.array([2.0, 1.0]), 5.0)
        with pytest.raises(ValueError):
            scale_intervals(np.array([1.0, 1.0]), 5.0)
        with pytest.raises(ValueError):
            scale_intervals(np.array([1.0, 2.0]), -5.0)
