"""Unit tests for the server node (CPU + disk + memory composition)."""

import numpy as np
import pytest

from repro.sim.config import paper_sim_config
from repro.sim.engine import Engine
from repro.sim.node import Node
from repro.sim.process import CPU_BURST, IO_BURST, ProcState
from tests.conftest import make_cgi, make_static


def make_node(engine, cfg=None, seed=0):
    done = []
    cfg = cfg or paper_sim_config(num_nodes=1, seed=seed)
    node = Node(engine, cfg, 0, np.random.default_rng(seed),
                lambda n, p: done.append(p))
    return node, done


class TestStaticExecution:
    def test_static_on_idle_node_takes_its_demand(self, engine):
        cfg = paper_sim_config(num_nodes=1)
        cfg.memory.static_miss_base = 0.0  # deterministic: no cache miss
        node, done = make_node(engine, cfg)
        req = make_static(cpu=0.8e-3)
        node.admit(req)
        engine.run()
        assert len(done) == 1
        proc = done[0]
        assert proc.state is ProcState.DONE
        # Response = demand + one context switch.
        assert proc.finish_time == pytest.approx(0.8e-3 + 50e-6)

    def test_static_cache_miss_adds_disk_read(self, engine):
        cfg = paper_sim_config(num_nodes=1)
        cfg.memory.static_miss_base = 1.0  # force a miss
        cfg.memory.static_miss_max = 1.0
        node, done = make_node(engine, cfg)
        req = make_static(cpu=0.8e-3, size=16384)  # 2 pages
        node.admit(req)
        engine.run()
        proc = done[0]
        assert proc.io_time_used == pytest.approx(2 * cfg.disk.page_time)
        assert node.static_misses == 1

    def test_static_no_fork_overhead(self, engine):
        cfg = paper_sim_config(num_nodes=1)
        cfg.memory.static_miss_base = 0.0
        node, done = make_node(engine, cfg)
        node.admit(make_static())
        engine.run()
        plan = done[0].plan
        assert all(k == CPU_BURST for k, _ in plan)


class TestDynamicExecution:
    def test_cgi_includes_fork_burst(self, engine):
        node, done = make_node(engine)
        req = make_cgi(cpu=0.010, io=0.0, mem_pages=0)
        node.admit(req)
        engine.run()
        proc = done[0]
        assert proc.cpu_time_used == pytest.approx(
            0.010 + node.cfg.cpu.fork_overhead)

    def test_cgi_alternates_cpu_and_io(self, engine):
        node, done = make_node(engine)
        req = make_cgi(cpu=0.010, io=0.032, mem_pages=0)
        node.admit(req)
        engine.run()
        proc = done[0]
        assert proc.cpu_time_used == pytest.approx(
            0.010 + node.cfg.cpu.fork_overhead)
        assert proc.io_time_used == pytest.approx(0.032)

    def test_memory_released_on_completion(self, engine):
        node, done = make_node(engine)
        before = node.memory.free_pages
        node.admit(make_cgi(mem_pages=200))
        engine.run()
        assert node.memory.free_pages == before

    def test_counters(self, engine):
        node, done = make_node(engine)
        node.admit(make_cgi(req_id=1))
        node.admit(make_static(req_id=2, arrival=0.0))
        assert node.admitted == 2
        assert node.active == 2
        engine.run()
        assert node.completed == 2
        assert node.active == 0

    def test_dispatch_latency_recorded(self, engine):
        node, done = make_node(engine)
        proc = node.admit(make_cgi(), dispatch_latency=0.001)
        engine.run()
        assert proc.dispatch_latency == pytest.approx(0.001)


class TestContention:
    def test_static_faster_than_cgi_under_mix(self, engine):
        """A static request racing ten CGI hogs should finish far sooner
        than the hogs — the MLFQ protects it."""
        cfg = paper_sim_config(num_nodes=1)
        cfg.memory.static_miss_base = 0.0
        node, done = make_node(engine, cfg)
        for i in range(10):
            node.admit(make_cgi(req_id=i, cpu=0.050, io=0.0, mem_pages=0))
        engine.run(until=0.015)  # let the hogs occupy the CPU
        static_proc = node.admit(make_static(req_id=99))
        engine.run()
        static_response = static_proc.finish_time - static_proc.admit_time
        cgi_latest = max(p.finish_time for p in done if p.request.is_dynamic)
        # Fresh hogs share the static's priority until they burn a quantum,
        # so the static may wait ~one quantum per queued fresh hog — but it
        # must still finish far ahead of the hog pack.
        assert static_response < 0.120
        assert cgi_latest > 0.3  # 0.5s of CGI work on one CPU
        assert static_response < cgi_latest / 3

    def test_refaults_inject_io_under_pressure(self, engine):
        cfg = paper_sim_config(num_nodes=1)
        cfg.memory.total_pages = 512
        cfg.memory.reserved_pages = 0
        node, done = make_node(engine, cfg)
        # Two large processes oversubscribe memory.
        node.admit(make_cgi(req_id=1, cpu=0.020, io=0.004, mem_pages=400))
        node.admit(make_cgi(req_id=2, cpu=0.020, io=0.004, mem_pages=400))
        engine.run()
        assert node.memory.steals > 0
        victim = done[0] if done[0].request.req_id == 1 else done[1]
        assert victim.io_time_used > 0.004  # refault I/O added

    def test_two_requests_overlap_cpu_and_disk(self, engine):
        """CPU-bound and disk-bound requests should overlap, finishing
        sooner than their serialised demand."""
        cfg = paper_sim_config(num_nodes=1)
        cfg.cpu.fork_overhead = 0.0
        node, done = make_node(engine, cfg)
        node.admit(make_cgi(req_id=1, cpu=0.040, io=0.001, mem_pages=0))
        node.admit(make_cgi(req_id=2, cpu=0.001, io=0.040, mem_pages=0))
        engine.run()
        assert engine.now < 0.060  # < 82ms serial time
