"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.config import SimConfig, paper_sim_config
from repro.sim.engine import Engine
from repro.workload.request import Request, RequestKind


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_config() -> SimConfig:
    """A 4-node paper-parameter cluster config."""
    return paper_sim_config(num_nodes=4, seed=7)


def make_static(req_id: int = 0, arrival: float = 0.0,
                cpu: float = 0.8e-3, size: int = 7168) -> Request:
    return Request(req_id=req_id, arrival_time=arrival,
                   kind=RequestKind.STATIC, cpu_demand=cpu, io_demand=0.0,
                   mem_pages=2, size_bytes=size, type_key="static")


def make_cgi(req_id: int = 0, arrival: float = 0.0, cpu: float = 0.030,
             io: float = 0.004, mem_pages: int = 128,
             type_key: str = "cgi:spin") -> Request:
    return Request(req_id=req_id, arrival_time=arrival,
                   kind=RequestKind.DYNAMIC, cpu_demand=cpu, io_demand=io,
                   mem_pages=mem_pages, size_bytes=4591, type_key=type_key)


@pytest.fixture
def static_request() -> Request:
    return make_static()


@pytest.fixture
def cgi_request() -> Request:
    return make_cgi()
