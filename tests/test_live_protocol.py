"""Unit tests for the live cluster's length-prefixed frame codec."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.live import protocol


def test_frame_roundtrip():
    payload = b'{"op":"ping","id":3}'
    frame = protocol.encode_frame(payload)
    assert frame[:4] == struct.pack(">I", len(payload))
    dec = protocol.FrameDecoder()
    assert dec.feed(frame) == [payload]
    assert dec.pending_bytes == 0


def test_decoder_byte_by_byte_and_coalesced():
    msgs = [{"op": "cgi", "id": i, "cpu": 0.001 * i} for i in range(5)]
    # encode_message returns a ready-to-send frame (prefix included).
    stream = b"".join(protocol.encode_message(m) for m in msgs)
    # One byte at a time: every frame must still come out whole.
    dec = protocol.FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(dec.feed(stream[i:i + 1]))
    assert [protocol.decode_message(p) for p in out] == msgs
    # Entire stream in one chunk.
    dec2 = protocol.FrameDecoder()
    assert len(dec2.feed(stream)) == len(msgs)


def test_oversized_frame_rejected():
    huge = struct.pack(">I", protocol.MAX_FRAME + 1)
    with pytest.raises(protocol.ProtocolError):
        protocol.FrameDecoder().feed(huge)


def test_message_validation():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(b"not json")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(b'{"no_op": 1}')
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_message({"id": 1})  # missing op


def test_read_frame_eof_semantics():
    async def scenario():
        # Clean EOF between frames -> None.
        reader = asyncio.StreamReader()
        reader.feed_data(protocol.encode_frame(b"abc"))
        reader.feed_eof()
        assert await protocol.read_frame(reader) == b"abc"
        assert await protocol.read_frame(reader) is None
        # EOF in the middle of a frame -> protocol error.
        truncated = asyncio.StreamReader()
        truncated.feed_data(protocol.encode_frame(b"abcdef")[:-2])
        truncated.feed_eof()
        with pytest.raises(protocol.ProtocolError):
            await protocol.read_frame(truncated)

    asyncio.run(scenario())


def test_hello_handshake():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(protocol.encode_message(protocol.hello(7)))
        assert (await protocol.expect_hello(reader))["sender"] == 7
        # A non-hello first frame is rejected.
        bad = asyncio.StreamReader()
        bad.feed_data(protocol.encode_message({"op": "cgi", "id": 1}))
        with pytest.raises(protocol.ProtocolError):
            await protocol.expect_hello(bad)

    asyncio.run(scenario())
