"""Tests for the HTTP-redirection baseline and heterogeneous clusters."""

import numpy as np
import pytest

from repro.core.policies import RedirectMSPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig, paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB
from tests.conftest import make_cgi, make_static


class TestRedirect:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(UCB, rate=600, duration=6.0, r=1 / 40,
                              seed=21)

    def test_redirect_counts_rescheduled_requests(self, trace):
        cfg = paper_sim_config(num_nodes=8, seed=1)
        policy = RedirectMSPolicy(8, 3, client_rtt=0.08,
                                  sampler=pretrain_sampler(trace), seed=2)
        replay(cfg, policy, trace)
        assert policy.redirects > 0

    def test_redirection_slower_than_remote_execution(self, trace):
        """The paper's objection quantified: redirect RTT dwarfs the 1 ms
        remote-execution hop."""
        cfg = paper_sim_config(num_nodes=8, seed=1)
        sampler = pretrain_sampler(trace)
        remote = replay(cfg.copy(), make_ms(8, 3, sampler, seed=2),
                        trace).report
        redirect = replay(cfg.copy(),
                          RedirectMSPolicy(8, 3, client_rtt=0.08,
                                           sampler=sampler, seed=2),
                          trace).report
        assert redirect.dynamic.mean_response > remote.dynamic.mean_response
        assert redirect.overall.stretch > remote.overall.stretch

    def test_zero_rtt_equivalent_cost(self, trace):
        """With a free round-trip the redirect baseline matches M/S minus
        the remote-CGI hop."""
        cfg = paper_sim_config(num_nodes=8, seed=1)
        policy = RedirectMSPolicy(8, 3, client_rtt=0.0, seed=2)
        result = replay(cfg, policy, trace, warmup_fraction=0.0)
        assert result.report.completed == len(trace)
        assert result.report.remote_dispatches == 0  # redirects, not remote

    def test_validation(self):
        with pytest.raises(ValueError):
            RedirectMSPolicy(8, 3, client_rtt=-1.0)


class TestHeterogeneous:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(num_nodes=4, cpu_speeds=(1.0, 2.0)).validate()
        with pytest.raises(ValueError):
            SimConfig(num_nodes=2, cpu_speeds=(1.0, 0.0)).validate()
        SimConfig(num_nodes=2, cpu_speeds=(1.0, 2.0),
                  disk_speeds=(0.5, 1.0)).validate()

    def test_speed_accessors(self):
        cfg = SimConfig(num_nodes=2, cpu_speeds=(1.0, 2.0)).validate()
        assert cfg.node_cpu_speed(1) == 2.0
        assert cfg.node_disk_speed(1) == 1.0  # None = homogeneous

    def test_fast_node_finishes_sooner(self):
        """Identical requests pinned to a 2x node finish in half the time."""
        from repro.core.policies import Policy, Route

        class Pin(Policy):
            def __init__(self, target):
                super().__init__(2, range(2), seed=0)
                self.target = target

            def route(self, request, view):
                return Route(self.target, remote=False)

        def run(target):
            cfg = SimConfig(num_nodes=2, cpu_speeds=(1.0, 2.0),
                            seed=1).validate()
            cfg.memory.static_miss_base = 0.0
            cluster = Cluster(cfg, Pin(target))
            cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=0.1,
                                    io=0.0, mem_pages=0))
            cluster.run(until=5.0)
            return (cluster.metrics.finishes[0]
                    - cluster.metrics.arrivals[0])

        slow = run(0)
        fast = run(1)
        assert fast == pytest.approx(slow / 2, rel=0.05)

    def test_disk_speed_scales_io(self):
        from repro.core.policies import Policy, Route

        class Pin(Policy):
            def __init__(self, target):
                super().__init__(2, range(2), seed=0)
                self.target = target

            def route(self, request, view):
                return Route(self.target, remote=False)

        def run(target):
            cfg = SimConfig(num_nodes=2, disk_speeds=(1.0, 4.0),
                            seed=1).validate()
            cfg.cpu.fork_overhead = 0.0
            cluster = Cluster(cfg, Pin(target))
            cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=0.001,
                                    io=0.2, mem_pages=0))
            cluster.run(until=5.0)
            return (cluster.metrics.finishes[0]
                    - cluster.metrics.arrivals[0])

        assert run(1) < run(0) / 2

    def test_ms_exploits_faster_slaves(self):
        """Under load, min-RSRC sends more CGI work to faster slaves
        because they stay idler."""
        p = 6
        speeds = (1.0, 1.0, 1.0, 1.0, 3.0, 3.0)  # nodes 4,5 are 3x
        cfg = SimConfig(num_nodes=p, cpu_speeds=speeds, seed=1).validate()
        trace = generate_trace(UCB, rate=900, duration=8.0, r=1 / 40,
                               seed=3)
        policy = make_ms(p, 2, pretrain_sampler(trace), seed=4)
        result = replay(cfg, policy, trace)
        cluster = result.cluster
        fast = cluster.nodes[4].admitted + cluster.nodes[5].admitted
        slow = cluster.nodes[2].admitted + cluster.nodes[3].admitted
        assert fast > slow


class TestHeteroMSPolicy:
    SPEEDS = (0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0)

    def test_validation(self):
        from repro.core.policies import HeteroMSPolicy

        with pytest.raises(ValueError):
            HeteroMSPolicy(8, 2, cpu_speeds=(1.0,))
        with pytest.raises(ValueError):
            HeteroMSPolicy(8, 2, cpu_speeds=(0.0,) * 8)
        with pytest.raises(ValueError):
            HeteroMSPolicy(8, 2, cpu_speeds=(1.0,) * 8,
                           disk_speeds=(1.0,) * 7)

    def test_static_accept_weighted_by_speed(self):
        import dataclasses

        from repro.core.policies import HeteroMSPolicy
        from tests.conftest import make_static as mk

        # Masters 0 (speed 1) and 1 (speed 3): ~75% of statics go to 1.
        policy = HeteroMSPolicy(4, 2, cpu_speeds=(1.0, 3.0, 1.0, 1.0),
                                seed=0)

        class View:
            num_nodes = 4
            now = 0.0

            def all_alive(self):
                return True

        counts = [0, 0]
        view = View()
        for i in range(2000):
            node = policy.route(mk(req_id=i), view).node_id
            counts[node] += 1
        frac = counts[1] / sum(counts)
        assert frac == pytest.approx(0.75, abs=0.04)

    def test_speed_aware_rsrc_prefers_fast_idle_node(self):
        import numpy as np

        from repro.core.policies import HeteroMSPolicy
        from tests.test_policies import FakeView

        policy = HeteroMSPolicy(4, 1, cpu_speeds=(1.0, 1.0, 1.0, 4.0),
                                use_reservation=False, seed=0)
        # Node 1 is 60% idle at speed 1; node 3 is only 30% idle but 4x
        # fast: effective capacity 1.2 vs 0.6 -> pick node 3.
        view = FakeView(4, cpu_idle=np.array([0.1, 0.6, 0.1, 0.3]))
        from tests.conftest import make_cgi

        route = policy.route(make_cgi(req_id=0, cpu=0.03, io=0.0), view)
        assert route.node_id == 3

    def test_beats_speed_blind_ms_on_mixed_hardware(self):
        from repro.core.policies import HeteroMSPolicy, make_ms
        from repro.sim.config import SimConfig
        from repro.workload.generator import generate_trace
        from repro.workload.replay import pretrain_sampler, replay
        from repro.workload.traces import UCB

        trace = generate_trace(UCB, rate=1500, duration=8.0, r=1 / 40,
                               seed=41)
        sampler = pretrain_sampler(trace)

        def run(policy):
            cfg = SimConfig(num_nodes=8, cpu_speeds=self.SPEEDS,
                            disk_speeds=self.SPEEDS, seed=42).validate()
            return replay(cfg, policy, trace).report.overall.stretch

        blind = run(make_ms(8, 2, sampler, seed=43))
        aware = run(HeteroMSPolicy(8, 2, cpu_speeds=self.SPEEDS,
                                   disk_speeds=self.SPEEDS,
                                   sampler=sampler, seed=43))
        # Speed-awareness must not hurt, and usually helps.
        assert aware <= blind * 1.05
