"""Unit tests for the round-robin disk scheduler."""

import pytest

from repro.sim.config import DiskConfig
from repro.sim.disk import Disk
from repro.sim.process import IO_BURST, SimProcess
from tests.conftest import make_cgi


def make_disk(engine, done, **overrides):
    cfg = DiskConfig(**overrides)
    cfg.validate()
    return Disk(engine, cfg, done.append)


def proc_with_io(duration, node=0):
    req = make_cgi(cpu=0.001, io=duration)
    return SimProcess(req, node, [(IO_BURST, duration)], admit_time=0.0)


class TestSingleBurst:
    def test_burst_completes_exactly(self, engine):
        done = []
        disk = make_disk(engine, done)
        proc = proc_with_io(0.006)
        disk.submit(proc)
        engine.run()
        assert done == [proc]
        assert engine.now == pytest.approx(0.006)
        assert proc.io_time_used == pytest.approx(0.006)

    def test_burst_longer_than_slice_is_sliced(self, engine):
        done = []
        disk = make_disk(engine, done)  # slice = 8ms
        proc = proc_with_io(0.020)
        disk.submit(proc)
        engine.run()
        assert done == [proc]
        assert disk.slices_served == 3  # 8 + 8 + 4 ms
        assert proc.io_time_used == pytest.approx(0.020)

    def test_zero_length_burst_completes_immediately(self, engine):
        done = []
        disk = make_disk(engine, done)
        proc = proc_with_io(0.004)
        proc.burst_remaining = 0.0
        disk.submit(proc)
        assert done == [proc]

    def test_busy_time_accumulates(self, engine):
        done = []
        disk = make_disk(engine, done)
        disk.submit(proc_with_io(0.010))
        engine.run()
        assert disk.busy_time == pytest.approx(0.010)


class TestRoundRobin:
    def test_two_processes_interleave(self, engine):
        done = []
        disk = make_disk(engine, done, page_time=0.002, pages_per_slice=1)
        a = proc_with_io(0.004)  # 2 slices
        b = proc_with_io(0.004)
        disk.submit(a)
        disk.submit(b)
        engine.run()
        # Round-robin: both finish around the same time, a first (FIFO tie).
        assert done == [a, b]
        assert engine.now == pytest.approx(0.008)

    def test_short_burst_not_starved_by_long(self, engine):
        done = []
        disk = make_disk(engine, done, page_time=0.002, pages_per_slice=1)
        long = proc_with_io(0.050)
        short = proc_with_io(0.002)
        disk.submit(long)
        disk.submit(short)
        engine.run()
        assert done[0] is short
        # Short waited one slice of the long process at most.
        assert short.io_time_used == pytest.approx(0.002)

    def test_work_conserving(self, engine):
        done = []
        disk = make_disk(engine, done)
        procs = [proc_with_io(0.002 * (i + 1)) for i in range(5)]
        for p in procs:
            disk.submit(p)
        engine.run()
        total = sum(0.002 * (i + 1) for i in range(5))
        assert engine.now == pytest.approx(total)
        assert len(done) == 5

    def test_pending_counts(self, engine):
        done = []
        disk = make_disk(engine, done)
        disk.submit(proc_with_io(0.010))
        disk.submit(proc_with_io(0.010))
        assert disk.pending == 2

    def test_resubmission_from_completion_callback(self, engine):
        """A completion callback that immediately submits a follow-up burst
        must not double-book the disk (regression: refault splicing)."""
        cfg = DiskConfig()
        events = []

        def on_done(proc):
            events.append(proc)
            if len(events) == 1:
                proc.burst_remaining = 0.004
                disk.submit(proc)

        disk = Disk(engine, cfg, on_done)
        proc = proc_with_io(0.004)
        disk.submit(proc)
        engine.run()
        assert len(events) == 2
        assert engine.now == pytest.approx(0.008)
        assert disk.current is None
