"""Unit tests for the Section-3 queuing formulas."""

import math

import pytest

from repro.core.queuing import (
    UNSTABLE,
    MSStretch,
    Workload,
    best_msprime,
    flat_stretch,
    flat_utilization,
    ms_stretch,
    ms_utilizations,
    msprime_stretch,
)


@pytest.fixture
def w():
    """A comfortable, feasible workload (a=0.25, r=1/40, p=32)."""
    return Workload.from_ratios(lam=1000, a=0.25, mu_h=1200, r=1 / 40, p=32)


class TestWorkload:
    def test_ratio_construction_roundtrips(self, w):
        assert w.lam == pytest.approx(1000)
        assert w.a == pytest.approx(0.25)
        assert w.r == pytest.approx(1 / 40)

    def test_rate_construction(self):
        w2 = Workload.from_rates(lam_h=800, lam_c=200, mu_h=1200, mu_c=30,
                                 p=32)
        assert w2.a == pytest.approx(0.25)
        assert w2.r == pytest.approx(30 / 1200)

    def test_offered_load(self, w):
        expected = w.lam_h / w.mu_h + w.lam_c / w.mu_c
        assert w.total_offered == pytest.approx(expected)
        assert w.feasible

    def test_infeasible_detection(self):
        w2 = Workload.from_ratios(lam=10000, a=1.0, mu_h=1200, r=1 / 100,
                                  p=8)
        assert not w2.feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(lam_h=0, lam_c=1, mu_h=1, mu_c=1, p=1)
        with pytest.raises(ValueError):
            Workload(lam_h=1, lam_c=1, mu_h=0, mu_c=1, p=1)
        with pytest.raises(ValueError):
            Workload.from_ratios(lam=-5, a=0.5, mu_h=1, r=0.1, p=1)


class TestFlat:
    def test_flat_is_mm1_stretch(self, w):
        u = flat_utilization(w)
        assert flat_stretch(w) == pytest.approx(1.0 / (1.0 - u))

    def test_flat_unstable_is_inf(self):
        w2 = Workload.from_ratios(lam=50000, a=1.0, mu_h=1200, r=1 / 40,
                                  p=4)
        assert flat_stretch(w2) == UNSTABLE

    def test_flat_monotone_in_load(self):
        stretches = [
            flat_stretch(Workload.from_ratios(lam=lam, a=0.25, mu_h=1200,
                                              r=1 / 40, p=32))
            for lam in (200, 500, 1000, 2000)
        ]
        assert stretches == sorted(stretches)


class TestMS:
    def test_utilizations(self, w):
        u_m, u_s = ms_utilizations(w, m=8, theta=0.1)
        assert u_m == pytest.approx(
            (w.lam_h / w.mu_h + 0.1 * w.lam_c / w.mu_c) / 8)
        assert u_s == pytest.approx((0.9 * w.lam_c / w.mu_c) / 24)

    def test_theta_zero_pure_separation(self, w):
        ms = ms_stretch(w, m=8, theta=0.0)
        assert ms.master == pytest.approx(
            1.0 / (1.0 - w.lam_h / w.mu_h / 8))
        assert ms.stable

    def test_total_is_weighted_combination(self, w):
        ms = ms_stretch(w, m=8, theta=0.2)
        a = w.a
        expected = ((1 + a * 0.2) * ms.master
                    + a * 0.8 * ms.slave) / (1 + a)
        assert ms.total == pytest.approx(expected)

    def test_all_masters_requires_theta_one(self, w):
        with pytest.raises(ValueError):
            ms_stretch(w, m=w.p, theta=0.5)
        ms = ms_stretch(w, m=w.p, theta=1.0)
        assert ms.total == pytest.approx(flat_stretch(w))

    def test_overloaded_master_unstable(self, w):
        # One master cannot absorb all dynamic traffic at theta=1.
        ms = ms_stretch(w, m=1, theta=1.0)
        assert not ms.stable

    def test_invalid_arguments(self, w):
        with pytest.raises(ValueError):
            ms_stretch(w, m=0, theta=0.0)
        with pytest.raises(ValueError):
            ms_stretch(w, m=2, theta=1.5)

    def test_equal_utilization_theta_matches_flat(self, w):
        """At theta_2 = m/p + (r/a)(m/p - 1) both tiers sit at the flat
        utilisation, so SM == SF exactly (the Theorem-1 upper root)."""
        m = 8
        frac = m / w.p
        theta2 = frac + (w.r / w.a) * (frac - 1.0)
        u_m, u_s = ms_utilizations(w, m, theta2)
        u_flat = flat_utilization(w)
        assert u_m == pytest.approx(u_flat)
        assert u_s == pytest.approx(u_flat)
        assert ms_stretch(w, m, theta2).total == pytest.approx(
            flat_stretch(w))


class TestMSPrime:
    def test_k_equals_p_is_flat(self, w):
        msp = msprime_stretch(w, k=w.p)
        assert msp.total == pytest.approx(flat_stretch(w))

    def test_never_beats_flat(self, w):
        """Self-consistent PS accounting: concentrating dynamic work while
        spreading static over all nodes is at best flat (convexity)."""
        sf = flat_stretch(w)
        for k in range(1, w.p + 1):
            msp = msprime_stretch(w, k)
            if msp.stable:
                assert msp.total >= sf - 1e-9

    def test_best_k_degenerates_to_flat(self, w):
        best = best_msprime(w)
        assert best.k == w.p
        assert best.total == pytest.approx(flat_stretch(w))

    def test_dynamic_node_hotter_than_static_node(self, w):
        msp = msprime_stretch(w, k=4)
        assert msp.dynamic_node > msp.static_node

    def test_invalid_k(self, w):
        with pytest.raises(ValueError):
            msprime_stretch(w, k=0)
        with pytest.raises(ValueError):
            msprime_stretch(w, k=w.p + 1)


class TestResponseTimes:
    def test_flat_mean_response_scales_with_demand(self, w):
        from repro.core.queuing import flat_mean_response

        t_h, t_c = flat_mean_response(w)
        assert t_c / t_h == pytest.approx(w.mu_h / w.mu_c)
        assert t_h >= 1.0 / w.mu_h

    def test_ms_mean_response_mixes_theta(self, w):
        from repro.core.queuing import ms_mean_response

        t_h0, t_c0 = ms_mean_response(w, m=8, theta=0.0)
        ms = ms_stretch(w, m=8, theta=0.0)
        assert t_h0 == pytest.approx(ms.master / w.mu_h)
        assert t_c0 == pytest.approx(ms.slave / w.mu_c)

    def test_littles_law_consistency(self, w):
        from repro.core.queuing import (
            flat_mean_in_system,
            flat_mean_response,
            mean_in_system,
        )

        t_h, t_c = flat_mean_response(w)
        total = flat_mean_in_system(w)
        assert total == pytest.approx(w.lam_h * t_h + w.lam_c * t_c)
        assert mean_in_system(w, 0.01) == pytest.approx(w.lam * 0.01)

    def test_mean_in_system_validation(self, w):
        from repro.core.queuing import mean_in_system

        with pytest.raises(ValueError):
            mean_in_system(w, -1.0)

    def test_population_grows_with_load(self):
        from repro.core.queuing import flat_mean_in_system

        light = Workload.from_ratios(lam=200, a=0.25, mu_h=1200,
                                     r=1 / 40, p=32)
        heavy = Workload.from_ratios(lam=2000, a=0.25, mu_h=1200,
                                     r=1 / 40, p=32)
        assert flat_mean_in_system(heavy) > 10 * flat_mean_in_system(light)
