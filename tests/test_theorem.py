"""Unit tests for Theorem 1: theta bounds, master sizing, optimality."""

import math

import pytest

from repro.core.queuing import Workload, flat_stretch, ms_stretch
from repro.core.theorem import (
    design_for_m,
    min_masters,
    optimal_masters,
    reservation_ratio,
    theta2_closed_form,
    theta_bounds,
    theta_feasible_interval,
    theta_opt,
)


@pytest.fixture
def w():
    return Workload.from_ratios(lam=1000, a=3 / 7, mu_h=1200, r=1 / 40,
                                p=32)


class TestThetaBounds:
    def test_upper_root_matches_closed_form(self, w):
        """The numerically solved theta_2 equals the derived closed form
        m/p + (r/a)(m/p - 1)."""
        for m in (4, 8, 12, 16):
            _, t2 = theta_bounds(w, m)
            assert t2 == pytest.approx(theta2_closed_form(w, m), rel=1e-6)

    def test_roots_ordered(self, w):
        for m in (4, 8, 16, 24):
            t1, t2 = theta_bounds(w, m)
            assert t1 <= t2

    def test_sm_below_sf_strictly_inside(self, w):
        sf = flat_stretch(w)
        for m in (6, 8, 12):
            t1, t2 = theta_bounds(w, m)
            lo = max(t1, 0.0)
            for frac in (0.25, 0.5, 0.75):
                theta = lo + (t2 - lo) * frac
                if not 0.0 <= theta < t2:
                    continue
                sm = ms_stretch(w, m, theta)
                assert sm.total < sf + 1e-9

    def test_sm_above_sf_outside(self, w):
        sf = flat_stretch(w)
        m = 8
        _, t2 = theta_bounds(w, m)
        theta = min(1.0, t2 + 0.1)
        sm = ms_stretch(w, m, theta)
        if sm.stable:
            assert sm.total > sf - 1e-9

    def test_theta2_at_most_one(self, w):
        for m in range(max(2, min_masters(w)), w.p):
            _, t2 = theta_bounds(w, m)
            assert t2 <= 1.0 + 1e-9

    def test_rejects_degenerate_m(self, w):
        with pytest.raises(ValueError):
            theta_bounds(w, 0)
        with pytest.raises(ValueError):
            theta_bounds(w, w.p)

    def test_rejects_infeasible_workload(self):
        bad = Workload.from_ratios(lam=100000, a=1.0, mu_h=1200, r=1 / 40,
                                   p=8)
        with pytest.raises(ValueError):
            theta_bounds(bad, 2)


class TestReservationRatio:
    def test_matches_clamped_closed_form(self, w):
        for m in (4, 8, 16):
            expected = min(1.0, max(0.0, theta2_closed_form(w, m)))
            assert reservation_ratio(w.a, w.r, m, w.p) == pytest.approx(
                expected)

    def test_zero_dynamic_traffic(self):
        assert reservation_ratio(0.0, 0.05, 4, 32) == 1.0

    def test_monotone_in_m(self, w):
        caps = [reservation_ratio(w.a, w.r, m, w.p) for m in range(1, w.p)]
        assert caps == sorted(caps)

    def test_small_m_clamps_to_zero(self):
        # With few masters and expensive CGI, nothing should be admitted.
        assert reservation_ratio(a=0.1, r=1 / 20, m=1, p=64) == 0.0

    def test_all_masters_cap_is_one(self):
        assert reservation_ratio(a=0.5, r=1 / 40, m=32, p=32) == \
            pytest.approx(1.0)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            reservation_ratio(0.5, 0.05, 0, 32)


class TestMinMasters:
    def test_condition(self, w):
        m0 = min_masters(w)
        # At m0, theta_2 >= 0; below it, theta_2 < 0.
        assert theta2_closed_form(w, m0) >= -1e-9
        if m0 > 1:
            assert theta2_closed_form(w, m0 - 1) < 1e-9

    def test_formula(self, w):
        expected = max(1, math.ceil(w.p * w.r / (w.a + w.r) - 1e-12))
        assert min_masters(w) == expected


class TestOptimalMasters:
    def test_beats_flat(self, w):
        design = optimal_masters(w)
        assert design.sm < flat_stretch(w)

    def test_beats_every_other_m_at_midpoint_rule(self, w):
        best = optimal_masters(w)
        for m in range(1, w.p + 1):
            cand = design_for_m(w, m)
            if cand is not None:
                assert best.sm <= cand.sm + 1e-9

    def test_numeric_theta_at_least_as_good(self, w):
        mid = optimal_masters(w, method="midpoint")
        num = optimal_masters(w, method="numeric")
        assert num.sm <= mid.sm + 1e-6

    def test_infeasible_raises(self):
        bad = Workload.from_ratios(lam=100000, a=1.0, mu_h=1200, r=1 / 40,
                                   p=8)
        with pytest.raises(ValueError):
            optimal_masters(bad)

    def test_theta_in_unit_interval(self, w):
        design = optimal_masters(w)
        assert 0.0 <= design.theta <= 1.0

    def test_fig3_reference_point(self):
        """The paper's headline analytic case: a=4/6, 1/r=80 gives ~60%+
        improvement over flat (Figure 3a's top-right)."""
        w = Workload.from_ratios(lam=1000, a=4 / 6, mu_h=1200, r=1 / 80,
                                 p=32)
        design = optimal_masters(w)
        sf = flat_stretch(w)
        improvement = (sf / design.sm - 1) * 100
        assert improvement > 50.0

    def test_more_expensive_cgi_fewer_masters(self):
        """As CGI gets more expensive, more nodes must be slaves."""
        ms = []
        for inv_r in (10, 20, 40, 80):
            w = Workload.from_ratios(lam=1000, a=3 / 7, mu_h=1200,
                                     r=1.0 / inv_r, p=32)
            ms.append(optimal_masters(w).m)
        assert ms == sorted(ms, reverse=True)


class TestThetaOpt:
    def test_midpoint_rule(self, w):
        m = 8
        t1, t2 = theta_bounds(w, m)
        expected = min(1.0, max((t1 + t2) / 2, 0.0))
        assert theta_opt(w, m, "midpoint") == pytest.approx(expected)

    def test_numeric_within_feasible_interval(self, w):
        m = 8
        lo, hi = theta_feasible_interval(w, m)
        theta = theta_opt(w, m, "numeric")
        assert lo - 1e-9 <= theta <= hi + 1e-9

    def test_unknown_method(self, w):
        with pytest.raises(ValueError):
            theta_opt(w, 8, "magic")


class TestDegenerateWorkloads:
    """Validation satellite: estimator edge cases (a = 0, zero demands)
    must produce diagnoses, not ZeroDivisionErrors."""

    @pytest.fixture
    def static_only(self):
        # a = 0: all-static stream, the master/slave split is meaningless.
        return Workload.from_ratios(lam=500, a=0.0, mu_h=1200, r=1 / 40,
                                    p=16)

    def test_theta_bounds_diagnoses_no_dynamic_traffic(self, static_only):
        with pytest.raises(ValueError, match="no dynamic traffic"):
            theta_bounds(static_only, 4)

    def test_closed_form_diagnoses_no_dynamic_traffic(self, static_only):
        with pytest.raises(ValueError, match="flat design"):
            theta2_closed_form(static_only, 4)

    def test_optimal_masters_diagnoses_no_dynamic_traffic(self, static_only):
        with pytest.raises(ValueError, match="no dynamic traffic"):
            optimal_masters(static_only)

    def test_nonfinite_parameters_diagnosed(self):
        # Zero/NaN demand estimates show up as infinite mu (1/0 demand).
        bad = Workload(lam_h=100, lam_c=50, mu_h=math.inf,
                       mu_c=math.inf, p=16)
        with pytest.raises(ValueError, match="non-finite or non-positive"):
            theta_bounds(bad, 4)

    def test_message_names_call_site(self, static_only):
        with pytest.raises(ValueError, match="theta_bounds:"):
            theta_bounds(static_only, 4)
        with pytest.raises(ValueError, match="theta2_closed_form:"):
            theta2_closed_form(static_only, 4)
