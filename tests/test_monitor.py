"""Unit tests for the rstat-style load monitor."""

import numpy as np
import pytest

from repro.sim.config import paper_sim_config
from repro.sim.node import Node
from repro.sim.monitor import LoadMonitor
from tests.conftest import make_cgi


def build(engine, num_nodes=2, period=0.1, smoothing=1.0):
    cfg = paper_sim_config(num_nodes=num_nodes)
    cfg.monitor.period = period
    cfg.monitor.smoothing = smoothing
    nodes = [Node(engine, cfg, i, np.random.default_rng(i),
                  lambda n, p: None) for i in range(num_nodes)]
    monitor = LoadMonitor(engine, cfg.monitor, nodes)
    monitor.start()
    return cfg, nodes, monitor


class TestSampling:
    def test_idle_cluster_reports_full_idle(self, engine):
        _, _, monitor = build(engine)
        engine.run(until=1.0)
        assert monitor.cpu_idle == pytest.approx([1.0, 1.0])
        assert monitor.disk_avail == pytest.approx([1.0, 1.0])
        assert monitor.samples == 10

    def test_busy_node_reports_low_idle(self, engine):
        cfg, nodes, monitor = build(engine)
        # Saturate node 0's CPU for the whole window.
        for i in range(30):
            nodes[0].admit(make_cgi(req_id=i, cpu=0.050, io=0.0,
                                    mem_pages=0))
        engine.run(until=0.5)
        assert monitor.cpu_idle[0] < 0.1
        assert monitor.cpu_idle[1] == pytest.approx(1.0)

    def test_disk_usage_tracked(self, engine):
        cfg, nodes, monitor = build(engine)
        for i in range(10):
            nodes[0].admit(make_cgi(req_id=i, cpu=0.001, io=0.100,
                                    mem_pages=0))
        engine.run(until=0.5)
        assert monitor.disk_avail[0] < 0.2
        assert monitor.disk_avail[1] == pytest.approx(1.0)

    def test_values_recover_after_load_ends(self, engine):
        cfg, nodes, monitor = build(engine)
        nodes[0].admit(make_cgi(cpu=0.050, io=0.0, mem_pages=0))
        engine.run(until=2.0)
        assert monitor.cpu_idle[0] > 0.9

    def test_smoothing_damps_jumps(self, engine):
        cfg, nodes, monitor = build(engine, smoothing=0.5)
        for i in range(30):
            nodes[0].admit(make_cgi(req_id=i, cpu=0.050, io=0.0,
                                    mem_pages=0))
        engine.run(until=0.11)  # one sample of a saturated window
        # With smoothing 0.5, one bad sample moves idle from 1.0 to ~0.5.
        assert 0.3 < monitor.cpu_idle[0] < 0.7

    def test_staleness_between_samples(self, engine):
        """Values only change at sampling ticks."""
        cfg, nodes, monitor = build(engine, period=0.5)
        nodes[0].admit(make_cgi(cpu=0.2, io=0.0, mem_pages=0))
        engine.run(until=0.4)  # before the first tick
        assert monitor.cpu_idle[0] == pytest.approx(1.0)
        engine.run(until=0.6)  # after the tick
        assert monitor.cpu_idle[0] < 0.8


class TestReregister:
    """Role changes re-baseline a node's probe state (control plane)."""

    def test_rebaseline_discards_pre_promotion_busy(self, engine):
        cfg, nodes, monitor = build(engine, period=1.0)
        # Saturate node 1 before the "promotion"...
        for i in range(20):
            nodes[1].admit(make_cgi(req_id=i, cpu=0.040, io=0.0,
                                    mem_pages=0))
        engine.run(until=0.9)
        # ...then re-register just before the sampling tick: the busy
        # seconds accumulated in the old role must not pollute the first
        # sample taken in the new one.
        monitor.reregister(1)
        engine.run(until=1.05)
        assert monitor.cpu_idle[1] > 0.5

    def test_without_rebaseline_sample_is_polluted(self, engine):
        cfg, nodes, monitor = build(engine, period=1.0)
        for i in range(20):
            nodes[i % 2].admit(make_cgi(req_id=i, cpu=0.080, io=0.0,
                                        mem_pages=0))
        engine.run(until=1.05)
        assert monitor.cpu_idle[1] < 0.5

    def test_probe_freshness_renewed(self, engine):
        cfg, nodes, monitor = build(engine)
        engine.run(until=0.5)
        monitor.reregister(0)
        assert monitor._last_probe_ok[0] == pytest.approx(0.5)
