"""Unit and integration tests for failure injection, failover and
recruitment (paper Sections 1-2 motivations)."""

import numpy as np
import pytest

from repro.core.policies import FlatPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.sim.failures import (
    FailureInjector,
    FailurePolicy,
    RecruitmentSchedule,
)
from repro.workload.generator import generate_trace
from repro.workload.traces import UCB
from tests.conftest import make_cgi, make_static


def build(num_nodes=4, masters=2, seed=1, failure_policy=None):
    cfg = paper_sim_config(num_nodes=num_nodes, seed=seed)
    policy = make_ms(num_nodes, masters, seed=seed + 1)
    return Cluster(cfg, policy, failure_policy=failure_policy)


class TestNodeFailure:
    def test_fail_aborts_inflight(self):
        cluster = build()
        cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=1.0))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        restarted = cluster.fail_node(victim.node_id)
        assert restarted == 1
        assert victim.active == 0
        assert victim.failed

    def test_restarted_request_completes_elsewhere(self):
        cluster = build()
        cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=0.5))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        cluster.fail_node(victim.node_id)
        cluster.run(until=10.0)
        assert len(cluster.metrics) == 1
        assert cluster.metrics.nodes[0] != victim.node_id
        # Response time includes the wasted work and detection delay.
        resp = cluster.metrics.finishes[0] - cluster.metrics.arrivals[0]
        assert resp > 0.5

    def test_fail_is_idempotent(self):
        cluster = build()
        assert cluster.fail_node(3) == 0 or not cluster.alive[3]
        assert cluster.fail_node(3) == 0

    def test_no_routing_to_dead_node(self):
        cluster = build(num_nodes=4, masters=2)
        cluster.fail_node(3)
        reqs = [make_cgi(req_id=i, arrival=0.01 * i, cpu=0.01, io=0.001)
                for i in range(50)]
        cluster.submit_many(reqs)
        cluster.run(until=10.0)
        assert cluster.nodes[3].admitted == 0
        assert len(cluster.metrics) == 50

    def test_recovered_node_serves_again(self):
        cluster = build(num_nodes=4, masters=2)
        cluster.fail_node(3)
        cluster.recover_node(3)
        reqs = [make_cgi(req_id=i, arrival=0.01 * i, cpu=0.02)
                for i in range(100)]
        cluster.submit_many(reqs)
        cluster.run(until=10.0)
        assert cluster.nodes[3].admitted > 0

    def test_master_failure_promotes_acting_master(self):
        cluster = build(num_nodes=4, masters=1)
        cluster.fail_node(0)  # the only master
        cluster.submit(make_static(req_id=0, arrival=0.0))
        cluster.run(until=5.0)
        assert len(cluster.metrics) == 1
        assert cluster.metrics.nodes[0] != 0

    def test_background_jobs_dropped_on_failure(self):
        cluster = build()
        cluster.admit_background(make_cgi(req_id=9, arrival=0.0, cpu=5.0), 3)
        cluster.fail_node(3)
        cluster.run(until=1.0)
        assert cluster.background_completed == 0
        assert cluster.restarted_requests == 0

    def test_no_restart_when_policy_disables_it(self):
        fp = FailurePolicy(restart_inflight=False)
        cluster = build(failure_policy=fp)
        cluster.submit(make_cgi(req_id=0, arrival=0.0, cpu=1.0))
        cluster.run(until=0.05)
        victim = next(n for n in cluster.nodes if n.active)
        assert cluster.fail_node(victim.node_id) == 0
        cluster.run(until=5.0)
        assert len(cluster.metrics) == 0  # request lost


class TestUnawareFrontend:
    def test_dns_clients_hit_dead_nodes(self):
        """A failure-unaware flat front end keeps sending clients to the
        dead node; they pay retry timeouts.  This is the paper's argument
        against DNS rotation."""
        cfg = paper_sim_config(num_nodes=4, seed=1)
        policy = FlatPolicy(4, seed=2, failure_aware=False)
        cluster = Cluster(cfg, policy)
        cluster.fail_node(2)
        reqs = [make_static(req_id=i, arrival=0.01 * i) for i in range(100)]
        cluster.submit_many(reqs)
        cluster.run(until=60.0)
        assert cluster.denied_attempts > 0
        assert len(cluster.metrics) == 100  # retries eventually land

    def test_switch_clients_do_not(self):
        cfg = paper_sim_config(num_nodes=4, seed=1)
        policy = FlatPolicy(4, seed=2, failure_aware=True)
        cluster = Cluster(cfg, policy)
        cluster.fail_node(2)
        reqs = [make_static(req_id=i, arrival=0.01 * i) for i in range(100)]
        cluster.submit_many(reqs)
        cluster.run(until=10.0)
        assert cluster.denied_attempts == 0
        assert len(cluster.metrics) == 100


class TestFailureInjector:
    def test_crash_and_recover_schedule(self):
        cluster = build()
        injector = FailureInjector(cluster)
        injector.crash(node_id=3, at=1.0, duration=2.0)
        cluster.run(until=1.5)
        assert not cluster.alive[3]
        cluster.run(until=4.0)
        assert cluster.alive[3]

    def test_random_crashes_bounded(self):
        cluster = build()
        injector = FailureInjector(cluster)
        rng = np.random.default_rng(0)
        n = injector.random_crashes(rate=1.0, horizon=10.0, mttr=1.0,
                                    rng=rng)
        assert n > 0
        assert all(at <= 10.0 for at, _, _ in injector.scheduled)

    def test_validation(self):
        cluster = build()
        injector = FailureInjector(cluster)
        with pytest.raises(ValueError):
            injector.crash(0, at=-1.0)
        with pytest.raises(ValueError):
            injector.crash(0, at=1.0, duration=0.0)
        with pytest.raises(ValueError):
            injector.random_crashes(rate=-1, horizon=1, mttr=1,
                                    rng=np.random.default_rng(0))


class TestRecruitment:
    def test_pool_starts_standby(self):
        cluster = build(num_nodes=6, masters=2)
        RecruitmentSchedule(cluster, pool=[4, 5])
        assert not cluster.alive[4] and not cluster.alive[5]
        assert cluster.alive[:4].all()

    def test_joined_nodes_absorb_load(self):
        cluster = build(num_nodes=6, masters=2)
        sched = RecruitmentSchedule(cluster, pool=[4, 5])
        sched.join_all(at=1.0)
        reqs = [make_cgi(req_id=i, arrival=1.5 + 0.005 * i, cpu=0.03)
                for i in range(200)]
        cluster.submit_many(reqs)
        cluster.run(until=20.0)
        assert cluster.nodes[4].admitted > 0
        assert cluster.nodes[5].admitted > 0

    def test_leave_restarts_inflight(self):
        cluster = build(num_nodes=6, masters=2)
        sched = RecruitmentSchedule(cluster, pool=[5])
        sched.join(5, at=0.0)
        cluster.run(until=0.001)
        # Park a long CGI on the recruited node, then reclaim it.
        cluster.engine.schedule_at(
            0.01, lambda: cluster.nodes[5].admit(
                make_cgi(req_id=0, arrival=0.01, cpu=2.0)))
        # Bypass routing: register it so failover sees it.
        sched.leave(5, at=0.1)
        cluster.run(until=0.2)
        assert not cluster.alive[5]

    def test_validation(self):
        cluster = build(num_nodes=6, masters=2)
        with pytest.raises(ValueError):
            RecruitmentSchedule(cluster, pool=[])
        with pytest.raises(ValueError):
            RecruitmentSchedule(cluster, pool=[99])
        sched = RecruitmentSchedule(cluster, pool=[5])
        with pytest.raises(ValueError):
            sched.join(3, at=1.0)


class TestFailoverUnderLoad:
    def test_service_continues_through_slave_crash(self):
        """End-to-end failure masking: crash a slave mid-replay; all
        requests still complete (possibly slower)."""
        cfg = paper_sim_config(num_nodes=8, seed=1)
        policy = make_ms(8, 3, seed=2)
        cluster = Cluster(cfg, policy)
        injector = FailureInjector(cluster)
        trace = generate_trace(UCB, rate=300, duration=6.0, seed=3)
        injector.crash(node_id=6, at=2.0, duration=2.0)
        cluster.submit_many(trace)
        cluster.run(until=40.0)
        assert len(cluster.metrics) == len(trace)
        assert cluster.restarted_requests >= 0
        assert cluster.nodes[6].failures == 1
