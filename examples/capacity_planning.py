#!/usr/bin/env python
"""Capacity planning with the queuing model: size a cluster for a target
stretch factor, then validate the plan in simulation.

A downstream-user scenario the paper's model enables directly: "our site
serves 2000 req/s, 25% of it CGI at ~60x static cost — how many nodes do we
need to keep mean slowdown under 2.5x, and how should we split them into
masters and slaves?"

Run:  python examples/capacity_planning.py
"""

from repro import (
    UCB,
    Workload,
    flat_stretch,
    generate_trace,
    make_ms,
    optimal_masters,
    paper_sim_config,
    pretrain_sampler,
    replay,
)
from repro.analysis.planner import headroom, max_sustainable_rate, size_cluster
from repro.analysis.reporting import format_table

TARGET_STRETCH = 2.5
LAM = 2000.0
A = 0.25
R = 1.0 / 60.0
MU_H = 1200.0


def plan() -> tuple[int, int]:
    """Smallest p whose optimal M/S design meets the stretch target."""
    chosen = size_cluster(TARGET_STRETCH, lam=LAM, a=A, mu_h=MU_H, r=R)
    rows = []
    for p in range(max(1, chosen.p - 4), chosen.p + 9):
        w = Workload.from_ratios(lam=LAM, a=A, mu_h=MU_H, r=R, p=p)
        if not w.feasible:
            continue
        design = optimal_masters(w)
        sf = flat_stretch(w)
        rows.append([p, design.m, design.theta, design.sm, sf,
                     "<-- pick" if p == chosen.p else ""])
    print(format_table(
        ["p", "m*", "theta*", "SM (M/S)", "SF (flat)", ""],
        rows, title=f"sizing for stretch <= {TARGET_STRETCH}",
        floatfmt="{:.3f}",
    ))
    limit = max_sustainable_rate(chosen.p, target_stretch=TARGET_STRETCH,
                                 a=A, mu_h=MU_H, r=R)
    growth = headroom(LAM, p=chosen.p, target_stretch=TARGET_STRETCH,
                      a=A, mu_h=MU_H, r=R)
    print(f"\nplanner: p={chosen.p} sustains up to {limit:.0f} req/s at "
          f"this target ({growth:.2f}x today's {LAM:.0f} req/s)")
    return chosen.p, chosen.m


def main() -> None:
    p, m = plan()
    print(f"\nplan: p={p} nodes, m={m} masters — validating in simulation")

    cfg = paper_sim_config(num_nodes=p, seed=11)
    # Build a trace with the planned mix: reuse the UCB spec's shape but
    # override the CGI share to the planned a.
    spec = UCB
    import dataclasses
    spec = dataclasses.replace(spec, pct_cgi=100.0 * A / (1 + A))
    trace = generate_trace(spec, rate=LAM, duration=8.0, mu_h=MU_H, r=R,
                           seed=12)
    sampler = pretrain_sampler(trace)
    report = replay(cfg, make_ms(p, m, sampler, seed=13), trace).report

    print(f"simulated stretch: overall {report.overall.stretch:.2f} "
          f"(target {TARGET_STRETCH}), static {report.static.stretch:.2f}, "
          f"dynamic {report.dynamic.stretch:.2f}")
    verdict = "meets" if report.overall.stretch <= TARGET_STRETCH * 1.2 \
        else "misses"
    print(f"the plan {verdict} the target (queuing model is approximate; "
          f"the simulator adds fork/context-switch/paging overheads).")


if __name__ == "__main__":
    main()
