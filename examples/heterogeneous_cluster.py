#!/usr/bin/env python
"""Heterogeneous clusters: the paper's announced extension.

A realistic machine room mixes generations: here two of eight nodes are 3x
faster.  The capacity-form Theorem 1 (``repro.core.hetero``) picks which
machines should be masters, and the simulation confirms the intuition —
small, latency-bound static requests are happy on slow machines, while the
big CGI jobs want the fast ones.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    UCB,
    Workload,
    generate_trace,
    make_ms,
    pretrain_sampler,
    replay,
)
from repro.analysis.reporting import format_table
from repro.core.hetero import (
    hetero_flat_stretch,
    optimal_masters_hetero,
)
from repro.core.policies import MSPolicy
from repro.sim.config import SimConfig

P = 8
SPEEDS = (0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0)
RATE = 1200.0
R = 1.0 / 40.0
DURATION = 10.0


def main() -> None:
    w = Workload.from_ratios(lam=RATE, a=UCB.arrival_ratio_a, mu_h=1200,
                             r=R, p=P)
    print(f"cluster: speeds {SPEEDS} (total capacity "
          f"{sum(SPEEDS):.1f} reference-nodes)\n")

    design = optimal_masters_hetero(w, SPEEDS)
    print(f"capacity-form Theorem 1: masters {design.master_ids} "
          f"({design.order}), theta={design.theta:.3f}")
    print(f"predicted SM={design.sm:.3f} vs heterogeneous flat "
          f"SF={hetero_flat_stretch(w, SPEEDS):.3f}\n")

    trace = generate_trace(UCB, rate=RATE, duration=DURATION, r=R, seed=1)
    sampler = pretrain_sampler(trace)

    rows = []
    for label, master_ids in [
        (f"analytic pick {design.master_ids}", design.master_ids),
        ("fast nodes as masters (6, 7)", (6, 7)),
        ("first nodes as masters (0, 1, 2)", (0, 1, 2)),
    ]:
        # MSPolicy takes a master *count* covering ids 0..m-1; realise an
        # arbitrary master set by permuting the speed vector instead.
        order = list(master_ids) + [i for i in range(P)
                                    if i not in set(master_ids)]
        speeds = tuple(SPEEDS[i] for i in order)
        cfg = SimConfig(num_nodes=P, cpu_speeds=speeds,
                        disk_speeds=speeds, seed=2).validate()
        policy = MSPolicy(P, len(master_ids), sampler=sampler, seed=3)
        report = replay(cfg, policy, trace).report
        rows.append([label, report.overall.stretch,
                     report.static.stretch, report.dynamic.stretch])

    print(format_table(
        ["master set", "stretch", "static", "dynamic"],
        rows, title="simulated master-set choices (UCB-like, CPU-heavy)",
    ))
    print("\nUnder the count-weighted stretch metric, the fast machines "
          "belong in the master tier: the numerous small static requests "
          "gain the most from them, and the few big CGI jobs tolerate "
          "slower slaves.  The capacity-form model and the simulator "
          "agree on this ordering.")


if __name__ == "__main__":
    main()
