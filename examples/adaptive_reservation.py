#!/usr/bin/env python
"""Watch the reservation cap theta'_2 self-stabilise (paper Section 4).

The M/S scheduler caps the fraction of CGI requests admitted to master
nodes.  The cap is recomputed online from the monitored arrival ratio ``a``
and a response-time approximation of the service-rate ratio ``r``.  The
paper argues the update rule converges regardless of the initial cap; this
example replays the same KSU-like trace with the cap initialised far too
low (0.0) and far too high (1.0) and samples the cap trajectory.

Run:  python examples/adaptive_reservation.py
"""

import numpy as np

from repro import (
    Cluster,
    KSU,
    ReservationConfig,
    generate_trace,
    make_ms,
    paper_sim_config,
    pretrain_sampler,
    reservation_ratio,
)

NODES = 16
MASTERS = 4
RATE = 600.0
R = 1.0 / 40.0
DURATION = 30.0


def run_with_initial_cap(theta_init: float, trace, sampler):
    cfg = paper_sim_config(num_nodes=NODES, seed=3)
    policy = make_ms(
        NODES, MASTERS, sampler, seed=4,
        reservation_cfg=ReservationConfig(theta_init=theta_init,
                                          update_period=0.5),
    )
    cluster = Cluster(cfg, policy)
    cluster.submit_many(trace)

    samples = []

    def sample_cap():
        samples.append((cluster.engine.now, policy.reservation.theta_cap))
        if cluster.engine.now < DURATION:
            cluster.engine.schedule(2.0, sample_cap)

    cluster.engine.schedule(2.0, sample_cap)
    cluster.run(until=DURATION + 20.0)
    return samples, policy


def main() -> None:
    trace = generate_trace(KSU, rate=RATE, duration=DURATION, mu_h=1200,
                           r=R, seed=7)
    sampler = pretrain_sampler(trace)

    # What Theorem 1 would prescribe given the true workload parameters.
    target = reservation_ratio(KSU.arrival_ratio_a, R, MASTERS, NODES)
    print(f"analytic cap theta'_2 (true a={KSU.arrival_ratio_a:.2f}, "
          f"r={R:.4f}): {target:.3f}\n")

    trajectories = {}
    for init in (0.0, 1.0):
        samples, policy = run_with_initial_cap(init, trace, sampler)
        trajectories[init] = samples
        final = samples[-1][1]
        print(f"theta_init={init:.1f}: cap after {samples[-1][0]:.0f}s of "
              f"traffic = {final:.3f} "
              f"(a_est={policy.reservation.a_estimate:.2f}, "
              f"r_est={policy.reservation.r_estimate:.4f})")

    lo = np.array([c for _, c in trajectories[0.0]])
    hi = np.array([c for _, c in trajectories[1.0]])
    spread = np.abs(hi - lo)
    print("\ncap trajectories (virtual time -> cap):")
    for (t, a), (_, b) in zip(trajectories[0.0], trajectories[1.0]):
        print(f"  t={t:5.1f}s   from-0.0: {a:.3f}   from-1.0: {b:.3f}")
    print(f"\ninitial spread {spread[0]:.3f} -> final spread "
          f"{spread[-1]:.3f}; both runs converge to the same operating cap.")


if __name__ == "__main__":
    main()
