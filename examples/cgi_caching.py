#!/usr/bin/env python
"""CGI result caching — the Swala extension.

The paper's testbed runs on the authors' Swala server, which cooperatively
caches dynamic content; the paper leaves caching out of its scheduling
study but notes the extension is straightforward.  This example sweeps the
cache capacity on a search-engine-like workload (Zipf-popular queries) and
reports hit ratios and response times.

Note the metric subtlety: a cache hit *redefines* the request's service
demand (sending a stored result is cheap), so the stretch factor — which
divides by demand — is not comparable across cache configurations.  Mean
response time is the honest lens here.

Run:  python examples/cgi_caching.py
"""

from repro import (
    CachingMSPolicy,
    CGICache,
    KSU,
    generate_trace,
    make_ms,
    paper_sim_config,
    pretrain_sampler,
    replay,
)
from repro.analysis.reporting import format_table

NODES = 16
MASTERS = 3
RATE = 900.0
R = 1.0 / 40.0
DURATION = 10.0


def main() -> None:
    trace = generate_trace(KSU, rate=RATE, duration=DURATION, r=R, seed=1,
                           cacheable_fraction=0.7, distinct_queries=2000,
                           zipf_s=1.1)
    sampler = pretrain_sampler(trace)
    print(f"KSU-like search workload: {len(trace)} requests, 70% of CGI "
          f"output cacheable, Zipf-popular queries\n")

    rows = []
    base = replay(paper_sim_config(num_nodes=NODES, seed=2),
                  make_ms(NODES, MASTERS, sampler, seed=3), trace).report
    rows.append(["no cache", "-", "-",
                 base.dynamic.mean_response * 1000,
                 base.dynamic.p95_response * 1000,
                 base.static.mean_response * 1000])

    for capacity in (50, 200, 1000, 5000):
        cache = CGICache(capacity=capacity, ttl=120.0)
        policy = CachingMSPolicy(NODES, MASTERS, cache, sampler=sampler,
                                 seed=3)
        report = replay(paper_sim_config(num_nodes=NODES, seed=2), policy,
                        trace).report
        rows.append([
            f"{capacity} entries",
            f"{cache.stats.hit_ratio:.2f}",
            cache.stats.evictions,
            report.dynamic.mean_response * 1000,
            report.dynamic.p95_response * 1000,
            report.static.mean_response * 1000,
        ])

    print(format_table(
        ["cache", "hit ratio", "evictions", "dyn mean (ms)",
         "dyn p95 (ms)", "static mean (ms)"],
        rows, title="CGI result cache capacity sweep",
    ))
    print("\nHits are served at the accepting master for the cost of a "
          "file send, so dynamic response time collapses as the popular "
          "head of the query distribution fits in cache.")


if __name__ == "__main__":
    main()
