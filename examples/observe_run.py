#!/usr/bin/env python
"""Watch a cluster breathe: time-series probing and text charts.

Attaches a ClusterProbe to a replay that includes a mid-run flash crowd,
then renders what happened — per-node CPU queues, memory pressure, the
adaptive reservation cap, and throughput — as plain-text charts.

Run:  python examples/observe_run.py
"""

import numpy as np

from repro import (
    KSU,
    Cluster,
    generate_trace,
    make_ms,
    paper_sim_config,
    pretrain_sampler,
)
from repro.analysis.figures import bar_chart, line_plot
from repro.sim.probe import ClusterProbe

NODES = 8
MASTERS = 2
BASE_RATE = 400.0
BURST_RATE = 1600.0
DURATION = 18.0


def main() -> None:
    # A calm stream with a 6-second flash crowd in the middle.
    calm1 = generate_trace(KSU, rate=BASE_RATE, duration=6.0, seed=1)
    burst = generate_trace(KSU, rate=BURST_RATE, duration=6.0, seed=2,
                           start=6.0)
    calm2 = generate_trace(KSU, rate=BASE_RATE, duration=6.0, seed=3,
                           start=12.0)
    for i, req in enumerate(burst + calm2):
        req.req_id = len(calm1) + i  # keep ids unique across segments
    trace = calm1 + burst + calm2
    sampler = pretrain_sampler(trace)

    cluster = Cluster(paper_sim_config(num_nodes=NODES, seed=4),
                      make_ms(NODES, MASTERS, sampler, seed=5))
    probe = ClusterProbe(cluster, period=0.5, until=DURATION).start()
    cluster.submit_many(trace)
    cluster.run(until=DURATION + 60.0)

    report = cluster.metrics.report()
    print(f"replayed {report.completed} requests "
          f"(flash crowd at t=6..12s); overall stretch "
          f"{report.overall.stretch:.2f}\n")

    thr = probe.throughput()
    print(line_plot(
        {"throughput": list(zip(probe.time[1:], thr)),
         "cpu queue (max node)": list(zip(
             probe.time, probe.series("cpu_queue").max(axis=1)))},
        title="flash crowd: completions/s and worst CPU queue",
        xlabel="virtual seconds", ylabel="value", height=12,
    ))

    caps = probe.theta_cap
    print("\nreservation cap theta'_2 over time: "
          + " ".join(f"{c:.2f}" for c in caps[::4]))

    print("\n" + bar_chart(
        [(f"node {i}", v)
         for i, v in enumerate(probe.node_mean("memory_pressure"))],
        title="time-averaged memory pressure per node "
              "(masters are 0-1: statics only, no CGI working sets)",
    ))


if __name__ == "__main__":
    main()
