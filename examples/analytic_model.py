#!/usr/bin/env python
"""Explore the Section-3 queuing model without running any simulation.

For a CGI-heavy site this walks through:

1. the flat architecture's stretch factor,
2. Theorem 1's theta bounds for a range of master counts,
3. the optimal (m, theta) design,
4. how the optimal master count moves with the CGI cost ratio 1/r.

Run:  python examples/analytic_model.py
"""

from repro import (
    Workload,
    flat_stretch,
    min_masters,
    ms_stretch,
    optimal_masters,
    reservation_ratio,
    theta_bounds,
)
from repro.analysis.reporting import format_table


def main() -> None:
    # A 32-node cluster, 1000 req/s, 30% dynamic, CGI 40x as expensive.
    w = Workload.from_ratios(lam=1000, a=3 / 7, mu_h=1200, r=1 / 40, p=32)
    sf = flat_stretch(w)
    print(f"workload: a={w.a:.3f}, r={w.r:.4f}, rho={w.rho:.2f}, "
          f"offered={w.total_offered:.1f} of p={w.p}")
    print(f"flat architecture stretch SF = {sf:.3f}\n")

    rows = []
    for m in (2, 4, 6, 8, 12, 16, 24):
        try:
            t1, t2 = theta_bounds(w, m)
        except (ValueError, ArithmeticError):
            continue
        theta = max((t1 + t2) / 2, 0.0)
        sm = ms_stretch(w, m, min(theta, 1.0))
        rows.append([m, t1, t2, theta, sm.total, sm.master, sm.slave,
                     reservation_ratio(w.a, w.r, m, w.p)])
    print(format_table(
        ["m", "theta1", "theta2", "theta_m", "SM", "S_master", "S_slave",
         "reservation"],
        rows, title="Theorem 1 across master counts", floatfmt="{:.3f}",
    ))

    best = optimal_masters(w)
    print(f"\noptimal design: m={best.m}, theta={best.theta:.3f}, "
          f"SM={best.sm:.3f}  ->  {100 * (sf / best.sm - 1):.0f}% better "
          f"than flat")
    print(f"minimum master count for M/S to be able to win: "
          f"{min_masters(w)}")

    print("\nOptimal master count vs CGI cost (lam=1000, a=3/7, p=32):")
    rows = []
    for inv_r in (10, 20, 40, 80, 120):
        wr = Workload.from_ratios(lam=1000, a=3 / 7, mu_h=1200,
                                  r=1.0 / inv_r, p=32)
        if not wr.feasible:
            rows.append([inv_r, "-", "-", "-", "overloaded"])
            continue
        d = optimal_masters(wr)
        rows.append([inv_r, d.m, f"{d.theta:.3f}", f"{d.sm:.3f}",
                     f"{100 * (flat_stretch(wr) / d.sm - 1):.0f}%"])
    print(format_table(["1/r", "m*", "theta*", "SM*", "vs flat"], rows))


if __name__ == "__main__":
    main()
