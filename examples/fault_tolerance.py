#!/usr/bin/env python
"""Failure masking and dynamic resource recruitment.

The paper motivates the master/slave architecture operationally: a DNS
-rotation cluster keeps sending clients to dead IPs, while an M/S cluster
detects a dead slave sub-second and restarts its CGI work elsewhere — and
idle, non-dedicated machines can be recruited into the slave pool to absorb
peak load.  This example demonstrates both:

1. a slave crashes mid-replay under M/S vs a failure-unaware flat (DNS)
   front end;
2. a load spike is absorbed by recruiting two standby nodes.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    Cluster,
    FailureInjector,
    FlatPolicy,
    RecruitmentSchedule,
    UCB,
    generate_trace,
    make_ms,
    paper_sim_config,
    pretrain_sampler,
)

NODES = 8
RATE = 600.0
DURATION = 12.0
R = 1.0 / 40.0


def crash_scenario() -> None:
    print("=== scenario 1: slave crash at t=4s, repaired at t=8s ===")
    # Long CGIs (1/r = 80) so the crashed slave has work in flight.
    trace = generate_trace(UCB, rate=RATE, duration=DURATION, r=1 / 80,
                           seed=1)
    sampler = pretrain_sampler(trace)

    for label, policy in [
        ("M/S (switch-fronted)", make_ms(NODES, 3, sampler, seed=2)),
        ("flat via DNS (stale client caches)",
         FlatPolicy(NODES, seed=2, failure_aware=False)),
    ]:
        cluster = Cluster(paper_sim_config(num_nodes=NODES, seed=3), policy)
        FailureInjector(cluster).crash(node_id=6, at=4.0, duration=4.0)
        cluster.submit_many(trace)
        cluster.run(until=DURATION + 60.0)
        report = cluster.metrics.report()
        print(f"{label}:")
        print(f"  completed {report.completed}/{len(trace)}, "
              f"stretch {report.overall.stretch:.2f}, "
              f"p95 response {report.overall.p95_response * 1000:.0f} ms")
        print(f"  in-flight requests restarted: "
              f"{cluster.restarted_requests}; client attempts denied by "
              f"the dead node: {cluster.denied_attempts}")


def recruitment_scenario() -> None:
    print("\n=== scenario 2: peak load absorbed by recruited nodes ===")
    # 10 nodes provisioned, but 2 are non-dedicated standbys.
    p = 10
    trace = generate_trace(UCB, rate=1100.0, duration=DURATION, r=R, seed=4)
    sampler = pretrain_sampler(trace)

    def run(recruit: bool) -> tuple[float, float]:
        policy = make_ms(p, 3, sampler, seed=5)
        cluster = Cluster(paper_sim_config(num_nodes=p, seed=6), policy)
        schedule = RecruitmentSchedule(cluster, pool=[8, 9])
        if recruit:
            schedule.join_all(at=2.0)  # owners go idle two seconds in
        cluster.submit_many(trace)
        cluster.run(until=DURATION + 60.0)
        report = cluster.metrics.report()
        extra = cluster.nodes[8].admitted + cluster.nodes[9].admitted
        return report.overall.stretch, extra

    base, _ = run(recruit=False)
    boosted, absorbed = run(recruit=True)
    print(f"8 dedicated nodes only:       stretch {base:.2f}")
    print(f"+2 recruited idle machines:   stretch {boosted:.2f} "
          f"({absorbed} requests absorbed by the recruits)")
    print(f"recruitment improved the stretch factor by "
          f"{100 * (base / boosted - 1):.0f}%")


if __name__ == "__main__":
    crash_scenario()
    recruitment_scenario()
