#!/usr/bin/env python
"""Full policy bake-off on a disk-bound digital-library workload.

Replays an ADL-like trace (44% CGI, ~90% of CGI time in disk I/O) under
every scheduler in the repository — the paper's four M/S variants, the flat
architecture, and two switch-style baselines — and prints the resulting
stretch factors side by side.

Run:  python examples/trace_replay.py
"""

from repro import (
    ADL,
    FlatPolicy,
    LeastActivePolicy,
    RoundRobinPolicy,
    generate_trace,
    make_ms,
    make_ms_1,
    make_ms_ns,
    make_ms_nr,
    paper_sim_config,
    pretrain_sampler,
    replay,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweep import choose_masters

NODES = 16
RATE = 400.0
R = 1.0 / 40.0
DURATION = 10.0


def main() -> None:
    cfg = paper_sim_config(num_nodes=NODES, seed=5)
    trace = generate_trace(ADL, rate=RATE, duration=DURATION,
                           mu_h=cfg.static_rate, r=R, seed=6)
    sampler = pretrain_sampler(trace)
    m = choose_masters(ADL, RATE, cfg.static_rate, R, NODES)
    print(f"replaying {len(trace)} ADL-like requests on {NODES} nodes "
          f"({m} masters)\n")

    policies = [
        ("M/S", make_ms(NODES, m, sampler, seed=9)),
        ("M/S-ns", make_ms_ns(NODES, m, seed=9)),
        ("M/S-nr", make_ms_nr(NODES, m, sampler, seed=9)),
        ("M/S-1", make_ms_1(NODES, sampler, seed=9)),
        ("flat", FlatPolicy(NODES, seed=9)),
        ("round-robin", RoundRobinPolicy(NODES, seed=9)),
        ("least-active", LeastActivePolicy(NODES, seed=9)),
    ]

    rows = []
    baseline = None
    for name, policy in policies:
        report = replay(cfg.copy(), policy, trace).report
        if name == "M/S":
            baseline = report.overall.stretch
        rows.append([
            name,
            report.overall.stretch,
            report.static.stretch,
            report.dynamic.stretch,
            report.overall.p95_response * 1000.0,
            report.remote_dispatches,
            f"{100 * (report.overall.stretch / baseline - 1):+.0f}%"
            if baseline else "-",
        ])
    print(format_table(
        ["policy", "stretch", "static", "dynamic", "p95 resp (ms)",
         "remote", "vs M/S"],
        rows, title="ADL-like workload, all policies",
    ))
    print("\nLower stretch is better; 'vs M/S' is how much worse each "
          "policy is than the optimized master/slave scheduler.")


if __name__ == "__main__":
    main()
