#!/usr/bin/env python
"""Quickstart: simulate a small Web cluster under two schedulers.

Builds an 8-node cluster, generates a synthetic UCB-like trace (11% CGI,
CPU-intensive scripts, 40x the static demand), and replays it under the flat
architecture and the optimized master/slave scheduler.  Prints per-class
stretch factors — M/S should win, mostly by protecting the cheap static
requests from resource-hungry CGI.

Run:  python examples/quickstart.py
"""

from repro import (
    FlatPolicy,
    UCB,
    generate_trace,
    improvement_percent,
    make_ms,
    optimal_masters,
    paper_sim_config,
    pretrain_sampler,
    replay,
    Workload,
)

NODES = 8
RATE = 800.0          # requests/second offered to the cluster
R = 1.0 / 40.0        # CGI service rate is 40x slower than static
DURATION = 10.0       # seconds of trace


def main() -> None:
    cfg = paper_sim_config(num_nodes=NODES, seed=1)
    trace = generate_trace(UCB, rate=RATE, duration=DURATION,
                           mu_h=cfg.static_rate, r=R, seed=2)
    print(f"trace: {len(trace)} requests, {UCB.pct_cgi}% CGI")

    # Size the master tier with Theorem 1.
    w = Workload.from_ratios(lam=RATE, a=UCB.arrival_ratio_a,
                             mu_h=cfg.static_rate, r=R, p=NODES)
    design = optimal_masters(w)
    print(f"Theorem 1: m={design.m} masters, theta={design.theta:.3f}, "
          f"predicted SM={design.sm:.2f} vs SF={design.stretch.master:.2f}")

    # Offline demand sampling for the RSRC cost predictor.
    sampler = pretrain_sampler(trace)
    for key in sampler.families:
        print(f"  sampled w[{key}] = {sampler.w(key):.2f}")

    results = {}
    for name, policy in [
        ("flat", FlatPolicy(NODES, seed=3)),
        ("M/S", make_ms(NODES, design.m, sampler, seed=3)),
    ]:
        report = replay(cfg.copy(), policy, trace).report
        results[name] = report
        print(f"{name:5s}: overall stretch {report.overall.stretch:6.2f}  "
              f"static {report.static.stretch:6.2f}  "
              f"dynamic {report.dynamic.stretch:6.2f}  "
              f"({report.completed} completed, "
              f"{report.remote_dispatches} remote CGI)")

    gain = improvement_percent(results["flat"].overall.stretch,
                               results["M/S"].overall.stretch)
    print(f"M/S improves on the flat architecture by {gain:.0f}%")


if __name__ == "__main__":
    main()
