"""Ablations: disk-slice granularity and master-count robustness.

Completes DESIGN.md §6:

* **Disk round-robin slice size** — a simulator fidelity/cost knob: bigger
  slices mean fewer events but coarser disk sharing.  The results should
  be *insensitive* within a sane range (validating the default of 4
  pages), while the event count drops with slice size.
* **m ± Δ robustness** — complements Figure 5: perturbing the Theorem-1
  master count by one node should move the stretch only modestly near the
  optimum (the design is not knife-edged).
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.analysis.sweep import choose_masters
from repro.core.policies import make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import ADL, KSU

SLICES = (1, 2, 4, 8, 16)


def test_disk_slice_granularity(benchmark):
    """ADL (disk-bound) is the sensitive case for disk sharing."""
    p, m = 16, 2
    r = 1 / 40
    lam = iso_load_rate(ADL, 1200.0, r, p, 0.8)
    duration = 12.0 if FULL else 8.0
    trace = generate_trace(ADL, rate=lam, duration=duration, r=r, seed=9)
    sampler = pretrain_sampler(trace)

    def run_all():
        out = {}
        for pages in SLICES:
            cfg = paper_sim_config(num_nodes=p, seed=10)
            cfg.disk.pages_per_slice = pages
            result = replay(cfg.validate(), make_ms(p, m, sampler, seed=11),
                            trace)
            out[pages] = (result.report,
                          result.cluster.engine.processed)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[pages, report.overall.stretch,
             report.static.p95_response * 1000, events]
            for pages, (report, events) in results.items()]
    emit(format_table(
        ["pages/slice", "stretch", "static p95 (ms)", "events"],
        rows,
        title=("Ablation: disk round-robin slice size "
               f"(ADL, p={p}, util=0.8)"),
    ))

    # Fidelity: results stay within a modest band across slice sizes.
    stretches = [report.overall.stretch
                 for report, _ in results.values()]
    assert max(stretches) <= 1.5 * min(stretches)
    # Cost: bigger slices really do shrink the event count.
    assert results[16][1] < results[1][1]


def test_master_count_robustness(benchmark):
    """Stretch as a function of m around the Theorem-1 choice."""
    p = 16
    r = 1 / 40
    lam = iso_load_rate(KSU, 1200.0, r, p, 0.75)
    duration = 12.0 if FULL else 8.0
    trace = generate_trace(KSU, rate=lam, duration=duration, r=r, seed=12)
    sampler = pretrain_sampler(trace)
    m_star = choose_masters(KSU, lam, 1200.0, r, p)

    def run_all():
        out = {}
        for m in sorted({max(1, m_star - 2), max(1, m_star - 1), m_star,
                         min(p - 1, m_star + 1), min(p - 1, m_star + 2)}):
            report = replay(paper_sim_config(p, seed=13),
                            make_ms(p, m, sampler, seed=14), trace).report
            out[m] = report.overall.stretch
        return out

    stretches = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[m, s, "<- Theorem 1" if m == m_star else ""]
            for m, s in stretches.items()]
    emit(format_table(
        ["m", "stretch", ""],
        rows,
        title=(f"Ablation: master count m around the Theorem-1 pick "
               f"(KSU, p={p}, util=0.75)"),
    ))

    best = min(stretches.values())
    # The analytic pick is near-optimal among its neighbours...
    assert stretches[m_star] <= 1.3 * best
    # ...and one-node perturbations are not catastrophic.
    for m, s in stretches.items():
        if abs(m - m_star) <= 1:
            assert s <= 2.0 * best, (m, s)
