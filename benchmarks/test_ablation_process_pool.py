"""Ablation: bounded server-process pools and slow clients.

The paper's node model admits unbounded concurrent requests, which hides a
1999-era mixing cost: Apache ran a bounded worker pool, long CGIs pinned
workers for hundreds of milliseconds, and modem clients pinned them for
seconds more while responses drained.  Static requests then starved in the
listen backlog behind CGI — a cost that hits the *flat* architecture and
spares M/S masters, whose pools serve (almost) only statics.

The headline finding *inverts* the paper's sizing logic: when workers are
consumed per **connection** (a modem pins one for seconds regardless of
demand), the numerous small static requests dominate *slot* demand, so a
master tier sized by CPU share (Theorem 1) melts down while a tier sized
by connection share — or a flat pool — survives.  Architecture decisions
depend on which resource is scarce; the paper's analysis covers CPU/disk,
not connections.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.reporting import format_table
from repro.core.policies import FlatPolicy, make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB


def test_slot_demand_inverts_master_sizing(benchmark):
    """With 40-worker pools and modem clients, each node sustains ~19
    connections/second.  At 100 req/s, the static stream (89/s) needs ~5
    nodes' worth of slots: Theorem-1's CPU-based m=3 starves statics in
    the master backlogs, while a connection-share m=6 is fine."""
    p, rate = 8, 100.0
    duration = 30.0 if FULL else 20.0
    trace = generate_trace(UCB, rate=rate, duration=duration, r=1 / 40,
                           seed=1)
    sampler = pretrain_sampler(trace)

    def run_all():
        out = {}
        for label, policy in [
            ("M/S m=3 (CPU-share sizing)", make_ms(p, 3, sampler, seed=2)),
            ("M/S m=6 (connection-share)", make_ms(p, 6, sampler, seed=2)),
            ("flat", FlatPolicy(p, seed=2)),
        ]:
            cfg = paper_sim_config(num_nodes=p, seed=3)
            cfg.connections.max_processes = 40
            cfg.connections.client_bandwidth = 3600.0  # V.34 modems
            report = replay(cfg.validate(), policy, trace,
                            drain=600.0).report
            out[label] = report
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[label, r.static.stretch, r.static.p95_response * 1000,
             r.overall.stretch]
            for label, r in reports.items()]
    emit(format_table(
        ["policy", "static stretch", "static p95 (ms)", "overall stretch"],
        rows,
        title=("Ablation: 40-worker pools + modem clients (UCB, p=8, "
               "100 req/s) — slot demand inverts master sizing"),
    ))

    cpu_sized = reports["M/S m=3 (CPU-share sizing)"]
    slot_sized = reports["M/S m=6 (connection-share)"]
    flat = reports["flat"]
    assert cpu_sized.static.stretch > 10 * slot_sized.static.stretch
    assert slot_sized.overall.stretch < 2.0 * flat.overall.stretch


def test_pool_size_sweep(benchmark):
    p, m, rate = 8, 6, 100.0
    duration = 10.0 if FULL else 8.0
    trace = generate_trace(UCB, rate=rate, duration=duration, r=1 / 40,
                           seed=4)
    sampler = pretrain_sampler(trace)
    sizes = (20, 40, 80, 0)  # 0 = unlimited (the paper's model)

    def run_all():
        out = {}
        for size in sizes:
            cfg = paper_sim_config(num_nodes=p, seed=3)
            cfg.connections.max_processes = size
            cfg.connections.client_bandwidth = 3600.0
            report = replay(cfg.validate(), make_ms(p, m, sampler, seed=2),
                            trace, drain=600.0).report
            out[size] = report
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[("unlimited" if size == 0 else size),
             r.overall.stretch, r.overall.p95_response * 1000]
            for size, r in reports.items()]
    emit(format_table(
        ["MaxClients", "stretch", "p95 (ms)"],
        rows, title="Ablation: worker-pool size under modem clients (M/S)",
    ))

    # Bigger pools can only help; unlimited is the paper's optimistic case.
    stretches = [reports[s].overall.stretch for s in sizes]
    for before, after in zip(stretches, stretches[1:]):
        assert after <= before * 1.1
