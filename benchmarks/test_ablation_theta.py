"""Ablation: the paper's midpoint theta rule vs true numeric optimum.

Theorem 1 prescribes ``theta_m = max((theta_1 + theta_2)/2, 0)``, a
heuristic: the true minimiser of SM over the winning interval is generally
not the midpoint.  This analytic bench quantifies how much the heuristic
leaves on the table across the Figure-3 grid (answer: very little, which
is why the paper gets away with it).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.core.queuing import Workload
from repro.core.theorem import optimal_masters


def test_ablation_midpoint_vs_numeric_theta(benchmark):
    grid = [(a, inv_r)
            for a in (2 / 8, 3 / 7, 4 / 6)
            for inv_r in (10, 20, 40, 80)]

    def run_all():
        rows = []
        for a, inv_r in grid:
            w = Workload.from_ratios(lam=1000, a=a, mu_h=1200,
                                     r=1.0 / inv_r, p=32)
            mid = optimal_masters(w, method="midpoint")
            num = optimal_masters(w, method="numeric")
            rows.append((a, inv_r, mid.m, mid.theta, mid.sm,
                         num.m, num.theta, num.sm))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    gaps = []
    table = []
    for a, inv_r, m1, t1, s1, m2, t2, s2 in rows:
        gap = (s1 / s2 - 1) * 100
        gaps.append(gap)
        table.append([f"{a:.3f}", inv_r, m1, f"{t1:.3f}", s1,
                      m2, f"{t2:.3f}", s2, gap])
    emit(format_table(
        ["a", "1/r", "m mid", "th mid", "SM mid", "m num", "th num",
         "SM num", "loss %"],
        table, title="Ablation: midpoint rule vs numeric theta optimum",
    ))

    gaps = np.array(gaps)
    # Numeric can never be meaningfully worse (tolerance: optimizer dust).
    assert (gaps >= -1e-4).all()
    # And the heuristic's loss is tiny (validating the paper's shortcut).
    assert gaps.max() < 5.0
