"""Ablation: what does RSRC node selection actually buy?

DESIGN.md §6 calls out the cost predictor as a design choice worth
ablating.  This bench compares, on a disk-bound ADL workload where the
CPU/disk split matters most:

* **rsrc-sampled** — Equation 5 with offline-sampled w (the paper's M/S),
* **rsrc-half** — Equation 5 with w=0.5 (M/S-ns),
* **cpu-only** — w=1.0: a scheduler that only watches CPU idleness,
* **random-slave** — no load information at all.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.core.policies import MSPolicy, Route
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import ADL


class RandomSlavePolicy(MSPolicy):
    """M/S structure but dynamic requests go to a uniformly random slave."""

    def _route_dynamic(self, request, view, accept):
        node = int(self._slaves[self.rng.integers(len(self._slaves))])
        return Route(node, remote=(node != accept))


def _run(policy, cfg, trace):
    return replay(cfg.copy(), policy, trace).report.overall.stretch


def test_ablation_rsrc_variants(benchmark):
    p, m = (16, 2)
    r = 1 / 40
    lam = iso_load_rate(ADL, 1200.0, r, p, 0.85)
    duration = 12.0 if FULL else 8.0
    seeds = (3, 4, 5) if FULL else (3, 4)

    def run_all():
        rows = {"rsrc-sampled": [], "rsrc-half": [], "cpu-only": [],
                "random-slave": []}
        for seed in seeds:
            cfg = paper_sim_config(num_nodes=p, seed=seed)
            trace = generate_trace(ADL, rate=lam, duration=duration,
                                   mu_h=1200.0, r=r, seed=seed)
            sampler = pretrain_sampler(trace, seed=seed)
            rows["rsrc-sampled"].append(_run(
                MSPolicy(p, m, sampler=sampler, seed=seed + 9), cfg, trace))
            rows["rsrc-half"].append(_run(
                MSPolicy(p, m, use_sampling=False, seed=seed + 9),
                cfg, trace))
            rows["cpu-only"].append(_run(
                MSPolicy(p, m, use_sampling=False, default_w=1.0,
                         seed=seed + 9), cfg, trace))
            rows["random-slave"].append(_run(
                RandomSlavePolicy(p, m, sampler=sampler, seed=seed + 9),
                cfg, trace))
        return {k: float(np.mean(v)) for k, v in rows.items()}

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = means["rsrc-sampled"]
    emit(format_table(
        ["selector", "stretch", "vs rsrc-sampled"],
        [[k, v, f"{100 * (v / base - 1):+.0f}%"] for k, v in means.items()],
        title=f"Ablation: node-selection cost model (ADL, p={p}, "
              f"util=0.85)",
    ))

    # Load-aware selection must beat blind selection on a disk-bound mix.
    assert means["rsrc-sampled"] < means["random-slave"]
    # Sampled weights must stay competitive with any single-resource
    # heuristic (seed noise allows a small band).
    assert means["rsrc-sampled"] <= means["cpu-only"] * 1.15
    assert means["rsrc-sampled"] <= means["rsrc-half"] * 1.15
