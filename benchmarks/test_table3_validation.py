"""TAB3 — validation of the simulator against the (emulated) Sun cluster.

Paper reference (Table 3, Section 5.2.2): replaying UCB/KSU/ADL on a
6-node Sun Ultra-1 cluster (110 req/s per node, r~1/40, m=3/1/1) gives
M/S-improvement ratios that match the simulator within ~3 percentage
points, with the simulator slightly optimistic because it omits background
jobs and un-modelled OS behaviour.

Substitution: no Sun hardware exists here (and a real multi-process
testbed on a single-core host would measure the host, not the algorithm),
so "actual" is the testbed *emulator* — the same substrate degraded by
background-job load and demand jitter, i.e. exactly the effects the paper
blames for the gap.  The claim under test is the *agreement*, not the
absolute improvements.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import run_table3


def test_table3_simulator_vs_testbed(benchmark):
    duration = 120.0 if FULL else 40.0
    result = benchmark.pedantic(run_table3, kwargs={"duration": duration},
                                rounds=1, iterations=1)
    emit(result.render())

    # Agreement: mean absolute gap within a few points (paper: ~3).
    assert result.mean_abs_gap < 6.0

    # Every individual comparison stays within a sane band.
    gaps = np.array([row.gap for row in result.rows])
    assert np.abs(gaps).max() < 20.0

    # Both platforms must agree on the sign for the clear-cut cases
    # (|improvement| > 5% on either platform).
    for row in result.rows:
        if abs(row.actual) > 5.0 and abs(row.simulated) > 5.0:
            assert np.sign(row.actual) == np.sign(row.simulated), row
