"""FIG3(b) — M/S vs M/S' — resolved empirically.

The paper's Figure 3(b) claims M/S' (dynamic requests pinned to a few
nodes, static spread over ALL nodes) beats flat but trails M/S.  In the
self-consistent processor-sharing model this is impossible (convexity —
see EXPERIMENTS.md D1), but the *simulator* carries the mixing costs the
station model lacks: on an M/S' cluster only the k dynamic nodes suffer
CGI memory pressure and disk queueing, so the (p-k)/p share of static
requests landing elsewhere runs clean, while a flat cluster pollutes
every node.

This bench replays all three architectures and checks the paper's
ordering empirically: flat >= M/S' >= roughly M/S (M/S' may edge M/S on
disk-bound traces where masters buy little).
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.analysis.sweep import choose_masters
from repro.core.policies import FlatPolicy, MSPrimePolicy, make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import ADL, KSU, UCB

CONFIGS = ((KSU, 40), (ADL, 40), (UCB, 80))


def test_msprime_sits_between_flat_and_ms(benchmark):
    p = 16
    duration = 14.0 if FULL else 10.0

    def run_all():
        rows = []
        for spec, inv_r in CONFIGS:
            r = 1.0 / inv_r
            lam = iso_load_rate(spec, 1200.0, r, p, 0.85)
            trace = generate_trace(spec, rate=lam, duration=duration,
                                   r=r, seed=3)
            sampler = pretrain_sampler(trace)
            m = choose_masters(spec, lam, 1200.0, r, p)
            out = {}
            for name, policy in [
                ("MS", make_ms(p, m, sampler, seed=4)),
                ("MSprime", MSPrimePolicy(p, p - m, sampler, seed=4)),
                ("flat", FlatPolicy(p, seed=4)),
            ]:
                report = replay(paper_sim_config(p, seed=5), policy,
                                trace).report
                out[name] = report.overall.stretch
            rows.append((spec.name, inv_r, m, out))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [[name, inv_r, m, out["MS"], out["MSprime"], out["flat"],
              f"{100 * (out['flat'] / out['MSprime'] - 1):+.0f}%",
              f"{100 * (out['MSprime'] / out['MS'] - 1):+.0f}%"]
             for name, inv_r, m, out in rows]
    emit(format_table(
        ["trace", "1/r", "m", "S(MS)", "S(MS')", "S(flat)",
         "MS'>flat", "MS>MS'"],
        table,
        title=("Figure 3(b), empirical: M/S' replayed in simulation "
               f"(p={p}, util=0.85)"),
    ))

    # The paper's headline ordering: M/S' beats flat...
    for name, inv_r, m, out in rows:
        assert out["MSprime"] < out["flat"], (name, out)
    # ...and full M/S is at least competitive with M/S' overall
    # (geometric-mean ratio >= ~1, allowing trace-level crossovers).
    import math

    log_ratio = sum(math.log(out["MSprime"] / out["MS"])
                    for _, _, _, out in rows) / len(rows)
    assert log_ratio > -0.15  # M/S no more than ~14% behind on average
