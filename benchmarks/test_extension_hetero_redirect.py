"""Extension benches: heterogeneous clusters and redirection rescheduling.

* **Heterogeneity** — the paper's conclusion announces an extension "for
  managing heterogeneous nodes"; this bench shows min-RSRC placement
  exploiting faster slaves (vs blind uniform dispatch, which cannot).
* **Redirection** — quantifies the paper's stated reason for remote CGI
  execution over SWEB-style HTTP redirection: a WAN round-trip per
  rescheduled request.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.reporting import format_table
from repro.core.policies import FlatPolicy, RedirectMSPolicy, make_ms
from repro.sim.config import SimConfig, paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB


def test_hetero_rsrc_exploits_fast_nodes(benchmark):
    p = 8
    speeds = (1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0)
    rate = 1300.0
    duration = 15.0 if FULL else 10.0
    trace = generate_trace(UCB, rate=rate, duration=duration, r=1 / 40,
                           seed=1)
    sampler = pretrain_sampler(trace)

    def run_all():
        out = {}
        for label, policy in [
            ("M/S min-RSRC", make_ms(p, 2, sampler, seed=2)),
            ("flat uniform", FlatPolicy(p, seed=2)),
        ]:
            cfg = SimConfig(num_nodes=p, cpu_speeds=speeds,
                            seed=3).validate()
            result = replay(cfg, policy, trace)
            metrics = result.cluster.metrics
            dyn_nodes = [n for n, k in zip(metrics.nodes, metrics.kinds)
                         if k == 1]
            fast_share = (sum(n in (6, 7) for n in dyn_nodes)
                          / max(1, len(dyn_nodes)))
            out[label] = (result.report, fast_share)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[label, report.overall.stretch,
             report.dynamic.mean_response * 1000, f"{share:.2f}"]
            for label, (report, share) in results.items()]
    emit(format_table(
        ["policy", "stretch", "dyn mean (ms)", "CGI share on 3x nodes"],
        rows,
        title="Extension: heterogeneous cluster (2 of 8 nodes are 3x)",
    ))

    ms_report, ms_share = results["M/S min-RSRC"]
    flat_report, flat_share = results["flat uniform"]
    # RSRC steers disproportionate work to the fast nodes; uniform cannot.
    assert ms_share > flat_share + 0.05
    assert ms_report.overall.stretch < flat_report.overall.stretch


def test_redirection_vs_remote_execution(benchmark):
    p, m = 8, 3
    rate = 800.0
    duration = 15.0 if FULL else 10.0
    trace = generate_trace(UCB, rate=rate, duration=duration, r=1 / 40,
                           seed=4)
    sampler = pretrain_sampler(trace)

    def run_all():
        out = {}
        remote = replay(paper_sim_config(num_nodes=p, seed=5),
                        make_ms(p, m, sampler, seed=6), trace).report
        out["remote exec (1 ms)"] = (remote, remote.remote_dispatches)
        for rtt_ms in (40, 80, 160):
            policy = RedirectMSPolicy(p, m, client_rtt=rtt_ms / 1000.0,
                                      sampler=sampler, seed=6)
            report = replay(paper_sim_config(num_nodes=p, seed=5), policy,
                            trace).report
            out[f"redirect ({rtt_ms} ms RTT)"] = (report, policy.redirects)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[label, report.dynamic.mean_response * 1000,
             report.overall.stretch, moved]
            for label, (report, moved) in results.items()]
    emit(format_table(
        ["rescheduling", "dyn mean (ms)", "stretch", "rescheduled"],
        rows,
        title="Extension: remote CGI execution vs HTTP redirection",
    ))

    base = results["remote exec (1 ms)"][0].dynamic.mean_response
    prev = base
    for rtt_ms in (40, 80, 160):
        cur = results[f"redirect ({rtt_ms} ms RTT)"][0].dynamic.mean_response
        assert cur > base            # any WAN RTT loses to remote exec
        assert cur >= prev * 0.95    # and it gets worse with distance
        prev = cur
