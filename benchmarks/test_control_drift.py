"""CONTROL — online control plane vs a frozen Theorem-1 design under drift.

Not a paper table: the paper sizes the master set once, offline ("the
system designer can choose the number of master nodes by Theorem 1") and
assumes the workload parameters are stationary.  This bench measures what
that assumption costs when it breaks, and what the :mod:`repro.control`
reconciliation loop buys back.

The scenario is a mid-run workload drift: phase 0 replays a CGI-heavy
mix, phase 1 ramps the dynamic-request share down (20% -> 5% CGI), each
phase at its own iso-utilisation arrival rate so the drift is a *mix*
shift rather than a trivial overload.  The same trace runs twice from
the phase-0 Theorem-1 design:

* **frozen** — the seed behaviour: that design stays in force;
* **controlled** — a ``SimControlLoop`` estimates (a, r, w) online,
  re-solves Theorem 1 every period, and promotes slaves / retunes
  theta'_2 as the estimate firms up.

Documented tolerances (asserted below, recorded beside the perf ledger
in ``CONTROL_DRIFT.json``):

* controlled stretch beats frozen by at least ``MIN_MARGIN`` (the
  measured margin is ~+40-55% across seeds at quick scale);
* controlled stretch lands within ``GAP_TOLERANCE`` of the
  request-weighted per-phase analytic optimum — the clairvoyant
  stationary bound; the gap is real queueing physics (the controller
  needs warm estimation windows before it may act, and the backlog
  accumulated while frozen-at-m0 drains slowly), so "within 2.5x" is the
  claim, not equality.

Both runs are fully trace-audited, the controlled one including the
CONTROL-span consistency invariant (every dispatch consistent with the
theta'_2/role configuration in force; actions respect cooldown).

The confounder variant (satellite of the same PR) attaches the testbed's
``BackgroundLoad`` noise source to both variants: un-modelled background
jobs perturb the busy signals the estimator reads, and the controller
must still steer toward the phase-1 design and keep its margin.
"""

from __future__ import annotations

import json
import pathlib

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import run_control_drift
from repro.testbed.noise import NoiseConfig

SEED = 0

#: Minimum fractional stretch improvement of controlled over frozen.
MIN_MARGIN = 0.15
#: Maximum controlled stretch as a multiple of the per-phase analytic
#: optimum (request-weighted Theorem-1 SM).
GAP_TOLERANCE = 2.5

#: (pct_cgi, utilization, duration) per phase.
PHASES_QUICK = ((20.0, 0.60, 4.0), (5.0, 0.60, 10.0))
PHASES_FULL = ((20.0, 0.60, 8.0), (5.0, 0.60, 20.0))

#: Record written next to the ``BENCH_*.json`` perf ledger (uploaded by
#: the same CI artifact step).
RECORD_PATH = pathlib.Path("CONTROL_DRIFT.json")


def _record(name: str, res) -> None:
    entry = {
        "trace": res.trace,
        "p": res.p,
        "m_frozen": res.m_frozen,
        "frozen_stretch": round(res.frozen_stretch, 4),
        "controlled_stretch": round(res.controlled_stretch, 4),
        "analytic_sm": round(res.analytic_sm, 4),
        "margin": round(res.margin, 4),
        "min_margin": MIN_MARGIN,
        "optimality_gap": round(res.optimality_gap, 4),
        "gap_tolerance": GAP_TOLERANCE,
        "final_masters": list(res.final_masters),
        "actions": len(res.actions),
        "ticks": res.ticks,
        "background_jobs": res.background_jobs,
        "audited": res.audited,
    }
    existing = {}
    if RECORD_PATH.exists():
        existing = json.loads(RECORD_PATH.read_text())
    existing[name] = entry
    RECORD_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))
    emit(f"control-drift record [{name}]: "
         + json.dumps(entry, sort_keys=True))


def test_control_drift_beats_frozen_design(benchmark):
    phases = PHASES_FULL if FULL else PHASES_QUICK

    def run():
        return run_control_drift(trace_name="UCB", p=8, inv_r=40,
                                 phase_specs=phases, seed=SEED)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(res.render())
    _record("drift", res)

    # The controller strictly beats the frozen design, by margin.
    assert res.controlled_stretch < res.frozen_stretch
    assert res.margin >= MIN_MARGIN, (
        f"margin {res.margin:.3f} below the documented {MIN_MARGIN}")

    # ... and lands within the documented tolerance of the clairvoyant
    # per-phase Theorem-1 optimum.
    assert res.optimality_gap <= GAP_TOLERANCE, (
        f"gap {res.optimality_gap:.2f}x above the documented "
        f"{GAP_TOLERANCE}x")

    # It won by actually moving the design: promotions toward the
    # phase-1 optimum, plus theta retunes along the way.
    kinds = {kind for kind, _node, _value in res.actions}
    assert "promote" in kinds
    assert "retune_theta" in kinds
    assert len(res.final_masters) > res.m_frozen


def test_control_drift_with_background_confounder(benchmark):
    """Un-modelled background jobs must not defeat the estimator."""
    phases = PHASES_FULL if FULL else PHASES_QUICK
    noise = NoiseConfig(bg_rate=1.0, bg_demand=0.03, demand_jitter=0.0,
                        seed=77)

    def run():
        return run_control_drift(trace_name="UCB", p=8, inv_r=40,
                                 phase_specs=phases, seed=SEED,
                                 noise=noise)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(res.render())
    _record("drift-confounded", res)

    # The confounder really ran, and stopped at the boundary: injected
    # background demand never outlives the trace span.
    assert res.background_jobs > 0

    # The controller still steers toward the phase-1 design and still
    # strictly beats frozen; the margin floor is halved because the
    # noise hits both variants but perturbs the controlled run's
    # estimation windows too.
    assert res.controlled_stretch < res.frozen_stretch
    assert res.margin >= MIN_MARGIN / 2
    assert res.optimality_gap <= GAP_TOLERANCE
    assert len(res.final_masters) > res.m_frozen
