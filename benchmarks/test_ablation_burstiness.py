"""Ablation: arrival burstiness (flash crowds).

The queuing analysis assumes Poisson arrivals; real Web traffic is bursty
at every timescale, and the paper's motivation is exactly "handling peak
load".  This bench replays the same mean rate as a Poisson stream and as
a two-state MMPP (bursts at 4x the calm rate) and compares how the
schedulers degrade: load-aware placement should absorb bursts better than
blind dispatch, because during a burst the idle-ratio spread across nodes
is what the RSRC picker exploits.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.core.policies import FlatPolicy, make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import KSU


def test_bursty_arrivals_sensitivity(benchmark):
    p, m = 16, 3
    r = 1 / 40
    lam = iso_load_rate(KSU, 1200.0, r, p, 0.7)
    duration = 16.0 if FULL else 12.0

    def run_all():
        out = {}
        for arrival in ("poisson", "mmpp2"):
            trace = generate_trace(KSU, rate=lam, duration=duration, r=r,
                                   seed=5, arrival=arrival)
            sampler = pretrain_sampler(trace)
            for label, policy in [
                ("M/S", make_ms(p, m, sampler, seed=6)),
                ("flat", FlatPolicy(p, seed=6)),
            ]:
                report = replay(paper_sim_config(p, seed=7), policy,
                                trace).report
                out[(arrival, label)] = report
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[arrival, label, rep.overall.stretch,
             rep.overall.p95_response * 1000]
            for (arrival, label), rep in reports.items()]
    emit(format_table(
        ["arrivals", "policy", "stretch", "p95 (ms)"],
        rows,
        title=(f"Ablation: Poisson vs MMPP burst arrivals "
               f"(KSU, p={p}, util=0.7 mean)"),
    ))

    # Burstiness hurts everyone...
    for label in ("M/S", "flat"):
        assert reports[("mmpp2", label)].overall.stretch >= \
            reports[("poisson", label)].overall.stretch * 0.9
    # ...but the load-aware M/S keeps its advantage (or gains) under
    # bursts relative to blind dispatch.
    ms_burst = reports[("mmpp2", "M/S")].overall.stretch
    flat_burst = reports[("mmpp2", "flat")].overall.stretch
    assert ms_burst < flat_burst