"""LIVE — cross-validation of the live loopback cluster vs the simulator.

Both substrates run the *same* scheduler code (M/S policy, reservation
controller, RSRC selection) over the *same* generated ADL trace; this
benchmark records the live/sim stretch ratio next to the perf ledger so a
regression in either substrate — or a drift between them — shows up in
the same place as a wall-time regression.

Tolerance is deliberately generous (``repro.live.validate.TOLERANCE``,
currently 4x either way): the CI host has one CPU core, so concurrent
live CPU burns contend through the GIL while the simulator gives every
node its own processor, and live requests pay real loopback/HTTP
overhead the model folds into a fixed network latency.  The assertion is
"same regime", not "same number" — plus separate checks that the live
run actually exercised the paper's machinery (remote dispatch happened,
most requests completed).
"""

from __future__ import annotations

import asyncio
import json

from benchmarks.conftest import FULL, emit
from repro.live.validate import validate


def test_live_vs_sim_stretch(benchmark):
    duration = 6.0 if FULL else 2.5
    rate = 80.0 if FULL else 60.0

    def run():
        return asyncio.run(validate(trace_name="ADL", rate=rate,
                                    duration=duration, mu_h=240.0,
                                    inv_r=12.0, num_slaves=2, seed=11))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(res.render())
    emit("live-validation record: " + json.dumps({
        "trace": res.trace_name,
        "requests": res.requests,
        "live_stretch": round(res.live_stretch, 4),
        "sim_stretch": round(res.sim_stretch, 4),
        "ratio": round(res.ratio, 4),
        "tolerance": res.tolerance,
        "remote_fraction": round(res.remote_fraction, 4),
    }, sort_keys=True))

    # The documented acceptance band (see module docstring).
    assert res.ok, res.render()

    # The live path really ran the scheduler, not a degenerate fallback.
    assert res.live_completed > 0.9 * res.requests
    assert res.remote_fraction > 0.0
