"""Extension bench: failure masking (paper Sections 1-2 motivation).

Not a paper table — the paper motivates but never measures fault
tolerance.  This bench quantifies the argument it makes in prose: a
switch-fronted M/S cluster hides a slave crash from clients, while DNS
rotation with cached client IPs keeps steering requests at the corpse,
costing every such client a multi-second retry.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.reporting import format_table
from repro.core.policies import FlatPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.sim.failures import FailureInjector
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler
from repro.workload.traces import UCB


def test_failover_ms_vs_dns(benchmark):
    p, rate = 8, 600.0
    duration = 20.0 if FULL else 12.0
    trace = generate_trace(UCB, rate=rate, duration=duration, r=1 / 80,
                           seed=1)
    sampler = pretrain_sampler(trace)

    def run_all():
        out = {}
        for label, policy in [
            ("M/S + switch", make_ms(p, 3, sampler, seed=2)),
            ("flat + DNS", FlatPolicy(p, seed=2, failure_aware=False)),
        ]:
            cluster = Cluster(paper_sim_config(num_nodes=p, seed=3), policy)
            FailureInjector(cluster).crash(node_id=p - 2,
                                           at=duration / 3,
                                           duration=duration / 3)
            cluster.submit_many(trace)
            cluster.run(until=duration + 120.0)
            report = cluster.metrics.report()
            out[label] = (report, cluster.denied_attempts,
                          cluster.restarted_requests)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (report, denied, restarted) in results.items():
        rows.append([label, report.completed, report.overall.stretch,
                     report.overall.p95_response * 1000, denied, restarted])
    emit(format_table(
        ["front end", "completed", "stretch", "p95 (ms)", "denied",
         "restarted"],
        rows, title="Extension: slave crash masking (UCB, p=8, 1 crash)",
    ))

    ms_report, ms_denied, _ = results["M/S + switch"]
    dns_report, dns_denied, _ = results["flat + DNS"]
    # Nobody loses requests outright...
    assert ms_report.completed == dns_report.completed
    # ...but only DNS clients hit the dead node,
    assert ms_denied == 0
    assert dns_denied > 0
    # and those retries wreck DNS's tail/stretch.
    assert dns_report.overall.stretch > 3 * ms_report.overall.stretch


def test_failover_availability_under_crashloop(benchmark):
    """Random crash/repair churn: the M/S cluster keeps completing
    everything as long as capacity survives."""
    p, rate = 8, 400.0
    duration = 20.0 if FULL else 10.0
    trace = generate_trace(UCB, rate=rate, duration=duration, r=1 / 40,
                           seed=4)

    def run():
        policy = make_ms(p, 3, pretrain_sampler(trace), seed=5)
        cluster = Cluster(paper_sim_config(num_nodes=p, seed=6), policy)
        injector = FailureInjector(cluster)
        crashes = injector.random_crashes(
            rate=0.3, horizon=duration, mttr=2.0,
            rng=np.random.default_rng(7),
            nodes=range(3, p))  # only slaves crash
        cluster.submit_many(trace)
        cluster.run(until=duration + 180.0)
        return cluster, crashes

    cluster, crashes = benchmark.pedantic(run, rounds=1, iterations=1)
    report = cluster.metrics.report()
    emit(f"crashloop: {crashes} crashes, "
         f"{cluster.restarted_requests} requests restarted, "
         f"{report.completed}/{len(trace)} completed, "
         f"stretch {report.overall.stretch:.2f}")
    assert report.completed == len(trace)
