"""TAB1 — characteristics of the four Web traces (paper Table 1).

The proprietary logs are substituted by synthetic generators; this bench
regenerates each trace at its native rate and checks the measured
statistics against the published row (request mix, mean interval, response
sizes).
"""

import pytest

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import run_table1


def test_table1_trace_statistics(benchmark):
    n = 100_000 if FULL else 20_000
    result = benchmark.pedantic(run_table1, kwargs={"n": n},
                                rounds=1, iterations=1)
    emit(result.render())

    for row in result.rows:
        assert row.got_pct_cgi == pytest.approx(row.spec_pct_cgi, abs=1.0)
        assert row.got_interval == pytest.approx(row.spec_interval,
                                                 rel=0.05)
        assert row.got_html == pytest.approx(row.spec_html, rel=0.15)
        assert row.got_cgi_size == pytest.approx(row.spec_cgi_size,
                                                 rel=0.15)

    # Ordering facts from the published table survive the synthesis:
    by_name = {r.name: r for r in result.rows}
    assert by_name["ADL"].got_pct_cgi > by_name["KSU"].got_pct_cgi \
        > by_name["UCB"].got_pct_cgi > by_name["DEC"].got_pct_cgi
    assert by_name["KSU"].got_html < by_name["ADL"].got_html \
        < by_name["UCB"].got_html
