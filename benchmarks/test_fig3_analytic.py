"""FIG3 — analytic improvement of M/S over the flat model and over M/S'.

Paper reference (Figure 3, Section 3): with lam=1000, p=32, mu_h=1200,
a in {2/8, 3/7, 4/6} and r in {1/10..1/80}, M/S beats the flat model by up
to ~60%, and the gap grows with the CGI cost 1/r and with the dynamic share
a.

Reproduction note: in the self-consistent processor-sharing model the
*optimal* M/S' degenerates to the flat configuration (see
tests/test_queuing.py::TestMSPrime), so our Figure-3(b) numbers coincide
with Figure-3(a); the paper's separate <=18% M/S' curve is not derivable
from the recoverable formulas (EXPERIMENTS.md discusses this).
"""

from benchmarks.conftest import emit
from repro.analysis.experiments import FIG3_A_VALUES, run_fig3


def test_fig3_improvement_curves(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    emit(result.render())

    # Shape: improvement grows monotonically with 1/r for every a.
    for a in FIG3_A_VALUES:
        values = [v for _, v in result.series(a, "flat")]
        assert values == sorted(values)

    # Magnitude: the paper reports "up to 60%" over flat at this grid.
    peak = result.max_improvement("flat")
    assert 40.0 <= peak <= 90.0, peak

    # Crossover structure: larger a gives larger peak improvement.
    peaks = [max(v for _, v in result.series(a, "flat"))
             for a in FIG3_A_VALUES]
    assert peaks == sorted(peaks)


def test_fig3_optimal_masters_shrink_with_cgi_cost(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    for a in FIG3_A_VALUES:
        ms = [row.m_opt for row in result.rows if abs(row.a - a) < 1e-12]
        assert ms == sorted(ms, reverse=True)
