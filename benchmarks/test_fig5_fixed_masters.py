"""FIG5 — sensitivity of M/S to a fixed (stale) master count.

Paper reference (Figure 5, Section 5.2.1): fixing m from parameters sampled
once (r=1/60, a=0.44, lam=750/3000 -> m=6 for p=32, m=25 for p=128) and
replaying workloads whose r, a and lam differ substantially degrades the
stretch factor by at most 9% (average 4%) compared to re-deriving m per
workload — fixed master counts are robust.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import fixed_master_count, run_fig5


def test_fig5_fixed_master_degradation(benchmark):
    kwargs = dict(p_values=(32, 128) if FULL else (32,),
                  duration=8.0 if FULL else 5.0)
    result = benchmark.pedantic(run_fig5, kwargs=kwargs, rounds=1,
                                iterations=1)
    emit(result.render())

    # The paper's band: small degradation.  Allow our noise floor.
    assert result.max_degradation < 25.0
    assert result.mean_degradation < 10.0


def test_fig5_reference_master_counts():
    """The paper derives m=6 (p=32) and m=25 (p=128) at the reference
    parameters; Theorem 1 should land in the same neighbourhood."""
    assert 4 <= fixed_master_count(32) <= 8
    assert 18 <= fixed_master_count(128) <= 32
