"""Calibration bench: simulator vs the Section-3 closed forms.

Not a paper artifact, but the fidelity evidence behind all of them: with
its OS features disabled, the simulator reproduces M/M/1 within a few
percent; with two request classes, the size-based MLFQ makes the simulated
count-weighted stretch *at most* the model's (the model assumes a
discipline that does not privilege short jobs).  EXPERIMENTS.md leans on
this table when explaining why some paper gaps compress in our substrate.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.reporting import format_table
from repro.analysis.validation import (
    flat_cluster_calibration,
    mm1_calibration,
    ms_model_calibration,
)
from repro.core.queuing import Workload


def test_simulator_matches_mm1(benchmark):
    duration = 120.0 if FULL else 50.0

    def run():
        return mm1_calibration(rho_values=(0.3, 0.5, 0.7, 0.85),
                               duration=duration, seed=3)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["rho", "1/(1-rho)", "simulated", "error %"],
        [[f"{r.rho:.2f}", r.predicted, r.simulated,
          100 * r.relative_error] for r in rows],
        title="Calibration: clean simulator vs M/M/1",
    ))
    for row in rows:
        # Heavy-traffic sample means converge like 1/((1-rho)*sqrt(T)), so
        # the tolerance widens with rho.
        tolerance = 0.06 if row.rho <= 0.75 else 0.20
        assert row.relative_error < tolerance, row


def test_two_class_models_upper_bound_simulator(benchmark):
    duration = 60.0 if FULL else 25.0
    w = Workload.from_ratios(lam=600, a=0.4, mu_h=1200, r=1 / 40, p=8)

    def run():
        flat = flat_cluster_calibration(w, duration=duration, seed=4)
        ms = ms_model_calibration(w, m=2, theta=0.05, duration=duration,
                                  seed=5)
        return flat, ms

    flat, ms = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["system", "model", "simulated", "sim/model"],
        [["flat (p=8)", flat.predicted, flat.simulated,
          flat.simulated / flat.predicted],
         ["M/S (m=2, theta=0.05)", ms.predicted, ms.simulated,
          ms.simulated / ms.predicted]],
        title=("Calibration: two-class cluster — the MLFQ dominates the "
               "discipline-free model"),
    ))
    assert flat.simulated <= flat.predicted * 1.1
    assert ms.simulated <= ms.predicted * 1.1
