"""Extension bench: availability of the resilience layer under chaos.

Not a paper table — the paper motivates failure masking and overload
behaviour in prose but never measures them.  This bench drives the
composed ``storm-burst`` chaos scenario (Poisson slave crashes plus a
2.5x arrival-rate burst) against three clusters replaying the same trace:

* ``failure-free`` — resilience armed, no chaos (the reference);
* ``baseline``     — seed semantics under chaos (no deadlines, no retry
  budget, no shedding);
* ``resilient``    — the full layer: per-attempt deadlines, bounded
  retries with backoff, suspicion-based routing, SLO-driven shedding.

Asserted claims (the PR's acceptance criteria): the resilient cluster
sustains strictly higher goodput and lower p99 stretch than the seed
behaviour, shedding keeps static response within 2x of the failure-free
value, and the request-conservation invariant holds on every variant.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import run_chaos

#: Storm-burst at ~55% base utilisation on 10 nodes: the burst then peaks
#: near 1.4x capacity, which overwhelms a cluster that must complete
#: everything but is well inside what shedding can absorb.
P = 10
RATE = 1229.5
INV_R = 40
SEED = 3


def test_resilience_layer_under_storm_burst(benchmark):
    duration = 40.0 if FULL else 30.0

    def run():
        return run_chaos(scenario="storm-burst", trace_name="UCB",
                         p=P, rate=RATE, duration=duration, inv_r=INV_R,
                         drain=40.0, seed=SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result.render())

    free = result.row("failure-free")
    base = result.row("baseline")
    resi = result.row("resilient")

    # Request conservation: submitted = completed + dropped (+ lost).
    for row in result.rows:
        assert row.balance == 0
        assert row.completed + row.dropped + row.lost == row.submitted

    # The resilience layer turns an overloaded, crash-ridden cluster from
    # "everything eventually completes, mostly outside the SLO" into
    # "almost everything completes inside the SLO, the excess is shed".
    assert resi.goodput > base.goodput
    assert resi.p99_stretch < base.p99_stretch

    # Shedding protects the static tier: masters answer static requests
    # at near failure-free speed while the burst and crashes rage.
    assert resi.static_mean_response <= 2.0 * free.static_mean_response

    # The layer pays for this with counted drops, not silent losses.
    assert resi.dropped > 0
    assert resi.lost == 0


def test_resilience_layer_under_blackout(benchmark):
    """Half the slave tier crashing at once: retries + suspicion re-route
    around the hole and every request is still accounted for."""
    # The registry blackout hits at t=30s, so the trace must outlast it.
    duration = 50.0 if FULL else 40.0

    def run():
        return run_chaos(scenario="blackout", trace_name="UCB",
                         p=8, rate=500.0, duration=duration, inv_r=40,
                         drain=40.0, seed=9)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result.render())

    base = result.row("baseline")
    resi = result.row("resilient")
    for row in result.rows:
        assert row.balance == 0
    assert resi.goodput >= base.goodput
    assert resi.mean_unavailability > 0  # the blackout really happened
    assert resi.completed + resi.dropped == resi.submitted
