"""FIG4 headline claims re-tested with confidence intervals.

Single short replays are noisy; this bench repeats the two claims that
carry the paper's conclusions over several seeds and requires the 95 %
confidence interval to clear zero:

* reservation pays at high load (M/S > M/S-nr),
* the optimized M/S beats the flat architecture.
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.analysis.stats import run_bakeoff_multi
from repro.workload.traces import ADL, KSU, UCB

CONFIGS = (
    (UCB, 80, 0.88),
    (KSU, 40, 0.88),
    (ADL, 40, 0.85),
)


def test_headline_claims_significant(benchmark):
    p = 16
    duration = 12.0 if FULL else 8.0
    seeds = (1, 2, 3, 4, 5) if FULL else (1, 2, 3)

    def run_all():
        out = []
        for spec, inv_r, util in CONFIGS:
            lam = iso_load_rate(spec, 1200.0, 1.0 / inv_r, p, util)
            out.append(run_bakeoff_multi(
                spec, lam=lam, r=1.0 / inv_r, p=p, duration=duration,
                seeds=seeds, policies=("MS", "MS-nr", "Flat")))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for multi in results:
        rows.append([
            multi.spec_name, int(multi.lam),
            str(multi.stretch["MS"]),
            f"{multi.improvement['MS-nr']} %",
            f"{multi.improvement['Flat']} %",
        ])
    emit(format_table(
        ["trace", "lam", "S(MS) ±CI", "vs MS-nr ±CI", "vs Flat ±CI"],
        rows,
        title=(f"Figure 4 headline claims, {len(results[0].results)} "
               f"seeds, 95% CI (p={p})"),
    ))

    for multi in results:
        # M/S must never be *significantly* worse than either baseline.
        assert not multi.significantly_worse("MS-nr"), multi.spec_name
        assert not multi.significantly_worse("Flat"), multi.spec_name

    # And the wins must be positive where the paper claims them: with the
    # quick grid's few seeds the t-intervals are wide, so require at least
    # one CI-clear win per comparison plus positive means on a majority.
    flat_sig = sum(m.significantly_better("Flat") for m in results)
    flat_pos = sum(m.improvement["Flat"].mean > 0 for m in results)
    nr_sig = sum(m.significantly_better("MS-nr") for m in results)
    nr_pos = sum(m.improvement["MS-nr"].mean > 0 for m in results)
    need_sig = 2 if FULL else 1
    assert flat_sig >= need_sig and flat_pos >= 2, \
        [str(m.improvement["Flat"]) for m in results]
    assert nr_sig >= need_sig and nr_pos >= 2, \
        [str(m.improvement["MS-nr"]) for m in results]
