"""Microbenchmarks of the simulation substrate itself.

These are true pytest-benchmark timings (multiple rounds): event-loop
throughput, replay throughput and policy routing cost.  They guard against
performance regressions that would make the experiment grids impractical.
"""

import numpy as np

from repro.core.policies import make_ms
from repro.core.rsrc import select_min_rsrc
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.sim.engine import Engine
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB


def test_engine_event_throughput(benchmark):
    def schedule_and_run():
        eng = Engine()
        for i in range(10_000):
            eng.schedule((i % 997) / 1000.0, _noop)
        eng.run()
        return eng.processed

    processed = benchmark(schedule_and_run)
    assert processed == 10_000


def _noop():
    pass


def test_replay_throughput(benchmark):
    """End-to-end simulated requests per wall-second on an 8-node cluster."""
    trace = generate_trace(UCB, rate=400, duration=5.0, seed=1)
    sampler = pretrain_sampler(trace)

    def run():
        cfg = paper_sim_config(num_nodes=8, seed=1)
        return replay(cfg, make_ms(8, 3, sampler, seed=2), trace,
                      warmup_fraction=0.0).report.completed

    completed = benchmark(run)
    assert completed == len(trace)


def test_rsrc_selection_cost(benchmark):
    """Routing cost of one min-RSRC pick across a 128-node view."""
    rng = np.random.default_rng(0)
    cpu = rng.uniform(0.1, 1.0, size=128)
    disk = rng.uniform(0.1, 1.0, size=128)
    candidates = np.arange(128)

    pick = benchmark(select_min_rsrc, 0.7, cpu, disk, candidates)
    assert 0 <= pick < 128


def test_cluster_construction_cost(benchmark):
    """Building a 128-node cluster should be cheap enough to do per run."""
    def build():
        return Cluster(paper_sim_config(num_nodes=128, seed=1),
                       make_ms(128, 16, seed=2))

    cluster = benchmark(build)
    assert len(cluster.nodes) == 128
