"""Microbenchmarks of the simulation substrate itself.

These are true pytest-benchmark timings (multiple rounds): event-loop
throughput, replay throughput and policy routing cost.  They guard against
performance regressions that would make the experiment grids impractical.

``test_engine_speedup_vs_seed`` is the acceptance gate for the kernel
rewrite: it times the current two-tier engine against a frozen copy of the
seed (binary-heap, Event-per-callback) kernel and asserts >=2x events/sec.
"""

import heapq
import itertools
import time

import numpy as np

from repro.core.policies import make_ms
from repro.core.rsrc import select_min_rsrc
from repro.obs import Tracer
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.sim.engine import Engine
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB


def test_engine_event_throughput(benchmark):
    def schedule_and_run():
        eng = Engine()
        for i in range(10_000):
            eng.schedule((i % 997) / 1000.0, _noop)
        eng.run()
        return eng.processed

    processed = benchmark(schedule_and_run)
    assert processed == 10_000


def _noop():
    pass


def test_replay_throughput(benchmark):
    """End-to-end simulated requests per wall-second on an 8-node cluster."""
    trace = generate_trace(UCB, rate=400, duration=5.0, seed=1)
    sampler = pretrain_sampler(trace)

    def run():
        cfg = paper_sim_config(num_nodes=8, seed=1)
        return replay(cfg, make_ms(8, 3, sampler, seed=2), trace,
                      warmup_fraction=0.0).report.completed

    completed = benchmark(run)
    assert completed == len(trace)


def test_rsrc_selection_cost(benchmark):
    """Routing cost of one min-RSRC pick across a 128-node view."""
    rng = np.random.default_rng(0)
    cpu = rng.uniform(0.1, 1.0, size=128)
    disk = rng.uniform(0.1, 1.0, size=128)
    candidates = np.arange(128)

    pick = benchmark(select_min_rsrc, 0.7, cpu, disk, candidates)
    assert 0 <= pick < 128


def test_cluster_construction_cost(benchmark):
    """Building a 128-node cluster should be cheap enough to do per run."""
    def build():
        return Cluster(paper_sim_config(num_nodes=128, seed=1),
                       make_ms(128, 16, seed=2))

    cluster = benchmark(build)
    assert len(cluster.nodes) == 128


# -- seed-kernel reference ---------------------------------------------------
# Frozen copy of the seed engine (commit d771ed8): one binary heap, one
# Event object allocated per scheduled callback, cyclic GC left running.
# Kept verbatim so the speedup gate below measures the current kernel
# against a fixed reference instead of against itself.

class _SeedEvent:
    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time_, seq, fn, args):
        self.time = time_
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False


class _SeedEngine:
    __slots__ = ("now", "_heap", "_seq", "_processed")

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = itertools.count()
        self._processed = 0

    def schedule_at(self, time_, fn, *args):
        seq = next(self._seq)
        ev = _SeedEvent(time_, seq, fn, args)
        heapq.heappush(self._heap, (time_, seq, ev))
        return ev

    def run(self):
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        while heap:
            time_, _, ev = heap[0]
            if ev.cancelled:
                heappop(heap)
                continue
            heappop(heap)
            self.now = time_
            ev.fn(*ev.args)
            processed += 1
        self._processed += processed
        return processed


def _best_of(fn, reps=3):
    """Minimum wall time over ``reps`` runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def test_engine_speedup_vs_seed():
    """Acceptance gate: >=2x events/sec over the seed kernel.

    The workload is replay-shaped: a whole trace's arrivals populated up
    front (the dominant event mass in every experiment grid), then run to
    exhaustion.  The current engine uses the same batch-submission path the
    cluster's ``submit_many`` uses.
    """
    n = 150_000

    def run_seed():
        eng = _SeedEngine()
        schedule_at = eng.schedule_at
        for i in range(n):
            schedule_at((i % 9973) / 100.0, _noop)
        assert eng.run() == n

    def run_current():
        eng = Engine()
        queued = eng.call_at_many(
            ((i % 9973) / 100.0, _noop, ()) for i in range(n))
        assert queued == n
        assert eng.run() == n

    seed_best = _best_of(run_seed)
    current_best = _best_of(run_current)
    speedup = seed_best / current_best
    print(f"\nseed: {n / seed_best:,.0f} ev/s   "
          f"current: {n / current_best:,.0f} ev/s   "
          f"speedup: {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"engine speedup vs seed kernel is {speedup:.2f}x "
        f"({n / seed_best:,.0f} -> {n / current_best:,.0f} ev/s); "
        f"the kernel rewrite requires >=2x"
    )


def test_tracing_overhead_bounded():
    """Acceptance gate for the observability tap: a fully traced replay
    (every span kind recorded) must stay within 15% of the wall time of
    the identical untraced replay.  The tap is a single attribute-is-None
    test per hook when disabled, so the untraced side also guards the
    no-op claim — any regression there shows up in the benchmark gate's
    replay timings.
    """
    trace = generate_trace(UCB, rate=400, duration=5.0, seed=1)
    sampler = pretrain_sampler(trace)

    def run(tracer):
        cfg = paper_sim_config(num_nodes=8, seed=1)
        result = replay(cfg, make_ms(8, 3, sampler, seed=2), trace,
                        warmup_fraction=0.0, tracer=tracer, audit=False)
        assert result.report.completed == len(trace)
        return result

    # Shared-runner wall clocks drift by tens of percent between seconds,
    # so independent best-of timings produce phantom overheads.  Instead
    # time untraced/traced back-to-back as a PAIR and take the minimum of
    # the per-pair ratios: a real overhead inflates every pair's ratio,
    # while background load only inflates some of them.  This is a
    # one-sided regression gate, not a precision measurement (see
    # docs/observability.md for calm-machine numbers, ~7-11%).
    run(None)
    run(Tracer())
    ratios = []
    spans = 0
    for _ in range(9):
        start = time.perf_counter()
        run(None)
        off = time.perf_counter() - start
        tracer = Tracer()
        start = time.perf_counter()
        run(tracer)
        on = time.perf_counter() - start
        ratios.append(on / off)
        spans = len(tracer)

    overhead = min(ratios) - 1.0
    print(f"\npair ratios: "
          + " ".join(f"{(r - 1) * 100:+.1f}%" for r in ratios)
          + f"   ({spans} spans)   overhead (min): {overhead * 100:.1f}%")
    # >= 5 spans/request (arrive, dispatch, admit, start, complete) plus
    # device intervals: proof the tap was really armed.
    assert spans > 5 * len(trace)
    assert overhead < 0.15, (
        f"tracing-enabled replay is {overhead * 100:.1f}% slower than "
        f"untraced (budget: 15%)"
    )
