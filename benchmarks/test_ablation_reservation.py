"""Ablation: reservation cap policy for master nodes.

DESIGN.md §6: the adaptive theta'_2 controller vs a fixed analytic cap vs
no cap at all, on a heavy mixed workload where reservation matters.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.core.policies import MSPolicy
from repro.core.reservation import ReservationConfig
from repro.core.theorem import reservation_ratio
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import UCB


def test_ablation_reservation_modes(benchmark):
    p, m = 16, 2
    r = 1 / 80
    lam = iso_load_rate(UCB, 1200.0, r, p, 0.88)
    duration = 12.0 if FULL else 8.0
    seeds = (3, 4, 5) if FULL else (3, 4)
    analytic_cap = reservation_ratio(UCB.arrival_ratio_a, r, m, p)

    def run_all():
        rows = {"adaptive": [], "fixed-analytic": [], "none": []}
        for seed in seeds:
            cfg = paper_sim_config(num_nodes=p, seed=seed)
            trace = generate_trace(UCB, rate=lam, duration=duration,
                                   mu_h=1200.0, r=r, seed=seed)
            sampler = pretrain_sampler(trace, seed=seed)

            adaptive = MSPolicy(p, m, sampler=sampler, seed=seed + 9)
            rows["adaptive"].append(
                replay(cfg.copy(), adaptive, trace).report.overall.stretch)

            fixed = MSPolicy(
                p, m, sampler=sampler, seed=seed + 9,
                reservation_cfg=ReservationConfig(
                    theta_init=analytic_cap, update_period=1e9),
            )
            rows["fixed-analytic"].append(
                replay(cfg.copy(), fixed, trace).report.overall.stretch)

            none = MSPolicy(p, m, sampler=sampler, use_reservation=False,
                            seed=seed + 9)
            rows["none"].append(
                replay(cfg.copy(), none, trace).report.overall.stretch)
        return {k: float(np.mean(v)) for k, v in rows.items()}

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = means["adaptive"]
    emit(format_table(
        ["reservation", "stretch", "vs adaptive"],
        [[k, v, f"{100 * (v / base - 1):+.0f}%"] for k, v in means.items()],
        title=(f"Ablation: master reservation (UCB, p={p}, util=0.88, "
               f"analytic cap={analytic_cap:.3f})"),
    ))

    # Reservation (either flavour) must beat no reservation at high load.
    assert means["adaptive"] < means["none"]
    # The adaptive controller should be competitive with the oracle-ish
    # fixed analytic cap (within 25%).
    assert means["adaptive"] <= means["fixed-analytic"] * 1.25
