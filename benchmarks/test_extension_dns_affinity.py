"""Extension bench: the DNS-caching imbalance the paper opens with.

Section 1: "Research has demonstrated that DNS round-robin rotation does
not evenly distribute the load among servers, due to non-uniform resource
demands of requests and DNS entry caching."  With session-structured
traffic and client-side IP caching, per-node load spread collapses to the
client mix; a switch (per-request, failure-aware) or M/S front end
restores balance.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.reporting import format_table
from repro.core.policies import DNSAffinityPolicy, FlatPolicy, make_ms
from repro.sim.cluster import Cluster
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler
from repro.workload.sessions import SessionConfig, sessionize
from repro.workload.traces import UCB


def test_dns_affinity_load_imbalance(benchmark):
    p, rate = 8, 900.0
    duration = 15.0 if FULL else 10.0
    base = generate_trace(UCB, rate=rate, duration=duration, r=1 / 40,
                          seed=1)
    trace = sessionize(base, SessionConfig(num_clients=24,
                                           mean_session_length=40,
                                           seed=2))
    sampler = pretrain_sampler(trace)

    def run_all():
        out = {}
        for label, policy in [
            ("DNS + client caching", DNSAffinityPolicy(p, seed=3)),
            ("switch (random)", FlatPolicy(p, seed=3)),
            ("M/S", make_ms(p, 3, sampler, seed=3)),
        ]:
            cluster = Cluster(paper_sim_config(num_nodes=p, seed=4),
                              policy)
            cluster.submit_many(trace)
            cluster.run(until=duration + 120.0)
            report = cluster.metrics.report()
            counts = np.array([n.admitted for n in cluster.nodes])
            out[label] = (report, counts)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (report, counts) in results.items():
        cov = counts.std() / counts.mean()
        rows.append([label, f"{cov:.2f}",
                     int(counts.max()), int(counts.min()),
                     report.overall.stretch])
    emit(format_table(
        ["front end", "load CoV", "busiest node", "idlest node",
         "stretch"],
        rows,
        title=("Extension: DNS client caching vs per-request dispatch "
               f"(UCB sessions, {24} clients, p={p})"),
    ))

    dns_report, dns_counts = results["DNS + client caching"]
    flat_report, flat_counts = results["switch (random)"]

    def cov(x):
        return x.std() / x.mean()

    # The imbalance claim, quantified.
    assert cov(dns_counts) > 2 * cov(flat_counts)
    # And it costs response time: the DNS cluster is never better.
    assert dns_report.overall.stretch >= flat_report.overall.stretch * 0.95
