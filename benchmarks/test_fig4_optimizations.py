"""FIG4 — simulated improvement of optimized M/S over its ablations.

Paper reference (Figure 4, Section 5.2.1): on 32- and 128-node clusters
across the UCB/KSU/ADL workloads and 1/r in {20..160},

* M/S beats M/S-nr (no reservation) by up to 68%,
* M/S beats M/S-ns (no demand sampling) by 5-22% (average 14%),
* M/S-1 (no static/dynamic separation) can be up to 26% worse.

Reproduction notes: rates are chosen iso-load (see
``repro.analysis.experiments.FIG4_UTILIZATIONS``); the reservation and
sampling gaps reproduce and peak at high load, while the M/S-1 gap is
compressed to ~zero in our substrate because the BSD-style MLFQ and the
cache-miss model already shield static requests on mixed nodes —
EXPERIMENTS.md quantifies this divergence.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import run_fig4, run_table2


def _grid():
    if FULL:
        return dict(p_values=(32, 128), inv_r_values=(20, 40, 80, 160),
                    utilizations=(0.6, 0.75, 0.9), base_duration=10.0)
    return dict(p_values=(32,), inv_r_values=(20, 80),
                utilizations=(0.6, 0.9), base_duration=6.0)


def test_fig4_ablation_improvements(benchmark):
    grid = _grid()
    result = benchmark.pedantic(run_fig4, kwargs=grid, rounds=1,
                                iterations=1)
    emit(run_table2(p_values=grid["p_values"],
                    inv_r_values=grid["inv_r_values"],
                    utilizations=grid["utilizations"]).render())
    emit(result.render())

    nr = np.array(result.improvements("MS-nr"))
    ns = np.array(result.improvements("MS-ns"))
    flat = np.array(result.improvements("Flat"))

    # Reservation is the headline optimization: large positive gaps at the
    # heavy end (paper: up to 68%).
    assert nr.max() > 20.0, nr
    assert np.median(nr) > -5.0

    # Demand sampling helps on balance (paper: 5-22%, avg 14%; ours is
    # noisier and smaller but must not hurt systematically).
    assert ns.mean() > -5.0, ns
    assert ns.max() > 5.0

    # The optimized M/S clearly beats the flat architecture overall.
    assert flat.max() > 30.0
    assert np.median(flat) > 0.0
