"""Shared benchmark configuration.

Every experiment benchmark prints the regenerated table/figure via
``emit()`` so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
paper-reproduction report.  Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — minutes: trimmed grids, 32-node clusters.
* ``full``  — the whole DESIGN.md §4 grid including 128-node clusters.
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
if SCALE not in ("quick", "full"):
    raise ValueError(f"REPRO_BENCH_SCALE must be quick|full, got {SCALE!r}")

FULL = SCALE == "full"


def emit(text: str) -> None:
    """Print a rendered experiment artifact into the bench output."""
    print()
    print(text)


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE
