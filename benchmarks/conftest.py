"""Shared benchmark configuration.

Every experiment benchmark prints the regenerated table/figure via
``emit()`` so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
paper-reproduction report.  Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — minutes: trimmed grids, 32-node clusters.
* ``full``  — the whole DESIGN.md §4 grid including 128-node clusters.

A bad ``REPRO_BENCH_SCALE`` is reported through ``pytest.UsageError``
(clean one-line error, exit code 4) rather than an import-time traceback:
raising here at import would abort collection with an INTERNALERROR-style
dump and, under ``-p no:cacheprovider``-less runs, poison the cache.
"""

from __future__ import annotations

import os

import pytest

_VALID_SCALES = ("quick", "full")

_RAW_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()

#: Validated in :func:`pytest_configure`; benchmarks importing ``FULL``
#: before then see the quick-scale fallback, but no test runs with it —
#: a bad value aborts the session first.
SCALE = _RAW_SCALE if _RAW_SCALE in _VALID_SCALES else "quick"

FULL = SCALE == "full"


def pytest_configure(config: pytest.Config) -> None:
    if _RAW_SCALE not in _VALID_SCALES:
        raise pytest.UsageError(
            f"REPRO_BENCH_SCALE must be one of {'|'.join(_VALID_SCALES)}, "
            f"got {_RAW_SCALE!r}")
    if SCALE == "quick":
        # Quick-scale benches double as correctness smoke: run every
        # replay traced+audited (see src/repro/obs).  Full-scale runs
        # stay untraced — a 128-node Figure-4 grid would hold hundreds
        # of millions of spans.  ``run_bench`` pops the variable so the
        # wall-time ledger gate always measures the untraced hot path.
        os.environ.setdefault("REPRO_AUDIT", "1")


def emit(text: str) -> None:
    """Print a rendered experiment artifact into the bench output."""
    print()
    print(text)


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE
