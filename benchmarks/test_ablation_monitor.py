"""Ablation: load-information staleness.

DESIGN.md §6: the scheduler sees rstat()-style snapshots that are up to one
monitoring period old.  This bench sweeps the period to show how stale load
views erode the M/S scheduler's placement quality, and that the
outstanding-dispatch correction keeps the collapse graceful.
"""

import numpy as np

from benchmarks.conftest import FULL, emit
from repro.analysis.experiments import iso_load_rate
from repro.analysis.reporting import format_table
from repro.core.policies import make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import KSU

PERIODS = (0.05, 0.2, 1.0, 5.0)


def test_ablation_monitor_staleness(benchmark):
    p, m = 16, 3
    r = 1 / 40
    lam = iso_load_rate(KSU, 1200.0, r, p, 0.85)
    duration = 12.0 if FULL else 8.0
    seeds = (3, 4) if FULL else (3,)

    def run_all():
        means = {}
        for period in PERIODS:
            vals = []
            for seed in seeds:
                cfg = paper_sim_config(num_nodes=p, seed=seed)
                cfg.monitor.period = period
                trace = generate_trace(KSU, rate=lam, duration=duration,
                                       mu_h=1200.0, r=r, seed=seed)
                sampler = pretrain_sampler(trace, seed=seed)
                policy = make_ms(p, m, sampler, seed=seed + 9)
                vals.append(replay(cfg, policy, trace)
                            .report.overall.stretch)
            means[period] = float(np.mean(vals))
        return means

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = means[PERIODS[0]]
    emit(format_table(
        ["monitor period (s)", "stretch", "vs freshest"],
        [[f"{k:.2f}", v, f"{100 * (v / base - 1):+.0f}%"]
         for k, v in means.items()],
        title=f"Ablation: load-monitor staleness (KSU, p={p}, util=0.85)",
    ))

    # Very stale info must not catastrophically collapse the scheduler
    # (the outstanding-dispatch correction carries most of the signal).
    assert means[5.0] < 4.0 * means[PERIODS[0]]
