"""Extension bench: CGI result caching (the Swala substrate).

Not a paper table — the paper defers caching to its Swala work.  Sweeps
cache capacity on a Zipf-query search workload; dynamic mean response
should fall monotonically toward the all-hits floor, while static service
is untouched or improves (hits keep CGI load off the slaves).
"""

from benchmarks.conftest import FULL, emit
from repro.analysis.reporting import format_table
from repro.core.caching import CachingMSPolicy, CGICache
from repro.core.policies import make_ms
from repro.sim.config import paper_sim_config
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import KSU

CAPACITIES = (50, 200, 1000)


def test_cache_capacity_sweep(benchmark):
    p, m, rate = 16, 3, 900.0
    duration = 15.0 if FULL else 10.0
    trace = generate_trace(KSU, rate=rate, duration=duration, r=1 / 40,
                           seed=1, cacheable_fraction=0.7,
                           distinct_queries=2000, zipf_s=1.1)
    sampler = pretrain_sampler(trace)

    def run_all():
        rows = {}
        base = replay(paper_sim_config(num_nodes=p, seed=2),
                      make_ms(p, m, sampler, seed=3), trace).report
        rows["none"] = (base, None)
        for cap in CAPACITIES:
            cache = CGICache(capacity=cap, ttl=120.0)
            report = replay(
                paper_sim_config(num_nodes=p, seed=2),
                CachingMSPolicy(p, m, cache, sampler=sampler, seed=3),
                trace).report
            rows[str(cap)] = (report, cache.stats.hit_ratio)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = []
    for label, (report, ratio) in rows.items():
        table.append([
            label, "-" if ratio is None else f"{ratio:.2f}",
            report.dynamic.mean_response * 1000,
            report.dynamic.p95_response * 1000,
            report.static.mean_response * 1000,
        ])
    emit(format_table(
        ["cache entries", "hit ratio", "dyn mean (ms)", "dyn p95 (ms)",
         "static mean (ms)"],
        table,
        title="Extension: CGI result cache sweep (KSU search workload)",
    ))

    dyn_means = [rows[k][0].dynamic.mean_response
                 for k in ("none",) + tuple(str(c) for c in CAPACITIES)]
    # Monotone improvement as the cache grows (allow 5% noise).
    for before, after in zip(dyn_means, dyn_means[1:]):
        assert after <= before * 1.05
    # The largest cache cuts dynamic latency substantially.
    assert dyn_means[-1] < 0.7 * dyn_means[0]
    # Hit ratio grows with capacity.
    ratios = [rows[str(c)][1] for c in CAPACITIES]
    assert ratios == sorted(ratios)
