"""The per-node execution substrate: worker pool + framed remote-CGI service.

Every node of the live cluster — slave or master — owns one
:class:`WorkerPool`: a ``ThreadPoolExecutor`` gated by an
:class:`asyncio.Semaphore` of the same width, the live analogue of the
simulator's per-node multiprogramming level.  The pool realises request
demands through the calibrated burn/sleep kernel and accounts the measured
busy seconds to the node's :class:`~repro.live.kernel.BusyMeter` (which
the load daemon turns into the CPU-idle/disk-avail heartbeats the RSRC
predictor consumes).

On top of the pool, :class:`CGIService` exposes the node to its peers: a
TCP server speaking the length-prefixed protocol of
:mod:`repro.live.protocol`.  For each ``cgi`` frame it immediately acks
``admit``, emits ``start`` when a worker picks the request up, and
reports ``done`` with the measured CPU/disk seconds (feedback for the
master's online demand sampler).

A slave process (:func:`run_slave`, spawned by ``repro serve`` /
``repro loadgen --spawn``) is a CGI service plus a heartbeat daemon
pointed at every master's UDP port.  On startup it prints one
machine-readable ``READY`` line so the parent can discover the
OS-assigned port; it exits when the parent disappears (orphan watchdog)
or on SIGTERM.
"""

from __future__ import annotations

import asyncio
import os
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence, Tuple

from repro.live import protocol
from repro.live.kernel import BusyMeter, LiveClock, calibrate, run_cgi
from repro.live.loadd import LoadReporter
from repro.sim.config import MonitorConfig

#: Startup handshake line printed by a slave process on stdout.
READY_PREFIX = "REPRO-SLAVE-READY"


class WorkerPool:
    """Bounded execution of request demands on real worker threads."""

    def __init__(self, node_id: int, workers: int, meter: BusyMeter):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.node_id = node_id
        self.workers = workers
        self.meter = meter
        self.semaphore = asyncio.Semaphore(workers)
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"cgi-{node_id}")
        self.completed = 0

    async def run(self, cpu_seconds: float, io_seconds: float,
                  on_start: Optional[Callable[[], None]] = None
                  ) -> Tuple[float, float]:
        """Execute one demand; returns measured ``(cpu, io)`` seconds.

        ``on_start`` fires (synchronously, on the event loop) the moment a
        worker slot is acquired — the live "left the backlog" signal.
        """
        self.meter.begin()
        try:
            async with self.semaphore:
                if on_start is not None:
                    on_start()
                loop = asyncio.get_running_loop()
                cpu_used, io_used = await loop.run_in_executor(
                    self.executor, run_cgi, cpu_seconds, io_seconds)
            self.meter.add(cpu_used, io_used)
            self.completed += 1
            return cpu_used, io_used
        finally:
            self.meter.end()

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


class CGIService:
    """Serve remote-CGI frames from peer masters on the node's pool."""

    def __init__(self, node_id: int, pool: WorkerPool,
                 host: str = "127.0.0.1"):
        self.node_id = node_id
        self.pool = pool
        self.host = host
        self.port: Optional[int] = None
        self.server: Optional[asyncio.base_events.Server] = None
        self.requests_served = 0
        #: Role as announced by the control plane ("slave" until a ROLE
        #: frame says otherwise); informational — execution is
        #: role-agnostic.
        self.role = "slave"
        self.role_changes = 0

    async def start(self) -> int:
        """Bind the TCP endpoint; returns the assigned port."""
        self.server = await asyncio.start_server(
            self._handle_conn, self.host, 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()          # serialises write+drain pairs
        tasks = set()
        try:
            await protocol.expect_hello(reader)
            protocol.send_message(writer, protocol.hello(self.node_id))
            await writer.drain()
            while True:
                msg = await protocol.read_message(reader)
                if msg is None:
                    break
                op = msg.get("op")
                if op == "cgi":
                    protocol.send_message(
                        writer, {"op": "admit", "id": msg["id"]})
                    task = asyncio.get_running_loop().create_task(
                        self._execute(msg, writer, lock))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif op == "ping":
                    async with lock:
                        protocol.send_message(
                            writer, {"op": "pong", "id": msg.get("id", 0)})
                        await writer.drain()
                elif op == "role":
                    # Control-plane role transition (repro.control).
                    # Execution is role-agnostic — in-flight CGI work
                    # carries on (graceful role drain) — the node just
                    # records its new role and acknowledges so the
                    # master's trace shows the transition was observed.
                    self.role = str(msg.get("role", self.role))
                    self.role_changes += 1
                    async with lock:
                        protocol.send_message(
                            writer, {"op": "role_ok",
                                     "node": self.node_id,
                                     "role": self.role,
                                     "seq": msg.get("seq", 0)})
                        await writer.drain()
                # Unknown ops are ignored: forward compatibility.
        except (protocol.ProtocolError, ConnectionResetError,
                asyncio.IncompleteReadError):
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _execute(self, msg: dict, writer: asyncio.StreamWriter,
                       lock: asyncio.Lock) -> None:
        req_id = msg["id"]
        try:
            def on_start() -> None:
                # A bare write is safe: a frame is appended to the
                # transport buffer atomically (no await inside).
                protocol.send_message(writer, {"op": "start", "id": req_id})

            cpu_used, io_used = await self.pool.run(
                float(msg.get("cpu", 0.0)), float(msg.get("io", 0.0)),
                on_start=on_start)
            self.requests_served += 1
            async with lock:
                protocol.send_message(
                    writer, {"op": "done", "id": req_id,
                             "cpu": cpu_used, "io": io_used})
                await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:   # report, don't kill the connection task
            try:
                async with lock:
                    protocol.send_message(
                        writer, {"op": "error", "id": req_id,
                                 "reason": repr(exc)})
                    await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass


def parse_udp_targets(spec: str) -> list:
    """Parse ``host:port,host:port`` into address tuples.

    >>> parse_udp_targets("127.0.0.1:9001,localhost:9002")
    [('127.0.0.1', 9001), ('localhost', 9002)]
    """
    targets = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        targets.append((host or "127.0.0.1", int(port)))
    return targets


async def _orphan_watchdog(period: float = 1.0) -> None:
    """Exit when the spawning process dies (reparented away from it)."""
    parent = os.getppid()
    while True:
        await asyncio.sleep(period)
        if os.getppid() != parent:
            raise SystemExit(0)


async def run_slave(node_id: int, workers: int,
                    masters_udp: Sequence[Tuple[str, int]],
                    monitor: Optional[MonitorConfig] = None,
                    host: str = "127.0.0.1",
                    ready_stream=None) -> None:
    """Slave process main loop: CGI service + heartbeats, until killed."""
    monitor = monitor or MonitorConfig()
    clock = LiveClock()
    calibrate()                       # pay the burn calibration up front
    meter = BusyMeter(capacity=workers, now=clock.now)
    pool = WorkerPool(node_id, workers, meter)
    service = CGIService(node_id, pool, host=host)
    port = await service.start()
    reporter = LoadReporter(node_id, meter, clock, udp_targets=masters_udp,
                            cfg=monitor)
    await reporter.start()
    stream = ready_stream if ready_stream is not None else sys.stdout
    print(f"{READY_PREFIX} node={node_id} port={port}", file=stream,
          flush=True)
    try:
        await _orphan_watchdog()
    finally:
        await reporter.stop()
        await service.stop()
        pool.shutdown()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.live.node``: run one slave process."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.live.node",
        description="repro.live slave: CGI executor + load heartbeat daemon")
    parser.add_argument("--node", type=int, required=True,
                        help="this node's cluster-wide id")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads (multiprogramming level)")
    parser.add_argument("--masters-udp", required=True,
                        help="comma-separated host:port heartbeat targets")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--period", type=float, default=None,
                        help="heartbeat period override, seconds")
    args = parser.parse_args(argv)
    monitor = MonitorConfig()
    if args.period is not None:
        monitor.period = args.period
    try:
        asyncio.run(run_slave(args.node, args.workers,
                              parse_udp_targets(args.masters_udp),
                              monitor=monitor, host=args.host))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":   # pragma: no cover - subprocess entry
    raise SystemExit(main())
