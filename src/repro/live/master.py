"""The live master: HTTP front end running the paper's scheduler for real.

A :class:`MasterServer` is one accepting node of the cluster.  It glues
together, on a single asyncio event loop:

* an HTTP/1.1 listener (``GET /req``) where clients submit requests;
* the *simulator's own* dispatch policy —
  :class:`~repro.core.policies.FrontEndMSPolicy`, reservation controller
  and demand sampler included — fed by a :class:`~repro.live.loadd
  .LiveLoadView` over the UDP heartbeat table;
* a local :class:`~repro.live.node.WorkerPool` executing requests the
  policy keeps on this master (static always; dynamic when the theta'_2
  gate admits and this master wins the RSRC comparison);
* one persistent framed-TCP :class:`PeerConnection` per remote node for
  low-overhead remote CGI ("a persistent connection between two nodes is
  kept alive ... to minimize the communication overhead");
* an optional :class:`~repro.obs.Tracer` bound to the master's
  :class:`~repro.live.kernel.LiveClock`, emitting the same span stream the
  simulator emits, so ``repro trace --audit`` proves the same invariants
  over live traffic.

Span discipline
---------------
Every span is recorded on the event-loop thread, reading the monotonic
clock at append time, so the stream satisfies the auditor's causality
check by construction.  Remote lifecycle spans (``admit``/``start``) are
recorded when the peer's frames arrive; TCP ordering guarantees they
precede the ``done`` that resolves the awaiting handler.  Failure paths
mirror the simulator: a request refused before admission records
``deny`` + ``drop``; one abandoned after admission (peer death, timeout)
records ``abort`` + ``drop`` and unwinds the policy's in-flight
bookkeeping through :meth:`~repro.core.policies.Policy.on_abort` without
feeding the response-time estimators.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.policies import FrontEndMSPolicy, Route
from repro.core.sampling import DemandSampler
from repro.core.reservation import ReservationConfig
from repro.core.stretch import stretch_factor
from repro.live import protocol
from repro.live.kernel import BusyMeter, LiveClock, calibrate
from repro.live.loadd import (
    LiveLoadView,
    LoadReporter,
    LoadTable,
    open_heartbeat_endpoint,
)
from repro.live.node import CGIService, WorkerPool
from repro.obs.trace import (
    ABORT,
    ADMIT,
    ARRIVE,
    COMPLETE,
    CONTROL,
    DENY,
    DISPATCH,
    DROP,
    START,
    Tracer,
    iter_jsonl,
)
from repro.sim.config import MonitorConfig
from repro.workload.request import Request, RequestKind


class PeerError(ConnectionError):
    """A remote-CGI call failed (connection lost or peer-reported error)."""


class RemoteCall:
    """One in-flight remote-CGI request on a peer connection."""

    __slots__ = ("req_id", "future", "admitted", "started")

    def __init__(self, req_id: int) -> None:
        self.req_id = req_id
        self.future: asyncio.Future = (
            asyncio.get_running_loop().create_future())
        self.admitted = False
        self.started = False


class PeerConnection:
    """Persistent framed-TCP channel from a master to one executing node.

    The reader task translates the peer's lifecycle frames into span
    records on the master's tracer and resolves the per-request futures
    the dispatching coroutines await.  A broken connection fails every
    outstanding call and marks the node dead in the load table until
    :meth:`connect` succeeds again.
    """

    def __init__(self, master: "MasterServer", node_id: int,
                 host: str, port: int) -> None:
        self.master = master
        self.node_id = node_id
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending: Dict[int, RemoteCall] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self.submitted = 0
        self.completed = 0

    @property
    def connected(self) -> bool:
        return self.writer is not None

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        protocol.send_message(writer, protocol.hello(self.master.node_id))
        await writer.drain()
        await protocol.expect_hello(reader)
        self.reader, self.writer = reader, writer
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"peer-{self.node_id}")
        self.master.table.mark_alive(self.node_id)

    def submit(self, request: Request) -> RemoteCall:
        """Ship one dynamic request; returns the call to await."""
        if self.writer is None:
            raise PeerError(f"node {self.node_id} not connected")
        call = RemoteCall(request.req_id)
        self.pending[request.req_id] = call
        protocol.send_message(self.writer, {
            "op": "cgi", "id": request.req_id,
            "cpu": request.cpu_demand, "io": request.io_demand,
        })
        self.submitted += 1
        return call

    def forget(self, req_id: int) -> None:
        """Stop tracking a call (timeout path): late frames are ignored."""
        self.pending.pop(req_id, None)

    async def _read_loop(self) -> None:
        master = self.master
        try:
            while True:
                assert self.reader is not None
                msg = await protocol.read_message(self.reader)
                if msg is None:
                    break
                op = msg.get("op")
                if op == "role_ok":
                    # Control-plane ROLE frame acknowledged by the node
                    # (not request-scoped, so handled before the
                    # per-request call lookup).
                    master._on_role_ack(self.node_id, msg)
                    continue
                call = self.pending.get(msg.get("id", -1))
                if call is None:
                    continue
                if op == "admit":
                    call.admitted = True
                    master._record(ADMIT, call.req_id, self.node_id,
                                   (False,))
                elif op == "start":
                    call.started = True
                    master._record(START, call.req_id, self.node_id, (1,))
                elif op == "done":
                    self.pending.pop(call.req_id, None)
                    self.completed += 1
                    if not call.future.done():
                        call.future.set_result(
                            (float(msg.get("cpu", 0.0)),
                             float(msg.get("io", 0.0))))
                elif op == "error":
                    self.pending.pop(call.req_id, None)
                    if not call.future.done():
                        call.future.set_exception(
                            PeerError(str(msg.get("reason", "peer error"))))
        except (protocol.ProtocolError, ConnectionResetError):
            pass
        finally:
            self.writer = None
            self.reader = None
            master.table.mark_dead(self.node_id)
            for call in list(self.pending.values()):
                if not call.future.done():
                    call.future.set_exception(
                        PeerError(f"connection to node {self.node_id} lost"))
            self.pending.clear()

    async def close(self) -> None:
        writer = self.writer
        self.writer = None
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class LiveMetrics:
    """Per-request accounting mirroring the simulator's collector."""

    def __init__(self) -> None:
        #: (req_id, kind, response, demand, remote, on_master)
        self.records: List[Tuple[int, int, float, float, bool, bool]] = []
        #: Measured (cpu, io) seconds per record, same indexing as
        #: :attr:`records`; the control plane's workload estimator reads
        #: the CPU/disk split from here.
        self.splits: List[Tuple[float, float]] = []
        self.denied = 0
        self.aborted = 0

    def observe(self, request: Request, response: float,
                remote: bool, on_master: bool,
                cpu: float = 0.0, io: float = 0.0) -> None:
        self.records.append((request.req_id, int(request.kind), response,
                             request.demand, remote, on_master))
        if cpu <= 0.0 and io <= 0.0:
            # No measurement reported: fall back to the request's nominal
            # demand split so estimator ratios stay meaningful.
            cpu, io = request.cpu_demand, request.io_demand
        self.splits.append((cpu, io))

    def __len__(self) -> int:
        return len(self.records)

    def report(self) -> dict:
        """Counts, mean response, and stretch overall and per class."""
        out: dict = {
            "count": len(self.records),
            "denied": self.denied,
            "aborted": self.aborted,
            "remote": sum(1 for r in self.records if r[4]),
            "dynamic_on_master": sum(
                1 for r in self.records
                if r[1] == int(RequestKind.DYNAMIC) and r[5]),
        }
        for label, kind in (("overall", None),
                            ("static", int(RequestKind.STATIC)),
                            ("dynamic", int(RequestKind.DYNAMIC))):
            sel = [r for r in self.records
                   if kind is None or r[1] == kind]
            if sel:
                resp = [r[2] for r in sel]
                dem = [r[3] for r in sel]
                out[label] = {
                    "count": len(sel),
                    "mean_response": sum(resp) / len(sel),
                    "stretch": stretch_factor(resp, dem),
                }
            else:
                out[label] = {"count": 0, "mean_response": 0.0,
                              "stretch": 0.0}
        return out


_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                 503: "Service Unavailable"}


class MasterServer:
    """One live accepting node: HTTP in, scheduled execution out."""

    def __init__(self, node_id: int, num_nodes: int, num_masters: int = 1,
                 workers: int = 2,
                 monitor: Optional[MonitorConfig] = None,
                 reservation_cfg: Optional[ReservationConfig] = None,
                 sampler: Optional[DemandSampler] = None,
                 default_w: float = 0.5,
                 seed: int = 0,
                 request_timeout: float = 30.0,
                 host: str = "127.0.0.1",
                 traced: bool = True) -> None:
        if not 0 <= node_id < num_masters:
            raise ValueError("the master's node_id must be a master id")
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.host = host
        self.request_timeout = request_timeout
        self.clock = LiveClock()
        self.monitor = monitor or MonitorConfig()
        self.table = LoadTable(num_nodes, self.monitor)
        self.view = LiveLoadView(self.table, self.clock)
        self.policy = FrontEndMSPolicy(
            num_nodes, num_masters, accept_node=node_id,
            sampler=sampler if sampler is not None else DemandSampler(
                default_w=default_w),
            reservation_cfg=reservation_cfg,
            default_w=default_w, seed=seed)
        self.tracer: Optional[Tracer] = Tracer(self.clock) if traced else None
        if self.tracer is not None:
            self.policy.trace_decisions = True
        self.meter = BusyMeter(capacity=workers, now=self.clock.now)
        self.pool = WorkerPool(node_id, workers, self.meter)
        self.cgi_service = CGIService(node_id, self.pool, host=host)
        self.peers: Dict[int, PeerConnection] = {}
        self.metrics = LiveMetrics()
        self.arrived = 0
        self.completed = 0
        self.dropped = 0
        #: (node_id, role) pairs for acknowledged control-plane ROLE frames.
        self.role_acks: List[Tuple[int, str]] = []
        self.http_connections = 0
        self.http_port: Optional[int] = None
        self.udp_port: Optional[int] = None
        self.cgi_port: Optional[int] = None
        self._udp_transport = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._reporter: Optional[LoadReporter] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self, peer_udp_ports: Tuple[Tuple[str, int], ...] = ()
                    ) -> None:
        """Bind every endpoint (UDP heartbeats, CGI peer port, HTTP)."""
        calibrate()
        self._udp_transport, self.udp_port = await open_heartbeat_endpoint(
            self.table, self.clock, host=self.host)
        self.cgi_port = await self.cgi_service.start()
        self._http_server = await asyncio.start_server(
            self._handle_http, self.host, 0)
        self.http_port = self._http_server.sockets[0].getsockname()[1]
        # The master's own load reaches its table by direct call (and its
        # peer masters' tables over UDP, like any other node's heartbeat).
        self._reporter = LoadReporter(
            self.node_id, self.meter, self.clock,
            udp_targets=peer_udp_ports,
            local_observe=lambda payload: self.table.observe_datagram(
                payload, self.clock.now),
            cfg=self.monitor)
        await self._reporter.start()
        self._reporter.beat_once(self.clock.now)

    async def connect_peer(self, node_id: int, host: str, port: int) -> None:
        """Open (or re-open) the persistent CGI channel to one node."""
        peer = PeerConnection(self, node_id, host, port)
        await peer.connect()
        old = self.peers.get(node_id)
        self.peers[node_id] = peer
        if old is not None:
            await old.close()

    async def wait_healthy(self, timeout: float = 10.0) -> None:
        """Block until every node is connected, heard, and off probation."""
        deadline = self.clock.now + timeout
        while self.clock.now < deadline:
            if self.view.all_healthy():
                return
            await asyncio.sleep(0.05)
        suspect = [i for i in range(self.num_nodes)
                   if self.view.is_suspect(i)]
        raise TimeoutError(
            f"cluster did not become healthy within {timeout}s "
            f"(suspect nodes: {suspect}, dead: "
            f"{list(map(int, self.table.dead.nonzero()[0]))})")

    async def stop(self) -> None:
        for peer in list(self.peers.values()):
            await peer.close()
        self.peers.clear()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        if self._reporter is not None:
            await self._reporter.stop()
            self._reporter = None
        await self.cgi_service.stop()
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        self.pool.shutdown()

    # -- span + ledger helpers --------------------------------------------

    def _record(self, kind: str, req_id: int, node_id: int,
                data: Optional[tuple] = None) -> None:
        if self.tracer is not None:
            self.tracer.record(kind, req_id, node_id, data)

    def _on_role_ack(self, node_id: int, msg: dict) -> None:
        """A node acknowledged a control-plane ROLE frame."""
        self.role_acks.append((node_id, str(msg.get("role", ""))))
        self._record(CONTROL, -1, node_id,
                     ("role_ack", node_id, str(msg.get("role", "")),
                      int(msg.get("seq", 0))))

    def conservation(self) -> Dict[str, int]:
        """The live ledger, in the simulator's shape (for ``audit_spans``)."""
        in_flight = self.arrived - self.completed - self.dropped
        return {
            "submitted": self.arrived,
            "completed": self.completed,
            "dropped": self.dropped,
            "lost": 0,
            "in_flight": in_flight,
            "pending": 0,
            "balance": 0,
        }

    def stats(self) -> dict:
        res = self.policy.reservation
        return {
            "node": self.node_id,
            "now": self.clock.now,
            "conservation": self.conservation(),
            "metrics": self.metrics.report(),
            "spans": len(self.tracer.spans) if self.tracer else 0,
            "heartbeats": self.table.heartbeats,
            "heartbeats_rejected": self.table.rejected,
            "cpu_idle": [float(x) for x in self.table.cpu_idle],
            "disk_avail": [float(x) for x in self.table.disk_avail],
            "suspect": [bool(x)
                        for x in self.table.suspect_array(self.clock.now)],
            "reservation": None if res is None else {
                "effective_cap": res.effective_cap,
                "master_fraction": res.master_fraction,
            },
            "peers": {str(nid): {"connected": peer.connected,
                                 "submitted": peer.submitted,
                                 "completed": peer.completed}
                      for nid, peer in self.peers.items()},
            "pool_completed": self.pool.completed,
        }

    # -- the request path --------------------------------------------------

    async def serve_request(self, request: Request) -> dict:
        """Accept, schedule, and execute one request; returns the result
        payload (also usable directly, without HTTP, from tests)."""
        t_arrive = self.clock.now
        self.arrived += 1
        self._record(ARRIVE, request.req_id, -1,
                     (int(request.kind), request.demand))
        self.policy.last_decision = None
        try:
            route = self.policy.route(request, self.view)
        except RuntimeError as exc:
            return self._deny(request, -1, f"no-route: {exc}")
        node = route.node_id
        self._record(
            DISPATCH, request.req_id, node,
            (route.remote, self.policy.is_master(node))
            + (self.policy.last_decision or (None,) * 5))
        if node == self.node_id:
            return await self._execute_local(request, route, t_arrive)
        return await self._execute_remote(request, route, t_arrive)

    def _deny(self, request: Request, node: int, reason: str) -> dict:
        """Pre-admission refusal: ``deny`` then ``drop`` (simulator idiom)."""
        self._record(DENY, request.req_id, node, (reason,))
        self._record(DROP, request.req_id, node, (reason,))
        self.dropped += 1
        self.metrics.denied += 1
        return {"status": "denied", "id": request.req_id, "reason": reason}

    def _abort(self, request: Request, node: int, reason: str) -> dict:
        """Post-admission failure: ``abort`` + ``drop``, policy unwound."""
        self._record(ABORT, request.req_id, node, (reason,))
        self._record(DROP, request.req_id, node, (reason,))
        self.dropped += 1
        self.metrics.aborted += 1
        self.policy.on_abort(request, node)
        return {"status": "aborted", "id": request.req_id, "reason": reason}

    async def _execute_local(self, request: Request, route: Route,
                             t_arrive: float) -> dict:
        node = self.node_id
        backlogged = self.pool.semaphore.locked()
        self._record(ADMIT, request.req_id, node, (backlogged,))

        def on_start() -> None:
            self._record(START, request.req_id, node, (1,))

        cpu_used, io_used = await self.pool.run(
            request.cpu_demand, request.io_demand, on_start=on_start)
        return self._complete(request, route, t_arrive, cpu_used, io_used)

    async def _execute_remote(self, request: Request, route: Route,
                              t_arrive: float) -> dict:
        node = route.node_id
        peer = self.peers.get(node)
        if peer is None or not peer.connected:
            self.policy.on_abort(request, node)   # unwind _dispatched_w
            return self._deny(request, node, "peer-unavailable")
        try:
            call = peer.submit(request)
        except PeerError:
            self.policy.on_abort(request, node)
            return self._deny(request, node, "peer-unavailable")
        try:
            cpu_used, io_used = await asyncio.wait_for(
                call.future, timeout=self.request_timeout)
        except (PeerError, asyncio.TimeoutError) as exc:
            peer.forget(request.req_id)
            reason = ("timeout" if isinstance(exc, asyncio.TimeoutError)
                      else str(exc))
            if call.admitted or call.started:
                return self._abort(request, node, reason)
            self.policy.on_abort(request, node)
            return self._deny(request, node, reason)
        return self._complete(request, route, t_arrive, cpu_used, io_used)

    def _complete(self, request: Request, route: Route, t_arrive: float,
                  cpu_used: float, io_used: float) -> dict:
        node = route.node_id
        on_master = self.policy.is_master(node)
        self._record(COMPLETE, request.req_id, node,
                     (request.demand, route.remote, on_master))
        response = self.clock.now - t_arrive
        self.completed += 1
        self.policy.on_complete(request, response, on_master, node)
        self.metrics.observe(request, response, route.remote, on_master,
                             cpu=cpu_used, io=io_used)
        return {
            "status": "ok", "id": request.req_id, "node": node,
            "remote": route.remote, "on_master": on_master,
            "response": response, "demand": request.demand,
            "cpu": cpu_used, "io": io_used,
        }

    # -- HTTP front end ----------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.http_connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = (
                        line.decode("latin-1").split(None, 2))
                except ValueError:
                    await self._respond(writer, 400,
                                        {"error": "bad request line"})
                    break
                close = False
                while True:         # drain headers
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    if header.lower().startswith(b"connection:") \
                            and b"close" in header.lower():
                        close = True
                if method.upper() != "GET":
                    await self._respond(writer, 400,
                                        {"error": "GET only"})
                    break
                status, payload, raw = await self._dispatch_http(target)
                await self._respond(writer, status, payload, raw=raw)
                if close:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_http(self, target: str):
        """Route one HTTP target; returns (status, json_payload, raw_text)."""
        parts = urlsplit(target)
        path = parts.path
        if path == "/healthz":
            return 200, {"status": "ok", "node": self.node_id}, None
        if path == "/control/stats":
            return 200, self.stats(), None
        if path == "/control/spans":
            if self.tracer is None:
                return 404, {"error": "tracing disabled"}, None
            body = "\n".join(iter_jsonl(
                self.tracer.spans,
                meta={"source": "repro.live", "node": self.node_id,
                      "conservation": self.conservation()})) + "\n"
            return 200, None, body
        if path == "/req":
            try:
                request = self._parse_request(parse_qs(parts.query))
            except (KeyError, ValueError, TypeError) as exc:
                return 400, {"error": f"bad request params: {exc}"}, None
            result = await self.serve_request(request)
            status = 200 if result.get("status") == "ok" else 503
            return status, result, None
        return 404, {"error": f"unknown path {path!r}"}, None

    def _parse_request(self, params: Dict[str, list]) -> Request:
        def one(key: str, default: Optional[str] = None) -> str:
            vals = params.get(key)
            if not vals:
                if default is None:
                    raise KeyError(key)
                return default
            return vals[0]

        kind_raw = one("kind", "static").lower()
        kind = (RequestKind.DYNAMIC if kind_raw in ("1", "dynamic", "cgi")
                else RequestKind.STATIC)
        return Request(
            req_id=int(one("id")),
            arrival_time=self.clock.now,
            kind=kind,
            cpu_demand=float(one("cpu", "0")),
            io_demand=float(one("io", "0")),
            type_key=one("type", "static" if kind is RequestKind.STATIC
                         else "cgi:balanced"),
        )

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Optional[dict],
                       raw: Optional[str] = None) -> None:
        body = (raw if raw is not None
                else json.dumps(payload, separators=(",", ":"))).encode()
        ctype = "text/plain" if raw is not None else "application/json"
        head = (f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()
