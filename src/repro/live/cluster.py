"""Boot a whole live cluster on localhost: one in-process master plus
slave subprocesses.

The master runs inside the caller's event loop (so tests and the load
generator can reach its tracer, policy, and metrics directly); each slave
is a real separate Python process spawned with ``python -m
repro.live.node``, discovered through the one-line ``READY`` handshake it
prints on stdout (the OS assigns its CGI port, so there is no port race).
Slaves heartbeat the master over UDP; the master opens one persistent
framed-TCP connection per slave for remote CGI.

Startup is complete when :meth:`LiveCluster.start` returns: every slave
is connected, heard from, and past heartbeat probation — dispatch
decisions from the first request onward run against fresh telemetry.
"""

from __future__ import annotations

import asyncio
import sys
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.reservation import ReservationConfig
from repro.core.sampling import DemandSampler
from repro.live.master import MasterServer
from repro.live.node import READY_PREFIX
from repro.sim.config import MonitorConfig

#: Generous per-slave startup allowance (imports + burn calibration).
_READY_TIMEOUT = 30.0


@dataclass
class LiveClusterConfig:
    """Shape and knobs of one loopback cluster."""

    num_slaves: int = 2
    master_workers: int = 2
    slave_workers: int = 2
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    reservation_cfg: Optional[ReservationConfig] = None
    default_w: float = 0.5
    seed: int = 0
    request_timeout: float = 30.0
    host: str = "127.0.0.1"
    traced: bool = True

    @property
    def num_nodes(self) -> int:
        return 1 + self.num_slaves

    def validate(self) -> "LiveClusterConfig":
        if self.num_slaves < 0:
            raise ValueError("num_slaves must be >= 0")
        if self.master_workers < 1 or self.slave_workers < 1:
            raise ValueError("worker counts must be >= 1")
        return self


class LiveCluster:
    """One master (in-process) + ``num_slaves`` slave subprocesses."""

    def __init__(self, cfg: Optional[LiveClusterConfig] = None,
                 sampler: Optional[DemandSampler] = None):
        self.cfg = (cfg or LiveClusterConfig()).validate()
        self.master = MasterServer(
            node_id=0, num_nodes=self.cfg.num_nodes, num_masters=1,
            workers=self.cfg.master_workers, monitor=self.cfg.monitor,
            reservation_cfg=self.cfg.reservation_cfg, sampler=sampler,
            default_w=self.cfg.default_w, seed=self.cfg.seed,
            request_timeout=self.cfg.request_timeout, host=self.cfg.host,
            traced=self.cfg.traced)
        self.procs: List[asyncio.subprocess.Process] = []
        self.slave_ports: List[int] = []

    async def start(self, healthy_timeout: float = 15.0) -> None:
        """Bind the master, spawn + connect every slave, wait healthy."""
        await self.master.start()
        try:
            for slave_id in range(1, self.cfg.num_nodes):
                port = await self._spawn_slave(slave_id)
                self.slave_ports.append(port)
                await self.master.connect_peer(slave_id, self.cfg.host, port)
            await self.master.wait_healthy(timeout=healthy_timeout)
        except BaseException:
            await self.stop()
            raise

    async def _spawn_slave(self, slave_id: int) -> int:
        assert self.master.udp_port is not None
        proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.live.slave",
            "--node", str(slave_id),
            "--workers", str(self.cfg.slave_workers),
            "--masters-udp", f"{self.cfg.host}:{self.master.udp_port}",
            "--host", self.cfg.host,
            "--period", str(self.cfg.monitor.period),
            stdout=asyncio.subprocess.PIPE)
        self.procs.append(proc)
        assert proc.stdout is not None
        while True:
            try:
                line = await asyncio.wait_for(proc.stdout.readline(),
                                              timeout=_READY_TIMEOUT)
            except asyncio.TimeoutError:
                raise RuntimeError(
                    f"slave {slave_id} did not print a ready line within "
                    f"{_READY_TIMEOUT}s") from None
            if not line:
                raise RuntimeError(
                    f"slave {slave_id} exited before becoming ready "
                    f"(rc={proc.returncode})")
            text = line.decode("utf-8", "replace").strip()
            if text.startswith(READY_PREFIX):
                fields = dict(part.split("=", 1)
                              for part in text.split()[1:])
                return int(fields["port"])
            # Anything else on stdout is slave chatter; keep scanning.

    async def stop(self) -> None:
        await self.master.stop()
        for proc in self.procs:
            if proc.returncode is None:
                proc.terminate()
        for proc in self.procs:
            try:
                await asyncio.wait_for(proc.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
        self.procs.clear()

    async def __aenter__(self) -> "LiveCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()
