"""repro.live: the paper's master/slave cluster on real sockets.

Where :mod:`repro.sim` replays the SPAA'99 scheduler inside a
discrete-event model, ``repro.live`` runs the *same* scheduler objects —
:class:`~repro.core.policies.FrontEndMSPolicy` with its reservation
controller and demand sampler, fed through the
:class:`~repro.core.policies.LoadView` protocol — as an actual asyncio
serving cluster on localhost:

* :mod:`~repro.live.kernel` — calibrated CPU-burn / sleep realisation of
  request demands, plus the busy-time meter behind load reporting;
* :mod:`~repro.live.protocol` — length-prefixed JSON framing for the
  persistent remote-CGI connections;
* :mod:`~repro.live.loadd` — UDP heartbeat daemon and the master-side
  load table with rstat()-style staleness/suspicion semantics;
* :mod:`~repro.live.node` — per-node worker pool, the framed CGI
  service, and the slave process entry point;
* :mod:`~repro.live.master` — the HTTP front end running the scheduler,
  emitting auditable ``repro.obs`` spans;
* :mod:`~repro.live.cluster` — loopback cluster orchestration (master
  in-process, slaves as subprocesses);
* :mod:`~repro.live.loadgen` — open-loop trace replay over HTTP;
* :mod:`~repro.live.validate` — live-vs-simulated stretch
  cross-validation.
"""

from repro.live.cluster import LiveCluster, LiveClusterConfig
from repro.live.kernel import BusyMeter, LiveClock, burn_cpu, calibrate
from repro.live.loadd import LiveLoadView, LoadReporter, LoadTable
from repro.live.loadgen import LoadGenResult, run_loadgen
from repro.live.master import LiveMetrics, MasterServer, PeerConnection
from repro.live.node import CGIService, WorkerPool, run_slave
from repro.live.validate import TOLERANCE, ValidationResult, validate

__all__ = [
    "BusyMeter",
    "CGIService",
    "LiveCluster",
    "LiveClusterConfig",
    "LiveClock",
    "LiveLoadView",
    "LiveMetrics",
    "LoadGenResult",
    "LoadReporter",
    "LoadTable",
    "MasterServer",
    "PeerConnection",
    "TOLERANCE",
    "ValidationResult",
    "WorkerPool",
    "burn_cpu",
    "calibrate",
    "run_loadgen",
    "run_slave",
    "validate",
]
