"""Open-loop asynchronous load generator for the live cluster.

Replays a :mod:`repro.workload` trace against a master's HTTP port the
way the paper's experiments replay logs against the testbed: arrivals are
fired at their trace timestamps regardless of completions (open loop — a
slow server builds a backlog instead of throttling the offered load).
Each request is one HTTP ``GET /req`` carrying its identity, class, and
demand split; the response reports where the scheduler placed it and the
measured server-side response time.

The generator aggregates both views: client-observed latency (connect +
queue + service) and the server's own report, plus a client-side stretch
factor computed exactly like the simulator's metric (``mean(t_i/d_i)``
over completed requests).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stretch import stretch_factor
from repro.workload.request import Request, RequestKind

#: Concurrent client connections cap (loopback fd hygiene).
_MAX_CONNECTIONS = 64


def request_target(request: Request) -> str:
    """The ``GET`` target encoding one trace request.

    >>> from repro.workload.request import Request, RequestKind
    >>> request_target(Request(req_id=7, arrival_time=0.0,
    ...                        kind=RequestKind.DYNAMIC, cpu_demand=0.004,
    ...                        io_demand=0.03, type_key="cgi:catalog"))
    '/req?id=7&kind=dynamic&cpu=0.004&io=0.03&type=cgi:catalog'
    """
    kind = "dynamic" if request.kind is RequestKind.DYNAMIC else "static"
    return (f"/req?id={request.req_id}&kind={kind}"
            f"&cpu={request.cpu_demand!r}&io={request.io_demand!r}"
            f"&type={request.type_key}")


async def http_get(host: str, port: int, target: str,
                   timeout: float = 60.0) -> Tuple[int, bytes]:
    """Minimal HTTP/1.1 GET over a fresh connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
                      f"Connection: close\r\n\r\n").encode("latin-1"))
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length: Optional[int] = None
        while True:
            header = await asyncio.wait_for(reader.readline(), timeout)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length is not None:
            body = await asyncio.wait_for(reader.readexactly(length), timeout)
        else:
            body = await asyncio.wait_for(reader.read(), timeout)
        return status, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


@dataclass
class LoadGenResult:
    """Aggregate outcome of one load-generation run."""

    submitted: int = 0
    ok: int = 0
    denied: int = 0
    errors: int = 0
    #: Wall time from first fire to last completion, seconds.
    elapsed: float = 0.0
    #: (req_id, client_latency, server_response, demand, remote, on_master)
    completions: List[Tuple[int, float, float, float, bool, bool]] = (
        field(default_factory=list))
    error_messages: List[str] = field(default_factory=list)

    @property
    def client_stretch(self) -> float:
        """Client-observed stretch over completed requests."""
        if not self.completions:
            return float("nan")
        return stretch_factor([c[1] for c in self.completions],
                              [c[3] for c in self.completions])

    @property
    def server_stretch(self) -> float:
        """Server-reported stretch over completed requests."""
        if not self.completions:
            return float("nan")
        return stretch_factor([c[2] for c in self.completions],
                              [c[3] for c in self.completions])

    @property
    def remote_fraction(self) -> float:
        if not self.completions:
            return 0.0
        return sum(1 for c in self.completions if c[4]) / len(self.completions)

    def summary(self) -> dict:
        return {
            "submitted": self.submitted,
            "ok": self.ok,
            "denied": self.denied,
            "errors": self.errors,
            "elapsed": self.elapsed,
            "client_stretch": self.client_stretch,
            "server_stretch": self.server_stretch,
            "remote_fraction": self.remote_fraction,
        }


async def run_loadgen(host: str, port: int, trace: Sequence[Request],
                      time_scale: float = 1.0,
                      timeout: float = 60.0) -> LoadGenResult:
    """Replay ``trace`` open-loop against one master's HTTP endpoint.

    ``time_scale`` stretches (>1) or compresses (<1) the inter-arrival
    gaps — handy for running a virtual-seconds trace slower on a small
    host without regenerating it.
    """
    loop = asyncio.get_running_loop()
    result = LoadGenResult()
    sem = asyncio.Semaphore(_MAX_CONNECTIONS)
    ordered = sorted(trace, key=lambda q: q.arrival_time)
    if not ordered:
        return result
    base_arrival = ordered[0].arrival_time
    t0 = loop.time()

    async def fire(request: Request) -> None:
        async with sem:
            sent = loop.time()
            try:
                status, body = await http_get(
                    host, port, request_target(request), timeout=timeout)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as exc:
                result.errors += 1
                result.error_messages.append(
                    f"req {request.req_id}: {exc!r}")
                return
            latency = loop.time() - sent
            if status == 200:
                payload = json.loads(body)
                result.ok += 1
                result.completions.append(
                    (request.req_id, latency,
                     float(payload.get("response", latency)),
                     request.demand, bool(payload.get("remote")),
                     bool(payload.get("on_master"))))
            elif status == 503:
                result.denied += 1
            else:
                result.errors += 1
                result.error_messages.append(
                    f"req {request.req_id}: HTTP {status}")

    tasks = []
    for request in ordered:
        due = t0 + (request.arrival_time - base_arrival) * time_scale
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        result.submitted += 1
        tasks.append(loop.create_task(fire(request)))
    if tasks:
        await asyncio.gather(*tasks)
    result.elapsed = loop.time() - t0
    return result


def scale_demands(trace: Sequence[Request], factor: float) -> List[Request]:
    """Uniformly rescale every request's demand (live-host calibration)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = []
    for q in trace:
        out.append(Request(
            req_id=q.req_id, arrival_time=q.arrival_time, kind=q.kind,
            cpu_demand=q.cpu_demand * factor, io_demand=q.io_demand * factor,
            mem_pages=q.mem_pages, size_bytes=q.size_bytes,
            type_key=q.type_key, cache_key=q.cache_key,
            client_id=q.client_id))
    return out


def class_counts(trace: Sequence[Request]) -> Dict[str, int]:
    """Static/dynamic split of a trace (for run banners).

    >>> from repro.workload.request import Request, RequestKind
    >>> class_counts([Request(req_id=0, arrival_time=0.0,
    ...                       kind=RequestKind.STATIC, cpu_demand=1e-3,
    ...                       io_demand=0.0)])
    {'static': 1, 'dynamic': 0}
    """
    dyn = sum(1 for q in trace if q.kind is RequestKind.DYNAMIC)
    return {"static": len(trace) - dyn, "dynamic": dyn}
