"""Calibrated CGI execution kernel: real CPU burn plus a sleeping "disk".

The paper replaces logged CGI bodies with synthetic scripts whose cost is
controlled (WebSTONE busy-spin, WebGlimpse search, ADL catalog lookups).
The live cluster does the same: a dynamic request arrives carrying its
demand split ``(cpu_seconds, io_seconds)`` drawn from
:mod:`repro.workload.cgi_profiles`, and the kernel *realises* that demand —
CPU demand as an actual arithmetic spin on the worker thread, disk demand
as a blocking sleep (the request holds its worker but burns no cycles,
like a thread parked in ``read(2)``).

Calibration
-----------
``burn_cpu`` cannot trust a fixed iterations-per-second constant: hosts
differ and CI machines throttle.  :func:`calibrate` times the spin loop
once per process and caches the rate; :func:`burn_cpu` then spins in
chunks sized from that rate, re-checking ``perf_counter`` between chunks
so it lands within a chunk of the target regardless of drift.

:class:`BusyMeter` is the live counterpart of the simulator's per-device
busy-time counters: workers report completed CPU/disk seconds, and the
load daemon differentiates the totals into windowed utilisations exactly
like :class:`repro.sim.monitor.LoadMonitor` does for ``rstat()``.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Tuple

class LiveClock:
    """Monotonic seconds since one process-local epoch.

    Exposes the same ``.now`` property the simulator's engine has, so the
    :class:`repro.obs.Tracer` and the dispatch policies can be bound to a
    live timebase unchanged.  Span timestamps, load-table receipt times,
    and metrics all read this one clock.
    """

    __slots__ = ("epoch",)

    def __init__(self, epoch: Optional[float] = None) -> None:
        self.epoch = time.monotonic() if epoch is None else epoch

    @property
    def now(self) -> float:
        return time.monotonic() - self.epoch


#: Target wall time of one uninterrupted spin chunk, seconds.  Small
#: enough that burn overshoot stays ~1% of a 5 ms demand, large enough
#: that the clock check is not the dominant cost.
_CHUNK_SECONDS = 50e-6

#: Iterations used to measure the spin rate.
_CALIBRATE_ITERS = 200_000

_spin_rate_lock = threading.Lock()
_spin_rate: Optional[float] = None


def _spin(n: int) -> float:
    """The burn loop body: ``n`` float multiply-adds."""
    acc = 1.0
    for _ in range(n):
        acc = acc * 1.0000001 + 1e-9
    return acc


def calibrate(force: bool = False) -> float:
    """Measure (and cache) the spin rate in iterations/second."""
    global _spin_rate
    with _spin_rate_lock:
        if _spin_rate is not None and not force:
            return _spin_rate
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            _spin(_CALIBRATE_ITERS)
            best = min(best, time.perf_counter() - t0)
        _spin_rate = _CALIBRATE_ITERS / max(best, 1e-9)
        return _spin_rate


def burn_cpu(seconds: float) -> float:
    """Burn approximately ``seconds`` of CPU; return the measured elapsed.

    Spins in calibrated chunks, re-checking the clock between chunks, so
    the overshoot is bounded by one chunk (~50 microseconds) plus
    scheduler noise.
    """
    if seconds <= 0:
        return 0.0
    rate = calibrate()
    chunk = max(64, int(rate * _CHUNK_SECONDS))
    t0 = time.perf_counter()
    deadline = t0 + seconds
    now = t0
    while now < deadline:
        remaining = deadline - now
        _spin(min(chunk, max(64, int(rate * remaining))))
        now = time.perf_counter()
    return now - t0


def run_cgi(cpu_seconds: float, io_seconds: float) -> Tuple[float, float]:
    """Execute one request's demand on the calling (worker) thread.

    Returns the measured ``(cpu, io)`` seconds — what a real profiler
    would report, and what the master's online demand sampler consumes.
    """
    cpu_used = burn_cpu(cpu_seconds)
    io_used = 0.0
    if io_seconds > 0:
        t0 = time.perf_counter()
        time.sleep(io_seconds)
        io_used = time.perf_counter() - t0
    return cpu_used, io_used


class BusyMeter:
    """Thread-safe cumulative CPU/disk busy-seconds for one node.

    Workers call :meth:`add` when a request finishes; the load daemon
    calls :meth:`sample` once per heartbeat period to turn the running
    totals into utilisations over the elapsed window, normalised by the
    pool ``capacity`` (a node with ``k`` workers can accumulate ``k``
    busy-seconds per wall second).
    """

    __slots__ = ("capacity", "_lock", "_cpu_total", "_io_total",
                 "_last_cpu", "_last_io", "_last_time", "active")

    def __init__(self, capacity: int, now: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._cpu_total = 0.0
        self._io_total = 0.0
        self._last_cpu = 0.0
        self._last_io = 0.0
        self._last_time = now
        #: In-flight requests (admitted, not yet finished); informational.
        self.active = 0

    def add(self, cpu_seconds: float, io_seconds: float) -> None:
        with self._lock:
            self._cpu_total += cpu_seconds
            self._io_total += io_seconds

    def begin(self) -> None:
        with self._lock:
            self.active += 1

    def end(self) -> None:
        with self._lock:
            self.active = max(0, self.active - 1)

    def sample(self, now: float) -> Tuple[float, float]:
        """``(cpu_idle_ratio, disk_avail_ratio)`` over the last window."""
        with self._lock:
            window = now - self._last_time
            if window <= 0:
                return 1.0, 1.0
            cpu_busy = self._cpu_total - self._last_cpu
            io_busy = self._io_total - self._last_io
            self._last_cpu = self._cpu_total
            self._last_io = self._io_total
            self._last_time = now
        denom = window * self.capacity
        cpu_idle = 1.0 - min(1.0, max(0.0, cpu_busy / denom))
        disk_avail = 1.0 - min(1.0, max(0.0, io_busy / denom))
        return cpu_idle, disk_avail
