"""The live load daemon: UDP heartbeats feeding the RSRC predictor.

"In our implementation, we use the Unix rstat() function to collect the
load information on each node."  The live cluster replaces the rstat poll
with a push daemon: every node periodically broadcasts a small UDP
datagram carrying its CPU-idle and disk-available ratios (from its
:class:`~repro.live.kernel.BusyMeter`), and every master folds the
datagrams into a :class:`LoadTable`.

Staleness reuses the suspicion semantics of the simulator's monitor /
resilience layer (:class:`repro.sim.monitor.LoadMonitor`, PR 1): a node
whose heartbeat has not arrived for ``suspect_after`` seconds is marked
*suspect* and excluded from RSRC candidate sets before any formal failure
detection; a returning node sits out ``probation_samples`` heartbeats
before being trusted again, because its first reports describe an idle
that no longer exists.  The knobs come from the same
:class:`repro.sim.config.MonitorConfig` the simulator uses, so an
experiment tunes one object for both substrates.

Heartbeat datagram (JSON, one per packet)::

    {"node": 3, "seq": 17, "cpu_idle": 0.93, "disk_avail": 0.71, "active": 2}

Sequence numbers are per-node monotonic; the table drops reordered or
replayed packets (UDP may duplicate and reorder even on loopback).
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.live.kernel import BusyMeter
from repro.sim.config import MonitorConfig


def encode_heartbeat(node_id: int, seq: int, cpu_idle: float,
                     disk_avail: float, active: int) -> bytes:
    return json.dumps(
        {"node": node_id, "seq": seq, "cpu_idle": cpu_idle,
         "disk_avail": disk_avail, "active": active},
        separators=(",", ":")).encode("utf-8")


def decode_heartbeat(data: bytes) -> Optional[dict]:
    """Parse one datagram; ``None`` for garbage (UDP is unauthenticated)."""
    try:
        msg = json.loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(msg, dict) or "node" not in msg or "seq" not in msg:
        return None
    return msg


class LoadTable:
    """A master's view of every node's load, built from heartbeats.

    All mutation happens on the master's event-loop thread (datagram
    callbacks and local observes), so no locking is needed.
    """

    __slots__ = ("num_nodes", "cfg", "cpu_idle", "disk_avail", "active",
                 "last_heard", "last_seq", "dead", "_ok_streak",
                 "heartbeats", "rejected")

    def __init__(self, num_nodes: int, cfg: Optional[MonitorConfig] = None):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.cfg = cfg or MonitorConfig()
        self.cfg.validate()
        #: Smoothed ratios, optimistically 1.0 until first heartbeat.
        self.cpu_idle = np.ones(num_nodes)
        self.disk_avail = np.ones(num_nodes)
        self.active = np.zeros(num_nodes, dtype=np.intp)
        #: Receipt time of the last accepted heartbeat per node; -inf means
        #: never heard (a node that never reported is suspect, not trusted).
        self.last_heard = np.full(num_nodes, -np.inf)
        self.last_seq = np.full(num_nodes, -1, dtype=np.int64)
        #: Nodes whose transport failed outright (broken CGI connection);
        #: excluded from dispatch until the connection is re-established.
        self.dead = np.zeros(num_nodes, dtype=bool)
        #: Consecutive accepted heartbeats since the node was last suspect
        #: (probation: a returning node must report a few times in a row).
        self._ok_streak = np.full(num_nodes, self.cfg.probation_samples,
                                  dtype=np.intp)
        self.heartbeats = 0
        self.rejected = 0

    def observe(self, node_id: int, seq: int, cpu_idle: float,
                disk_avail: float, active: int, now: float) -> bool:
        """Fold one heartbeat in; returns False if it was rejected."""
        if not 0 <= node_id < self.num_nodes:
            self.rejected += 1
            return False
        if seq <= self.last_seq[node_id]:
            self.rejected += 1          # reordered or duplicated datagram
            return False
        # A gap in heartbeats restarts probation; an unbroken stream works
        # it off (probation itself must not reset the streak, or a
        # returning node would never be trusted again).
        was_stale = (now - self.last_heard[node_id]) > self.cfg.suspect_after
        self.last_seq[node_id] = seq
        self.last_heard[node_id] = now
        self.active[node_id] = max(0, int(active))
        s = self.cfg.smoothing
        self.cpu_idle[node_id] = (
            s * min(1.0, max(0.0, cpu_idle))
            + (1.0 - s) * self.cpu_idle[node_id])
        self.disk_avail[node_id] = (
            s * min(1.0, max(0.0, disk_avail))
            + (1.0 - s) * self.disk_avail[node_id])
        self._ok_streak[node_id] = (
            1 if was_stale else self._ok_streak[node_id] + 1)
        self.heartbeats += 1
        return True

    def observe_datagram(self, data: bytes, now: float) -> bool:
        msg = decode_heartbeat(data)
        if msg is None:
            self.rejected += 1
            return False
        try:
            return self.observe(int(msg["node"]), int(msg["seq"]),
                                float(msg.get("cpu_idle", 1.0)),
                                float(msg.get("disk_avail", 1.0)),
                                int(msg.get("active", 0)), now)
        except (TypeError, ValueError):
            self.rejected += 1
            return False

    def mark_dead(self, node_id: int) -> None:
        self.dead[node_id] = True

    def mark_alive(self, node_id: int) -> None:
        self.dead[node_id] = False
        self._ok_streak[node_id] = 0    # probation after a reconnect

    def suspect_array(self, now: float) -> np.ndarray:
        """Stale-heartbeat / on-probation flags, recomputed at ``now``."""
        stale = (now - self.last_heard) > self.cfg.suspect_after
        probation = self._ok_streak < self.cfg.probation_samples
        return stale | probation


class LiveLoadView:
    """Adapter exposing a :class:`LoadTable` through the
    :class:`repro.core.policies.LoadView` protocol (including the optional
    suspicion layer), so the *simulator's* dispatch policies run unchanged
    against live telemetry."""

    __slots__ = ("table", "clock")

    def __init__(self, table: LoadTable, clock) -> None:
        self.table = table
        self.clock = clock              # anything with a ``.now`` property

    @property
    def num_nodes(self) -> int:
        return self.table.num_nodes

    @property
    def now(self) -> float:
        return self.clock.now

    def cpu_idle(self, node_id: int) -> float:
        return float(self.table.cpu_idle[node_id])

    def disk_avail(self, node_id: int) -> float:
        return float(self.table.disk_avail[node_id])

    def cpu_idle_array(self) -> np.ndarray:
        return self.table.cpu_idle

    def disk_avail_array(self) -> np.ndarray:
        return self.table.disk_avail

    def active_requests(self, node_id: int) -> int:
        return int(self.table.active[node_id])

    def is_alive(self, node_id: int) -> bool:
        return not bool(self.table.dead[node_id])

    def all_alive(self) -> bool:
        return not self.table.dead.any()

    def alive_array(self) -> np.ndarray:
        return ~self.table.dead

    # -- suspicion layer (probed via getattr by Policy._alive) ------------

    def is_suspect(self, node_id: int) -> bool:
        return bool(self.table.suspect_array(self.clock.now)[node_id])

    def healthy_array(self) -> np.ndarray:
        return ~self.table.dead & ~self.table.suspect_array(self.clock.now)

    def all_healthy(self) -> bool:
        return bool(self.healthy_array().all())


class LoadReporter:
    """One node's heartbeat daemon.

    Samples the node's :class:`BusyMeter` every ``cfg.period`` seconds and
    delivers the heartbeat to every destination: remote masters over UDP,
    and — for a master reporting about itself — a direct function call
    into its own table (no loopback round-trip for self-knowledge).
    """

    def __init__(self, node_id: int, meter: BusyMeter, clock,
                 udp_targets: Sequence[Tuple[str, int]] = (),
                 local_observe: Optional[Callable[[bytes], None]] = None,
                 cfg: Optional[MonitorConfig] = None):
        self.node_id = node_id
        self.meter = meter
        self.clock = clock
        self.udp_targets = list(udp_targets)
        self.local_observe = local_observe
        self.cfg = cfg or MonitorConfig()
        self.seq = 0
        self.sent = 0
        self._task: Optional[asyncio.Task] = None
        self._transport: Optional[asyncio.DatagramTransport] = None

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        if self.udp_targets:
            self._transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0))
        self._task = loop.create_task(self._run(), name=f"loadd-{self.node_id}")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def beat_once(self, now: float) -> bytes:
        """Build and deliver one heartbeat (exposed for tests)."""
        cpu_idle, disk_avail = self.meter.sample(now)
        self.seq += 1
        payload = encode_heartbeat(self.node_id, self.seq, cpu_idle,
                                   disk_avail, self.meter.active)
        if self.local_observe is not None:
            self.local_observe(payload)
        if self._transport is not None:
            for addr in self.udp_targets:
                self._transport.sendto(payload, addr)
        self.sent += 1
        return payload

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.period)
            self.beat_once(self.clock.now)


class HeartbeatReceiver(asyncio.DatagramProtocol):
    """Master-side UDP endpoint folding datagrams into a table."""

    def __init__(self, table: LoadTable, clock) -> None:
        self.table = table
        self.clock = clock

    def datagram_received(self, data: bytes, addr) -> None:
        self.table.observe_datagram(data, self.clock.now)


async def open_heartbeat_endpoint(table: LoadTable, clock,
                                  host: str = "127.0.0.1"):
    """Bind a UDP socket for heartbeats; returns ``(transport, port)``."""
    loop = asyncio.get_running_loop()
    transport, _ = await loop.create_datagram_endpoint(
        lambda: HeartbeatReceiver(table, clock), local_addr=(host, 0))
    port = transport.get_extra_info("sockname")[1]
    return transport, port
