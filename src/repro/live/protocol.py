"""Wire protocol of the live cluster: length-prefixed JSON frames.

The paper ships remote CGI work between nodes over persistent TCP
connections because "the overhead of passing a request to another node is
small" only when connection setup is amortised.  The live cluster does the
same: every master keeps one long-lived connection per peer node and
multiplexes request frames over it.

A *frame* is a 4-byte big-endian unsigned length followed by that many
payload bytes.  Payloads are compact JSON objects ("messages") with an
``op`` field.  The codec layer (:func:`encode_frame`,
:class:`FrameDecoder`) is pure and synchronous so it can be unit-tested
without sockets; thin asyncio helpers (:func:`read_frame`,
:func:`send_message`) adapt it to stream pairs.

Message vocabulary
------------------
master -> node:

``{"op": "hello", "proto": 1, "sender": <node_id>}``
    Connection handshake; the peer answers with its own hello.
``{"op": "cgi", "id": R, "cpu": s, "io": s, "mem": pages, "type": key}``
    Execute one dynamic request: burn ``cpu`` seconds of CPU and ``io``
    seconds of simulated disk, then report back.
``{"op": "ping", "id": N}``
    Liveness probe; answered by ``pong``.
``{"op": "role", "node": N, "role": "master"|"slave", "seq": K}``
    Control-plane role transition (repro.control): the node is told it
    has been promoted to master or demoted to slave.  Execution
    semantics are unchanged — the node keeps serving whatever CGI
    frames it is sent (a demoted master finishes its in-flight work,
    the graceful-drain principle applied to the role) — the frame keeps
    the node's own records in step and is acknowledged with
    ``role_ok``.  Nodes predating this op ignore it (unknown ops are
    skipped for forward compatibility), which is exactly the right
    degraded behaviour: roles are enforced master-side by the dispatch
    policy.

node -> master (all tagged with the request id they concern):

``{"op": "admit", "id": R}``
    The request was accepted and queued behind the worker pool.
``{"op": "start", "id": R}``
    A worker began executing the request.
``{"op": "done", "id": R, "cpu": s, "io": s}``
    Execution finished; ``cpu``/``io`` are the *measured* seconds, which
    the master feeds back into its online demand sampler.
``{"op": "error", "id": R, "reason": str}``
    Execution failed; the master aborts the request.
``{"op": "pong", "id": N}``
``{"op": "role_ok", "node": N, "role": str, "seq": K}``
    Acknowledges a ``role`` frame; the master records it as a CONTROL
    span so the trace shows the node observed its transition.

TCP preserves per-connection order, so a request's ``admit`` frame always
arrives before its ``start``, and ``start`` before ``done`` — the master
records observability spans in frame-arrival order and the stream stays
lifecycle-consistent for ``repro trace --audit``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import List, Optional

#: Protocol version exchanged in the hello handshake.
PROTO_VERSION = 1

#: Frame length prefix: 4-byte big-endian unsigned.
_LEN = struct.Struct(">I")

#: Upper bound on a single frame's payload.  Control messages are tiny;
#: anything larger is a corrupt stream (e.g. a peer speaking HTTP at us).
MAX_FRAME = 1 << 20


class ProtocolError(ValueError):
    """A malformed frame or message was received."""


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 4-byte big-endian length.

    >>> encode_frame(b"ab")
    b'\\x00\\x00\\x00\\x02ab'
    """
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)} > {MAX_FRAME}")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: feed arbitrary byte chunks, get frames.

    >>> dec = FrameDecoder()
    >>> dec.feed(encode_frame(b"hi")[:3])   # partial prefix: nothing yet
    []
    >>> dec.feed(encode_frame(b"hi")[3:])
    [b'hi']
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Consume ``data``; return every frame completed by it, in order."""
        self._buf.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds MAX_FRAME {MAX_FRAME}")
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            frames.append(bytes(self._buf[_LEN.size:end]))
            del self._buf[:end]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)


# -- message layer ------------------------------------------------------------


def encode_message(msg: dict) -> bytes:
    """Serialise a message dict into one ready-to-send frame."""
    if "op" not in msg:
        raise ProtocolError(f"message without op: {msg!r}")
    return encode_frame(
        json.dumps(msg, separators=(",", ":")).encode("utf-8"))


def decode_message(payload: bytes) -> dict:
    """Parse one frame payload into a message dict (validates ``op``)."""
    try:
        msg = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(msg, dict) or "op" not in msg:
        raise ProtocolError(f"frame is not an op message: {msg!r}")
    return msg


def hello(sender: int) -> dict:
    return {"op": "hello", "proto": PROTO_VERSION, "sender": sender}


# -- asyncio adapters ---------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame payload; ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("EOF inside a frame length prefix") from None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME {MAX_FRAME}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("EOF inside a frame body") from None


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one message; ``None`` on clean EOF."""
    payload = await read_frame(reader)
    return None if payload is None else decode_message(payload)


def send_message(writer: asyncio.StreamWriter, msg: dict) -> None:
    """Queue one message on ``writer`` (no await; a frame is appended to
    the transport buffer atomically, so concurrent senders cannot
    interleave partial frames)."""
    writer.write(encode_message(msg))


async def expect_hello(reader: asyncio.StreamReader) -> dict:
    """Read and validate the handshake message."""
    msg = await read_message(reader)
    if msg is None:
        raise ProtocolError("peer closed before hello")
    if msg.get("op") != "hello" or msg.get("proto") != PROTO_VERSION:
        raise ProtocolError(f"bad hello: {msg!r}")
    return msg
