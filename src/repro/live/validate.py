"""Cross-validation: the live cluster against the simulator it reproduces.

The simulator and the live substrate run the *same* scheduler code
(:class:`~repro.core.policies.MSPolicy` family, reservation controller,
RSRC selection) on the *same* generated trace; if the reproduction is
faithful, their stretch factors must agree to within the fidelity gap
between a discrete-event model and one real machine.

Tolerance
---------
The documented acceptance band is deliberately generous —
``live/sim`` stretch ratio within ``[1/TOLERANCE, TOLERANCE]`` with
``TOLERANCE = 4.0`` — because the two substrates differ in ways the model
does not try to capture:

* the live host in CI has **one CPU core**: concurrent CPU burns contend
  through the GIL and stretch each other's wall time, while the simulator
  gives every node its own processor;
* live requests pay real syscall/framing/HTTP overhead (~0.5–2 ms per
  hop on loopback) that the simulator folds into one fixed network
  latency;
* the simulator's disk model adds load-dependent burst service, while the
  live "disk" is a faithful sleep.

To keep both runs in a regime the comparison can survive, the default
workload is the paper's ADL mix (disk-heavy CGI, ``w ~= 0.1``) at low
utilisation, where sleeps dominate and the single real core is mostly
idle.  The validation asserts the *metric*, and separately that the live
scheduler actually exercised the paper's machinery (remote dispatch
happened, the reservation controller saw traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.live.cluster import LiveCluster, LiveClusterConfig
from repro.live.loadgen import LoadGenResult, run_loadgen
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import get_trace

#: Acceptance band for live/sim stretch ratio (see module docstring).
TOLERANCE = 4.0


@dataclass
class ValidationResult:
    """Outcome of one live-vs-sim comparison."""

    trace_name: str
    requests: int
    live_stretch: float
    sim_stretch: float
    live_completed: int
    sim_completed: int
    remote_fraction: float
    tolerance: float = TOLERANCE

    @property
    def ratio(self) -> float:
        return self.live_stretch / self.sim_stretch

    @property
    def ok(self) -> bool:
        return (self.sim_stretch > 0
                and 1.0 / self.tolerance <= self.ratio <= self.tolerance)

    def render(self) -> str:
        verdict = "within" if self.ok else "OUTSIDE"
        return (
            f"live-vs-sim on {self.trace_name} ({self.requests} requests):\n"
            f"  live stretch  {self.live_stretch:8.3f}  "
            f"({self.live_completed} completed, "
            f"{100 * self.remote_fraction:.0f}% remote)\n"
            f"  sim stretch   {self.sim_stretch:8.3f}  "
            f"({self.sim_completed} completed)\n"
            f"  ratio {self.ratio:.3f} — {verdict} tolerance "
            f"[{1 / self.tolerance:.2f}, {self.tolerance:.2f}]")


def make_validation_trace(trace_name: str = "ADL", rate: float = 60.0,
                          duration: float = 3.0, mu_h: float = 240.0,
                          inv_r: float = 12.0, seed: int = 0):
    """The shared workload both substrates replay.

    Defaults target a 1-core CI host: disk-heavy ADL CGI at a modest rate,
    static demand ~4 ms (so per-request live overhead stays small relative
    to service), CGI ~12x the static demand.
    """
    return generate_trace(get_trace(trace_name), rate=rate,
                          duration=duration, mu_h=mu_h, r=1.0 / inv_r,
                          seed=seed)


def simulate_reference(trace, num_nodes: int, mu_h: float = 240.0,
                       seed: int = 0):
    """Replay the trace through the simulator with one master (the live
    topology) and return its metrics report."""
    from repro.core.policies import make_policy
    from repro.sim.config import paper_sim_config

    sampler = pretrain_sampler(trace, seed=seed)
    policy = make_policy("MS", num_nodes, 1, sampler=sampler,
                         seed=seed + 17)
    cfg = paper_sim_config(num_nodes=num_nodes, seed=seed)
    cfg.static_rate = mu_h
    return replay(cfg, policy, trace, warmup_fraction=0.0).report


async def run_live(trace, cfg: Optional[LiveClusterConfig] = None,
                   time_scale: float = 1.0) -> tuple:
    """Boot a loopback cluster, replay the trace, return
    ``(LoadGenResult, master stats dict)``."""
    cluster = LiveCluster(cfg or LiveClusterConfig())
    async with cluster:
        assert cluster.master.http_port is not None
        result: LoadGenResult = await run_loadgen(
            cluster.master.host, cluster.master.http_port, trace,
            time_scale=time_scale)
        stats = cluster.master.stats()
    return result, stats


async def validate(trace_name: str = "ADL", rate: float = 60.0,
                   duration: float = 3.0, mu_h: float = 240.0,
                   inv_r: float = 12.0, num_slaves: int = 2,
                   seed: int = 0,
                   tolerance: float = TOLERANCE) -> ValidationResult:
    """Run the full cross-validation and return the comparison."""
    trace = make_validation_trace(trace_name, rate=rate, duration=duration,
                                  mu_h=mu_h, inv_r=inv_r, seed=seed)
    num_nodes = 1 + num_slaves
    sim_report = simulate_reference(trace, num_nodes, mu_h=mu_h, seed=seed)
    live_cfg = LiveClusterConfig(num_slaves=num_slaves, seed=seed)
    live_result, _stats = await run_live(trace, live_cfg)
    if not live_result.completions:
        raise RuntimeError(
            f"live run completed nothing ({live_result.errors} errors: "
            f"{live_result.error_messages[:3]})")
    return ValidationResult(
        trace_name=trace_name,
        requests=len(trace),
        live_stretch=live_result.server_stretch,
        sim_stretch=sim_report.overall.stretch,
        live_completed=live_result.ok,
        sim_completed=sim_report.completed,
        remote_fraction=live_result.remote_fraction,
        tolerance=tolerance,
    )
