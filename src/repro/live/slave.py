"""Subprocess entry point: ``python -m repro.live.slave``.

Kept separate from :mod:`repro.live.node` (which the package
``__init__`` imports) so ``runpy`` does not re-execute an
already-imported module when the cluster orchestrator spawns slaves.
"""

from repro.live.node import main

if __name__ == "__main__":   # pragma: no cover - subprocess entry
    raise SystemExit(main())
