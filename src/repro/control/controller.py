"""Periodic reconciliation loop re-solving Theorem 1 on the live estimate.

Each tick the controller:

1. polls its substrate adapter for newly completed requests and folds
   them into the :class:`~repro.control.estimator.WorkloadEstimator`;
2. rebuilds the estimated :class:`~repro.core.queuing.Workload` and
   re-solves ``optimal_masters`` (the Theorem-1 sweep) for the target
   master count, clamped to ``[min_masters, max_masters]``;
3. emits typed :class:`ControlAction`\\ s — update the RSRC weight ``w``,
   retune the theta'_2 reservation cap, or step the master set by one
   node (promote slave -> master / demote master -> slave) — and applies
   them through the adapter unless running ``--dry-run``.

Stability machinery keeps estimator noise from thrashing the cluster:

* **hysteresis** — a role step needs the re-solve to disagree with the
  current master count for ``confirm_ticks`` consecutive ticks;
* **cooldown** — at most one role change per ``cooldown`` seconds, and
  only one node per actuation (the next tick re-evaluates before the
  next step);
* **clamps** — the target is bounded to ``[min_masters, max_masters]``
  (default upper bound ``p - 1`` so the reservation gate stays
  meaningful: at ``m == p`` there are no slaves to protect);
* **tolerances** — ``w``/theta retunes are suppressed while the change
  is below ``w_tolerance``/``theta_tolerance``, except right after a
  role change, when the cap *must* follow the new ``m``.

Everything the loop sees and does is recorded through
:class:`~repro.control.log.ControlLog`, giving the trace auditor a
replayable record of the configuration in force at every timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple

from repro.control.estimator import EstimatorConfig, WorkloadEstimator
from repro.control.log import ControlLog
from repro.core.theorem import MSDesign, optimal_masters, reservation_ratio

__all__ = ["ControlAction", "ControlConfig", "Controller", "ControlAdapter",
           "RETUNE_THETA", "SET_W", "PROMOTE", "DEMOTE"]

# Action kinds (string tags so spans stay JSON-friendly).
RETUNE_THETA = "retune_theta"
SET_W = "set_w"
PROMOTE = "promote"
DEMOTE = "demote"


@dataclass(frozen=True)
class ControlAction:
    """One typed decision emitted by the reconciliation loop."""

    kind: str                       # RETUNE_THETA | SET_W | PROMOTE | DEMOTE
    node_id: int = -1               # affected node for role actions
    value: Optional[float] = None   # new cap / new w for tuning actions
    reason: str = ""


@dataclass(frozen=True)
class ControlConfig:
    """Knobs for the reconciliation loop (see module docstring)."""

    period: float = 0.5
    cooldown: float = 2.0
    confirm_ticks: int = 2
    min_masters: int = 1
    max_masters: Optional[int] = None   # None -> p - 1
    theta_tolerance: float = 0.02
    w_tolerance: float = 0.05
    dry_run: bool = False
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)

    def validate(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.confirm_ticks < 1:
            raise ValueError("confirm_ticks must be >= 1")
        if self.min_masters < 1:
            raise ValueError("min_masters must be >= 1")
        if self.max_masters is not None and self.max_masters < self.min_masters:
            raise ValueError("max_masters must be >= min_masters")
        if self.theta_tolerance < 0 or self.w_tolerance < 0:
            raise ValueError("tolerances must be >= 0")
        self.estimator.validate()

    def resolved_max_masters(self, p: int) -> int:
        """Upper clamp on the master count (default ``p - 1``)."""
        cap = self.max_masters if self.max_masters is not None else p - 1
        return max(self.min_masters, min(cap, p - 1 if p > 1 else 1))


class ControlAdapter(Protocol):
    """Substrate interface the controller reconciles through.

    Implementations: :class:`repro.control.actuator.SimAdapter` (mutates
    a running :class:`~repro.sim.cluster.Cluster`) and
    :class:`repro.control.actuator.LiveAdapter` (drives the PR-4 wire
    protocol from the live master).
    """

    @property
    def now(self) -> float: ...
    @property
    def num_nodes(self) -> int: ...
    def master_ids(self) -> Tuple[int, ...]: ...
    def poll(self, estimator: WorkloadEstimator) -> int: ...
    def theta_cap(self) -> float: ...
    def rsrc_w(self) -> float: ...
    def own_cap(self) -> None: ...
    def promote_candidate(self) -> Optional[int]: ...
    def demote_candidate(self, min_masters: int) -> Optional[int]: ...
    def apply(self, action: ControlAction) -> bool: ...


class Controller:
    """The reconciliation loop itself; substrate-agnostic.

    Drive it by calling :meth:`tick` periodically — the sim wrapper
    schedules it on the event engine, the live wrapper from an asyncio
    task.  Call :meth:`attach` once before the first tick.
    """

    def __init__(self, adapter: ControlAdapter,
                 cfg: Optional[ControlConfig] = None,
                 log: Optional[ControlLog] = None) -> None:
        self.cfg = cfg or ControlConfig()
        self.cfg.validate()
        self.adapter = adapter
        self.log = log or ControlLog()
        self.estimator = WorkloadEstimator(self.cfg.estimator)
        self.ticks = 0
        #: Applied actions, in order (dry-run actions are *not* listed
        #: here; see :attr:`proposed` for everything the loop wanted).
        self.applied: List[ControlAction] = []
        #: Every action the loop emitted, applied or not.
        self.proposed: List[ControlAction] = []
        self.last_design: Optional[MSDesign] = None
        self._last_fold = adapter.now
        self._last_role_t = -float("inf")
        self._streak_target: Optional[int] = None
        self._streak = 0
        self._attached = False

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> None:
        """Record the initial configuration and take cap ownership."""
        if self._attached:
            return
        self._attached = True
        p = self.adapter.num_nodes
        masters = self.adapter.master_ids()
        if not self.cfg.dry_run:
            # The control plane becomes the sole writer of theta'_2; the
            # policy-local response-ratio feedback keeps estimating but
            # stops actuating (see ReservationController.external_cap).
            self.adapter.own_cap()
        self.log.attach(self.cfg, len(masters), p,
                        theta0=self.adapter.theta_cap(),
                        own_cap=not self.cfg.dry_run)
        self.log.roles(masters)

    # -- the loop --------------------------------------------------------------

    def tick(self) -> List[ControlAction]:
        """One reconciliation pass; returns the actions emitted."""
        if not self._attached:
            self.attach()
        self.ticks += 1
        now = self.adapter.now
        self.adapter.poll(self.estimator)
        est = self.estimator.fold(max(now - self._last_fold, 0.0))
        self._last_fold = now
        self.log.estimate(est.a, est.r, est.w, est.rate, est.samples)

        emitted: List[ControlAction] = []
        m_current = len(self.adapter.master_ids())
        if not est.ready:
            self.log.decision(None, m_current, None, "cold-window")
            return emitted

        p = self.adapter.num_nodes
        workload = self.estimator.workload(p)
        if workload is None or not workload.feasible:
            self.log.decision(None, m_current, None, "infeasible-estimate")
            return emitted

        try:
            design = optimal_masters(workload)
        except (ValueError, ArithmeticError, ZeroDivisionError):
            self.log.decision(None, m_current, None, "no-stable-design")
            return emitted
        self.last_design = design
        lo = self.cfg.min_masters
        hi = self.cfg.resolved_max_masters(p)
        m_target = max(lo, min(design.m, hi))

        # 1. RSRC weight refresh (w drives min-RSRC node selection).
        assert est.w is not None
        if abs(est.w - self.adapter.rsrc_w()) > self.cfg.w_tolerance:
            emitted.append(ControlAction(SET_W, value=est.w,
                                         reason="cgi-split-drift"))

        # 2. Role step, gated by hysteresis + cooldown.
        role_changed = False
        if m_target != m_current:
            if self._streak_target == m_target:
                self._streak += 1
            else:
                self._streak_target, self._streak = m_target, 1
            confirmed = self._streak >= self.cfg.confirm_ticks
            cooled = now - self._last_role_t >= self.cfg.cooldown
            if confirmed and cooled:
                step = self._role_step(m_target, m_current)
                if step is not None:
                    emitted.append(step)
                    role_changed = True
        else:
            self._streak_target, self._streak = None, 0

        # 3. theta'_2 retune from the *post-step* master count: the cap
        #    formula depends on m, so a role change forces a retune.
        m_after = m_current + (1 if role_changed and emitted[-1].kind
                               == PROMOTE else 0)
        if role_changed and emitted[-1].kind == DEMOTE:
            m_after = m_current - 1
        assert est.a is not None and est.r is not None
        theta_target = reservation_ratio(est.a, est.r, m_after, p)
        if (role_changed
                or abs(theta_target - self.adapter.theta_cap())
                > self.cfg.theta_tolerance):
            emitted.append(ControlAction(
                RETUNE_THETA, value=theta_target,
                reason="role-step" if role_changed else "arrival-drift"))

        self.log.decision(m_target, m_current, theta_target,
                          "reconcile" if emitted else "steady")
        self._dispatch(emitted, now)
        return emitted

    # -- helpers ---------------------------------------------------------------

    def _role_step(self, m_target: int, m_current: int
                   ) -> Optional[ControlAction]:
        if m_target > m_current:
            node = self.adapter.promote_candidate()
            if node is None:
                return None
            return ControlAction(PROMOTE, node_id=node,
                                 reason=f"target-m={m_target}")
        node = self.adapter.demote_candidate(self.cfg.min_masters)
        if node is None:
            return None
        return ControlAction(DEMOTE, node_id=node,
                             reason=f"target-m={m_target}")

    def _dispatch(self, actions: List[ControlAction], now: float) -> None:
        for action in actions:
            self.proposed.append(action)
            applied = False
            if not self.cfg.dry_run:
                applied = self.adapter.apply(action)
            self.log.action(action, applied)
            if applied:
                self.applied.append(action)
                if action.kind in (PROMOTE, DEMOTE):
                    self._last_role_t = now
                    self._streak_target, self._streak = None, 0
                    self.log.roles(self.adapter.master_ids())
