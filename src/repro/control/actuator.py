"""Substrate adapters: how control decisions touch a running cluster.

Two adapters present the same :class:`~repro.control.controller.ControlAdapter`
surface to the reconciliation loop:

:class:`SimAdapter`
    Mutates a live :class:`~repro.sim.cluster.Cluster` mid-run — swaps
    the policy's master/slave role sets (``Policy.set_masters``),
    rewrites the theta'_2 reservation cap, and refreshes the RSRC weight.
    Demotion follows the PR-1 graceful-drain principle applied to the
    *role*: the node keeps executing everything already routed to it
    (``Cluster._routes`` tracks in-flight work by request id, not by
    role), it just stops being an accept/static target — so conservation
    holds with zero aborts.  Promotion re-registers the node with the
    :class:`~repro.sim.monitor.LoadMonitor` (re-baselines its busy
    counters) so the first post-promotion load sample reflects the new
    duty cycle rather than averaging across roles.

:class:`LiveAdapter`
    Drives the same transitions from the live master over the PR-4
    protocol: the routing tables flip locally (the master owns dispatch)
    and a ``role`` frame notifies the affected node, which acknowledges
    with ``role_ok``; the node is then re-registered with the loadd
    tier (:meth:`~repro.live.loadd.LoadTable.mark_alive` — heartbeat
    probation restarts, so dispatch treats the node cautiously until a
    fresh run of heartbeats arrives in its new role).

Both substrates also get a loop driver — :class:`SimControlLoop`
(engine-scheduled, invisible to ``Cluster.pending_requests`` so
conservation accounting is untouched) and :class:`LiveControlLoop`
(an asyncio task) — that owns a :class:`~repro.control.controller.Controller`
and ticks it every ``cfg.period``.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple, TYPE_CHECKING

from repro.control.controller import (
    DEMOTE,
    PROMOTE,
    RETUNE_THETA,
    SET_W,
    ControlAction,
    ControlConfig,
    Controller,
)
from repro.control.estimator import WorkloadEstimator
from repro.control.log import ControlLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.live.master import MasterServer
    from repro.sim.cluster import Cluster

__all__ = ["SimAdapter", "SimControlLoop", "LiveAdapter", "LiveControlLoop"]


def _apply_tuning(policy, action: ControlAction) -> bool:
    """Shared RETUNE_THETA / SET_W actuation against an M/S policy."""
    if action.kind == RETUNE_THETA:
        res = getattr(policy, "reservation", None)
        if res is None or action.value is None:
            return False
        res.theta_cap = float(action.value)
        return True
    if action.kind == SET_W:
        if action.value is None:
            return False
        w = min(1.0, max(0.0, float(action.value)))
        policy.default_w = w
        sampler = getattr(policy, "sampler", None)
        if sampler is not None:
            sampler.default_w = w
        return True
    return False


# -- simulator substrate ------------------------------------------------------


class SimAdapter:
    """Control-plane view of a running simulated cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self._ingested = 0

    # -- observation -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.cluster.engine.now

    @property
    def num_nodes(self) -> int:
        return len(self.cluster.nodes)

    def master_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self.cluster.policy.master_ids))

    def poll(self, estimator: WorkloadEstimator) -> int:
        """Feed completions recorded since the last tick."""
        m = self.cluster.metrics
        kinds, demands, cpus = m.kinds, m.demands, m.cpu_demands
        start, end = self._ingested, len(kinds)
        for i in range(start, end):
            cpu = cpus[i]
            estimator.observe(kinds[i], cpu, demands[i] - cpu)
        self._ingested = end
        return end - start

    def theta_cap(self) -> float:
        res = self.cluster.policy.reservation
        return res.theta_cap if res is not None else 1.0

    def rsrc_w(self) -> float:
        return self.cluster.policy.default_w

    def own_cap(self) -> None:
        res = self.cluster.policy.reservation
        if res is not None:
            res.external_cap = True

    # -- role candidates -------------------------------------------------------

    def promote_candidate(self) -> Optional[int]:
        """Lowest-id healthy slave: alive, not draining, not suspect."""
        cluster = self.cluster
        masters = set(cluster.policy.master_ids)
        suspect = cluster.monitor.suspect
        best_fallback: Optional[int] = None
        for i in range(len(cluster.nodes)):
            if i in masters or i in cluster._draining:
                continue
            if cluster.nodes[i].failed:
                continue
            if not suspect[i]:
                return i
            if best_fallback is None:
                best_fallback = i
        return best_fallback

    def demote_candidate(self, min_masters: int) -> Optional[int]:
        """Highest-id demotable master (never the front-end accept node)."""
        policy = self.cluster.policy
        masters = sorted(policy.master_ids, reverse=True)
        if len(masters) <= min_masters:
            return None
        accept = getattr(policy, "accept_node", None)
        for i in masters:
            if i != accept:
                return i
        return None

    # -- actuation -------------------------------------------------------------

    def apply(self, action: ControlAction) -> bool:
        policy = self.cluster.policy
        if action.kind in (RETUNE_THETA, SET_W):
            return _apply_tuning(policy, action)
        masters = set(policy.master_ids)
        if action.kind == PROMOTE:
            if action.node_id in masters:
                return False
            masters.add(action.node_id)
            policy.set_masters(masters)
            # Re-register with the monitor: re-baseline busy counters so
            # the next sample measures the node in its new role.
            self.cluster.monitor.reregister(action.node_id)
            return True
        if action.kind == DEMOTE:
            if (action.node_id not in masters or len(masters) <= 1
                    or action.node_id == getattr(policy, "accept_node", None)):
                return False
            masters.discard(action.node_id)
            # Graceful role drain: no aborts — in-flight work routed while
            # the node was a master finishes on it (conservation tracks
            # requests, not roles); the node merely stops being a static/
            # accept target from this instant.
            policy.set_masters(masters)
            return True
        return False


class SimControlLoop:
    """Engine-scheduled driver: ticks the controller every ``period``.

    The tick is a plain engine callback, deliberately *not* one of the
    request-bearing callbacks ``Cluster.pending_requests`` recognises,
    so an armed controller never extends a drain or perturbs the
    conservation ledger.
    """

    def __init__(self, cluster: "Cluster",
                 cfg: Optional[ControlConfig] = None) -> None:
        self.cluster = cluster
        self.adapter = SimAdapter(cluster)
        self.controller = Controller(self.adapter, cfg,
                                     ControlLog(cluster.tracer))
        self._started = False

    def start(self) -> "SimControlLoop":
        if not self._started:
            self._started = True
            self.controller.attach()
            self.cluster.engine.call_later(self.controller.cfg.period,
                                           self._tick)
        return self

    def _tick(self) -> None:
        self.controller.tick()
        self.cluster.engine.call_later(self.controller.cfg.period, self._tick)


# -- live substrate -----------------------------------------------------------


class LiveAdapter:
    """Control-plane view of the live master (PR-4 substrate)."""

    def __init__(self, master: "MasterServer") -> None:
        self.master = master
        self._ingested = 0
        self._role_seq = 0

    @property
    def now(self) -> float:
        return self.master.clock.now

    @property
    def num_nodes(self) -> int:
        return self.master.num_nodes

    def master_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self.master.policy.master_ids))

    def poll(self, estimator: WorkloadEstimator) -> int:
        metrics = self.master.metrics
        records, splits = metrics.records, metrics.splits
        start, end = self._ingested, len(records)
        for i in range(start, end):
            cpu, io = splits[i]
            estimator.observe(records[i][1], cpu, io)
        self._ingested = end
        return end - start

    def theta_cap(self) -> float:
        res = self.master.policy.reservation
        return res.theta_cap if res is not None else 1.0

    def rsrc_w(self) -> float:
        return self.master.policy.default_w

    def own_cap(self) -> None:
        res = self.master.policy.reservation
        if res is not None:
            res.external_cap = True

    def promote_candidate(self) -> Optional[int]:
        """Lowest-id connected slave whose heartbeats are current."""
        master = self.master
        masters = set(master.policy.master_ids)
        suspect = master.table.suspect_array(master.clock.now)
        best_fallback: Optional[int] = None
        for i in sorted(master.peers):
            peer = master.peers[i]
            if i in masters or not peer.connected:
                continue
            if not suspect[i]:
                return i
            if best_fallback is None:
                best_fallback = i
        return best_fallback

    def demote_candidate(self, min_masters: int) -> Optional[int]:
        """Highest-id master other than the front-end node itself."""
        master = self.master
        masters = sorted(master.policy.master_ids, reverse=True)
        if len(masters) <= min_masters:
            return None
        for i in masters:
            if i != master.policy.accept_node:
                return i
        return None

    def apply(self, action: ControlAction) -> bool:
        master = self.master
        policy = master.policy
        if action.kind in (RETUNE_THETA, SET_W):
            return _apply_tuning(policy, action)
        masters = set(policy.master_ids)
        if action.kind == PROMOTE:
            if action.node_id in masters:
                return False
            masters.add(action.node_id)
        elif action.kind == DEMOTE:
            if (action.node_id not in masters
                    or action.node_id == policy.accept_node
                    or len(masters) <= 1):
                return False
            masters.discard(action.node_id)
        else:
            return False
        policy.set_masters(masters)
        self._notify_role(action.node_id,
                          "master" if action.kind == PROMOTE else "slave")
        # loadd re-registration: heartbeat probation restarts so dispatch
        # treats the node cautiously until it reports in its new role.
        master.table.mark_alive(action.node_id)
        return True

    def _notify_role(self, node_id: int, role: str) -> None:
        """Best-effort ROLE frame to the affected node (ack is async)."""
        from repro.live import protocol

        peer = self.master.peers.get(node_id)
        if peer is None or peer.writer is None:
            return
        self._role_seq += 1
        try:
            protocol.send_message(peer.writer, {
                "op": "role", "node": node_id, "role": role,
                "seq": self._role_seq,
            })
        except (ConnectionResetError, RuntimeError):
            pass   # reader loop handles the disconnect bookkeeping


class LiveControlLoop:
    """Asyncio driver for the live substrate: tick every ``period``."""

    def __init__(self, master: "MasterServer",
                 cfg: Optional[ControlConfig] = None) -> None:
        self.master = master
        self.adapter = LiveAdapter(master)
        self.controller = Controller(self.adapter, cfg,
                                     ControlLog(master.tracer))
        self._task: Optional[asyncio.Task] = None

    def start(self) -> "LiveControlLoop":
        if self._task is None:
            self.controller.attach()
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="control-loop")
        return self

    async def _run(self) -> None:
        period = self.controller.cfg.period
        while True:
            await asyncio.sleep(period)
            self.controller.tick()

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
