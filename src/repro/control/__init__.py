"""Online control plane: estimate the workload, re-solve Theorem 1, act.

The paper's design machinery (``theta_bounds`` / ``optimal_masters``)
is exact but static — it picks ``m`` and theta'_2 for one workload and
freezes them.  ``repro.control`` closes the loop online, on both
substrates (simulator and live cluster):

* :mod:`~repro.control.estimator` — EWMA estimation of the Theorem-1
  ``Workload`` vector (arrival ratio ``a``, service demands, CGI
  CPU/disk split -> RSRC weight ``w``) from completed requests, with
  confidence guards so a cold window never actuates;
* :mod:`~repro.control.controller` — the periodic reconciliation loop
  emitting typed :class:`~repro.control.controller.ControlAction`\\ s
  (retune theta'_2, refresh ``w``, promote/demote one node) behind
  hysteresis, cooldown, and master-count clamps;
* :mod:`~repro.control.actuator` — substrate adapters that apply those
  actions to a running :class:`~repro.sim.cluster.Cluster` or drive the
  live wire protocol's ROLE frames;
* :mod:`~repro.control.log` — every estimate/decision/actuation as
  CONTROL obs spans, so ``repro trace --audit`` can prove dispatches
  matched the configuration in force and actions respected cooldown.

Entry points: ``repro control`` (CLI), ``replay(control=...)`` for
simulated runs, :class:`~repro.control.actuator.LiveControlLoop` for a
live master.
"""

from repro.control.actuator import (
    LiveAdapter,
    LiveControlLoop,
    SimAdapter,
    SimControlLoop,
)
from repro.control.controller import (
    DEMOTE,
    PROMOTE,
    RETUNE_THETA,
    SET_W,
    ControlAction,
    ControlConfig,
    Controller,
)
from repro.control.estimator import (
    EstimatorConfig,
    WorkloadEstimate,
    WorkloadEstimator,
)
from repro.control.log import ControlLog

__all__ = [
    "ControlAction",
    "ControlConfig",
    "ControlLog",
    "Controller",
    "DEMOTE",
    "EstimatorConfig",
    "LiveAdapter",
    "LiveControlLoop",
    "PROMOTE",
    "RETUNE_THETA",
    "SET_W",
    "SimAdapter",
    "SimControlLoop",
    "WorkloadEstimate",
    "WorkloadEstimator",
]
