"""Control-plane event log: every estimate, decision, and actuation as spans.

The control plane never trusts itself silently — each tick's estimate,
each reconciliation decision, and each applied (or dry-run) action is
recorded as a :data:`repro.obs.trace.CONTROL` span on the same tracer
that carries the request lifecycle.  The trace auditor's control pass
(:mod:`repro.obs.audit`) replays this stream to prove that every
observed dispatch was consistent with the theta'_2/role configuration in
force at its timestamp and that role actions respect the cooldown.

Span payloads are tagged tuples (first element is the event name) so the
stream stays self-describing after a JSONL round trip:

``("attach", m, p, period, cooldown, min_m, max_m, theta0, own_cap)``
    Controller attached.  ``own_cap`` tells the auditor whether the
    control plane took exclusive ownership of the reservation cap
    (False under ``--dry-run``, where nothing is actuated).
``("roles", [master ids...])``
    Master set in force — emitted at attach and after every applied
    role change, so membership at any timestamp is reconstructible.
``("estimate", a, r, w, rate, samples)``
    Folded estimator state this tick (values may be None while cold).
``("decision", m_target, m_current, theta_target, reason)``
    What the re-solve concluded, even when no action follows.
``("action", kind, node_id, value, applied)``
    A typed :class:`~repro.control.controller.ControlAction`;
    ``applied`` is False for dry-run (and refused) actions.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.obs.trace import CONTROL, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.control.controller import ControlAction, ControlConfig

__all__ = ["ControlLog"]


class ControlLog:
    """Span-emitting sink for control-plane events.

    No-op when constructed without a tracer, mirroring the ``_tracer``
    convention used by the rest of the codebase: an untraced controlled
    run pays one ``None`` check per event.
    """

    __slots__ = ("tracer",)

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer

    # -- individual events ----------------------------------------------------

    def attach(self, cfg: "ControlConfig", m: int, p: int, theta0: float,
               own_cap: bool) -> None:
        if self.tracer is not None:
            self.tracer.record(CONTROL, -1, -1, (
                "attach", int(m), int(p), float(cfg.period),
                float(cfg.cooldown), int(cfg.min_masters),
                int(cfg.resolved_max_masters(p)), float(theta0),
                bool(own_cap)))

    def roles(self, master_ids: Sequence[int]) -> None:
        if self.tracer is not None:
            self.tracer.record(CONTROL, -1, -1,
                               ("roles", tuple(int(i)
                                               for i in sorted(master_ids))))

    def estimate(self, a: Optional[float], r: Optional[float],
                 w: Optional[float], rate: Optional[float],
                 samples: int) -> None:
        if self.tracer is not None:
            self.tracer.record(CONTROL, -1, -1,
                               ("estimate", a, r, w, rate, int(samples)))

    def decision(self, m_target: Optional[int], m_current: int,
                 theta_target: Optional[float], reason: str) -> None:
        if self.tracer is not None:
            self.tracer.record(CONTROL, -1, -1,
                               ("decision", m_target, int(m_current),
                                theta_target, reason))

    def action(self, action: "ControlAction", applied: bool) -> None:
        if self.tracer is not None:
            self.tracer.record(CONTROL, -1, int(action.node_id),
                               ("action", action.kind, int(action.node_id),
                                action.value, bool(applied)))
