"""Online estimation of the Theorem-1 ``Workload`` parameters.

The paper's Section-4 heuristic is explicitly online: theta'_2 is
"recomputed online from the monitored arrival ratio ``a``" and the RSRC
CPU weight ``w`` comes from sampling.  This module closes that loop for
the whole Theorem-1 parameter vector — from a stream of *completed
requests* it maintains EWMA estimates of

* ``a``        — dynamic/static arrival ratio (``lam_c / lam_h``),
* ``1/mu_h``   — mean static service demand,
* ``1/mu_c``   — mean dynamic service demand (so ``r = mu_c/mu_h``),
* ``w``        — CPU share of dynamic demand (the RSRC weight), and
* ``lam``      — aggregate arrival rate,

which is exactly enough to rebuild a :class:`~repro.core.queuing.Workload`
and re-solve ``theta_bounds`` / ``optimal_masters`` mid-run.

Observations are folded into the EWMAs once per controller tick (the
"window"): per-tick sample means are the window statistic, and the EWMA
smooths across windows, mirroring the response-ratio feedback loop in
:class:`repro.core.reservation.ReservationController` — but driven by
measured *demands* instead of the response-time proxy, which is what a
control plane with visibility into completions can afford.

Confidence guards keep a cold or thin window from ever actuating: the
estimator reports :attr:`ready` only after both request classes have
delivered a minimum number of samples and a minimum number of non-empty
windows has been folded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.queuing import Workload

__all__ = ["EstimatorConfig", "WorkloadEstimate", "WorkloadEstimator"]


@dataclass(frozen=True)
class EstimatorConfig:
    """Window/confidence knobs for :class:`WorkloadEstimator`.

    smoothing:
        EWMA weight of the newest window (1.0 = no memory).  The default
        favours responsiveness: a workload shift is ~90% absorbed after
        five non-empty windows.
    min_class_samples:
        Lifetime samples required *per request class* before the
        estimator declares itself ready.  Static-only or dynamic-only
        streams therefore never actuate — ``a`` would be degenerate.
    warm_windows:
        Non-empty windows that must fold before :attr:`ready`.
    """

    smoothing: float = 0.35
    min_class_samples: int = 25
    warm_windows: int = 2

    def validate(self) -> None:
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if self.min_class_samples < 1:
            raise ValueError("min_class_samples must be >= 1")
        if self.warm_windows < 1:
            raise ValueError("warm_windows must be >= 1")


@dataclass(frozen=True)
class WorkloadEstimate:
    """One folded snapshot of the estimator state (Nones while cold)."""

    a: Optional[float]
    r: Optional[float]
    w: Optional[float]
    rate: Optional[float]
    samples: int
    ready: bool


class WorkloadEstimator:
    """EWMA estimator of the Theorem-1 workload from completed requests.

    Feed completions with :meth:`observe` (any substrate: the sim
    adapter polls ``MetricsCollector``, the live adapter polls the
    master's ``LiveMetrics``), then :meth:`fold` once per control tick.

    >>> est = WorkloadEstimator(EstimatorConfig(min_class_samples=2,
    ...                                         warm_windows=1))
    >>> for i in range(4):
    ...     est.observe(kind=0, cpu=1 / 1200, io=0.0)       # static
    ...     est.observe(kind=1, cpu=0.6 / 30, io=0.4 / 30)  # dynamic
    >>> snap = est.fold(elapsed=1.0)
    >>> snap.ready, round(snap.a, 3), round(snap.w, 3)
    (True, 1.0, 0.6)
    >>> round(1.0 / snap.r)    # r = mu_c / mu_h = 1/40
    40
    """

    __slots__ = ("cfg", "_n_static", "_n_dynamic", "_d_static", "_d_dynamic",
                 "_cpu_dynamic", "_a_est", "_ds_est", "_dd_est", "_w_est",
                 "_rate_est", "_windows", "_total_static", "_total_dynamic")

    def __init__(self, cfg: Optional[EstimatorConfig] = None) -> None:
        self.cfg = cfg or EstimatorConfig()
        self.cfg.validate()
        # Current (unfolded) window accumulators.
        self._n_static = 0
        self._n_dynamic = 0
        self._d_static = 0.0
        self._d_dynamic = 0.0
        self._cpu_dynamic = 0.0
        # EWMA state across folded windows.
        self._a_est: Optional[float] = None
        self._ds_est: Optional[float] = None
        self._dd_est: Optional[float] = None
        self._w_est: Optional[float] = None
        self._rate_est: Optional[float] = None
        self._windows = 0
        self._total_static = 0
        self._total_dynamic = 0

    # -- feeding ---------------------------------------------------------------

    def observe(self, kind: int, cpu: float, io: float) -> None:
        """Record one completed request (``kind`` 0=static, 1=dynamic)."""
        demand = cpu + io
        if kind:
            self._n_dynamic += 1
            self._d_dynamic += demand
            self._cpu_dynamic += cpu
        else:
            self._n_static += 1
            self._d_static += demand

    # -- folding ---------------------------------------------------------------

    def _ewma(self, old: Optional[float], new: float) -> float:
        if old is None:
            return new
        g = self.cfg.smoothing
        return (1.0 - g) * old + g * new

    def fold(self, elapsed: float) -> WorkloadEstimate:
        """Fold the current window (``elapsed`` seconds) into the EWMAs."""
        n_s, n_d = self._n_static, self._n_dynamic
        if n_s or n_d:
            self._windows += 1
            self._total_static += n_s
            self._total_dynamic += n_d
            if n_s:
                self._ds_est = self._ewma(self._ds_est, self._d_static / n_s)
                # a is only measurable against a non-empty static window;
                # an all-dynamic window still drags the EWMA via the next
                # mixed window's ratio.
                self._a_est = self._ewma(self._a_est, n_d / n_s)
            if n_d:
                self._dd_est = self._ewma(self._dd_est, self._d_dynamic / n_d)
                if self._d_dynamic > 0.0:
                    self._w_est = self._ewma(
                        self._w_est, self._cpu_dynamic / self._d_dynamic)
            if elapsed > 0.0:
                self._rate_est = self._ewma(self._rate_est,
                                            (n_s + n_d) / elapsed)
        self._n_static = self._n_dynamic = 0
        self._d_static = self._d_dynamic = self._cpu_dynamic = 0.0
        return self.snapshot()

    # -- reading ---------------------------------------------------------------

    @property
    def samples(self) -> int:
        """Lifetime folded completions (both classes)."""
        return self._total_static + self._total_dynamic

    @property
    def ready(self) -> bool:
        """True once the confidence guards allow actuation."""
        return (self._windows >= self.cfg.warm_windows
                and self._total_static >= self.cfg.min_class_samples
                and self._total_dynamic >= self.cfg.min_class_samples
                and self._a_est is not None and self._a_est > 0.0
                and self._ds_est is not None and self._ds_est > 0.0
                and self._dd_est is not None and self._dd_est > 0.0
                and self._rate_est is not None and self._rate_est > 0.0)

    @property
    def a(self) -> Optional[float]:
        return self._a_est

    @property
    def r(self) -> Optional[float]:
        """``r = mu_c / mu_h`` = mean static demand / mean dynamic demand."""
        if (self._ds_est is None or self._dd_est is None
                or self._dd_est <= 0.0):
            return None
        return self._ds_est / self._dd_est

    @property
    def w(self) -> Optional[float]:
        return self._w_est

    @property
    def rate(self) -> Optional[float]:
        return self._rate_est

    def snapshot(self) -> WorkloadEstimate:
        return WorkloadEstimate(a=self._a_est, r=self.r, w=self._w_est,
                                rate=self._rate_est, samples=self.samples,
                                ready=self.ready)

    def workload(self, p: int) -> Optional[Workload]:
        """The estimated Theorem-1 workload, or None while not ready."""
        if not self.ready:
            return None
        assert self._ds_est is not None and self._rate_est is not None
        r = self.r
        assert self._a_est is not None and r is not None
        return Workload.from_ratios(lam=self._rate_est, a=self._a_est,
                                    mu_h=1.0 / self._ds_est, r=r, p=p)
