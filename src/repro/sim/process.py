"""Process model: a request being executed on a node.

Each admitted request becomes a :class:`SimProcess` whose service demand is
laid out as an alternating plan of CPU bursts and disk-I/O bursts, mirroring
the paper's simulator ("each request job will be modeled as a sequence of CPU
bursts and I/O bursts, submitted to the CPU queue and I/O queue").

The plan is built once at admission; the virtual-memory manager may splice
extra I/O bursts (page faults) into the plan while the process runs.
"""

from __future__ import annotations

import enum
import math
from typing import List, Optional, Tuple

from repro.workload.request import Request

#: Burst kinds inside an execution plan.
CPU_BURST = 0
IO_BURST = 1

#: Minimum CPU sliver used when a request is pure-I/O: the server still
#: parses the request and writes the response.
MIN_CPU_SLIVER = 20e-6


class ProcState(enum.IntEnum):
    """Lifecycle of a :class:`SimProcess` on its node."""

    NEW = 0
    READY = 1      # waiting in a CPU run queue
    RUNNING = 2    # on the CPU
    IO_WAIT = 3    # queued at or using the disk
    DONE = 4


def build_plan(
    cpu_total: float,
    io_total: float,
    io_chunk: float,
    rng=None,
) -> List[Tuple[int, float]]:
    """Lay out a request's demand as alternating CPU and I/O bursts.

    The I/O demand is cut into chunks of roughly ``io_chunk`` seconds and the
    CPU demand is spread evenly between them, starting and ending with CPU
    (parse / respond).  When ``rng`` is given, chunk boundaries are jittered
    by up to 30% to avoid lock-step convoy effects between identical
    requests.

    >>> plan = build_plan(0.03, 0.02, 0.016)
    >>> abs(sum(d for k, d in plan if k == CPU_BURST) - 0.03) < 1e-12
    True
    >>> abs(sum(d for k, d in plan if k == IO_BURST) - 0.02) < 1e-12
    True
    """
    if cpu_total < 0 or io_total < 0:
        raise ValueError("burst totals must be >= 0")
    if io_chunk <= 0:
        raise ValueError("io_chunk must be positive")
    if io_total <= 0:
        return [(CPU_BURST, max(cpu_total, MIN_CPU_SLIVER))]

    n_io = max(1, math.ceil(io_total / io_chunk))
    io_sizes = [io_total / n_io] * n_io
    cpu_each = max(cpu_total, MIN_CPU_SLIVER) / (n_io + 1)
    if rng is not None and n_io > 1:
        # Jitter interior boundaries while preserving the totals.
        deltas = rng.uniform(-0.3, 0.3, size=n_io - 1)
        for i, d in enumerate(deltas):
            shift = io_sizes[i] * d
            io_sizes[i] -= shift
            io_sizes[i + 1] += shift

    plan: List[Tuple[int, float]] = []
    for size in io_sizes:
        plan.append((CPU_BURST, cpu_each))
        plan.append((IO_BURST, size))
    plan.append((CPU_BURST, cpu_each))
    return plan


class SimProcess:
    """A request in execution on one node.

    Tracks the burst plan cursor, the decayed CPU-usage accumulator that
    drives the multilevel-feedback priority, and bookkeeping for metrics
    (per-resource time actually consumed, queueing delays).
    """

    __slots__ = (
        "request",
        "node_id",
        "plan",
        "plan_idx",
        "burst_remaining",
        "state",
        "cpu_usage",
        "usage_stamp",
        "priority",
        "resident_pages",
        "pending_fault_pages",
        "admit_time",
        "finish_time",
        "cpu_time_used",
        "io_time_used",
        "dispatch_latency",
        "slice_event",
    )

    def __init__(self, request: Request, node_id: int, plan: List[Tuple[int, float]],
                 admit_time: float, dispatch_latency: float = 0.0):
        self.request = request
        self.node_id = node_id
        self.plan = plan
        self.plan_idx = 0
        self.burst_remaining = plan[0][1] if plan else 0.0
        self.state = ProcState.NEW
        self.cpu_usage = 0.0          # decayed accumulator (seconds)
        self.usage_stamp = admit_time  # when cpu_usage was last decayed
        self.priority = 0
        self.resident_pages = 0
        self.pending_fault_pages = 0
        self.admit_time = admit_time
        self.finish_time: Optional[float] = None
        self.cpu_time_used = 0.0
        self.io_time_used = 0.0
        self.dispatch_latency = dispatch_latency
        self.slice_event = None       # CPU slice-end event, for preemption

    # -- plan navigation ----------------------------------------------------

    @property
    def current_kind(self) -> Optional[int]:
        """Kind of the burst at the cursor, or ``None`` past the end."""
        if self.plan_idx >= len(self.plan):
            return None
        return self.plan[self.plan_idx][0]

    def advance(self) -> Optional[int]:
        """Move to the next burst; return its kind or ``None`` if finished."""
        self.plan_idx += 1
        if self.plan_idx >= len(self.plan):
            self.burst_remaining = 0.0
            return None
        self.burst_remaining = self.plan[self.plan_idx][1]
        return self.plan[self.plan_idx][0]

    def splice_io(self, duration: float) -> None:
        """Insert a page-fault I/O burst just after the current burst."""
        if duration <= 0:
            return
        self.plan.insert(self.plan_idx + 1, (IO_BURST, duration))

    @property
    def finished(self) -> bool:
        return self.plan_idx >= len(self.plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimProcess req={self.request.req_id} node={self.node_id} "
            f"state={self.state.name} idx={self.plan_idx}/{len(self.plan)}>"
        )
