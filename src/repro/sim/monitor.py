"""Cluster load monitor — the simulated counterpart of polling ``rstat()``.

"In our implementation, we use the Unix rstat() function to collect the load
information on each node" and the scheduler "use[s] periodically-updated I/O
and CPU load information".

The monitor samples every node's CPU and disk busy time once per period and
exposes smoothed **CPUIdleRatio** and **DiskAvailRatio** arrays.  Between
samples the scheduler sees stale values — exactly the staleness a real
deployment has, and a knob worth ablating.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.config import MonitorConfig
from repro.sim.engine import Engine
from repro.sim.node import Node


class LoadMonitor:
    """Periodic sampler of per-node CPU-idle and disk-available ratios."""

    __slots__ = ("engine", "cfg", "nodes", "cpu_idle", "disk_avail",
                 "_last_cpu_busy", "_last_disk_busy", "_last_sample_time",
                 "samples", "suspect", "any_suspect", "_last_probe_ok",
                 "_ok_streak")

    def __init__(self, engine: Engine, cfg: MonitorConfig, nodes: Sequence[Node]):
        self.engine = engine
        self.cfg = cfg
        self.nodes = nodes
        n = len(nodes)
        #: Smoothed fraction of idle CPU time per node, in [0, 1].
        self.cpu_idle = np.ones(n)
        #: Smoothed fraction of available disk bandwidth per node, in [0, 1].
        self.disk_avail = np.ones(n)
        self._last_cpu_busy = np.zeros(n)
        self._last_disk_busy = np.zeros(n)
        self._last_sample_time = engine.now
        self.samples = 0
        #: Suspicion flags: a probe failed recently, or the node is still on
        #: post-recovery probation and its load data cannot be trusted.
        self.suspect = np.zeros(n, dtype=bool)
        #: O(1) fast-path mirror of ``suspect.any()``.
        self.any_suspect = False
        self._last_probe_ok = np.full(n, engine.now)
        self._ok_streak = np.full(n, cfg.probation_samples, dtype=np.intp)

    def start(self) -> None:
        """Schedule the first sampling tick."""
        self.engine.call_later(self.cfg.period, self._tick)

    def reregister(self, node_id: int) -> None:
        """Re-baseline one node's probe state after a role change.

        Called by the control plane when it promotes a slave: the busy
        counters restart from *now* so the first post-promotion sample
        measures the node's utilisation in its new role instead of
        averaging across the transition, and the probe freshness stamp
        is renewed.  Unlike a recovery there is no probation — the node
        was continuously monitored; only its duty cycle changed.
        """
        node = self.nodes[node_id]
        self._last_cpu_busy[node_id] = node.cpu.busy_time
        self._last_disk_busy[node_id] = node.disk.busy_time
        self._last_probe_ok[node_id] = self.engine.now

    def _tick(self) -> None:
        now = self.engine.now
        window = now - self._last_sample_time
        s = self.cfg.smoothing
        for i, node in enumerate(self.nodes):
            if node.failed:
                # The rstat() probe fails: no sample, immediate suspicion.
                self._ok_streak[i] = 0
                self.suspect[i] = True
                continue
            if window > 0:
                cpu_busy = node.cpu.busy_time
                disk_busy = node.disk.busy_time
                cpu_util = (cpu_busy - self._last_cpu_busy[i]) / window
                disk_util = (disk_busy - self._last_disk_busy[i]) / window
                self._last_cpu_busy[i] = cpu_busy
                self._last_disk_busy[i] = disk_busy
                idle = min(1.0, max(0.0, 1.0 - cpu_util))
                avail = min(1.0, max(0.0, 1.0 - disk_util))
                self.cpu_idle[i] = s * idle + (1.0 - s) * self.cpu_idle[i]
                self.disk_avail[i] = s * avail + (1.0 - s) * self.disk_avail[i]
            self._last_probe_ok[i] = now
            self._ok_streak[i] += 1
            if (self.suspect[i]
                    and self._ok_streak[i] >= self.cfg.probation_samples):
                self.suspect[i] = False
        # Staleness net: catches probes that stopped arriving for reasons
        # other than a formal failure (belt and braces for long periods).
        stale = (now - self._last_probe_ok) > self.cfg.suspect_after
        if stale.any():
            self.suspect[stale] = True
            self._ok_streak[stale] = 0
        self.any_suspect = bool(self.suspect.any())
        self._last_sample_time = now
        self.samples += 1
        self.engine.call_later(self.cfg.period, self._tick)
