"""Discrete-event simulation kernel.

A deliberately small, fast core: a virtual clock plus a binary-heap event
queue.  Components schedule plain callables; there is no coroutine machinery,
because the preemptive CPU scheduler is easier to express as explicit state
machines than as generators.

Determinism: given the same schedule calls in the same order, the run is
bit-reproducible.  Ties in event time are broken by insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule`.

    Events may be cancelled (``ev.cancel()``); cancelled events stay in the
    heap but are skipped when popped, which is O(1) amortised and avoids
    re-heapification.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} fn={self.fn!r}>"


class Engine:
    """Virtual-time event loop.

    Examples
    --------
    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(1.5, hits.append, "a")
    >>> _ = eng.schedule(0.5, hits.append, "b")
    >>> eng.run()
    2
    >>> hits
    ['b', 'a']
    >>> eng.now
    1.5
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_processed")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self.now})"
            )
        seq = next(self._seq)
        ev = Event(time, seq, fn, args)
        # Heap entries are (time, seq, event) tuples: (time, seq) is unique,
        # so ordering resolves at C speed without calling Event.__lt__.
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time; the clock
            is then advanced to ``until``.  ``None`` runs until the heap is
            empty.
        max_events:
            Safety valve for runaway simulations; raises ``RuntimeError``
            when exceeded.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                time, _, ev = heap[0]
                if ev.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                self.now = time
                ev.fn(*ev.args)
                processed += 1
                if max_events is not None and processed > max_events:
                    raise RuntimeError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
        finally:
            self._running = False
            self._processed += processed
        if until is not None and self.now < until:
            self.now = until
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if none remained."""
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = time
            ev.fn(*ev.args)
            self._processed += 1
            return True
        return False

    # -- introspection ------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    @property
    def processed(self) -> int:
        """Total events processed over the engine's lifetime."""
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.6f} pending={self.pending}>"
