"""Discrete-event simulation kernel.

A deliberately small, fast core: a virtual clock plus a two-tier event
queue.  Components schedule plain callables; there is no coroutine
machinery, because the preemptive CPU scheduler is easier to express as
explicit state machines than as generators.

Determinism: given the same schedule calls in the same order, the run is
bit-reproducible.  Ties in event time are broken by insertion order.

Hot-path design
---------------
The seed kernel kept one binary heap and allocated an :class:`Event`
object per scheduled callback.  Profiling the replay grids showed three
dominating costs — per-event object allocation, ``heappush``/``heappop``
on heaps holding an entire trace's arrivals, and cyclic-GC scans
triggered by event garbage.  The kernel now addresses all three:

* **Two-tier queue (sorted run + insertion buffer).**  Pending events
  live in ``_sorted``, a descending-sorted list whose next event is at
  the *end* (``list.pop()`` is O(1) and releases memory incrementally).
  Newly scheduled events are appended to an unsorted ``_buffer`` and
  only folded in when one of them is actually due; the fold cuts the
  sorted run at the buffer's maximum time with one ``bisect`` and
  timsort-merges just the tail, so far-future arrivals are never
  re-scanned.  Submitting a whole trace via :meth:`call_at_many` is a
  single C-level ``extend``.
* **Handle-free fast path.**  Most events are fire-and-forget (request
  arrivals, dispatch hops, worker-slot releases, monitor ticks) and
  never need cancellation.  :meth:`call_later` / :meth:`call_at` store a
  plain ``(time, seq, fn, args)`` tuple — no :class:`Event` object at
  all.  :meth:`schedule` / :meth:`schedule_at` still return cancellable
  :class:`Event` handles for the callers that need them (CPU slices,
  disk slices, resilience deadlines).
* **Event free-list pooling.**  Fired and dead-on-pop :class:`Event`
  objects are recycled through a bounded free list instead of being
  re-allocated, which keeps steady-state replays from churning the
  allocator.  Contract: **a handle must not be cancelled after its
  callback has fired** (every in-tree holder nulls its reference at
  fire/cancel time); cancelling a *pending* handle any number of times
  remains safe and idempotent.
* **GC pause around :meth:`run`.**  Event tuples die by reference
  counting; the cyclic collector only adds allocation-triggered scan
  pauses mid-run, so it is suspended for the duration and restored on
  exit (exception-safe, and a no-op if the caller already disabled it).
"""

from __future__ import annotations

import gc
import itertools
from bisect import bisect_left
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

_INF = float("inf")

#: Upper bound on pooled Event objects kept for reuse (a 128-node cluster
#: has at most a few hundred cancellable events in flight).
_FREE_MAX = 1024


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule`.

    Events may be cancelled (``ev.cancel()``); cancelled events stay in the
    queue but are skipped when popped, which is O(1) amortised and avoids
    re-sorting.

    Pooling contract: once the callback has fired (or a cancelled event has
    been reaped by the queue), the handle is recycled for a future
    ``schedule`` call — drop the reference and never call :meth:`cancel` on
    a handle whose callback already ran.  Cancelling a *pending* event any
    number of times is safe and idempotent.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} fn={self.fn!r}>"


def _neg_time(entry: tuple) -> float:
    """bisect key: ``_sorted`` is descending, bisect wants ascending."""
    return -entry[0]


class Engine:
    """Virtual-time event loop.

    Examples
    --------
    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(1.5, hits.append, "a")
    >>> _ = eng.schedule(0.5, hits.append, "b")
    >>> eng.run()
    2
    >>> hits
    ['b', 'a']
    >>> eng.now
    1.5
    """

    __slots__ = ("now", "_sorted", "_buffer", "_bnext", "_seq", "_running",
                 "_processed", "_free", "tracer")

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Optional :class:`repro.obs.trace.Tracer`.  The engine itself only
        #: emits one ``run`` meta span per :meth:`run` call — per-event
        #: tracing lives in the components, keeping the hot loop untouched.
        self.tracer = None
        #: Descending (time, seq, ...) entries; the next due event is LAST.
        self._sorted: list = []
        #: Unsorted newly scheduled entries, folded in lazily by `_merge`.
        self._buffer: list = []
        #: Earliest time in `_buffer` (+inf when empty).  Exact, never stale:
        #: every append updates it and `_merge` resets it.
        self._bnext: float = _INF
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        #: Free list of recycled Event objects.
        self._free: list[Event] = []

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns a cancellable :class:`Event` handle.  Prefer
        :meth:`call_later` when the caller never cancels: it skips the
        handle allocation entirely.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self.now})"
            )
        seq = next(self._seq)
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, fn, args)
        self._buffer.append((time, seq, ev))
        if time < self._bnext:
            self._bnext = time
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no Event handle, no allocation
        beyond the queue entry itself.  Use for callbacks that are never
        cancelled — the hot request path."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        self._buffer.append((time, next(self._seq), fn, args))
        if time < self._bnext:
            self._bnext = time

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (no Event handle)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self.now})"
            )
        self._buffer.append((time, next(self._seq), fn, args))
        if time < self._bnext:
            self._bnext = time

    def call_at_many(
        self, items: Iterable[Tuple[float, Callable[..., Any], tuple]]
    ) -> int:
        """Batch fire-and-forget scheduling: one C-level ``extend``.

        ``items`` yields ``(time, fn, args)`` triples (``args`` a tuple).
        This is how a whole trace's arrivals are submitted: O(n) appends
        plus a single deferred sort, instead of n heap pushes.  Returns the
        number of events scheduled.
        """
        buf = self._buffer
        seq = self._seq
        n = len(buf)
        buf.extend((t, next(seq), fn, args) for t, fn, args in items)
        added = len(buf) - n
        if added:
            t_min = min(buf[i][0] for i in range(n, len(buf)))
            if t_min < self.now:
                del buf[n:]
                raise ValueError(
                    f"cannot schedule into the past (t={t_min} < now={self.now})"
                )
            if t_min < self._bnext:
                self._bnext = t_min
        return added

    # -- queue maintenance --------------------------------------------------

    def _merge(self) -> None:
        """Fold the insertion buffer into the sorted run.

        Cuts the descending run at the buffer's maximum time, so only the
        tail that can interleave with the new entries is re-sorted; the
        far-future prefix (typically a trace's remaining arrivals) is left
        untouched.  Timsort merges the two mostly-sorted runs in near
        linear time.
        """
        s = self._sorted
        buf = self._buffer
        if s:
            bmax = max(entry[0] for entry in buf)
            cut = bisect_left(s, -bmax, key=_neg_time)
            tail = s[cut:]
            del s[cut:]
            tail.extend(buf)
            tail.sort(reverse=True)
            s.extend(tail)
        else:
            s.extend(buf)
            s.sort(reverse=True)
        buf.clear()
        self._bnext = _INF

    def _recycle(self, ev: Event) -> None:
        ev.fn = None  # type: ignore[assignment]
        ev.args = ()  # drop references; help refcounting
        free = self._free
        if len(free) < _FREE_MAX:
            free.append(ev)

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time; the clock
            is then advanced to ``until``.  ``None`` runs until the queue is
            empty.
        max_events:
            Safety valve for runaway simulations; raises ``RuntimeError``
            when exceeded.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        processed = 0
        s = self._sorted
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is None and max_events is None:
                # Tight loop for the common run-to-exhaustion case.
                while True:
                    if s:
                        if self._bnext < s[-1][0]:
                            self._merge()
                            continue
                    elif self._buffer:
                        self._merge()
                        continue
                    else:
                        break
                    entry = s.pop()
                    if len(entry) == 4:
                        self.now = entry[0]
                        entry[2](*entry[3])
                        processed += 1
                    else:
                        ev = entry[2]
                        if ev.cancelled:
                            self._recycle(ev)
                            continue
                        self.now = entry[0]
                        fn = ev.fn
                        args = ev.args
                        self._recycle(ev)
                        fn(*args)
                        processed += 1
            else:
                while True:
                    if s:
                        time = s[-1][0]
                        if self._bnext < time:
                            self._merge()
                            continue
                    elif self._buffer:
                        self._merge()
                        continue
                    else:
                        break
                    if until is not None and time > until:
                        break
                    entry = s.pop()
                    if len(entry) == 4:
                        self.now = time
                        entry[2](*entry[3])
                    else:
                        ev = entry[2]
                        if ev.cancelled:
                            self._recycle(ev)
                            continue
                        self.now = time
                        fn = ev.fn
                        args = ev.args
                        self._recycle(ev)
                        fn(*args)
                    processed += 1
                    if max_events is not None and processed > max_events:
                        raise RuntimeError(
                            f"exceeded max_events={max_events}; runaway simulation?"
                        )
        finally:
            self._running = False
            self._processed += processed
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            self.now = until
        if self.tracer is not None:
            self.tracer.record_meta("run", processed)
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if none remained."""
        s = self._sorted
        while True:
            if s:
                if self._bnext < s[-1][0]:
                    self._merge()
            elif self._buffer:
                self._merge()
            else:
                return False
            entry = s.pop()
            if len(entry) == 4:
                self.now = entry[0]
                entry[2](*entry[3])
                self._processed += 1
                return True
            ev = entry[2]
            if ev.cancelled:
                self._recycle(ev)
                continue
            self.now = entry[0]
            fn = ev.fn
            args = ev.args
            self._recycle(ev)
            fn(*args)
            self._processed += 1
            return True

    # -- introspection ------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None``."""
        if self._buffer:
            self._merge()
        s = self._sorted
        while s:
            entry = s[-1]
            if len(entry) == 3 and entry[2].cancelled:
                s.pop()
                self._recycle(entry[2])
                continue
            return entry[0]
        return None

    def iter_pending(self) -> Iterator[Tuple[float, Callable[..., Any]]]:
        """Yield ``(time, fn)`` for every not-yet-cancelled queued event.

        The supported way to inspect queued work (drain sizing, request
        conservation) without reaching into the queue internals.
        """
        for entry in self._sorted:
            if len(entry) == 4:
                yield entry[0], entry[2]
            elif not entry[2].cancelled:
                yield entry[0], entry[2].fn
        for entry in self._buffer:
            if len(entry) == 4:
                yield entry[0], entry[2]
            elif not entry[2].cancelled:
                yield entry[0], entry[2].fn

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _ in self.iter_pending())

    @property
    def processed(self) -> int:
        """Total events processed over the engine's lifetime."""
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.6f} pending={self.pending}>"
