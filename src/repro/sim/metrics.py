"""Response-time collection and the paper's stretch-factor metric.

"Given a sequence of requests with execution times d_1..d_n and their
request response times at the server site t_1..t_n, the stretch factor is
``sum(t_i / d_i) / n``."  Internet delay is excluded; response time is the
interval between arrival at the cluster and the end of processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.sim.process import SimProcess
from repro.workload.request import RequestKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import Cluster


@dataclass(slots=True)
class ClassStats:
    """Summary statistics for one request class (or the whole run)."""

    count: int
    stretch: float
    mean_response: float
    median_response: float
    p95_response: float
    mean_demand: float
    p99_response: float = float("nan")

    @staticmethod
    def empty() -> "ClassStats":
        return ClassStats(0, float("nan"), float("nan"), float("nan"),
                          float("nan"), float("nan"))


@dataclass(slots=True)
class MetricsReport:
    """Result of one replay: overall and per-class stats plus counters."""

    overall: ClassStats
    static: ClassStats
    dynamic: ClassStats
    completed: int
    duration: float
    remote_dispatches: int
    master_dynamic: int        # dynamic requests executed on masters
    dynamic_total: int

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def master_dynamic_fraction(self) -> float:
        """Observed fraction of dynamic requests that ran on masters."""
        if self.dynamic_total == 0:
            return 0.0
        return self.master_dynamic / self.dynamic_total


class MetricsCollector:
    """Accumulates per-request samples during a replay.

    The record path is append-only Python lists (cheapest possible per
    completion); conversion to numpy happens lazily in :meth:`snapshot`,
    which caches the arrays until the next :meth:`record` dirties them.
    Reports, availability summaries, and ad-hoc analysis all share the one
    cached conversion instead of re-materialising the arrays per call.
    """

    __slots__ = ("arrivals", "finishes", "demands", "cpu_demands", "kinds",
                 "nodes", "remotes", "on_master", "remote_dispatches",
                 "_snapshot", "_snapshot_len")

    def __init__(self) -> None:
        self.arrivals: List[float] = []
        self.finishes: List[float] = []
        self.demands: List[float] = []
        #: CPU share of each demand (io = demand - cpu); the control
        #: plane's workload estimator derives the RSRC weight ``w`` from
        #: this split.  Not part of :meth:`snapshot` — reports don't use
        #: it.
        self.cpu_demands: List[float] = []
        self.kinds: List[int] = []
        self.nodes: List[int] = []
        self.remotes: List[bool] = []
        self.on_master: List[bool] = []
        self.remote_dispatches = 0
        self._snapshot: Optional[tuple] = None
        self._snapshot_len = -1

    def record(self, proc: SimProcess, remote: bool, on_master: bool) -> None:
        """Append one completed request's sample."""
        req = proc.request
        self.arrivals.append(req.arrival_time)
        self.finishes.append(proc.finish_time)
        self.demands.append(req.demand)
        self.cpu_demands.append(req.cpu_demand)
        self.kinds.append(int(req.kind))
        self.nodes.append(proc.node_id)
        self.remotes.append(remote)
        self.on_master.append(on_master)
        if remote:
            self.remote_dispatches += 1

    def __len__(self) -> int:
        return len(self.arrivals)

    # -- reporting --------------------------------------------------------------

    def snapshot(self) -> tuple:
        """``(arrivals, finishes, demands, kinds, remotes, on_master)`` as
        numpy arrays, cached until new samples arrive."""
        n = len(self.arrivals)
        if self._snapshot is None or self._snapshot_len != n:
            self._snapshot = (
                np.asarray(self.arrivals),
                np.asarray(self.finishes),
                np.asarray(self.demands),
                np.asarray(self.kinds),
                np.asarray(self.remotes, dtype=bool),
                np.asarray(self.on_master, dtype=bool),
            )
            self._snapshot_len = n
        return self._snapshot

    def report(self, warmup: float = 0.0, cutoff: Optional[float] = None) -> MetricsReport:
        """Summarise completed requests.

        Parameters
        ----------
        warmup:
            Ignore requests that *arrived* before this virtual time
            (queue-fill transient).
        cutoff:
            Ignore requests that arrived after this time (drain transient).
        """
        arr, fin, dem, kin, rem, mas = self.snapshot()

        mask = arr >= warmup
        if cutoff is not None:
            mask &= arr <= cutoff
        arr, fin, dem, kin = arr[mask], fin[mask], dem[mask], kin[mask]
        rem, mas = rem[mask], mas[mask]

        resp = fin - arr
        dyn_mask = kin == int(RequestKind.DYNAMIC)

        def stats(sel: np.ndarray) -> ClassStats:
            count = int(sel.sum())
            if count == 0:
                return ClassStats.empty()
            r, d = resp[sel], dem[sel]
            # One partition pass for all three quantiles (vs three sorts).
            median, p95, p99 = np.percentile(r, (50.0, 95.0, 99.0))
            return ClassStats(
                count=count,
                stretch=float(np.mean(r / d)),
                mean_response=float(r.mean()),
                median_response=float(median),
                p95_response=float(p95),
                mean_demand=float(d.mean()),
                p99_response=float(p99),
            )

        all_mask = np.ones(len(resp), dtype=bool)
        duration = float(fin.max() - arr.min()) if len(resp) else 0.0
        return MetricsReport(
            overall=stats(all_mask),
            static=stats(~dyn_mask),
            dynamic=stats(dyn_mask),
            completed=int(len(resp)),
            duration=duration,
            remote_dispatches=int(rem.sum()),
            master_dynamic=int((dyn_mask & mas).sum()),
            dynamic_total=int(dyn_mask.sum()),
        )


@dataclass(slots=True)
class AvailabilityReport:
    """Availability-centric summary of one run.

    Unlike :class:`MetricsReport` (response-time quality of *completed*
    requests), this accounts for the requests that did **not** complete:
    drops by reason, retries, SLO violations, and how much of the horizon
    each node spent out of service.  It is built from the cluster's own
    counters, so it works identically for seed-behaviour clusters and
    clusters running the resilience layer.
    """

    horizon: float
    submitted: int
    completed: int
    #: Drops by reason (empty when no resilience layer is armed).
    dropped: Dict[str, int]
    #: Requests lost outright (crash, no restart, no resilience layer).
    lost: int
    retries: int
    timeouts: int
    #: Completions within the stretch SLO.
    good: int
    slo_violations: int
    slo_stretch: float
    p99_stretch: float
    #: Per-node fraction of the horizon spent out of service.
    unavailability: np.ndarray
    #: ``conservation()['balance']`` at report time (0 = no request lost).
    balance: int

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    @property
    def goodput(self) -> float:
        """SLO-satisfying completions per second of horizon."""
        return self.good / self.horizon if self.horizon > 0 else 0.0

    @property
    def throughput(self) -> float:
        return self.completed / self.horizon if self.horizon > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        if self.submitted == 0:
            return 0.0
        return (self.total_dropped + self.lost) / self.submitted

    @property
    def mean_unavailability(self) -> float:
        return float(self.unavailability.mean()) \
            if len(self.unavailability) else 0.0

    @staticmethod
    def from_cluster(cluster: "Cluster", horizon: float,
                     slo_stretch: float) -> "AvailabilityReport":
        col = cluster.metrics
        arr, fin, dem, _, _, _ = col.snapshot()
        if len(arr):
            stretch = (fin - arr) / dem
            good = int((stretch <= slo_stretch).sum())
            violations = int(len(stretch) - good)
            p99 = float(np.percentile(stretch, 99))
        else:
            good, violations, p99 = 0, 0, float("nan")
        mgr = cluster.resilience
        return AvailabilityReport(
            horizon=horizon,
            submitted=cluster.submitted,
            completed=len(col),
            dropped=dict(mgr.drops) if mgr is not None else {},
            lost=cluster.lost_requests,
            retries=mgr.retries if mgr is not None else 0,
            timeouts=mgr.timeouts if mgr is not None else 0,
            good=good,
            slo_violations=violations,
            slo_stretch=slo_stretch,
            p99_stretch=p99,
            unavailability=cluster.unavailability(horizon),
            balance=cluster.conservation()["balance"],
        )


# Canonical definition lives in the core package; re-exported here for
# convenience when working with replay outputs.
from repro.core.stretch import stretch_factor  # noqa: E402,F401
