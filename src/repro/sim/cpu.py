"""BSD-4.3-flavoured CPU scheduler (one CPU per node).

Implements the paper's description of its simulator: "CPU scheduling is
based on the UNIX BSD 4.3 strategy.  The process ready queue is a multilevel
feedback queue divided into multiple lists according to process priority.
Processes are scheduled based on priority and may be preempted following
quantum expiration."

Mechanics
---------
* 32 priority levels (configurable); level 0 is best.
* A process's level is ``min(levels-1, decayed_cpu_usage / usage_per_level)``
  — CPU hogs sink, interactive/short processes stay on top.  This is the
  classic ``p_usrpri = PUSER + p_cpu/4`` rule with constants folded.
* The usage accumulator decays multiplicatively once per priority-update
  period (100 ms).  Decay is applied lazily from timestamps instead of with
  a periodic event, which is mathematically identical and far cheaper.
* Quantum expiry requeues the process at its (worse) current level.
* A waking process with a strictly better level preempts the running one
  (BSD preempts on return from the wakeup's interrupt).
* Every switch to a different process than the one last on the CPU is
  charged the context-switch overhead.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.obs.trace import CPU_OFF, CPU_ON
from repro.sim.config import CPUConfig
from repro.sim.engine import Engine
from repro.sim.process import ProcState, SimProcess

_EPS = 1e-12


class CPU:
    """Preemptive multilevel-feedback-queue CPU for one node.

    Parameters
    ----------
    engine:
        Shared event engine.
    cfg:
        Scheduler constants.
    on_burst_done:
        Callback ``fn(proc)`` invoked when a process finishes its current
        CPU burst (the node then routes it to the disk or to completion).
    """

    __slots__ = (
        "engine", "cfg", "on_burst_done", "queues", "current",
        "_last_proc", "busy_time", "_slice_start", "_slice_overhead",
        "_slice_len", "_dispatching", "switches", "preemptions",
        "_occupied", "_slice_cb", "_tracer",
    )

    def __init__(self, engine: Engine, cfg: CPUConfig,
                 on_burst_done: Callable[[SimProcess], None]):
        self.engine = engine
        self.cfg = cfg
        self.on_burst_done = on_burst_done
        self.queues: list[deque[SimProcess]] = [deque() for _ in range(cfg.num_queues)]
        self.current: Optional[SimProcess] = None
        self._last_proc: Optional[SimProcess] = None
        self.busy_time = 0.0      # cumulative busy (work + switch overhead)
        self._slice_start = 0.0
        self._slice_overhead = 0.0
        self._slice_len = 0.0
        self._dispatching = False
        self.switches = 0
        self.preemptions = 0
        # Bitmask of non-empty run-queue levels: bit i set <=> queues[i]
        # holds at least one process.  Lets dispatch find the best level
        # with one bit trick instead of scanning 32 deques.
        self._occupied = 0
        # Cached bound callback: scheduled once per slice, which makes it
        # the single most-scheduled callable in the simulator.
        self._slice_cb = self._on_slice_end
        #: Observability tap (set by the cluster; ``None`` = disabled).
        self._tracer = None

    # -- priority bookkeeping ------------------------------------------------

    def _decay_usage(self, proc: SimProcess, now: float) -> None:
        period = self.cfg.priority_update_period
        elapsed = now - proc.usage_stamp
        if elapsed < period:
            return
        periods = int(elapsed / period)
        proc.cpu_usage *= self.cfg.usage_decay ** periods
        proc.usage_stamp += periods * period

    def _level(self, proc: SimProcess, now: float) -> int:
        self._decay_usage(proc, now)
        level = int(proc.cpu_usage / self.cfg.usage_per_level)
        top = self.cfg.num_queues - 1
        return top if level > top else level

    # -- public interface ----------------------------------------------------

    def make_runnable(self, proc: SimProcess) -> None:
        """Add a process to the run queue; may preempt the running one."""
        now = self.engine.now
        level = self._level(proc, now)
        proc.priority = level
        proc.state = ProcState.READY
        self.queues[level].append(proc)
        self._occupied |= 1 << level

        if self.current is None:
            if not self._dispatching:
                self._dispatch()
        elif level < self.current.priority:
            self._preempt()

    @property
    def runnable(self) -> int:
        """Processes ready or running (the node's CPU queue length)."""
        n = sum(len(q) for q in self.queues)
        return n + (1 if self.current is not None else 0)

    def abort_all(self) -> None:
        """Drop every queued and running process (node failure)."""
        if self.current is not None:
            if self.current.slice_event is not None:
                self.current.slice_event.cancel()
                self.current.slice_event = None
            if self._tracer is not None:
                self._tracer.record(CPU_OFF, self.current.request.req_id,
                                    self.current.node_id)
        self.current = None
        for queue in self.queues:
            queue.clear()
        self._occupied = 0
        self._last_proc = None

    def abort(self, proc: SimProcess) -> bool:
        """Drop one process (request deadline/cancellation).

        Returns ``True`` if the process was running or queued here.  The
        partial slice of a running victim is not charged — the same
        approximation :meth:`abort_all` makes for crashes.
        """
        if self.current is proc:
            if proc.slice_event is not None:
                proc.slice_event.cancel()
                proc.slice_event = None
            if self._tracer is not None:
                self._tracer.record(CPU_OFF, proc.request.req_id,
                                    proc.node_id)
            self.current = None
            if not self._dispatching:
                self._dispatch()
            return True
        for level, queue in enumerate(self.queues):
            try:
                queue.remove(proc)
            except ValueError:
                continue
            if not queue:
                self._occupied &= ~(1 << level)
            return True
        return False

    # -- internals -----------------------------------------------------------

    def _preempt(self) -> None:
        """Stop the current slice early and put the process back to READY."""
        proc = self.current
        assert proc is not None
        now = self.engine.now
        if proc.slice_event is not None:
            proc.slice_event.cancel()
            proc.slice_event = None
        if self._tracer is not None:
            self._tracer.record(CPU_OFF, proc.request.req_id, proc.node_id)
        work_start = self._slice_start + self._slice_overhead
        work_done = max(0.0, now - work_start)
        self._account(proc, now - self._slice_start, work_done)
        self.preemptions += 1
        self.current = None
        proc.state = ProcState.READY
        if proc.burst_remaining <= _EPS:
            # The burst happened to finish exactly at the preemption point.
            self._finish_burst(proc)
        else:
            level = self._level(proc, now)
            proc.priority = level
            self.queues[level].append(proc)
            self._occupied |= 1 << level
        if self.current is None and not self._dispatching:
            self._dispatch()

    def _account(self, proc: SimProcess, wall: float, work: float) -> None:
        """Charge a (partial) slice against the process and the CPU."""
        self.busy_time += wall
        proc.cpu_time_used += work
        self._decay_usage(proc, self.engine.now)
        proc.cpu_usage += work
        proc.burst_remaining -= work
        self._last_proc = proc

    def _dispatch(self) -> None:
        """Put the best-priority ready process on the CPU."""
        self._dispatching = True
        try:
            occupied = self._occupied
            if not occupied:
                return
            level = (occupied & -occupied).bit_length() - 1
            queue = self.queues[level]
            proc = queue.popleft()
            proc.priority = level
            if not queue:
                self._occupied = occupied & ~(1 << level)
            now = self.engine.now
            overhead = (
                self.cfg.context_switch_overhead
                if proc is not self._last_proc
                else 0.0
            )
            if overhead:
                self.switches += 1
            slice_len = min(self.cfg.quantum, proc.burst_remaining)
            self.current = proc
            proc.state = ProcState.RUNNING
            self._slice_start = now
            self._slice_overhead = overhead
            self._slice_len = slice_len
            proc.slice_event = self.engine.schedule(
                overhead + slice_len, self._slice_cb, proc
            )
            if self._tracer is not None:
                self._tracer.record(CPU_ON, proc.request.req_id,
                                    proc.node_id)
        finally:
            self._dispatching = False

    def _on_slice_end(self, proc: SimProcess) -> None:
        assert proc is self.current
        proc.slice_event = None
        if self._tracer is not None:
            self._tracer.record(CPU_OFF, proc.request.req_id, proc.node_id)
        self._account(proc, self._slice_overhead + self._slice_len, self._slice_len)
        self.current = None
        if proc.burst_remaining <= _EPS:
            self._finish_burst(proc)
        else:
            # Quantum expiry: requeue at the (now worse) level.
            now = self.engine.now
            level = self._level(proc, now)
            proc.priority = level
            proc.state = ProcState.READY
            self.queues[level].append(proc)
            self._occupied |= 1 << level
        if self.current is None and not self._dispatching:
            self._dispatch()

    def _finish_burst(self, proc: SimProcess) -> None:
        proc.burst_remaining = 0.0
        self.on_burst_done(proc)
