"""Failure injection and dynamic node recruitment.

The paper motivates the master/slave architecture with exactly these two
operational properties (Sections 1-2):

* **Failure masking** — "hiding server failures is critical"; slaves can
  die and masters restart their dynamic work elsewhere, while a DNS-based
  flat cluster keeps sending clients to dead IPs.
* **Dynamic resource recruitment** — "neither DNS nor switch based
  solutions provide a convenient way to dynamically recruit idle resources
  in handling peak load"; non-dedicated machines can join the slave pool
  when idle and leave when reclaimed.

This module provides the scenario drivers; the mechanics (aborting
in-flight work, restarting requests, alive-set routing) live in
:mod:`repro.sim.cluster` and :mod:`repro.sim.node`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import Cluster


@dataclass(slots=True)
class FailurePolicy:
    """How the cluster reacts to crashes and mis-routed requests."""

    #: Time for masters / the switch to notice a crash and restart the
    #: victim's in-flight dynamic requests elsewhere (sub-second detection,
    #: as the paper credits load-balancing switches with).
    detection_delay: float = 0.5
    #: Client-side retry timeout when an unaware front end (DNS rotation
    #: with cached IPs) sends a request to a dead node.  Era-typical TCP
    #: connect retry.
    client_retry_timeout: float = 3.0
    #: Whether aborted in-flight requests are restarted at all (masters do
    #: this for slaves; a flat cluster relies on the client).
    restart_inflight: bool = True
    #: How membership learns about crashes.  ``"switch"``: the front end
    #: notices instantly (a connection-counting switch sees the dead TCP
    #: endpoint) and only in-flight restarts wait ``detection_delay``.
    #: ``"monitor"``: routing keeps targeting the corpse until
    #: ``detection_delay`` elapses — the realistic window that the
    #: suspicion layer (see :mod:`repro.sim.monitor`) exists to close.
    detection_mode: str = "switch"

    def validate(self) -> None:
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be >= 0")
        if self.client_retry_timeout <= 0:
            raise ValueError("client_retry_timeout must be positive")
        if self.detection_mode not in ("switch", "monitor"):
            raise ValueError(
                f"detection_mode must be 'switch' or 'monitor', "
                f"got {self.detection_mode!r}")


class FailureInjector:
    """Schedules crash/recovery events against a cluster.

    >>> from repro.core.policies import FlatPolicy
    >>> from repro.sim.cluster import Cluster
    >>> from repro.sim.config import SimConfig
    >>> cluster = Cluster(SimConfig(num_nodes=4), FlatPolicy(4))
    >>> injector = FailureInjector(cluster)
    >>> injector.crash(node_id=1, at=10.0, duration=30.0)
    >>> injector.scheduled
    [(10.0, 1, 30.0)]
    >>> cluster.run(until=15.0) > 0
    True
    >>> bool(cluster.alive[1])
    False
    >>> cluster.run(until=45.0) > 0
    True
    >>> bool(cluster.alive[1])
    True
    """

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.scheduled: List[Tuple[float, int, Optional[float]]] = []

    def crash(self, node_id: int, at: float,
              duration: Optional[float] = None) -> None:
        """Crash ``node_id`` at virtual time ``at``; recover after
        ``duration`` seconds (``None`` = stays dead)."""
        if at < self.cluster.engine.now:
            raise ValueError("cannot schedule a crash in the past")
        self.cluster.engine.schedule_at(
            at, self.cluster.fail_node, node_id)
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be positive")
            self.cluster.engine.schedule_at(
                at + duration, self.cluster.recover_node, node_id)
        self.scheduled.append((at, node_id, duration))

    def random_crashes(self, rate: float, horizon: float,
                       mttr: float, rng: np.random.Generator,
                       nodes: Optional[Sequence[int]] = None) -> int:
        """Poisson crash arrivals over ``[now, horizon]``.

        Each crash picks a uniform victim and repairs after an exponential
        time with mean ``mttr``.  Returns the number of crashes scheduled.
        """
        if rate < 0 or mttr <= 0:
            raise ValueError("rate must be >= 0 and mttr positive")
        pool = list(nodes) if nodes is not None \
            else list(range(self.cluster.cfg.num_nodes))
        t = self.cluster.engine.now
        n = 0
        while True:
            t += rng.exponential(1.0 / rate) if rate > 0 else float("inf")
            if t > horizon:
                break
            victim = int(pool[rng.integers(len(pool))])
            self.crash(victim, at=t, duration=float(rng.exponential(mttr)))
            n += 1
        return n


class RecruitmentSchedule:
    """Drives a pool of non-dedicated nodes joining/leaving the cluster.

    Recruited nodes are ordinary cluster nodes that start *out of service*
    (standby) and are brought in when their owners go idle — the
    "dynamically recruit idle resources in handling peak load" scenario.
    Policies see them through the alive set like any other node.
    """

    def __init__(self, cluster: "Cluster", pool: Sequence[int]):
        ids = list(pool)
        if not ids:
            raise ValueError("recruitment pool is empty")
        if not all(0 <= i < cluster.cfg.num_nodes for i in ids):
            raise ValueError("pool node ids out of range")
        self.cluster = cluster
        self.pool = ids
        # Standby nodes start out of service.
        for node_id in ids:
            cluster.retire_node(node_id)

    def join(self, node_id: int, at: float) -> None:
        """Bring a pool node into service at virtual time ``at``."""
        self._check(node_id)
        self.cluster.engine.schedule_at(at, self.cluster.recover_node,
                                        node_id)

    def leave(self, node_id: int, at: float,
              graceful: bool = False) -> None:
        """Reclaim a pool node at virtual time ``at``.

        ``graceful=False`` (the default, matching an owner pulling the
        plug) evicts immediately: in-flight work is aborted and restarted
        elsewhere like a crash.  ``graceful=True`` drains instead — the
        node stops accepting new work, finishes what it has, then retires
        (see :meth:`repro.sim.cluster.Cluster.drain_node`).
        """
        self._check(node_id)
        action = (self.cluster.drain_node if graceful
                  else self.cluster.fail_node)
        self.cluster.engine.schedule_at(at, action, node_id)

    def join_all(self, at: float) -> None:
        for node_id in self.pool:
            self.join(node_id, at)

    def _check(self, node_id: int) -> None:
        if node_id not in self.pool:
            raise ValueError(f"node {node_id} is not in the recruitment pool")


# -- reproducible chaos scenarios -----------------------------------------------------


@dataclass(slots=True)
class ChaosScenario:
    """A named, reproducible composition of failure modes.

    A scenario bundles three independent stressors; zeros disable each:

    * a Poisson **crash storm** (``crash_rate`` crashes/s, exponential
      repair with mean ``crash_mttr``);
    * **recruitment churn** — every ``churn_period`` seconds a rotating
      ``churn_fraction`` of the slave tier is reclaimed (gracefully
      drained or yanked) and rejoins half a period later;
    * a **blackout** — ``blackout_fraction`` of the slave tier crashes
      simultaneously at ``blackout_at`` for ``blackout_duration``.

    The **overload burst** (``burst_factor``/``burst_start_frac``/
    ``burst_duration_frac``) describes extra *workload*, not failures; the
    experiment harness (:func:`repro.analysis.experiments.run_chaos`)
    consumes it when generating the trace.

    :meth:`apply` only schedules events — identical inputs (scenario,
    cluster seed, rng seed, horizon) replay identically.
    """

    name: str
    description: str = ""
    crash_rate: float = 0.0
    crash_mttr: float = 15.0
    #: Crash storms normally spare the master tier (operators protect the
    #: acceptors); set True to include masters in the victim pool.
    crash_masters: bool = False
    churn_fraction: float = 0.0
    churn_period: float = 0.0
    churn_graceful: bool = True
    blackout_at: Optional[float] = None
    blackout_duration: float = 10.0
    blackout_fraction: float = 0.5
    burst_factor: float = 1.0
    burst_start_frac: float = 0.3
    burst_duration_frac: float = 0.3

    def validate(self) -> None:
        if self.crash_rate < 0 or self.crash_mttr <= 0:
            raise ValueError("crash_rate must be >= 0 and crash_mttr > 0")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ValueError("churn_fraction must be in [0, 1]")
        if self.churn_fraction > 0 and self.churn_period <= 0:
            raise ValueError("churn needs a positive churn_period")
        if self.blackout_at is not None:
            if self.blackout_at < 0 or self.blackout_duration <= 0:
                raise ValueError("blackout window must be non-negative "
                                 "with positive duration")
            if not 0.0 < self.blackout_fraction <= 1.0:
                raise ValueError("blackout_fraction must be in (0, 1]")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not (0.0 <= self.burst_start_frac <= 1.0
                and 0.0 <= self.burst_duration_frac <= 1.0):
            raise ValueError("burst window fractions must be in [0, 1]")

    def apply(self, cluster: "Cluster", horizon: float,
              rng: np.random.Generator) -> FailureInjector:
        """Schedule every failure event over ``[now, horizon]``."""
        self.validate()
        injector = FailureInjector(cluster)
        n = cluster.cfg.num_nodes
        masters = set(cluster.policy.master_ids)
        slaves = [i for i in range(n) if i not in masters] or list(range(n))
        if self.crash_rate > 0:
            pool = list(range(n)) if self.crash_masters else slaves
            injector.random_crashes(self.crash_rate, horizon,
                                    self.crash_mttr, rng, nodes=pool)
        if self.churn_fraction > 0 and self.churn_period > 0:
            k = max(1, int(round(self.churn_fraction * len(slaves))))
            down = self.churn_period / 2.0
            t = self.churn_period
            idx = 0
            while t + down < horizon:
                for j in range(k):
                    victim = slaves[(idx + j) % len(slaves)]
                    action = (cluster.drain_node if self.churn_graceful
                              else cluster.fail_node)
                    cluster.engine.schedule_at(t, action, victim)
                    cluster.engine.schedule_at(t + down,
                                               cluster.recover_node, victim)
                idx = (idx + k) % len(slaves)
                t += self.churn_period
        if self.blackout_at is not None and self.blackout_at < horizon:
            m = max(1, int(round(self.blackout_fraction * len(slaves))))
            victims = rng.choice(len(slaves), size=m, replace=False)
            for v in victims:
                injector.crash(slaves[int(v)], at=self.blackout_at,
                               duration=self.blackout_duration)
        return injector

    def burst_window(self, duration: float) -> Tuple[float, float]:
        """The burst's absolute ``(start, end)`` within a trace."""
        start = self.burst_start_frac * duration
        return start, start + self.burst_duration_frac * duration


#: Named scenarios for experiments/CLI — compositions of crash storms,
#: recruitment churn, blackouts, and overload bursts.
CHAOS_SCENARIOS = {
    "crash-storm": ChaosScenario(
        name="crash-storm",
        description="Poisson slave crashes, exponential repair",
        crash_rate=0.08, crash_mttr=12.0),
    "recruitment-churn": ChaosScenario(
        name="recruitment-churn",
        description="a quarter of the slave tier cycles out every 20 s",
        churn_fraction=0.25, churn_period=20.0, churn_graceful=True),
    "overload-burst": ChaosScenario(
        name="overload-burst",
        description="3x arrival-rate burst over the middle of the run",
        burst_factor=3.0, burst_start_frac=0.3, burst_duration_frac=0.3),
    "storm-burst": ChaosScenario(
        name="storm-burst",
        description="crash storm and overload burst together",
        crash_rate=0.06, crash_mttr=12.0,
        burst_factor=2.5, burst_start_frac=0.3, burst_duration_frac=0.3),
    "blackout": ChaosScenario(
        name="blackout",
        description="half the slave tier crashes at once mid-run",
        blackout_at=30.0, blackout_duration=15.0, blackout_fraction=0.5),
}
