"""Failure injection and dynamic node recruitment.

The paper motivates the master/slave architecture with exactly these two
operational properties (Sections 1-2):

* **Failure masking** — "hiding server failures is critical"; slaves can
  die and masters restart their dynamic work elsewhere, while a DNS-based
  flat cluster keeps sending clients to dead IPs.
* **Dynamic resource recruitment** — "neither DNS nor switch based
  solutions provide a convenient way to dynamically recruit idle resources
  in handling peak load"; non-dedicated machines can join the slave pool
  when idle and leave when reclaimed.

This module provides the scenario drivers; the mechanics (aborting
in-flight work, restarting requests, alive-set routing) live in
:mod:`repro.sim.cluster` and :mod:`repro.sim.node`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import Cluster


@dataclass(slots=True)
class FailurePolicy:
    """How the cluster reacts to crashes and mis-routed requests."""

    #: Time for masters / the switch to notice a crash and restart the
    #: victim's in-flight dynamic requests elsewhere (sub-second detection,
    #: as the paper credits load-balancing switches with).
    detection_delay: float = 0.5
    #: Client-side retry timeout when an unaware front end (DNS rotation
    #: with cached IPs) sends a request to a dead node.  Era-typical TCP
    #: connect retry.
    client_retry_timeout: float = 3.0
    #: Whether aborted in-flight requests are restarted at all (masters do
    #: this for slaves; a flat cluster relies on the client).
    restart_inflight: bool = True

    def validate(self) -> None:
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be >= 0")
        if self.client_retry_timeout <= 0:
            raise ValueError("client_retry_timeout must be positive")


class FailureInjector:
    """Schedules crash/recovery events against a cluster.

    >>> # injector = FailureInjector(cluster)
    >>> # injector.crash(node_id=5, at=10.0, duration=30.0)
    """

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.scheduled: List[Tuple[float, int, Optional[float]]] = []

    def crash(self, node_id: int, at: float,
              duration: Optional[float] = None) -> None:
        """Crash ``node_id`` at virtual time ``at``; recover after
        ``duration`` seconds (``None`` = stays dead)."""
        if at < self.cluster.engine.now:
            raise ValueError("cannot schedule a crash in the past")
        self.cluster.engine.schedule_at(
            at, self.cluster.fail_node, node_id)
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be positive")
            self.cluster.engine.schedule_at(
                at + duration, self.cluster.recover_node, node_id)
        self.scheduled.append((at, node_id, duration))

    def random_crashes(self, rate: float, horizon: float,
                       mttr: float, rng: np.random.Generator,
                       nodes: Optional[Sequence[int]] = None) -> int:
        """Poisson crash arrivals over ``[now, horizon]``.

        Each crash picks a uniform victim and repairs after an exponential
        time with mean ``mttr``.  Returns the number of crashes scheduled.
        """
        if rate < 0 or mttr <= 0:
            raise ValueError("rate must be >= 0 and mttr positive")
        pool = list(nodes) if nodes is not None \
            else list(range(self.cluster.cfg.num_nodes))
        t = self.cluster.engine.now
        n = 0
        while True:
            t += rng.exponential(1.0 / rate) if rate > 0 else float("inf")
            if t > horizon:
                break
            victim = int(pool[rng.integers(len(pool))])
            self.crash(victim, at=t, duration=float(rng.exponential(mttr)))
            n += 1
        return n


class RecruitmentSchedule:
    """Drives a pool of non-dedicated nodes joining/leaving the cluster.

    Recruited nodes are ordinary cluster nodes that start *out of service*
    (standby) and are brought in when their owners go idle — the
    "dynamically recruit idle resources in handling peak load" scenario.
    Policies see them through the alive set like any other node.
    """

    def __init__(self, cluster: "Cluster", pool: Sequence[int]):
        ids = list(pool)
        if not ids:
            raise ValueError("recruitment pool is empty")
        if not all(0 <= i < cluster.cfg.num_nodes for i in ids):
            raise ValueError("pool node ids out of range")
        self.cluster = cluster
        self.pool = ids
        # Standby nodes start out of service.
        for node_id in ids:
            cluster.retire_node(node_id)

    def join(self, node_id: int, at: float) -> None:
        """Bring a pool node into service at virtual time ``at``."""
        self._check(node_id)
        self.cluster.engine.schedule_at(at, self.cluster.recover_node,
                                        node_id)

    def leave(self, node_id: int, at: float) -> None:
        """Reclaim a pool node (graceful: in-flight work is restarted
        elsewhere like a crash, since its owner wants it back)."""
        self._check(node_id)
        self.cluster.engine.schedule_at(at, self.cluster.fail_node, node_id)

    def join_all(self, at: float) -> None:
        for node_id in self.pool:
            self.join(node_id, at)

    def _check(self, node_id: int) -> None:
        if node_id not in self.pool:
            raise ValueError(f"node {node_id} is not in the recruitment pool")
