"""Trace-driven cluster simulator (event kernel + OS substrates)."""
