"""Cluster assembly: nodes + load monitor + dispatch policy + metrics.

The cluster plays the role of the paper's front end (load-balancing switch
or DNS plus the master-level acceptors).  Every arriving request is routed
by the configured :class:`~repro.core.policies.Policy`; a request executed
on a node other than the one that accepted it pays the remote-CGI network
latency before admission.

Optional subsystems, both off by default so the seed behaviour is exact:

* a :class:`~repro.sim.failures.FailurePolicy` controls crash semantics
  (detection mode/delay, restart-vs-lose);
* a :class:`~repro.sim.resilience.ResilienceConfig` arms the end-to-end
  resilience layer (per-attempt deadlines, bounded retries with backoff,
  overload shedding, drop accounting).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.policies import Policy, Route
from repro.obs.trace import (
    ABORT,
    ARRIVE,
    BG_ADMIT,
    COMPLETE,
    DENY,
    DISPATCH,
    LOST,
    NODE_DRAIN,
    NODE_FAIL,
    NODE_RECOVER,
    NODE_RETIRE,
    Tracer,
)
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.failures import FailurePolicy
from repro.sim.metrics import (
    AvailabilityReport,
    MetricsCollector,
    MetricsReport,
)
from repro.sim.monitor import LoadMonitor
from repro.sim.node import Node
from repro.sim.process import SimProcess
from repro.sim.resilience import ResilienceConfig, ResilienceManager
from repro.workload.request import Request


class ClusterView:
    """The load information a scheduler is allowed to see.

    Values come from the periodic :class:`LoadMonitor`, so they are stale by
    up to one monitoring period — as they would be when polling ``rstat()``.
    The *suspicion* flags are part of the view: nodes whose probes fail or
    whose samples are stale are excluded from candidate sets by policies
    before the crash is formally detected (see :meth:`healthy_array`).
    """

    __slots__ = ("_cluster",)

    def __init__(self, cluster: "Cluster"):
        self._cluster = cluster

    @property
    def num_nodes(self) -> int:
        return self._cluster.cfg.num_nodes

    @property
    def now(self) -> float:
        return self._cluster.engine.now

    def cpu_idle(self, node_id: int) -> float:
        return float(self._cluster.monitor.cpu_idle[node_id])

    def disk_avail(self, node_id: int) -> float:
        return float(self._cluster.monitor.disk_avail[node_id])

    def cpu_idle_array(self) -> np.ndarray:
        """Read-only snapshot array (do not mutate)."""
        return self._cluster.monitor.cpu_idle

    def disk_avail_array(self) -> np.ndarray:
        """Read-only snapshot array (do not mutate)."""
        return self._cluster.monitor.disk_avail

    def active_requests(self, node_id: int) -> int:
        """Instantaneous in-flight count — used only by baseline policies
        that model a connection-counting switch."""
        return self._cluster.nodes[node_id].active

    def is_alive(self, node_id: int) -> bool:
        return bool(self._cluster.alive[node_id])

    def all_alive(self) -> bool:
        """O(1) fast path: no node is out of service."""
        return self._cluster.alive_count == self._cluster.cfg.num_nodes

    def alive_array(self) -> np.ndarray:
        """Read-only membership snapshot (do not mutate)."""
        return self._cluster.alive

    # -- suspicion -------------------------------------------------------------

    def is_suspect(self, node_id: int) -> bool:
        return bool(self._cluster.monitor.suspect[node_id])

    def suspect_array(self) -> np.ndarray:
        """Read-only suspicion snapshot (do not mutate)."""
        return self._cluster.monitor.suspect

    def all_healthy(self) -> bool:
        """O(1) fast path: every node is in service and trusted."""
        return self.all_alive() and not self._cluster.monitor.any_suspect

    def healthy_array(self) -> np.ndarray:
        """In-service AND not-suspect membership (fresh array)."""
        return self._cluster.alive & ~self._cluster.monitor.suspect


class Cluster:
    """A simulated Web-server cluster with a pluggable dispatch policy.

    Optional failure semantics (crashes, recruitment) are controlled by a
    :class:`~repro.sim.failures.FailurePolicy`; by default all nodes are
    alive for the whole run and none of the failure paths fire.  Passing a
    :class:`~repro.sim.resilience.ResilienceConfig` arms deadlines, bounded
    retries, and overload shedding on the request path.
    """

    def __init__(self, cfg: SimConfig, policy: Policy,
                 failure_policy: Optional[FailurePolicy] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 tracer: Optional[Tracer] = None):
        cfg.validate()
        if policy.num_nodes != cfg.num_nodes:
            raise ValueError(
                f"policy is sized for {policy.num_nodes} nodes but the "
                f"cluster has {cfg.num_nodes}"
            )
        self.cfg = cfg
        self.policy = policy
        self.engine = Engine()
        seeds = np.random.SeedSequence(cfg.seed).spawn(cfg.num_nodes)
        self.nodes = [
            Node(self.engine, cfg, i, np.random.default_rng(seeds[i]),
                 self._on_complete)
            for i in range(cfg.num_nodes)
        ]
        self.monitor = LoadMonitor(self.engine, cfg.monitor, self.nodes)
        self.monitor.start()
        self.metrics = MetricsCollector()
        self.view = ClusterView(self)
        #: Route per in-flight request, keyed by req_id (a request may sit
        #: in a node's listen backlog before any process exists for it).
        self._routes: Dict[int, Route] = {}
        self._background_ids: set[int] = set()
        #: Bound callbacks cached once: the request path schedules these on
        #: every arrival/hop, and attribute access would otherwise build a
        #: fresh bound-method object per event.
        self._arrive_cb = self._arrive
        self._admit_cb = self._admit
        self.submitted = 0
        self.background_completed = 0
        self.failure_policy = failure_policy or FailurePolicy()
        self.failure_policy.validate()
        self.resilience: Optional[ResilienceManager] = (
            ResilienceManager(self, resilience)
            if resilience is not None else None
        )
        #: Membership: which nodes are currently in service.
        self.alive = np.ones(cfg.num_nodes, dtype=bool)
        self.alive_count = cfg.num_nodes
        #: Nodes draining gracefully: no new work, in-flight completes.
        self._draining: set[int] = set()
        self.restarted_requests = 0
        self.denied_attempts = 0
        #: Foreground requests lost outright (crash without restart and
        #: without a resilience layer to account the drop).
        self.lost_requests = 0
        #: Per-node accumulated out-of-service time (availability metrics).
        self.downtime = np.zeros(cfg.num_nodes)
        self._down_since: Dict[int, float] = {}
        #: Observability tap (``None`` keeps every hook a no-op).
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self.engine)
            self.engine.tracer = tracer
            for node in self.nodes:
                node._tracer = tracer
                node.cpu._tracer = tracer
                node.disk._tracer = tracer
            if self.resilience is not None:
                self.resilience._tracer = tracer
            # Policies stash their per-decision verdict (w, RSRC score,
            # reservation-gate state) only when asked to.
            self.policy.trace_decisions = True

    # -- submission ---------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Schedule one request's arrival."""
        self.engine.call_at(request.arrival_time, self._arrive_cb, request)
        self.submitted += 1

    def submit_many(self, requests: Iterable[Request]) -> int:
        """Schedule a whole trace.  Returns the number of requests queued.

        Batched through :meth:`Engine.call_at_many`: one C-level extend and
        a single deferred sort instead of one queue insertion per request.
        """
        arrive = self._arrive_cb
        n = self.engine.call_at_many(
            (req.arrival_time, arrive, (req,)) for req in requests)
        self.submitted += n
        return n

    # -- arrival / completion ---------------------------------------------------

    def _arrive(self, request: Request) -> None:
        mgr = self.resilience
        tr = self.tracer
        if tr is not None:
            tr.record(ARRIVE, request.req_id, -1,
                      (int(request.kind), request.demand))
            # A cache-hit route can bypass the dynamic-dispatch path, so a
            # stale verdict from the previous request must not leak into
            # this request's dispatch span.
            self.policy.last_decision = None
        if mgr is not None and not mgr.admit(request):
            return  # shed under overload
        try:
            route = self.policy.route(request, self.view)
        except RuntimeError:
            if mgr is not None:
                # Total blackout: back off and retry against the budget.
                mgr.handle_failure(request, "no_capacity")
                return
            raise
        if not 0 <= route.node_id < self.cfg.num_nodes:
            raise ValueError(
                f"policy routed request {request.req_id} to invalid node "
                f"{route.node_id}"
            )
        if tr is not None:
            ld = self.policy.last_decision
            tr.record(DISPATCH, request.req_id, route.node_id,
                      (route.remote, self.policy.is_master(route.node_id))
                      + (ld if ld is not None
                         else (None, None, None, None, None)))
        if (not self.alive[route.node_id]
                or self.nodes[route.node_id].failed):
            # A failure-unaware front end (DNS rotation with cached IPs) or
            # an undetected crash: the client's connection attempt fails.
            self.denied_attempts += 1
            if tr is not None:
                tr.record(DENY, request.req_id, route.node_id,
                          ("dead_node",))
            if mgr is not None:
                mgr.handle_failure(request, "dead_node")
            else:
                self.engine.call_later(
                    self.failure_policy.client_retry_timeout,
                    self._arrive_cb, request)
            return
        latency = self.cfg.network.frontend_latency + route.extra_latency
        if route.remote:
            latency += self.cfg.network.remote_cgi_latency
        if latency > 0.0:
            self.engine.call_later(latency, self._admit_cb, request, route,
                                   latency)
        else:
            self._admit(request, route, 0.0)

    def _admit(self, request: Request, route: Route, latency: float) -> None:
        if not self.alive[route.node_id] or self.nodes[route.node_id].failed:
            # The node died during the dispatch hop; re-route.
            if self.tracer is not None:
                self.tracer.record(DENY, request.req_id, route.node_id,
                                   ("dead_node",))
            if self.resilience is not None:
                self.resilience.handle_failure(request, "dead_node")
            else:
                self.engine.call_later(self.failure_policy.detection_delay,
                                       self._arrive_cb, request)
            return
        executed = route.substitute if route.substitute is not None \
            else request
        self._routes[executed.req_id] = route
        self.nodes[route.node_id].admit(executed, dispatch_latency=latency)
        if self.resilience is not None:
            self.resilience.on_admitted(request)

    # -- membership -----------------------------------------------------------

    def _mark_down(self, node_id: int) -> None:
        if self.alive[node_id]:
            self.alive[node_id] = False
            self.alive_count -= 1
        self._down_since.setdefault(node_id, self.engine.now)

    def _mark_up(self, node_id: int) -> None:
        since = self._down_since.pop(node_id, None)
        if since is not None:
            self.downtime[node_id] += self.engine.now - since
        if not self.alive[node_id]:
            self.alive_count += 1
        self.alive[node_id] = True

    def _detect_failure(self, node_id: int) -> None:
        """Deferred membership update of ``detection_mode='monitor'``."""
        if self.nodes[node_id].failed:
            self._mark_down(node_id)

    def fail_node(self, node_id: int) -> int:
        """Crash a node; restart its in-flight foreground requests
        elsewhere per the failure policy.  Returns the number of requests
        restarted.  Idempotent for already-dead nodes."""
        node = self.nodes[node_id]
        if node.failed:
            return 0
        self._draining.discard(node_id)
        if self.alive[node_id]:
            if (self.failure_policy.detection_mode == "monitor"
                    and self.failure_policy.detection_delay > 0):
                # The front end keeps routing to the corpse until detection;
                # only the suspicion layer can close this window earlier.
                self._down_since.setdefault(node_id, self.engine.now)
                self.engine.schedule(self.failure_policy.detection_delay,
                                     self._detect_failure, node_id)
            else:
                self._mark_down(node_id)
        aborted, queued = node.fail()
        tr = self.tracer
        if tr is not None:
            tr.record(NODE_FAIL, -1, node_id,
                      (len(aborted) + len(queued),))
        restarted = 0
        for request in [proc.request for proc in aborted] + queued:
            if request.req_id in self._background_ids:
                self._background_ids.discard(request.req_id)
                continue
            self._routes.pop(request.req_id, None)
            if tr is not None:
                tr.record(ABORT, request.req_id, node_id, ("crash",))
            if self.resilience is not None:
                if self.resilience.on_crash_abort(request):
                    restarted += 1
            elif self.failure_policy.restart_inflight:
                self.engine.call_later(self.failure_policy.detection_delay,
                                       self._arrive_cb, request)
                restarted += 1
            else:
                self.lost_requests += 1
                if tr is not None:
                    tr.record(LOST, request.req_id, node_id)
        self.restarted_requests += restarted
        return restarted

    def recover_node(self, node_id: int) -> None:
        """Bring a crashed, drained, or standby node (back) into service."""
        self.nodes[node_id].recover()
        self._draining.discard(node_id)
        self._mark_up(node_id)
        if self.tracer is not None:
            self.tracer.record(NODE_RECOVER, -1, node_id)

    def retire_node(self, node_id: int) -> None:
        """Take an idle node out of service without the crash semantics
        (used to initialise recruitment-pool standby nodes)."""
        if self.nodes[node_id].active:
            raise RuntimeError(
                f"node {node_id} has in-flight work; use fail_node")
        self.nodes[node_id].failed = True
        self._mark_down(node_id)
        if self.tracer is not None:
            self.tracer.record(NODE_RETIRE, -1, node_id)

    def drain_node(self, node_id: int) -> int:
        """Gracefully take a node out of service: stop routing new work to
        it, let in-flight and backlogged requests finish, then retire it.

        This is the non-destructive counterpart of :meth:`fail_node` for
        recruitment reclaims and planned maintenance.  Returns the number
        of requests still draining.  Idempotent for out-of-service nodes.
        """
        node = self.nodes[node_id]
        if node.failed or node_id in self._draining:
            return 0
        self._mark_down(node_id)
        if self.tracer is not None:
            self.tracer.record(NODE_DRAIN, -1, node_id,
                               (node.active + len(node.backlog),))
        if node.active == 0 and not node.backlog:
            node.failed = True
            return 0
        self._draining.add(node_id)
        return node.active + len(node.backlog)

    def _finish_drain(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if node.active == 0 and not node.backlog:
            self._draining.discard(node_id)
            node.failed = True

    def admit_background(self, request: Request, node_id: int) -> SimProcess:
        """Run a request on a node *outside* the measured workload.

        Background jobs consume CPU, disk and memory like any process but
        are excluded from metrics and policy feedback.  The testbed
        emulator uses this to model the "background jobs running in the
        cluster" that the paper cites as the gap between its simulator and
        the real Sun cluster.
        """
        if not 0 <= node_id < self.cfg.num_nodes:
            raise ValueError(f"invalid node {node_id}")
        self._background_ids.add(request.req_id)
        if self.tracer is not None:
            # Marked before the node's admit span so the auditor can
            # exclude the request from foreground lifecycle checks.
            self.tracer.record(BG_ADMIT, request.req_id, node_id)
        return self.nodes[node_id].admit(request)

    def _on_complete(self, node: Node, proc: SimProcess) -> None:
        req_id = proc.request.req_id
        if node.node_id in self._draining:
            self._finish_drain(node.node_id)
        if req_id in self._background_ids:
            self._background_ids.discard(req_id)
            self.background_completed += 1
            return
        route = self._routes.pop(req_id)
        on_master = self.policy.is_master(proc.node_id)
        if self.tracer is not None:
            # Demand comes from the *executed* request (a cache hit
            # substitutes a cheaper body under the same id), matching what
            # the metrics collector records.
            self.tracer.record(COMPLETE, req_id, proc.node_id,
                               (proc.request.demand, route.remote,
                                on_master))
        self.metrics.record(proc, route.remote, on_master)
        response = proc.finish_time - proc.request.arrival_time
        if self.resilience is not None:
            self.resilience.on_complete(proc.request, response)
        self.policy.on_complete(proc.request, response, on_master,
                                proc.node_id)

    # -- running ------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run the event loop; see :meth:`Engine.run`."""
        return self.engine.run(until=until, max_events=max_events)

    def replay(self, requests: Iterable[Request], drain: float = 60.0,
               warmup: float = 0.0) -> MetricsReport:
        """Submit a trace, run it to completion, and summarise.

        Parameters
        ----------
        requests:
            The trace (arrival times must be non-decreasing is *not*
            required; the event heap orders them).
        drain:
            Extra virtual time allowed after the last arrival for queued
            work to finish.
        warmup:
            Passed through to :meth:`MetricsCollector.report`.
        """
        n = self.submit_many(requests)
        if n == 0:
            raise ValueError("empty trace")
        last_arrival = max(self.metrics_last_arrival(), 0.0)
        deadline = last_arrival + drain
        self.run(until=deadline)
        # Under heavy load queues may still be draining: extend, bounded.
        extensions = 0
        while any(node.active for node in self.nodes) and extensions < 20:
            deadline += drain
            self.run(until=deadline)
            extensions += 1
        return self.metrics.report(warmup=warmup)

    def metrics_last_arrival(self) -> float:
        """Latest scheduled arrival time (for drain sizing)."""
        arrive = self._arrive_cb
        times = [t for t, fn in self.engine.iter_pending() if fn == arrive]
        return max(times) if times else self.engine.now

    # -- availability accounting ---------------------------------------------------

    def pending_requests(self) -> int:
        """Foreground requests scheduled but not yet on a node: future
        arrivals, dispatch hops in flight, and backoff retries."""
        fns = {self._arrive_cb, self._admit_cb}
        if self.resilience is not None:
            fns.add(self.resilience._retry)
        return sum(1 for _, fn in self.engine.iter_pending() if fn in fns)

    def conservation(self) -> Dict[str, int]:
        """Account for every submitted request (the no-loss invariant).

        ``balance`` is ``submitted - completed - dropped - lost - in_flight
        - pending`` and must be zero at any virtual time: a request is
        either done, accounted as failed, on a node, or in an event that
        will deliver it.
        """
        mgr = self.resilience
        completed = len(self.metrics)
        dropped = mgr.total_dropped if mgr is not None else 0
        in_flight = len(self._routes)
        pending = self.pending_requests()
        return {
            "submitted": self.submitted,
            "completed": completed,
            "dropped": dropped,
            "lost": self.lost_requests,
            "in_flight": in_flight,
            "pending": pending,
            "balance": (self.submitted - completed - dropped
                        - self.lost_requests - in_flight - pending),
        }

    def assert_conservation(self) -> None:
        """Raise ``AssertionError`` if any request is unaccounted for."""
        ledger = self.conservation()
        if ledger["balance"] != 0:
            raise AssertionError(f"request conservation violated: {ledger}")

    def unavailability(self, horizon: Optional[float] = None) -> np.ndarray:
        """Per-node fraction of ``[0, horizon]`` spent out of service."""
        horizon = self.engine.now if horizon is None else horizon
        if horizon <= 0:
            return np.zeros(self.cfg.num_nodes)
        down = self.downtime.copy()
        for node_id, since in self._down_since.items():
            down[node_id] += max(0.0, min(self.engine.now, horizon) - since)
        return np.clip(down / horizon, 0.0, 1.0)

    def availability(self, horizon: Optional[float] = None,
                     slo_stretch: Optional[float] = None) -> AvailabilityReport:
        """Summarise goodput, drops, retries, and unavailability.

        Works with or without the resilience layer, so seed-behaviour and
        resilient clusters can be compared on identical metrics.
        """
        mgr = self.resilience
        if slo_stretch is None:
            slo_stretch = mgr.cfg.slo_stretch if mgr is not None else 30.0
        horizon = self.engine.now if horizon is None else horizon
        report = AvailabilityReport.from_cluster(
            self, horizon=horizon, slo_stretch=slo_stretch)
        return report
