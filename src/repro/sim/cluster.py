"""Cluster assembly: nodes + load monitor + dispatch policy + metrics.

The cluster plays the role of the paper's front end (load-balancing switch
or DNS plus the master-level acceptors).  Every arriving request is routed
by the configured :class:`~repro.core.policies.Policy`; a request executed
on a node other than the one that accepted it pays the remote-CGI network
latency before admission.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.policies import Policy, Route
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.failures import FailurePolicy
from repro.sim.metrics import MetricsCollector, MetricsReport
from repro.sim.monitor import LoadMonitor
from repro.sim.node import Node
from repro.sim.process import SimProcess
from repro.workload.request import Request


class ClusterView:
    """The load information a scheduler is allowed to see.

    Values come from the periodic :class:`LoadMonitor`, so they are stale by
    up to one monitoring period — as they would be when polling ``rstat()``.
    """

    __slots__ = ("_cluster",)

    def __init__(self, cluster: "Cluster"):
        self._cluster = cluster

    @property
    def num_nodes(self) -> int:
        return self._cluster.cfg.num_nodes

    @property
    def now(self) -> float:
        return self._cluster.engine.now

    def cpu_idle(self, node_id: int) -> float:
        return float(self._cluster.monitor.cpu_idle[node_id])

    def disk_avail(self, node_id: int) -> float:
        return float(self._cluster.monitor.disk_avail[node_id])

    def cpu_idle_array(self) -> np.ndarray:
        """Read-only snapshot array (do not mutate)."""
        return self._cluster.monitor.cpu_idle

    def disk_avail_array(self) -> np.ndarray:
        """Read-only snapshot array (do not mutate)."""
        return self._cluster.monitor.disk_avail

    def active_requests(self, node_id: int) -> int:
        """Instantaneous in-flight count — used only by baseline policies
        that model a connection-counting switch."""
        return self._cluster.nodes[node_id].active

    def is_alive(self, node_id: int) -> bool:
        return bool(self._cluster.alive[node_id])

    def all_alive(self) -> bool:
        """O(1) fast path: no node is out of service."""
        return self._cluster.alive_count == self._cluster.cfg.num_nodes

    def alive_array(self) -> np.ndarray:
        """Read-only membership snapshot (do not mutate)."""
        return self._cluster.alive


class Cluster:
    """A simulated Web-server cluster with a pluggable dispatch policy.

    Optional failure semantics (crashes, recruitment) are controlled by a
    :class:`~repro.sim.failures.FailurePolicy`; by default all nodes are
    alive for the whole run and none of the failure paths fire.
    """

    def __init__(self, cfg: SimConfig, policy: Policy,
                 failure_policy: Optional[FailurePolicy] = None):
        cfg.validate()
        if policy.num_nodes != cfg.num_nodes:
            raise ValueError(
                f"policy is sized for {policy.num_nodes} nodes but the "
                f"cluster has {cfg.num_nodes}"
            )
        self.cfg = cfg
        self.policy = policy
        self.engine = Engine()
        seeds = np.random.SeedSequence(cfg.seed).spawn(cfg.num_nodes)
        self.nodes = [
            Node(self.engine, cfg, i, np.random.default_rng(seeds[i]),
                 self._on_complete)
            for i in range(cfg.num_nodes)
        ]
        self.monitor = LoadMonitor(self.engine, cfg.monitor, self.nodes)
        self.monitor.start()
        self.metrics = MetricsCollector()
        self.view = ClusterView(self)
        #: Route per in-flight request, keyed by req_id (a request may sit
        #: in a node's listen backlog before any process exists for it).
        self._routes: Dict[int, Route] = {}
        self._background_ids: set[int] = set()
        self.submitted = 0
        self.background_completed = 0
        self.failure_policy = failure_policy or FailurePolicy()
        self.failure_policy.validate()
        #: Membership: which nodes are currently in service.
        self.alive = np.ones(cfg.num_nodes, dtype=bool)
        self.alive_count = cfg.num_nodes
        self.restarted_requests = 0
        self.denied_attempts = 0

    # -- submission ---------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Schedule one request's arrival."""
        self.engine.schedule_at(request.arrival_time, self._arrive, request)
        self.submitted += 1

    def submit_many(self, requests: Iterable[Request]) -> int:
        """Schedule a whole trace.  Returns the number of requests queued."""
        n = 0
        for req in requests:
            self.submit(req)
            n += 1
        return n

    # -- arrival / completion ---------------------------------------------------

    def _arrive(self, request: Request) -> None:
        route = self.policy.route(request, self.view)
        if not 0 <= route.node_id < self.cfg.num_nodes:
            raise ValueError(
                f"policy routed request {request.req_id} to invalid node "
                f"{route.node_id}"
            )
        if not self.alive[route.node_id]:
            # A failure-unaware front end (DNS rotation with cached IPs)
            # picked a dead node: the client times out and retries.
            self.denied_attempts += 1
            self.engine.schedule(self.failure_policy.client_retry_timeout,
                                 self._arrive, request)
            return
        latency = self.cfg.network.frontend_latency + route.extra_latency
        if route.remote:
            latency += self.cfg.network.remote_cgi_latency
        if latency > 0.0:
            self.engine.schedule(latency, self._admit, request, route, latency)
        else:
            self._admit(request, route, 0.0)

    def _admit(self, request: Request, route: Route, latency: float) -> None:
        if not self.alive[route.node_id]:
            # The node died during the dispatch hop; re-route.
            self.engine.schedule(self.failure_policy.detection_delay,
                                 self._arrive, request)
            return
        executed = route.substitute if route.substitute is not None \
            else request
        self._routes[executed.req_id] = route
        self.nodes[route.node_id].admit(executed, dispatch_latency=latency)

    # -- membership -----------------------------------------------------------

    def fail_node(self, node_id: int) -> int:
        """Crash a node; restart its in-flight foreground requests
        elsewhere per the failure policy.  Returns the number of requests
        restarted.  Idempotent for already-dead nodes."""
        if not self.alive[node_id]:
            return 0
        self.alive[node_id] = False
        self.alive_count -= 1
        aborted, queued = self.nodes[node_id].fail()
        restarted = 0
        for request in [proc.request for proc in aborted] + queued:
            if request.req_id in self._background_ids:
                self._background_ids.discard(request.req_id)
                continue
            self._routes.pop(request.req_id, None)
            if self.failure_policy.restart_inflight:
                self.engine.schedule(self.failure_policy.detection_delay,
                                     self._arrive, request)
                restarted += 1
        self.restarted_requests += restarted
        return restarted

    def recover_node(self, node_id: int) -> None:
        """Bring a crashed or standby node (back) into service."""
        self.nodes[node_id].recover()
        if not self.alive[node_id]:
            self.alive_count += 1
        self.alive[node_id] = True

    def retire_node(self, node_id: int) -> None:
        """Take an idle node out of service without the crash semantics
        (used to initialise recruitment-pool standby nodes)."""
        if self.nodes[node_id].active:
            raise RuntimeError(
                f"node {node_id} has in-flight work; use fail_node")
        self.nodes[node_id].failed = True
        if self.alive[node_id]:
            self.alive_count -= 1
        self.alive[node_id] = False

    def admit_background(self, request: Request, node_id: int) -> SimProcess:
        """Run a request on a node *outside* the measured workload.

        Background jobs consume CPU, disk and memory like any process but
        are excluded from metrics and policy feedback.  The testbed
        emulator uses this to model the "background jobs running in the
        cluster" that the paper cites as the gap between its simulator and
        the real Sun cluster.
        """
        if not 0 <= node_id < self.cfg.num_nodes:
            raise ValueError(f"invalid node {node_id}")
        self._background_ids.add(request.req_id)
        return self.nodes[node_id].admit(request)

    def _on_complete(self, node: Node, proc: SimProcess) -> None:
        req_id = proc.request.req_id
        if req_id in self._background_ids:
            self._background_ids.discard(req_id)
            self.background_completed += 1
            return
        route = self._routes.pop(req_id)
        on_master = self.policy.is_master(proc.node_id)
        self.metrics.record(proc, route.remote, on_master)
        response = proc.finish_time - proc.request.arrival_time
        self.policy.on_complete(proc.request, response, on_master,
                                proc.node_id)

    # -- running ------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run the event loop; see :meth:`Engine.run`."""
        return self.engine.run(until=until, max_events=max_events)

    def replay(self, requests: Iterable[Request], drain: float = 60.0,
               warmup: float = 0.0) -> MetricsReport:
        """Submit a trace, run it to completion, and summarise.

        Parameters
        ----------
        requests:
            The trace (arrival times must be non-decreasing is *not*
            required; the event heap orders them).
        drain:
            Extra virtual time allowed after the last arrival for queued
            work to finish.
        warmup:
            Passed through to :meth:`MetricsCollector.report`.
        """
        n = self.submit_many(requests)
        if n == 0:
            raise ValueError("empty trace")
        last_arrival = max(self.metrics_last_arrival(), 0.0)
        deadline = last_arrival + drain
        self.run(until=deadline)
        # Under heavy load queues may still be draining: extend, bounded.
        extensions = 0
        while any(node.active for node in self.nodes) and extensions < 20:
            deadline += drain
            self.run(until=deadline)
            extensions += 1
        return self.metrics.report(warmup=warmup)

    def metrics_last_arrival(self) -> float:
        """Latest scheduled arrival time (for drain sizing)."""
        times = [ev.time for _, _, ev in self.engine._heap
                 if not ev.cancelled and ev.fn == self._arrive]
        return max(times) if times else self.engine.now
