"""Round-robin disk scheduler (one disk per node).

"The I/O queue also maintains a set of I/O processes and is scheduled using
round-robin."  A process's pending I/O burst is served in slices of
``pages_per_slice * page_time`` seconds; after each slice the process moves
to the tail of the queue if it still has I/O left in the burst, so
concurrent I/O-bound processes share the disk fairly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.obs.trace import IO_OFF, IO_ON
from repro.sim.config import DiskConfig
from repro.sim.engine import Engine
from repro.sim.process import ProcState, SimProcess

_EPS = 1e-12


class Disk:
    """FCFS-within-slice, round-robin-across-processes disk model.

    Parameters
    ----------
    engine:
        Shared event engine.
    cfg:
        Disk constants (page time, slice size).
    on_burst_done:
        Callback ``fn(proc)`` invoked when a process's current I/O burst is
        fully served.
    """

    __slots__ = ("engine", "cfg", "on_burst_done", "queue", "current",
                 "busy_time", "slices_served", "_current_event", "_slice_cb",
                 "_tracer")

    def __init__(self, engine: Engine, cfg: DiskConfig,
                 on_burst_done: Callable[[SimProcess], None]):
        self.engine = engine
        self.cfg = cfg
        self.on_burst_done = on_burst_done
        self.queue: deque[SimProcess] = deque()
        self.current: Optional[SimProcess] = None
        self.busy_time = 0.0
        self.slices_served = 0
        self._current_event = None
        # Cached bound callback: scheduled once per disk slice.
        self._slice_cb = self._on_slice_end
        #: Observability tap (set by the cluster; ``None`` = disabled).
        self._tracer = None

    def submit(self, proc: SimProcess) -> None:
        """Queue the process's current I/O burst (``proc.burst_remaining``)."""
        if proc.burst_remaining <= _EPS:
            # Degenerate zero-length burst: complete immediately.
            self.on_burst_done(proc)
            return
        proc.state = ProcState.IO_WAIT
        self.queue.append(proc)
        if self.current is None:
            self._serve_next()

    @property
    def pending(self) -> int:
        """Processes queued at or using the disk."""
        return len(self.queue) + (1 if self.current is not None else 0)

    def abort_all(self) -> None:
        """Drop every queued and in-service burst (node failure)."""
        if self._current_event is not None:
            self._current_event.cancel()
            self._current_event = None
        if self.current is not None and self._tracer is not None:
            self._tracer.record(IO_OFF, self.current.request.req_id,
                                self.current.node_id)
        self.current = None
        self.queue.clear()

    def abort(self, proc: SimProcess) -> bool:
        """Drop one process's pending burst (request cancellation).

        Returns ``True`` if the process was in service or queued here.
        """
        if self.current is proc:
            if self._current_event is not None:
                self._current_event.cancel()
                self._current_event = None
            if self._tracer is not None:
                self._tracer.record(IO_OFF, proc.request.req_id,
                                    proc.node_id)
            self.current = None
            self._serve_next()
            return True
        try:
            self.queue.remove(proc)
        except ValueError:
            return False
        return True

    def _serve_next(self) -> None:
        if not self.queue:
            return
        proc = self.queue.popleft()
        slice_len = min(self.cfg.slice_time, proc.burst_remaining)
        self.current = proc
        self._current_event = self.engine.schedule(
            slice_len, self._slice_cb, proc, slice_len)
        if self._tracer is not None:
            self._tracer.record(IO_ON, proc.request.req_id, proc.node_id)

    def _on_slice_end(self, proc: SimProcess, slice_len: float) -> None:
        assert proc is self.current
        if self._tracer is not None:
            self._tracer.record(IO_OFF, proc.request.req_id, proc.node_id)
        self.current = None
        self._current_event = None
        self.busy_time += slice_len
        self.slices_served += 1
        proc.io_time_used += slice_len
        proc.burst_remaining -= slice_len
        if proc.burst_remaining <= _EPS:
            proc.burst_remaining = 0.0
            # The completion callback may synchronously submit a follow-up
            # burst (e.g. a spliced refault), which starts service itself;
            # only serve the queue if the disk is still idle afterwards.
            self.on_burst_done(proc)
        else:
            self.queue.append(proc)
        if self.current is None:
            self._serve_next()
