"""Simulation configuration.

All timing constants default to the values the paper gives in Section 5.2.1
("Parameter setting"):

* each node serves SPECweb96 static content at 1200 requests/second,
* CPU quantum 10 ms, priority update period 100 ms,
* context-switch overhead 50 us, fork overhead 3 ms,
* remote CGI dispatch latency (excluding fork) 1 ms,
* page size 8 KB, average I/O burst per page 2 ms.

Everything is expressed in **seconds** of virtual time.  A single
:class:`SimConfig` instance is shared by every component of one simulated
cluster; treat it as immutable once a simulation has started.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class CPUConfig:
    """Parameters of the BSD-4.3-style CPU scheduler (one CPU per node)."""

    #: Scheduling quantum: a running process is preempted after this long.
    quantum: float = 0.010
    #: Period at which process priorities are decayed/recomputed.
    priority_update_period: float = 0.100
    #: Cost charged to the CPU on every context switch.
    context_switch_overhead: float = 50e-6
    #: Cost of forking a CGI process (charged as CPU work on the executing
    #: node before the script's own demand starts).
    fork_overhead: float = 0.003
    #: Number of run-queue priority levels (BSD 4.3 uses 32 user levels).
    num_queues: int = 32
    #: Multiplicative decay applied to accumulated CPU usage once per
    #: priority-update period (BSD's ``decay = (2*load)/(2*load+1)`` with the
    #: load term folded into a constant).
    usage_decay: float = 0.66
    #: How much accumulated usage (in seconds) moves a process down one
    #: priority level.  Half a quantum: a process that burns a full quantum
    #: drops below fresh arrivals immediately, as BSD's per-tick p_cpu
    #: increments achieve.
    usage_per_level: float = 0.005

    def validate(self) -> None:
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")
        if self.priority_update_period <= 0:
            raise ValueError("priority_update_period must be positive")
        if self.context_switch_overhead < 0:
            raise ValueError("context_switch_overhead must be >= 0")
        if self.fork_overhead < 0:
            raise ValueError("fork_overhead must be >= 0")
        if self.num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        if not 0.0 < self.usage_decay <= 1.0:
            raise ValueError("usage_decay must be in (0, 1]")
        if self.usage_per_level <= 0:
            raise ValueError("usage_per_level must be positive")


@dataclass
class DiskConfig:
    """Parameters of the round-robin disk scheduler (one disk per node)."""

    #: Average service time of one 8 KB page access.
    page_time: float = 0.002
    #: Pages served per round-robin slice.  Larger batches mean fewer
    #: simulation events at the cost of coarser disk sharing; the paper's
    #: justification for the 2 ms figure (block transfer + caching) applies
    #: to batches as well.
    pages_per_slice: int = 4

    def validate(self) -> None:
        if self.page_time <= 0:
            raise ValueError("page_time must be positive")
        if self.pages_per_slice < 1:
            raise ValueError("pages_per_slice must be >= 1")

    @property
    def slice_time(self) -> float:
        """Maximum virtual time of one disk round-robin slice."""
        return self.page_time * self.pages_per_slice


@dataclass
class MemoryConfig:
    """Parameters of the demand-paged virtual memory manager."""

    #: Page size in bytes (8 KB in the paper).
    page_size: int = 8192
    #: Physical pages per node.  8192 pages * 8 KB = 64 MB, a mid-range
    #: workstation server of the paper's era.
    total_pages: int = 8192
    #: Pages the OS and file cache permanently occupy.
    reserved_pages: int = 512
    #: Whether page faults inject additional disk I/O.  Disabling gives a
    #: faster, paging-free simulation (useful for quick experiments).
    enable_paging: bool = True
    #: Fraction of a process's working set that must be faulted in from disk
    #: when the process starts.  Defaults to 0: shared CGI text plus
    #: zero-fill pages make cold faults essentially free, and paging cost
    #: should emerge from memory *pressure* (page stealing), not from every
    #: request.  Raise it to ablate cold-start behaviour.
    coldstart_fraction: float = 0.0
    #: When free memory is exhausted, stolen pages cause victims to re-fault
    #: this fraction of the stolen pages later.
    refault_fraction: float = 0.5
    #: File-cache miss probability for static requests on an unloaded node.
    #: SPECweb96-class file sets fit in RAM, so base misses are rare.
    static_miss_base: float = 0.02
    #: Miss probability as memory pressure approaches 1.0 — "resource-
    #: intensive CGI requests tend to use a large amount of memory, which
    #: decreases space available for file system caching, further
    #: decreasing static request performance" (paper Section 2).
    static_miss_max: float = 0.95

    def validate(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.total_pages <= 0:
            raise ValueError("total_pages must be positive")
        if not 0 <= self.reserved_pages < self.total_pages:
            raise ValueError(
                "reserved_pages must be in [0, total_pages); got "
                f"{self.reserved_pages} of {self.total_pages}"
            )
        if not 0.0 <= self.coldstart_fraction <= 1.0:
            raise ValueError("coldstart_fraction must be in [0, 1]")
        if not 0.0 <= self.refault_fraction <= 1.0:
            raise ValueError("refault_fraction must be in [0, 1]")
        if not 0.0 <= self.static_miss_base <= self.static_miss_max <= 1.0:
            raise ValueError(
                "need 0 <= static_miss_base <= static_miss_max <= 1"
            )


@dataclass
class NetworkConfig:
    """Intra-cluster communication costs.

    The paper measures the remote CGI dispatch cost (TCP connection setup,
    excluding fork) at about 1 ms and reports that intra-cluster network
    contention is negligible for dynamic-content-intensive workloads, so the
    network is modelled as a fixed per-dispatch latency.
    """

    #: Latency added when a request executes on a node other than the node
    #: that accepted it.
    remote_cgi_latency: float = 0.001
    #: Latency added when a front-end forwards a request to the accepting
    #: master (0: the switch/DNS hop is outside the measured response time).
    frontend_latency: float = 0.0

    def validate(self) -> None:
        if self.remote_cgi_latency < 0:
            raise ValueError("remote_cgi_latency must be >= 0")
        if self.frontend_latency < 0:
            raise ValueError("frontend_latency must be >= 0")


@dataclass
class ConnectionConfig:
    """Server process/connection pool (Apache's MaxClients) and client-side
    transfer modelling.

    The paper's model admits unboundedly many concurrent requests and ends
    a request when processing ends.  A 1999 server actually ran a bounded
    pool of worker processes, and each worker stayed pinned to its client
    until the response bytes drained over the client's link — for the UCB
    Home-IP workload, a modem.  Both effects default off (matching the
    paper); enabling them exposes the slot-exhaustion failure mode that
    mixing long CGI with slow clients causes.
    """

    #: Maximum concurrently served requests per node (0 = unlimited).
    max_processes: int = 0
    #: Client downlink in bytes/second (0 = infinite: no transfer phase).
    #: A V.34 modem is ~3,600 B/s.
    client_bandwidth: float = 0.0

    def validate(self) -> None:
        if self.max_processes < 0:
            raise ValueError("max_processes must be >= 0")
        if self.client_bandwidth < 0:
            raise ValueError("client_bandwidth must be >= 0")

    @property
    def limited(self) -> bool:
        return self.max_processes > 0

    def transfer_time(self, size_bytes: int) -> float:
        """Seconds a worker stays pinned sending the response."""
        if self.client_bandwidth <= 0 or size_bytes <= 0:
            return 0.0
        return size_bytes / self.client_bandwidth


@dataclass
class MonitorConfig:
    """Load-information collection (the paper polls ``rstat()``)."""

    #: Period between load snapshots made available to the scheduler.
    period: float = 0.200
    #: Exponential smoothing factor applied to utilisation samples
    #: (1.0 = use the raw last-window value).
    smoothing: float = 0.7
    #: Suspicion: a node whose ``rstat()`` probe has not succeeded for this
    #: long is marked *suspect* and excluded from RSRC candidate sets even
    #: before its crash is formally detected.
    suspect_after: float = 1.0
    #: Consecutive successful probes a suspect node must pass before it is
    #: trusted again (recovered/recruited nodes report stale-idle load, so
    #: immediately trusting them herds every dynamic request onto them).
    probation_samples: int = 2

    def validate(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if self.suspect_after <= 0:
            raise ValueError("suspect_after must be positive")
        if self.probation_samples < 1:
            raise ValueError("probation_samples must be >= 1")


@dataclass
class SimConfig:
    """Top-level configuration for one simulated cluster.

    Parameters
    ----------
    num_nodes:
        Cluster size ``p``.  The paper simulates 32 and 128.
    static_rate:
        Per-node static-request service rate ``mu_h`` (requests/second on an
        otherwise idle node); 1200 in the simulations, 110 on the Sun
        testbed.  Static service is CPU work: on an unloaded node the file
        set is cache-resident, and disk reads appear only on cache misses
        (see :class:`MemoryConfig`).
    seed:
        Seed for the simulation-side random streams (burst shaping, paging).
    """

    num_nodes: int = 32
    static_rate: float = 1200.0
    seed: int = 0
    #: Worker processes used when this configuration's experiments fan out
    #: over the :mod:`repro.perf.pool` runner (1 = serial).  Purely a
    #: harness knob: it never changes simulated behaviour, only how many
    #: configurations replay concurrently.
    parallelism: int = 1

    cpu: CPUConfig = field(default_factory=CPUConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    connections: ConnectionConfig = field(default_factory=ConnectionConfig)

    #: Per-node CPU speed multipliers relative to the reference node whose
    #: static rate is ``static_rate`` (None = homogeneous).  A node with
    #: speed 2.0 executes CPU bursts twice as fast.  This implements the
    #: heterogeneous-cluster extension the paper announces in its
    #: conclusion (and studies in its companion work on adaptive load
    #: sharing for clustered digital-library servers).
    cpu_speeds: Optional[Tuple[float, ...]] = None
    #: Per-node disk speed multipliers (None = homogeneous).
    disk_speeds: Optional[Tuple[float, ...]] = None

    def validate(self) -> "SimConfig":
        """Check invariants; returns ``self`` so it chains in constructors."""
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.static_rate <= 0:
            raise ValueError("static_rate must be positive")
        if self.parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {self.parallelism}")
        for name, speeds in (("cpu_speeds", self.cpu_speeds),
                             ("disk_speeds", self.disk_speeds)):
            if speeds is None:
                continue
            if len(speeds) != self.num_nodes:
                raise ValueError(
                    f"{name} must have one entry per node "
                    f"({len(speeds)} != {self.num_nodes})"
                )
            if any(x <= 0 for x in speeds):
                raise ValueError(f"{name} entries must be positive")
        self.cpu.validate()
        self.disk.validate()
        self.memory.validate()
        self.network.validate()
        self.monitor.validate()
        self.connections.validate()
        return self

    @property
    def static_demand(self) -> float:
        """Mean total service demand of one static request, ``1 / mu_h``."""
        return 1.0 / self.static_rate

    def node_cpu_speed(self, node_id: int) -> float:
        """CPU speed multiplier of one node (1.0 when homogeneous)."""
        return 1.0 if self.cpu_speeds is None else self.cpu_speeds[node_id]

    def node_disk_speed(self, node_id: int) -> float:
        """Disk speed multiplier of one node (1.0 when homogeneous)."""
        return 1.0 if self.disk_speeds is None else self.disk_speeds[node_id]

    def copy(self, **overrides) -> "SimConfig":
        """Return a deep copy, optionally with top-level fields replaced."""
        dup = dataclasses.replace(
            self,
            cpu=dataclasses.replace(self.cpu),
            disk=dataclasses.replace(self.disk),
            memory=dataclasses.replace(self.memory),
            network=dataclasses.replace(self.network),
            monitor=dataclasses.replace(self.monitor),
            connections=dataclasses.replace(self.connections),
        )
        for key, value in overrides.items():
            if not hasattr(dup, key):
                raise AttributeError(f"SimConfig has no field {key!r}")
            setattr(dup, key, value)
        return dup


#: Configuration matching the paper's simulated medium cluster (p = 32).
def paper_sim_config(num_nodes: int = 32, seed: int = 0) -> SimConfig:
    """The Section 5.2.1 parameter setting (1200 req/s nodes)."""
    return SimConfig(num_nodes=num_nodes, static_rate=1200.0, seed=seed).validate()


def testbed_sim_config(num_nodes: int = 6, seed: int = 0) -> SimConfig:
    """The Section 5.2.2 Sun Ultra-1 setting (110 req/s nodes)."""
    return SimConfig(num_nodes=num_nodes, static_rate=110.0, seed=seed).validate()
