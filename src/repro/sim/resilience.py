"""End-to-end resilience: deadlines, bounded retries, and overload shedding.

The paper motivates the master/slave architecture operationally — "hiding
server failures is critical" — but its model stops at restarting work after
a crash.  This module closes the remaining gaps on the request path:

* **Per-attempt deadlines with bounded retries.**  A request that times out
  on a node, lands on a dead/reclaimed node, or finds no capacity is
  re-routed after an exponential backoff with jitter.  Each request carries
  a retry budget; once it is exhausted the request is counted as *failed*
  (dropped, with a reason) instead of silently vanishing or queueing
  forever.
* **SLO-driven overload protection.**  A periodic controller watches the
  monitored dynamic stretch and per-node backlog.  Under pressure it first
  tightens the Section-4 reservation cap (``theta'_2``) toward zero so
  masters keep serving static traffic, then sheds new dynamic admissions
  outright.  Static service degrades gracefully instead of collapsing.
* **Accounting.**  Every drop is attributed to a reason (``timeout``,
  ``crash``, ``dead_node``, ``no_capacity``, ``shed``), retries and SLO
  violations are counted, and :meth:`repro.sim.cluster.Cluster.conservation`
  can prove that no request was lost.

The manager is opt-in: a :class:`~repro.sim.cluster.Cluster` built without a
:class:`ResilienceConfig` behaves exactly like the seed simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.obs.trace import DROP, RETRY, SHED_LEVEL, TIMEOUT
from repro.sim.engine import Event
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import Cluster

#: Drop reasons the manager may report (keys of ``drops``).
DROP_REASONS = ("timeout", "crash", "dead_node", "no_capacity", "shed")


@dataclass(slots=True)
class ResilienceConfig:
    """Tunables of the request-path resilience layer."""

    #: Per-attempt deadline for static / dynamic requests, in seconds from
    #: admission on a node (``None`` = attempts never time out).  An expired
    #: attempt is aborted and re-routed against the retry budget.
    deadline_static: Optional[float] = None
    deadline_dynamic: Optional[float] = None
    #: Retry budget per request, counting every re-route (timeouts, crash
    #: restarts, dead-node denials).  Exhausting it drops the request.
    max_retries: int = 3
    #: Exponential backoff between attempts: the n-th retry waits
    #: ``min(backoff_max, backoff_base * backoff_factor**(n-1))`` seconds,
    #: jittered by ``+/- jitter`` (a fraction) to avoid retry storms.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5

    #: Enable the overload controller.
    shed_enabled: bool = True
    #: Seconds between controller evaluations.
    shed_period: float = 0.25
    #: Dynamic-stretch EWMA above which the cluster is overloaded (level 1:
    #: reservation cap forced to zero; at twice the threshold, level 2: new
    #: dynamic admissions are shed).
    shed_stretch: float = 50.0
    #: Mean in-flight + backlogged requests per alive node with the same
    #: two-level semantics.
    shed_backlog: float = 40.0
    #: De-escalation hysteresis: pressure must fall below ``threshold *
    #: shed_hysteresis`` before a level is left.
    shed_hysteresis: float = 0.5
    #: Per-tick decay of the stretch EWMA when no dynamic request completed
    #: since the last tick (drained backlogs must be able to de-escalate).
    shed_decay: float = 0.85

    #: Completions whose stretch exceeds this count as SLO violations and
    #: are excluded from goodput.
    slo_stretch: float = 30.0
    #: Seed of the manager-private jitter stream.
    seed: int = 0

    def validate(self) -> None:
        for name in ("deadline_static", "deadline_dynamic"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.shed_period <= 0:
            raise ValueError("shed_period must be positive")
        if self.shed_stretch <= 0 or self.shed_backlog <= 0:
            raise ValueError("shed thresholds must be positive")
        if not 0.0 < self.shed_hysteresis <= 1.0:
            raise ValueError("shed_hysteresis must be in (0, 1]")
        if not 0.0 < self.shed_decay <= 1.0:
            raise ValueError("shed_decay must be in (0, 1]")
        if self.slo_stretch <= 0:
            raise ValueError("slo_stretch must be positive")


class ResilienceManager:
    """Per-cluster runtime of the resilience layer.

    Owned by :class:`~repro.sim.cluster.Cluster`; the cluster calls in on
    every admission, completion, crash abort, and mis-route, and the manager
    decides whether to retry (with backoff), drop (with a reason), or shed.
    """

    __slots__ = ("cluster", "cfg", "rng", "attempts", "_deadline_ev",
                 "_retry_ev", "drops", "retries", "timeouts", "completions",
                 "slo_violations", "shed_level", "shed_transitions",
                 "_shed_armed", "_stretch_ewma", "_dyn_completions",
                 "_dyn_seen_at_tick", "_tracer")

    def __init__(self, cluster: "Cluster", cfg: ResilienceConfig):
        cfg.validate()
        self.cluster = cluster
        self.cfg = cfg
        self.rng = np.random.default_rng(cfg.seed)
        #: Retries consumed per in-flight request id.
        self.attempts: Dict[int, int] = {}
        self._deadline_ev: Dict[int, Event] = {}
        self._retry_ev: Dict[int, Event] = {}
        self.drops: Dict[str, int] = {}
        self.retries = 0
        self.timeouts = 0
        self.completions = 0
        self.slo_violations = 0
        #: 0 = normal, 1 = reservation cap forced to zero, 2 = shedding new
        #: dynamic admissions.
        self.shed_level = 0
        self.shed_transitions = 0
        self._shed_armed = False
        self._stretch_ewma: Optional[float] = None
        self._dyn_completions = 0
        self._dyn_seen_at_tick = 0
        #: Observability tap (set by the cluster; ``None`` = disabled).
        self._tracer = None

    # -- admission gate --------------------------------------------------------

    def admit(self, request: Request) -> bool:
        """Gate one arrival; ``False`` means the request was shed."""
        if self.cfg.shed_enabled:
            self._ensure_shed_loop()
        if self.shed_level >= 2 and request.is_dynamic:
            self._drop(request, "shed")
            return False
        return True

    # -- attempt lifecycle -----------------------------------------------------

    def on_admitted(self, request: Request) -> None:
        """Arm the per-attempt deadline once a node accepted the request."""
        deadline = (self.cfg.deadline_dynamic if request.is_dynamic
                    else self.cfg.deadline_static)
        if deadline is None:
            return
        self._deadline_ev[request.req_id] = self.cluster.engine.schedule(
            deadline, self._on_deadline, request)

    def on_complete(self, request: Request, response_time: float) -> None:
        """Completion: disarm timers and account the SLO outcome."""
        self._disarm(request.req_id)
        self.attempts.pop(request.req_id, None)
        self.completions += 1
        stretch = response_time / request.demand
        if stretch > self.cfg.slo_stretch:
            self.slo_violations += 1
        if request.is_dynamic:
            self._dyn_completions += 1
            prev = self._stretch_ewma
            self._stretch_ewma = (stretch if prev is None
                                  else 0.2 * stretch + 0.8 * prev)

    def on_crash_abort(self, request: Request) -> bool:
        """A crash aborted this in-flight request; retry or drop it.

        Returns ``True`` when the request was rescheduled (the master
        restarts it elsewhere after the detection delay).
        """
        self._disarm(request.req_id)
        if not self.cluster.failure_policy.restart_inflight:
            self._drop(request, "crash")
            return False
        return self.handle_failure(
            request, "crash",
            extra_delay=self.cluster.failure_policy.detection_delay)

    def handle_failure(self, request: Request, reason: str,
                       extra_delay: float = 0.0) -> bool:
        """Charge one failed attempt; re-route with backoff or drop.

        Returns ``True`` if a retry was scheduled.
        """
        self._disarm(request.req_id)
        n = self.attempts.get(request.req_id, 0) + 1
        if n > self.cfg.max_retries:
            self.attempts.pop(request.req_id, None)
            self._drop(request, reason)
            return False
        self.attempts[request.req_id] = n
        self.retries += 1
        delay = min(self.cfg.backoff_max,
                    self.cfg.backoff_base * self.cfg.backoff_factor ** (n - 1))
        if self.cfg.jitter > 0.0:
            delay *= 1.0 + self.cfg.jitter * (2.0 * self.rng.random() - 1.0)
        self._retry_ev[request.req_id] = self.cluster.engine.schedule(
            extra_delay + delay, self._retry, request)
        if self._tracer is not None:
            self._tracer.record(RETRY, request.req_id, -1,
                                (n, extra_delay + delay))
        return True

    def _retry(self, request: Request) -> None:
        self._retry_ev.pop(request.req_id, None)
        self.cluster._arrive(request)

    def _on_deadline(self, request: Request) -> None:
        """An admitted attempt outlived its deadline: abort and re-route."""
        self._deadline_ev.pop(request.req_id, None)
        route = self.cluster._routes.pop(request.req_id, None)
        if route is None:
            return  # completed in the same instant
        if self._tracer is not None:
            self._tracer.record(TIMEOUT, request.req_id, route.node_id)
        self.cluster.nodes[route.node_id].abort_request(request.req_id)
        self.timeouts += 1
        self.handle_failure(request, "timeout")

    def _disarm(self, req_id: int) -> None:
        ev = self._deadline_ev.pop(req_id, None)
        if ev is not None:
            ev.cancel()

    def _drop(self, request: Request, reason: str) -> None:
        """Count a failed request (terminal)."""
        self._disarm(request.req_id)
        self.attempts.pop(request.req_id, None)
        self.drops[reason] = self.drops.get(reason, 0) + 1
        if self._tracer is not None:
            self._tracer.record(DROP, request.req_id, -1, (reason,))

    @property
    def total_dropped(self) -> int:
        return sum(self.drops.values())

    # -- overload controller ---------------------------------------------------

    def _ensure_shed_loop(self) -> None:
        if not self._shed_armed:
            self._shed_armed = True
            self.cluster.engine.schedule(self.cfg.shed_period,
                                         self._shed_tick)

    def pressure(self) -> float:
        """Normalised overload score: 1.0 = at threshold, 2.0 = severe."""
        cluster = self.cluster
        alive = max(1, cluster.alive_count)
        backlog = sum(node.active + len(node.backlog)
                      for node in cluster.nodes if not node.failed) / alive
        score = backlog / self.cfg.shed_backlog
        if self._stretch_ewma is not None:
            score = max(score, self._stretch_ewma / self.cfg.shed_stretch)
        return score

    def _shed_tick(self) -> None:
        self._shed_armed = False
        # Without fresh dynamic completions the stretch estimate would pin
        # the controller at its last level; decay it so drained backlogs
        # can de-escalate.
        if (self._dyn_completions == self._dyn_seen_at_tick
                and self._stretch_ewma is not None):
            self._stretch_ewma *= self.cfg.shed_decay
        self._dyn_seen_at_tick = self._dyn_completions

        score = self.pressure()
        level = self.shed_level
        if score >= 2.0:
            level = 2
        elif score >= 1.0:
            level = max(level, 1)
        if level == 2 and score < 2.0 * self.cfg.shed_hysteresis:
            level = 1
        if level >= 1 and score < self.cfg.shed_hysteresis:
            level = 0
        if level != self.shed_level:
            self.shed_transitions += 1
            if self._tracer is not None:
                self._tracer.record_meta(SHED_LEVEL, self.shed_level, level)
            self.shed_level = level
            self._apply_pressure()

        cluster = self.cluster
        if (any(node.active or node.backlog for node in cluster.nodes)
                or self._retry_ev or cluster._routes
                or self.shed_level > 0):
            self._ensure_shed_loop()

    def _apply_pressure(self) -> None:
        """Tighten/release the reservation cap on the routing policy."""
        reservation = getattr(self.cluster.policy, "reservation", None)
        if reservation is not None:
            reservation.set_pressure(0.0 if self.shed_level >= 1 else 1.0)
