"""Demand-paged virtual-memory manager (one per node).

"The memory management maintains a set of free pages and allocates a number
of pages to a new process.  For each request, a memory size requirement is
provided and the system generates working-set oriented access patterns to
stress the demand-based paging scheme."

Model
-----
* Each node owns ``total_pages`` physical pages; ``reserved_pages`` belong
  to the kernel and the file cache.
* When a process is admitted it is granted its working set.  A configurable
  ``coldstart_fraction`` of those pages must be faulted in from disk (the
  rest are zero-fill / shared text), which the node splices into the
  process's execution plan as I/O bursts.
* If the free pool cannot cover the working set, pages are **stolen** from
  the resident processes with the largest footprints (a global-LRU stand-in).
  A victim will re-fault a ``refault_fraction`` of its stolen pages the next
  time it runs, modelling thrash under memory pressure.

This reproduces the paper's qualitative effect: resource-intensive CGI
requests consume memory, which shrinks the effective file cache and adds
disk traffic, further degrading co-located static request service.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.sim.config import MemoryConfig
from repro.sim.process import SimProcess


class MemoryManager:
    """Tracks physical pages of one node and generates fault I/O."""

    __slots__ = ("cfg", "free_pages", "resident", "faults", "steals",
                 "refaults", "_rng", "peak_resident")

    def __init__(self, cfg: MemoryConfig, rng: np.random.Generator):
        self.cfg = cfg
        self.free_pages = cfg.total_pages - cfg.reserved_pages
        self.resident: Dict[SimProcess, int] = {}
        self.faults = 0      # pages faulted in from disk
        self.steals = 0      # pages stolen from victims
        self.refaults = 0    # pages re-faulted by victims
        self._rng = rng
        self.peak_resident = 0

    # -- admission / release --------------------------------------------------

    def admit(self, proc: SimProcess) -> int:
        """Grant the process its working set.

        Returns the number of pages that must be faulted in from disk right
        now (cold-start faults).  May steal pages from other residents.
        """
        need = proc.request.mem_pages
        if need <= 0 or not self.cfg.enable_paging:
            return 0
        if need > self.free_pages:
            self._steal(need - self.free_pages)
        granted = min(need, self.free_pages)
        self.free_pages -= granted
        proc.resident_pages = granted
        self.resident[proc] = granted
        total_resident = self.cfg.total_pages - self.cfg.reserved_pages - self.free_pages
        if total_resident > self.peak_resident:
            self.peak_resident = total_resident
        cold = int(round(granted * self.cfg.coldstart_fraction))
        self.faults += cold
        return cold

    def release(self, proc: SimProcess) -> None:
        """Return the process's pages to the free pool.  Idempotent."""
        pages = self.resident.pop(proc, 0)
        self.free_pages += pages
        proc.resident_pages = 0

    # -- pressure ---------------------------------------------------------------

    def _steal(self, shortfall: int) -> None:
        """Reclaim ``shortfall`` pages from the largest residents."""
        if not self.resident:
            return
        # Victimise the biggest footprints first: an approximation of global
        # page replacement, which preferentially evicts large CGI processes.
        victims = sorted(self.resident.items(), key=lambda kv: -kv[1])
        remaining = shortfall
        for proc, pages in victims:
            if remaining <= 0:
                break
            take = min(pages, remaining)
            if take <= 0:
                continue
            self.resident[proc] = pages - take
            proc.resident_pages = pages - take
            self.free_pages += take
            self.steals += take
            refault = int(round(take * self.cfg.refault_fraction))
            proc.pending_fault_pages += refault
            self.refaults += refault
            remaining -= take

    def collect_refaults(self, proc: SimProcess) -> int:
        """Pop and return pages the process must re-fault before running."""
        pages = proc.pending_fault_pages
        proc.pending_fault_pages = 0
        self.faults += pages
        return pages

    # -- file cache -----------------------------------------------------------------

    def static_miss_probability(self) -> float:
        """Probability a static request misses the file cache.

        Grows linearly with memory pressure: every page a CGI working set
        claims is a page the file cache loses, which is the paper's
        Section-2 argument for separating static from dynamic processing.
        """
        base = self.cfg.static_miss_base
        span = self.cfg.static_miss_max - base
        return base + span * self.pressure

    # -- introspection ------------------------------------------------------------

    @property
    def used_pages(self) -> int:
        return self.cfg.total_pages - self.cfg.reserved_pages - self.free_pages

    @property
    def pressure(self) -> float:
        """Fraction of allocatable memory currently in use, in [0, 1]."""
        allocatable = self.cfg.total_pages - self.cfg.reserved_pages
        return self.used_pages / allocatable if allocatable else 1.0
