"""A server node: one CPU, one disk, one memory pool.

The node admits :class:`~repro.workload.request.Request` objects, lays their
service demand out as a burst plan (prepending the CGI fork cost and any
cold-start page-fault I/O), and shepherds the resulting
:class:`~repro.sim.process.SimProcess` between the CPU and the disk until it
completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.obs.trace import ADMIT, START
from repro.sim.config import SimConfig
from repro.sim.cpu import CPU
from repro.sim.disk import Disk
from repro.sim.engine import Engine
from repro.sim.memory import MemoryManager
from repro.sim.process import (
    CPU_BURST,
    IO_BURST,
    ProcState,
    SimProcess,
    build_plan,
)
from repro.workload.request import Request


class Node:
    """One homogeneous cluster node.

    Parameters
    ----------
    engine:
        Shared event engine.
    cfg:
        Cluster configuration (node-level constants are read from it).
    node_id:
        Index of this node within the cluster.
    rng:
        Node-private random generator (burst jitter).
    on_complete:
        Callback ``fn(node, proc)`` invoked when a request finishes.
    """

    __slots__ = ("engine", "cfg", "node_id", "rng", "on_complete",
                 "cpu", "disk", "memory", "active", "admitted", "completed",
                 "static_misses", "cpu_speed", "disk_speed", "procs",
                 "failed", "failures", "backlog", "busy_slots", "transfers",
                 "_release_cb", "_tracer")

    def __init__(self, engine: Engine, cfg: SimConfig, node_id: int,
                 rng: np.random.Generator,
                 on_complete: Callable[["Node", SimProcess], None]):
        self.engine = engine
        self.cfg = cfg
        self.node_id = node_id
        self.rng = rng
        self.on_complete = on_complete
        self.cpu = CPU(engine, cfg.cpu, self._on_cpu_burst_done)
        self.disk = Disk(engine, cfg.disk, self._on_io_burst_done)
        self.memory = MemoryManager(cfg.memory, rng)
        self.active = 0
        self.admitted = 0
        self.completed = 0
        self.static_misses = 0
        #: Heterogeneity: speed multipliers relative to the reference node.
        self.cpu_speed = cfg.node_cpu_speed(node_id)
        self.disk_speed = cfg.node_disk_speed(node_id)
        #: In-flight processes, for failure handling.
        self.procs: set = set()
        self.failed = False
        self.failures = 0
        #: Requests waiting for a free server process (listen backlog).
        self.backlog: deque = deque()
        #: Worker processes in use (serving or draining a response).
        self.busy_slots = 0
        self.transfers = 0
        #: Cached bound callback (scheduled once per completed request).
        self._release_cb = self._release_slot
        #: Observability tap (set by the cluster; ``None`` = disabled).
        self._tracer = None

    # -- admission ------------------------------------------------------------

    def admit(self, request: Request,
              dispatch_latency: float = 0.0) -> Optional[SimProcess]:
        """Accept a request on this node.

        Starts execution immediately and returns the process, unless the
        server-process pool is exhausted — then the request waits in the
        listen backlog and ``None`` is returned (it starts when a worker
        frees up).

        ``dispatch_latency`` is the network time already spent getting the
        request here (remote CGI hop); it is recorded so response times can
        include it without simulating the wire.
        """
        if self.failed:
            raise RuntimeError(f"node {self.node_id} is down")
        self.admitted += 1
        conn = self.cfg.connections
        backlogged = conn.limited and self.busy_slots >= conn.max_processes
        tr = self._tracer
        if tr is not None:
            tr.record(ADMIT, request.req_id, self.node_id, (backlogged,))
        if backlogged:
            self.backlog.append((request, dispatch_latency))
            return None
        return self._start(request, dispatch_latency)

    def _start(self, request: Request,
               dispatch_latency: float) -> SimProcess:
        plan = self._build_plan(request)
        proc = SimProcess(request, self.node_id, plan,
                          admit_time=self.engine.now,
                          dispatch_latency=dispatch_latency)
        cold = self.memory.admit(proc)
        if cold:
            fault_io = cold * self.cfg.disk.page_time / self.disk_speed
            # Cold-start faults hit before the script's own work: insert
            # after the fork burst (index 0) for CGI, at the front otherwise.
            insert_at = 1 if request.is_dynamic and plan[0][0] == CPU_BURST else 0
            plan.insert(insert_at, (IO_BURST, fault_io))
            proc.burst_remaining = plan[0][1]
        tr = self._tracer
        if tr is not None:
            tr.record(START, request.req_id, self.node_id, (len(plan),))
        self.active += 1
        self.busy_slots += 1
        self.procs.add(proc)
        self._route(proc)
        return proc

    def _build_plan(self, request: Request) -> List[Tuple[int, float]]:
        io_chunk = self.cfg.disk.slice_time * 2.0
        io_demand = request.io_demand
        if not request.is_dynamic and self.cfg.memory.enable_paging:
            # Static requests are CPU-only unless the file cache misses, in
            # which case the file must be read from disk.  Misses get more
            # likely as CGI working sets squeeze the cache.
            if self.rng.random() < self.memory.static_miss_probability():
                pages = max(1, -(-request.size_bytes //
                                 self.cfg.memory.page_size))
                io_demand += pages * self.cfg.disk.page_time
                self.static_misses += 1
        # Heterogeneity: demands are stated for the reference node; a
        # faster CPU/disk executes the same demand in proportionally less
        # virtual time.
        cpu_demand = request.cpu_demand / self.cpu_speed
        io_demand /= self.disk_speed
        plan = build_plan(cpu_demand, io_demand, io_chunk, self.rng)
        if request.is_dynamic and self.cfg.cpu.fork_overhead > 0:
            plan.insert(0, (CPU_BURST,
                            self.cfg.cpu.fork_overhead / self.cpu_speed))
        return plan

    # -- burst plumbing ---------------------------------------------------------

    def _route(self, proc: SimProcess) -> None:
        kind = proc.current_kind
        if kind is None:
            self._complete(proc)
        elif kind == CPU_BURST:
            self.cpu.make_runnable(proc)
        else:
            self.disk.submit(proc)

    def _advance(self, proc: SimProcess) -> None:
        refault_pages = self.memory.collect_refaults(proc)
        if refault_pages:
            proc.splice_io(refault_pages * self.cfg.disk.page_time
                           / self.disk_speed)
        kind = proc.advance()
        if kind is None:
            self._complete(proc)
        elif kind == CPU_BURST:
            self.cpu.make_runnable(proc)
        else:
            self.disk.submit(proc)

    def _on_cpu_burst_done(self, proc: SimProcess) -> None:
        self._advance(proc)

    def _on_io_burst_done(self, proc: SimProcess) -> None:
        self._advance(proc)

    def _complete(self, proc: SimProcess) -> None:
        proc.state = ProcState.DONE
        proc.finish_time = self.engine.now
        self.memory.release(proc)
        self.active -= 1
        self.completed += 1
        self.procs.discard(proc)
        self.on_complete(self, proc)
        # The worker stays pinned until the response drains to the client;
        # server-site response time (above) excludes this, capacity doesn't.
        transfer = self.cfg.connections.transfer_time(
            proc.request.size_bytes)
        if transfer > 0.0:
            self.transfers += 1
            self.engine.call_later(transfer, self._release_cb)
        else:
            self._release_slot()

    def _release_slot(self) -> None:
        self.busy_slots -= 1
        if self.failed:
            return
        conn = self.cfg.connections
        while self.backlog and (not conn.limited
                                or self.busy_slots < conn.max_processes):
            request, latency = self.backlog.popleft()
            self._start(request, latency)

    def abort_request(self, req_id: int) -> bool:
        """Abort one backlogged or in-flight request (deadline expiry).

        The victim's resources are released and its worker slot freed (which
        may start a backlogged request); no completion callback fires.
        Returns ``True`` if the request was found on this node.
        """
        for idx, (request, _) in enumerate(self.backlog):
            if request.req_id == req_id:
                del self.backlog[idx]
                return True
        proc = next((p for p in self.procs if p.request.req_id == req_id),
                    None)
        if proc is None:
            return False
        self.cpu.abort(proc)
        self.disk.abort(proc)
        self.memory.release(proc)
        proc.slice_event = None
        self.procs.discard(proc)
        self.active -= 1
        self._release_slot()
        return True

    # -- failure / recovery -------------------------------------------------------

    def fail(self) -> Tuple[List[SimProcess], List[Request]]:
        """Crash the node: abort all in-flight work and reject admissions.

        Returns ``(aborted_processes, backlogged_requests)`` so the
        cluster can restart that work elsewhere ("if a slave node fails, a
        master node may need to restart a dynamic content process on
        another node").
        """
        if self.failed:
            return [], []
        self.failed = True
        self.failures += 1
        self.cpu.abort_all()
        self.disk.abort_all()
        aborted = list(self.procs)
        for proc in aborted:
            self.memory.release(proc)
            proc.slice_event = None
        self.procs.clear()
        queued = [request for request, _ in self.backlog]
        self.backlog.clear()
        self.active = 0
        self.busy_slots = 0
        return aborted, queued

    def recover(self) -> None:
        """Bring a crashed (or standby) node back into service, empty."""
        self.failed = False

    # -- load introspection (what rstat() would report) --------------------------

    @property
    def cpu_queue_length(self) -> int:
        return self.cpu.runnable

    @property
    def disk_queue_length(self) -> int:
        return self.disk.pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Node {self.node_id} active={self.active} "
                f"cpuq={self.cpu_queue_length} diskq={self.disk_queue_length}>")
