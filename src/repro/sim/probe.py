"""Time-series probing of a running cluster.

A :class:`ClusterProbe` samples per-node state on a fixed virtual-time
period — CPU/disk queue lengths, memory pressure, worker-slot usage,
in-flight counts, and (for M/S policies) the adaptive reservation cap —
without touching the simulator's hot path.  The result is a dict of numpy
arrays suitable for plotting or assertions; `examples/
adaptive_reservation.py`-style investigations are one `probe.series()`
away.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.sim.cluster import Cluster

#: Per-node metrics captured each tick (name -> extractor).
_NODE_METRICS = {
    "cpu_queue": lambda node: node.cpu.runnable,
    "disk_queue": lambda node: node.disk.pending,
    "active": lambda node: node.active,
    "busy_slots": lambda node: node.busy_slots,
    "backlog": lambda node: len(node.backlog),
    "memory_pressure": lambda node: node.memory.pressure,
}

#: Per-node availability flags captured from the cluster, not the node.
_CLUSTER_NODE_METRICS = {
    "alive": lambda cluster, i: float(cluster.alive[i]),
    "suspect": lambda cluster, i: float(cluster.monitor.suspect[i]),
}

#: Cluster-wide resilience counters (0 when no resilience layer is armed).
_RESILIENCE_METRICS = {
    "dropped": lambda mgr: mgr.total_dropped,
    "retries": lambda mgr: mgr.retries,
    "timeouts": lambda mgr: mgr.timeouts,
    "shed_level": lambda mgr: mgr.shed_level,
}


class ClusterProbe:
    """Periodic sampler of cluster state.

    Parameters
    ----------
    cluster:
        The cluster to observe.
    period:
        Virtual seconds between samples.
    until:
        Stop sampling after this virtual time (``None`` = sample forever;
        note that an immortal probe keeps the event heap non-empty, so
        bound your ``cluster.run(until=...)`` calls).
    """

    def __init__(self, cluster: Cluster, period: float = 0.5,
                 until: Optional[float] = None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.cluster = cluster
        self.period = period
        self.until = until
        self.times: List[float] = []
        self._node_samples: Dict[str, List[List[float]]] = {
            name: []
            for name in (*_NODE_METRICS, *_CLUSTER_NODE_METRICS)
        }
        self._scalar_samples: Dict[str, List[float]] = {
            name: [] for name in _RESILIENCE_METRICS
        }
        self._theta_caps: List[float] = []
        self._completed: List[int] = []
        self._started = False

    def start(self) -> "ClusterProbe":
        """Arm the probe (first sample after one period)."""
        if self._started:
            raise RuntimeError("probe already started")
        self._started = True
        self.cluster.engine.call_later(self.period, self._tick)
        return self

    def _tick(self) -> None:
        now = self.cluster.engine.now
        if self.until is not None and now > self.until:
            return
        self.times.append(now)
        for name, extract in _NODE_METRICS.items():
            self._node_samples[name].append(
                [float(extract(node)) for node in self.cluster.nodes])
        for name, extract in _CLUSTER_NODE_METRICS.items():
            self._node_samples[name].append(
                [extract(self.cluster, i)
                 for i in range(self.cluster.cfg.num_nodes)])
        mgr = self.cluster.resilience
        for name, extract in _RESILIENCE_METRICS.items():
            self._scalar_samples[name].append(
                float(extract(mgr)) if mgr is not None else 0.0)
        cap = getattr(self.cluster.policy, "theta_cap", None)
        self._theta_caps.append(float("nan") if cap is None else float(cap))
        self._completed.append(len(self.cluster.metrics))
        self.cluster.engine.call_later(self.period, self._tick)

    # -- results ---------------------------------------------------------------

    def series(self, metric: str) -> np.ndarray:
        """(samples x nodes) array for one per-node metric."""
        if metric not in self._node_samples:
            raise KeyError(
                f"unknown metric {metric!r}; known: "
                f"{sorted(self._node_samples)} (+ "
                f"{sorted(self._scalar_samples)}, 'theta_cap', 'completed')"
            )
        return np.asarray(self._node_samples[metric])

    def scalar_series(self, metric: str) -> np.ndarray:
        """(samples,) array for one cluster-wide resilience counter.

        Counters sample as 0 when the cluster runs without a resilience
        layer, so plots stay comparable across configurations.
        """
        if metric not in self._scalar_samples:
            raise KeyError(
                f"unknown scalar metric {metric!r}; known: "
                f"{sorted(self._scalar_samples)}"
            )
        return np.asarray(self._scalar_samples[metric])

    @property
    def time(self) -> np.ndarray:
        return np.asarray(self.times)

    @property
    def theta_cap(self) -> np.ndarray:
        """Reservation-cap trajectory (NaN for policies without one)."""
        return np.asarray(self._theta_caps)

    @property
    def completed(self) -> np.ndarray:
        """Cumulative completed-request counts per sample."""
        return np.asarray(self._completed)

    def throughput(self) -> np.ndarray:
        """Completions per second between consecutive samples."""
        done = self.completed
        if done.size < 2:
            return np.zeros(0)
        return np.diff(done) / np.diff(self.time)

    def peak(self, metric: str) -> float:
        """Largest per-node value observed for a metric."""
        arr = self.series(metric)
        return float(arr.max()) if arr.size else 0.0

    def node_mean(self, metric: str) -> np.ndarray:
        """Time-averaged value per node."""
        arr = self.series(metric)
        if arr.size == 0:
            return np.zeros(self.cluster.cfg.num_nodes)
        return arr.mean(axis=0)
