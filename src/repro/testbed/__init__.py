"""Noisy testbed emulator standing in for the paper's 6-node Sun cluster."""
