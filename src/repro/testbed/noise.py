"""Noise sources that separate a real machine-room from a clean simulator.

The paper validates its simulator against a 6-node Sun cluster and finds
simulated improvements "slightly optimistic ... because the simulator does
not consider background jobs running in the cluster and only captures
approximated behavior of Solaris OS 2.5."  The testbed emulator reintroduces
exactly those effects:

* **Background jobs** — per-node Poisson stream of OS daemons / cron work
  consuming CPU and disk outside the measured workload.
* **Demand jitter** — per-request multiplicative perturbation of service
  demands (un-modelled OS overheads: TLB, interrupts, file-system variance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.cluster import Cluster
from repro.workload.request import Request, RequestKind


@dataclass(slots=True)
class NoiseConfig:
    """Strength of the testbed's un-modelled effects."""

    #: Background jobs per second *per node*.
    bg_rate: float = 2.0
    #: Mean total service demand of one background job (seconds).
    bg_demand: float = 0.06
    #: CPU share of a background job's demand.
    bg_cpu_fraction: float = 0.6
    #: Working-set pages of a background job.
    bg_mem_pages: int = 64
    #: Lognormal sigma applied multiplicatively to every foreground
    #: request's demands (0 disables).
    demand_jitter: float = 0.15
    seed: int = 12345

    def validate(self) -> None:
        if self.bg_rate < 0:
            raise ValueError("bg_rate must be >= 0")
        if self.bg_demand <= 0:
            raise ValueError("bg_demand must be positive")
        if not 0.0 <= self.bg_cpu_fraction <= 1.0:
            raise ValueError("bg_cpu_fraction must be in [0, 1]")
        if self.bg_mem_pages < 0:
            raise ValueError("bg_mem_pages must be >= 0")
        if self.demand_jitter < 0:
            raise ValueError("demand_jitter must be >= 0")


class BackgroundLoad:
    """Injects Poisson background jobs into every node until ``stop_at``.

    ``stop_at`` is a hard budget boundary: no job is injected at or past
    it, and a job injected just before it has its demand clipped to the
    remaining window, so the *injected* background demand never outlives
    the stop time (a run's drain phase stays noise-free and deterministic
    in length).  Every injection is logged on :attr:`injections` as
    ``(inject_time, total_demand)`` for post-run assertions.
    """

    def __init__(self, cluster: Cluster, cfg: NoiseConfig, stop_at: float):
        cfg.validate()
        self.cluster = cluster
        self.cfg = cfg
        self.stop_at = stop_at
        self.rng = np.random.default_rng(cfg.seed)
        self.injected = 0
        #: ``(inject_time, cpu + io demand)`` of every injected job.
        self.injections: List[tuple] = []
        self._next_id = -1  # background req_ids are negative-ish markers

    def start(self) -> None:
        if self.cfg.bg_rate <= 0:
            return
        for node_id in range(self.cluster.cfg.num_nodes):
            self._schedule_next(node_id)

    def _schedule_next(self, node_id: int) -> None:
        gap = self.rng.exponential(1.0 / self.cfg.bg_rate)
        when = self.cluster.engine.now + gap
        if when >= self.stop_at:
            return
        self.cluster.engine.schedule(gap, self._inject, node_id)

    def _inject(self, node_id: int) -> None:
        cfg = self.cfg
        budget = self.stop_at - self.cluster.engine.now
        if budget <= 0.0:        # at/past the boundary: nothing to inject
            return
        demand = min(self.rng.exponential(cfg.bg_demand), budget)
        cpu = max(demand * cfg.bg_cpu_fraction, 1e-6)
        io = demand * (1.0 - cfg.bg_cpu_fraction)
        self.injections.append((self.cluster.engine.now, cpu + io))
        self._next_id += 1
        req = Request(
            req_id=10_000_000 + self._next_id,
            arrival_time=self.cluster.engine.now,
            kind=RequestKind.DYNAMIC,
            cpu_demand=cpu,
            io_demand=io,
            mem_pages=cfg.bg_mem_pages,
            type_key="background",
        )
        self.cluster.admit_background(req, node_id)
        self.injected += 1
        self._schedule_next(node_id)


def jitter_demands(requests: Sequence[Request], sigma: float,
                   seed: int = 0) -> List[Request]:
    """Return a copy of the trace with lognormal demand perturbation.

    The jitter is mean-one, so trace-level calibration is preserved while
    individual requests deviate like real measurements do.
    """
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0:
        return list(requests)
    rng = np.random.default_rng(seed)
    mu = -sigma ** 2 / 2.0
    out: List[Request] = []
    for req in requests:
        f = float(rng.lognormal(mu, sigma))
        out.append(Request(
            req_id=req.req_id,
            arrival_time=req.arrival_time,
            kind=req.kind,
            cpu_demand=req.cpu_demand * f,
            io_demand=req.io_demand * f,
            mem_pages=req.mem_pages,
            size_bytes=req.size_bytes,
            type_key=req.type_key,
        ))
    return out
