"""The "actual execution" stand-in for the paper's 6-node Sun cluster.

Section 5.2.2 validates the simulator against a real cluster of six Sun
Ultra-1 workstations (Solaris 2.5, Fast Ethernet, 110 static requests/s per
node).  No such hardware is available here — and on a single-core host a
real multi-process testbed would measure the host's scheduler, not the
paper's — so the validation target is an *emulated testbed*: the same
simulation substrate configured like the Sun cluster and degraded by the
effects the paper says the simulator omits (background jobs, un-modelled OS
behaviour).  Table 3 then compares improvement ratios between the clean
simulator ("Simu") and this emulator ("Actual"), expecting small gaps with
the clean simulator slightly optimistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.policies import Policy
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig, testbed_sim_config
from repro.sim.metrics import MetricsReport
from repro.testbed.noise import BackgroundLoad, NoiseConfig, jitter_demands
from repro.workload.request import Request

#: Per-node static capacity of a Sun Ultra-1 under SPECweb96 (paper value).
SUN_ULTRA1_STATIC_RATE = 110.0

#: Cluster size of the paper's validation testbed.
SUN_CLUSTER_NODES = 6


@dataclass(slots=True)
class TestbedConfig:
    """Emulated Sun-cluster parameters."""

    num_nodes: int = SUN_CLUSTER_NODES
    static_rate: float = SUN_ULTRA1_STATIC_RATE
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    seed: int = 0

    def sim_config(self) -> SimConfig:
        cfg = testbed_sim_config(num_nodes=self.num_nodes, seed=self.seed)
        cfg.static_rate = self.static_rate
        return cfg.validate()


# Despite the name, this is configuration, not a pytest test class.
TestbedConfig.__test__ = False


def replay_on_testbed(
    policy: Policy,
    requests: Sequence[Request],
    testbed: Optional[TestbedConfig] = None,
    *,
    warmup_fraction: float = 0.1,
    drain: float = 30.0,
) -> MetricsReport:
    """Replay a trace on the noisy testbed emulator.

    Mirrors :func:`repro.workload.replay.replay` but (a) perturbs request
    demands with the testbed's measurement jitter and (b) keeps a stream of
    background jobs running on every node for the duration of the replay.
    """
    tb = testbed or TestbedConfig()
    if not requests:
        raise ValueError("empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")

    trace = jitter_demands(requests, tb.noise.demand_jitter,
                           seed=tb.noise.seed)
    cfg = tb.sim_config()
    cluster = Cluster(cfg, policy)

    first = min(q.arrival_time for q in trace)
    last = max(q.arrival_time for q in trace)
    warmup = first + (last - first) * warmup_fraction

    background = BackgroundLoad(cluster, tb.noise, stop_at=last)
    background.start()
    cluster.submit_many(trace)

    deadline = last + drain
    cluster.run(until=deadline)
    extensions = 0
    while any(node.active for node in cluster.nodes) and extensions < 20:
        deadline += drain
        cluster.run(until=deadline)
        extensions += 1

    report = cluster.metrics.report(warmup=warmup)
    if report.completed == 0:
        raise RuntimeError("no requests completed on the testbed emulator")
    return report
