"""Crash-isolated process pool for independent experiment configurations.

The experiment grids (Fig 4/5, chaos sweeps, the bench harness) are
embarrassingly parallel: each configuration replays a private cluster and
returns a picklable result.  This module fans such configurations out over
``multiprocessing`` workers with three properties the stdlib pools do not
give us together:

* **Crash isolation.**  A worker that dies mid-task (segfault, OOM kill,
  ``os._exit``) fails *that* configuration — the pool respawns a
  replacement and the run completes.  ``concurrent.futures``'
  ``ProcessPoolExecutor`` instead poisons the whole pool with
  ``BrokenProcessPool``.
* **Chunked self-scheduling ("work stealing").**  Tasks are handed out
  ``chunk_size`` at a time as workers finish, so a slow configuration
  (128-node cluster) does not leave the other workers idle behind a static
  partition.
* **Determinism.**  Results come back in input order, and the payloads
  carry their own seeds, so ``jobs=1`` and ``jobs=N`` produce bit-identical
  outputs (see ``tests/test_perf_pool.py``).

The worker callable must be a module-level function (picklable by
reference) taking one payload argument; payloads and results must pickle.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

#: How long the supervisor waits on the result queue before checking
#: whether any worker died (seconds).
_LIVENESS_POLL = 0.2


@dataclass(slots=True)
class TaskResult:
    """Outcome of one payload: a value, or an error description."""

    index: int
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """The value, raising ``RuntimeError`` if the task failed."""
        if self.error is not None:
            raise RuntimeError(f"task {self.index} failed: {self.error}")
        return self.value


def _pool_context() -> mp.context.BaseContext:
    """Fork where available (cheap, inherits the warmed interpreter);
    spawn elsewhere."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _run_inline(fn: Callable[[Any], Any],
                payloads: Sequence[Any]) -> List[TaskResult]:
    results = []
    for i, payload in enumerate(payloads):
        try:
            results.append(TaskResult(index=i, value=fn(payload)))
        except Exception as exc:
            results.append(TaskResult(
                index=i, error="".join(traceback.format_exception_only(exc)).strip()))
    return results


def _worker_main(worker_id: int, fn: Callable[[Any], Any],
                 payloads: Sequence[Any], task_q: Any, result_q: Any) -> None:
    """Worker loop: execute assigned chunks, report per-index results.

    Assignments arrive as lists of payload indices; ``None`` is the stop
    sentinel.  Every index gets its own ``ok``/``err`` message, so if the
    process dies mid-chunk the supervisor knows exactly which indices were
    lost.
    """
    while True:
        chunk = task_q.get()
        if chunk is None:
            break
        for idx in chunk:
            try:
                value = fn(payloads[idx])
            except Exception as exc:
                result_q.put(("err", worker_id, idx,
                              "".join(traceback.format_exception_only(exc)).strip()))
            else:
                result_q.put(("ok", worker_id, idx, value))
        result_q.put(("next", worker_id))


class _Worker:
    """Supervisor-side handle: the process, its private task queue, and the
    set of indices assigned but not yet reported back."""

    __slots__ = ("process", "task_q", "outstanding")

    def __init__(self, ctx: mp.context.BaseContext, worker_id: int,
                 fn: Callable[[Any], Any], payloads: Sequence[Any],
                 result_q: Any):
        self.task_q = ctx.Queue()
        self.outstanding: set = set()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, fn, payloads, self.task_q, result_q),
            daemon=True,
        )
        self.process.start()


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: int = 1,
    *,
    chunk_size: int = 1,
) -> List[TaskResult]:
    """Apply ``fn`` to every payload, ``jobs`` processes at a time.

    Returns one :class:`TaskResult` per payload **in input order**.  A
    payload whose execution raises records the exception text; a payload
    whose worker process dies records a crash error — either way the
    remaining payloads still run.

    ``jobs <= 1`` executes inline in this process (no multiprocessing at
    all), which is the reference the determinism tests compare against.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    payloads = list(payloads)
    n = len(payloads)
    if jobs == 1 or n <= 1:
        return _run_inline(fn, payloads)
    jobs = min(jobs, n)

    ctx = _pool_context()
    result_q = ctx.Queue()
    chunks = [list(range(start, min(start + chunk_size, n)))
              for start in range(0, n, chunk_size)]
    next_chunk = 0

    results: List[Optional[TaskResult]] = [None] * n
    remaining = n
    workers: dict = {}
    next_worker_id = 0

    def assign(worker: _Worker) -> None:
        nonlocal next_chunk
        if next_chunk < len(chunks):
            chunk = chunks[next_chunk]
            next_chunk += 1
            worker.outstanding.update(chunk)
            worker.task_q.put(chunk)
        else:
            worker.task_q.put(None)

    def spawn() -> None:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        worker = _Worker(ctx, worker_id, fn, payloads, result_q)
        workers[worker_id] = worker
        assign(worker)

    for _ in range(jobs):
        spawn()

    def handle(msg: tuple) -> None:
        nonlocal remaining
        kind, worker_id = msg[0], msg[1]
        worker = workers.get(worker_id)
        if kind == "next":
            if worker is not None:
                assign(worker)
            return
        _, _, idx, payload = msg
        if worker is not None:
            worker.outstanding.discard(idx)
        if results[idx] is not None:
            return  # already marked crashed; the late message loses
        if kind == "ok":
            results[idx] = TaskResult(index=idx, value=payload)
        else:
            results[idx] = TaskResult(index=idx, error=payload)
        remaining -= 1

    def reap_dead() -> None:
        nonlocal remaining
        dead = [(wid, w) for wid, w in workers.items()
                if not w.process.is_alive()]
        if not dead:
            return
        # A dying worker may have results still buffered in the queue's
        # feeder thread; drain before declaring its assignments lost.
        while True:
            try:
                handle(result_q.get(timeout=_LIVENESS_POLL))
            except queue_mod.Empty:
                break
        for worker_id, worker in dead:
            exitcode = worker.process.exitcode
            lost = sorted(worker.outstanding)
            del workers[worker_id]
            for idx in lost:
                if results[idx] is None:
                    results[idx] = TaskResult(
                        index=idx,
                        error=(f"worker process died (exitcode={exitcode}) "
                               f"while running this task"),
                    )
                    remaining -= 1
            if remaining > 0:
                spawn()  # keep the pool at strength

    try:
        while remaining > 0:
            try:
                handle(result_q.get(timeout=_LIVENESS_POLL))
            except queue_mod.Empty:
                reap_dead()
    finally:
        for worker in workers.values():
            worker.task_q.put(None)
        for worker in workers.values():
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()

    return [r for r in results if r is not None]


def run_values(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: int = 1,
    *,
    chunk_size: int = 1,
) -> List[Any]:
    """Like :func:`run_tasks` but unwraps values, raising on the first
    failed task (with its original error text)."""
    return [r.unwrap() for r in run_tasks(fn, payloads, jobs,
                                          chunk_size=chunk_size)]
