"""The ``python -m repro bench`` harness.

Measures the simulator's three performance surfaces and writes one
``BENCH_<timestamp>.json`` record (see :mod:`repro.perf.record`):

1. **Kernel micro-throughput** — events/sec of the bare engine on a
   replay-shaped workload (batch-submitted arrivals, run to exhaustion).
   This is the number CI gates on: it is host-noise-tolerant (best of
   several reps) and independent of the experiment grid's size.
2. **Experiment wall time** — the bake-off sweep and the chaos suite,
   fanned out over :mod:`repro.perf.pool` workers (``--jobs``), timed per
   stage.  ``quick`` runs a trimmed 8-node grid suitable for every CI
   push; ``full`` (weekly, or ``REPRO_BENCH_SCALE=full``) runs the real
   Figure-4/5 grids.
3. **Peak RSS** — the run's memory high-water mark, self plus workers.

Gating: when ``benchmarks/baseline.json`` exists, the run fails (exit 1)
if events/sec regressed more than 20% against it.  Refresh the committed
baseline with ``--update-baseline`` after intentional perf changes.
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.perf import record as record_mod
from repro.perf.record import (
    BenchRecord,
    compare_to_baseline,
    config_fingerprint,
    load_baseline,
    write_baseline,
    write_record,
)
from repro.sim.config import SimConfig
from repro.sim.engine import Engine

#: Default location of the committed CI baseline.
DEFAULT_BASELINE = Path("benchmarks") / "baseline.json"

_SCALES = ("quick", "full")


def resolve_scale(quick_flag: bool = False,
                  env: Optional[str] = None) -> str:
    """Scale from the CLI flag or ``REPRO_BENCH_SCALE`` (default quick)."""
    if quick_flag:
        return "quick"
    value = (env if env is not None
             else os.environ.get("REPRO_BENCH_SCALE", "quick")).lower()
    if value not in _SCALES:
        raise SystemExit(
            f"REPRO_BENCH_SCALE must be one of {'|'.join(_SCALES)}, "
            f"got {value!r}")
    return value


# -- stage 1: kernel micro-throughput ---------------------------------------


def _noop() -> None:
    pass


def measure_engine_throughput(n: int = 200_000, reps: int = 5) -> float:
    """Events/sec of the bare kernel, best of ``reps``.

    Best-of (not mean) is the noise-robust point estimate: host
    interference only ever slows a rep down, so the fastest rep is the
    closest to the machine's true capability.  The first rep additionally
    warms allocator and code caches.
    """
    best = float("inf")
    for _ in range(reps):
        eng = Engine()
        start = time.perf_counter()
        eng.call_at_many(((i % 9973) / 100.0, _noop, ()) for i in range(n))
        eng.run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return n / best


# -- stage 2: experiment grids ----------------------------------------------


def _quick_grid() -> list:
    """The trimmed bake-off grid CI replays on every push: 8 configurations
    on 8-node clusters, two policies each."""
    from repro.analysis.experiments import iso_load_rate
    from repro.analysis.sweep import BakeoffSpec
    from repro.workload.traces import TRACES

    points = []
    for trace_name in ("UCB", "KSU"):
        spec = TRACES[trace_name]
        for inv_r in (20, 80):
            for util in (0.6, 0.75):
                r = 1.0 / inv_r
                lam = iso_load_rate(spec, 1200.0, r, 8, util)
                points.append(BakeoffSpec(
                    spec_name=trace_name, lam=lam, r=r, p=8, duration=3.0,
                    seed=11, policies=("MS", "Flat")))
    return points


def _full_grid() -> list:
    """The real Figure-4 grid (weekly CI / local deep runs)."""
    from repro.analysis.experiments import (
        FIG4_INV_R,
        FIG4_UTILIZATIONS,
        iso_load_rate,
    )
    from repro.analysis.sweep import BakeoffSpec
    from repro.workload.traces import EXPERIMENT_TRACES

    points = []
    for p in (32, 128):
        duration = max(3.0, 10.0 * 32.0 / p)
        for spec in EXPERIMENT_TRACES:
            for util in FIG4_UTILIZATIONS:
                for inv_r in FIG4_INV_R:
                    r = 1.0 / inv_r
                    lam = iso_load_rate(spec, 1200.0, r, p, util)
                    points.append(BakeoffSpec(
                        spec_name=spec.name, lam=lam, r=r, p=p,
                        duration=duration, seed=11))
    return points


def _chaos_params(scale: str) -> Dict[str, object]:
    if scale == "full":
        return dict(p=16, rate=400.0, duration=60.0)
    return dict(p=8, rate=200.0, duration=20.0)


def _chaos_scenarios(scale: str) -> Sequence[str]:
    if scale == "full":
        from repro.sim.failures import CHAOS_SCENARIOS
        return tuple(sorted(CHAOS_SCENARIOS))
    return ("crash-storm", "storm-burst")


def run_bench(
    jobs: int = 1,
    scale: str = "quick",
    out_dir: Path = Path("."),
    baseline_path: Path = DEFAULT_BASELINE,
    update_baseline: bool = False,
) -> int:
    """Run the full bench suite; returns the process exit code."""
    total_start = time.perf_counter()
    grid = _quick_grid() if scale == "quick" else _full_grid()
    # The wall-time gate compares against a tracing-disabled baseline, so
    # force tracing off even if the environment asks every replay to audit
    # (worker processes inherit the suppression).
    saved_audit = os.environ.pop("REPRO_AUDIT", None)
    try:
        return _run_bench_stages(jobs, scale, out_dir, baseline_path,
                                 update_baseline, grid, total_start)
    finally:
        if saved_audit is not None:
            os.environ["REPRO_AUDIT"] = saved_audit


def _run_bench_stages(
    jobs: int,
    scale: str,
    out_dir: Path,
    baseline_path: Path,
    update_baseline: bool,
    grid,
    total_start: float,
) -> int:
    from repro.analysis.experiments import run_chaos_suite
    from repro.analysis.sweep import run_bakeoff_grid

    record = BenchRecord(
        scale=scale,
        jobs=jobs,
        engine_events_per_sec=0.0,
        config_fingerprint=config_fingerprint({
            "scale": scale,
            "grid": [(pt.spec_name, round(pt.lam, 6), pt.p,
                      round(1 / pt.r), pt.duration, pt.seed, pt.policies)
                     for pt in grid],
            "chaos": {"scenarios": list(_chaos_scenarios(scale)),
                      **_chaos_params(scale)},
            "sim_config": asdict(SimConfig()),
        }),
    )

    print(f"repro bench: scale={scale} jobs={jobs}")

    start = time.perf_counter()
    record.engine_events_per_sec = measure_engine_throughput()
    print(f"  engine        {record.engine_events_per_sec:>12,.0f} ev/s "
          f"({time.perf_counter() - start:.2f}s)")

    start = time.perf_counter()
    results = run_bakeoff_grid(grid, jobs=jobs)
    wall = time.perf_counter() - start
    stage = "fig4-quick" if scale == "quick" else "fig4"
    record.figures[stage] = {"wall_s": round(wall, 3),
                             "configs": float(len(results)), "jobs": float(jobs)}
    print(f"  {stage:<13} {wall:>8.2f}s wall ({len(results)} configs)")

    start = time.perf_counter()
    chaos = run_chaos_suite(_chaos_scenarios(scale), jobs=jobs,
                            audit=False, **_chaos_params(scale))
    wall = time.perf_counter() - start
    record.figures["chaos"] = {"wall_s": round(wall, 3),
                               "configs": float(len(chaos)),
                               "jobs": float(jobs)}
    print(f"  {'chaos':<13} {wall:>8.2f}s wall ({len(chaos)} scenarios)")

    record.total_wall_s = round(time.perf_counter() - total_start, 3)
    record.finalize()
    path = write_record(record, out_dir)
    print(f"  peak RSS      {record.peak_rss_kb / 1024:>8.1f} MiB")
    print(f"wrote {path}")

    if update_baseline:
        base_path = write_baseline(record, baseline_path)
        print(f"refreshed baseline {base_path}")
        return 0

    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"no baseline at {baseline_path}; skipping regression gate "
              f"(create one with --update-baseline)")
        return 0
    ok, message = compare_to_baseline(record, baseline,
                                      record_mod.DEFAULT_TOLERANCE)
    print(message)
    return 0 if ok else 1


# -- CLI ---------------------------------------------------------------------


def add_bench_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``bench`` subcommand on the ``repro`` CLI."""
    p = sub.add_parser(
        "bench",
        help="run the perf suite and emit a BENCH_<timestamp>.json record")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the experiment grids")
    p.add_argument("--quick", action="store_true",
                   help="force the quick grid (overrides REPRO_BENCH_SCALE)")
    p.add_argument("--out-dir", default=".",
                   help="directory for BENCH_<timestamp>.json")
    p.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                   help="baseline json to gate against")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run instead of "
                        "gating against it")
    p.set_defaults(func=cmd_bench)


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run the perf suite."""
    return run_bench(
        jobs=args.jobs,
        scale=resolve_scale(quick_flag=args.quick),
        out_dir=Path(args.out_dir),
        baseline_path=Path(args.baseline),
        update_baseline=args.update_baseline,
    )
