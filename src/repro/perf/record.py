"""Machine-readable perf ledger: ``BENCH_<timestamp>.json``.

Every ``python -m repro bench`` run emits one record so the repo
accumulates a benchmark trajectory, and CI can gate on regressions
against a committed baseline (``benchmarks/baseline.json``).

Record schema (``"schema": "repro-bench/1"``)::

    {
      "schema": "repro-bench/1",
      "created": "2026-08-07T12:34:56Z",     # UTC, second resolution
      "scale": "quick" | "full",
      "jobs": 2,
      "python": "3.11.7",
      "platform": "Linux-...",
      "config_fingerprint": "9f2c...",       # sha256 over the default
                                             # SimConfig + workload grid
      "engine_events_per_sec": 803891.0,     # kernel micro-throughput
      "peak_rss_kb": 181932,                 # self + children high-water
      "figures": {                           # wall seconds per stage
        "fig4-quick": {"wall_s": 3.21, "configs": 4, "jobs": 2},
        ...
      },
      "total_wall_s": 5.67
    }

The baseline file stores the subset used for gating (events/sec plus the
figure wall times) and is refreshed with ``repro bench --update-baseline``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

SCHEMA = "repro-bench/1"

#: Allowed relative slowdown of events/sec before the gate fails (20%).
DEFAULT_TOLERANCE = 0.20


@dataclass(slots=True)
class BenchRecord:
    """One bench run's measurements (see module docstring for the schema)."""

    scale: str
    jobs: int
    engine_events_per_sec: float
    figures: Dict[str, Dict[str, float]] = field(default_factory=dict)
    total_wall_s: float = 0.0
    config_fingerprint: str = ""
    created: str = ""
    python: str = ""
    platform: str = ""
    peak_rss_kb: int = 0
    schema: str = SCHEMA

    def finalize(self) -> "BenchRecord":
        """Stamp environment fields just before writing."""
        self.created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self.python = platform.python_version()
        self.platform = platform.platform()
        self.peak_rss_kb = peak_rss_kb()
        return self

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"


def peak_rss_kb() -> int:
    """High-water resident set size of this process and its (reaped)
    children, in KiB.  ``ru_maxrss`` is KiB on Linux, bytes on macOS."""
    divisor = 1024 if sys.platform == "darwin" else 1
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, kids) // divisor)


def config_fingerprint(parts: Dict[str, object]) -> str:
    """Stable sha256 over the configuration that shaped the run, so two
    records are only comparable when their fingerprints match."""
    blob = json.dumps(parts, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def write_record(record: BenchRecord, out_dir: Path) -> Path:
    """Write ``BENCH_<timestamp>.json`` into ``out_dir`` and return it."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = record.created.replace("-", "").replace(":", "")
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(record.to_json())
    return path


# -- baseline gating ---------------------------------------------------------


def baseline_from_record(record: BenchRecord) -> Dict[str, object]:
    """The committed-baseline subset of a record."""
    return {
        "schema": SCHEMA,
        "created": record.created,
        "scale": record.scale,
        "config_fingerprint": record.config_fingerprint,
        "engine_events_per_sec": record.engine_events_per_sec,
        "figures": {name: fig["wall_s"]
                    for name, fig in record.figures.items()},
    }


def write_baseline(record: BenchRecord, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline_from_record(record), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> Optional[Dict[str, object]]:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def compare_to_baseline(
    record: BenchRecord,
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[bool, str]:
    """Gate: does this record's events/sec hold up against the baseline?

    Returns ``(ok, message)``.  Only the engine throughput gates — figure
    wall times are reported for trend reading but depend too heavily on
    host load to fail CI on.  Records with a different fingerprint or
    scale than the baseline are incomparable and pass with a note.
    """
    base_eps = float(baseline.get("engine_events_per_sec", 0.0))
    if base_eps <= 0.0:
        return True, "baseline has no events/sec; nothing to compare"
    if baseline.get("scale") != record.scale:
        return True, (f"baseline scale {baseline.get('scale')!r} != run "
                      f"scale {record.scale!r}; skipping comparison")
    if baseline.get("config_fingerprint") != record.config_fingerprint:
        return True, ("config fingerprint changed since the baseline was "
                      "recorded; refresh it with --update-baseline")
    ratio = record.engine_events_per_sec / base_eps
    message = (f"engine: {record.engine_events_per_sec:,.0f} ev/s vs "
               f"baseline {base_eps:,.0f} ev/s ({ratio:.2f}x, "
               f"tolerance -{tolerance:.0%})")
    if ratio < 1.0 - tolerance:
        return False, "PERF REGRESSION: " + message
    return True, message
