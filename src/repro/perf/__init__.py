"""Performance subsystem: parallel experiment runner and perf ledger.

* :mod:`repro.perf.pool` — crash-isolated multiprocessing pool with
  chunked self-scheduling, used to fan independent experiment
  configurations across cores.
* :mod:`repro.perf.record` — the ``BENCH_<timestamp>.json`` perf-ledger
  schema, plus baseline load/compare/refresh for the CI gate.
* :mod:`repro.perf.bench` — the ``python -m repro bench`` harness.

See ``docs/performance.md`` for the architecture and the ledger schema.
"""

from repro.perf.pool import TaskResult, run_tasks, run_values
from repro.perf.record import BenchRecord

__all__ = ["TaskResult", "run_tasks", "run_values", "BenchRecord"]
