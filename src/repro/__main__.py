"""Entry point: ``python -m repro <command>``."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
