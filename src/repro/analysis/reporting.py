"""Plain-text rendering of experiment results (tables and figure series).

Everything the benchmarks print goes through these helpers so EXPERIMENTS.md
and the bench output stay consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5]], title="T"))
    T
    a  b
    -  ----
    1  2.50
    """
    def cell(v) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w)
                         for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  xlabel: str = "x", ylabel: str = "y") -> str:
    """Render one figure series as labelled (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    pairs = ", ".join(f"{x}:{y:.1f}" for x, y in zip(xs, ys))
    return f"{name} [{xlabel} -> {ylabel}]: {pairs}"


def percent(x: float) -> str:
    """Format an improvement percentage the way the paper quotes them."""
    return f"{x:+.0f}%"
