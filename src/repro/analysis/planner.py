"""Capacity planning on top of the Section-3 model.

The queuing model's practical payoff is answering operator questions
without replaying anything:

* :func:`size_cluster` — smallest node count (and master split) meeting a
  stretch target for a given workload;
* :func:`max_sustainable_rate` — largest arrival rate a given cluster
  sustains under a stretch target (binary search on the monotone model);
* :func:`headroom` — how much rate growth the current operating point has
  left.

All answers come from the M/S model at its Theorem-1 operating point; the
simulator adds OS overheads on top, so treat these as slightly optimistic
(see ``examples/capacity_planning.py`` for a model-vs-simulation check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.queuing import Workload, flat_stretch
from repro.core.theorem import MSDesign, optimal_masters

#: Upper bound on the node counts :func:`size_cluster` will consider.
MAX_NODES = 4096


@dataclass(frozen=True, slots=True)
class ClusterPlan:
    """A sizing decision and its predicted operating point."""

    p: int
    design: MSDesign
    target_stretch: float
    flat_stretch: float

    @property
    def m(self) -> int:
        return self.design.m

    @property
    def predicted_stretch(self) -> float:
        return self.design.sm

    @property
    def margin(self) -> float:
        """Fraction of the target left unused (0 = exactly at target)."""
        return 1.0 - self.predicted_stretch / self.target_stretch


def _workload(lam: float, a: float, mu_h: float, r: float,
              p: int) -> Workload:
    return Workload.from_ratios(lam=lam, a=a, mu_h=mu_h, r=r, p=p)


def ms_design_stretch(lam: float, a: float, mu_h: float, r: float,
                      p: int) -> Optional[float]:
    """Predicted M/S stretch at the Theorem-1 design, ``None`` if the
    workload is infeasible on ``p`` nodes."""
    w = _workload(lam, a, mu_h, r, p)
    if not w.feasible:
        return None
    try:
        return optimal_masters(w).sm
    except (ValueError, ArithmeticError):
        return None


def size_cluster(target_stretch: float, *, lam: float, a: float,
                 mu_h: float = 1200.0, r: float = 1.0 / 40.0,
                 max_nodes: int = MAX_NODES) -> ClusterPlan:
    """Smallest cluster meeting a mean-stretch target for the workload.

    Raises ``ValueError`` when no cluster up to ``max_nodes`` suffices.
    The M/S stretch is monotone decreasing in ``p`` (more capacity never
    hurts a well-sized design), so the scan stops at the first success.
    """
    if target_stretch < 1.0:
        raise ValueError("target_stretch must be >= 1 (stretch floor)")
    if max_nodes < 1:
        raise ValueError("max_nodes must be >= 1")
    for p in range(1, max_nodes + 1):
        w = _workload(lam, a, mu_h, r, p)
        if not w.feasible:
            continue
        try:
            design = optimal_masters(w)
        except (ValueError, ArithmeticError):
            continue
        if design.sm <= target_stretch:
            return ClusterPlan(p=p, design=design,
                               target_stretch=target_stretch,
                               flat_stretch=flat_stretch(w))
    raise ValueError(
        f"no cluster of up to {max_nodes} nodes meets stretch "
        f"{target_stretch} for lam={lam}, a={a}, r={r}"
    )


def max_sustainable_rate(p: int, *, target_stretch: float, a: float,
                         mu_h: float = 1200.0, r: float = 1.0 / 40.0,
                         tolerance: float = 1e-3) -> float:
    """Largest arrival rate ``p`` nodes sustain under the stretch target.

    Binary search: the M/S stretch at the Theorem-1 design is monotone
    increasing in the arrival rate.
    """
    if target_stretch < 1.0:
        raise ValueError("target_stretch must be >= 1")
    if p < 1:
        raise ValueError("p must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    # Bracket: capacity limit gives the upper bound.
    unit = _workload(1.0, a, mu_h, r, p).total_offered
    hi = p / unit          # rate at 100% offered load (infeasible)
    lo = 0.0
    s_probe = ms_design_stretch(hi * 0.999, a, mu_h, r, p)
    if s_probe is not None and s_probe <= target_stretch:
        return hi * 0.999
    while hi - lo > tolerance * hi:
        mid = (lo + hi) / 2.0
        s = ms_design_stretch(mid, a, mu_h, r, p) if mid > 0 else 1.0
        if s is not None and s <= target_stretch:
            lo = mid
        else:
            hi = mid
    return lo


def headroom(lam: float, *, p: int, target_stretch: float, a: float,
             mu_h: float = 1200.0, r: float = 1.0 / 40.0) -> float:
    """Rate growth factor available before the stretch target is hit.

    >>> # headroom 1.0 means the cluster is exactly at its limit
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    limit = max_sustainable_rate(p, target_stretch=target_stretch, a=a,
                                 mu_h=mu_h, r=r)
    return limit / lam
