"""Experiment harnesses regenerating the paper's tables and figures."""
