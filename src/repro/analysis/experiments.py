"""Experiment harnesses — one per table/figure in the paper (DESIGN.md §4).

Each ``run_*`` function returns a structured result with a ``render()``
method producing the text the benchmarks print and EXPERIMENTS.md records.
Scaled-down defaults keep a full regeneration tractable on a laptop; pass
larger ``duration``/rate grids to approach the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control import ControlConfig

import numpy as np

from repro.analysis.figures import grouped_bar_chart, line_plot
from repro.analysis.reporting import format_table
from repro.analysis.sweep import (
    BakeoffResult,
    BakeoffSpec,
    choose_masters,
    make_bakeoff_policy,
    run_bakeoff,
    run_bakeoff_grid,
)
from repro.core.policies import make_ms
from repro.obs import Tracer, audit_cluster
from repro.core.queuing import Workload, best_msprime, flat_stretch
from repro.core.stretch import improvement_percent
from repro.core.theorem import optimal_masters
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig
from repro.sim.failures import CHAOS_SCENARIOS, ChaosScenario, FailurePolicy
from repro.sim.resilience import ResilienceConfig
from repro.testbed.emulator import TestbedConfig, replay_on_testbed
from repro.workload.generator import generate_trace, trace_statistics
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.request import Request
from repro.workload.traces import ADL, EXPERIMENT_TRACES, KSU, TRACES, UCB, TraceSpec

# ---------------------------------------------------------------------------
# Figure 3 — analytic improvement of M/S over flat and over M/S'
# ---------------------------------------------------------------------------

#: The paper's Figure-3 parameter grid: lam=1000, p=32, mu_h=1200,
#: a in {2/8, 3/7, 4/6}, r in {1/10, 1/20, 1/40, 1/80}.
FIG3_A_VALUES: Tuple[float, ...] = (2 / 8, 3 / 7, 4 / 6)
FIG3_INV_R: Tuple[int, ...] = (10, 20, 40, 80)


@dataclass(slots=True)
class Fig3Row:
    a: float
    inv_r: int
    m_opt: int
    theta_opt: float
    sm: float
    sf: float
    sm_prime: float
    improvement_vs_flat: float     # percent
    improvement_vs_msprime: float  # percent


@dataclass(slots=True)
class Fig3Result:
    lam: float
    p: int
    mu_h: float
    rows: List[Fig3Row]

    def series(self, a: float, which: str) -> List[Tuple[int, float]]:
        """(1/r, improvement%) pairs for one ``a`` curve."""
        attr = {"flat": "improvement_vs_flat",
                "msprime": "improvement_vs_msprime"}[which]
        return [(row.inv_r, getattr(row, attr))
                for row in self.rows if abs(row.a - a) < 1e-12]

    def max_improvement(self, which: str) -> float:
        attr = {"flat": "improvement_vs_flat",
                "msprime": "improvement_vs_msprime"}[which]
        return max(getattr(row, attr) for row in self.rows)

    def render(self) -> str:
        rows = [
            [f"{r.a:.3f}", r.inv_r, r.m_opt, f"{r.theta_opt:.3f}",
             r.sm, r.sf, r.sm_prime,
             r.improvement_vs_flat, r.improvement_vs_msprime]
            for r in self.rows
        ]
        table = format_table(
            ["a", "1/r", "m*", "theta*", "SM", "SF", "SM'",
             "MS>flat %", "MS>MS' %"],
            rows,
            title=(f"Figure 3 (analytic): lam={self.lam}, p={self.p}, "
                   f"mu_h={self.mu_h}"),
        )
        a_values = sorted({row.a for row in self.rows})
        curves = {
            f"a={a:.2f}": [(float(x), y) for x, y in self.series(a, "flat")]
            for a in a_values
        }
        plot = line_plot(curves, title="M/S improvement over flat (%)",
                         xlabel="1/r", ylabel="improvement %")
        return table + "\n\n" + plot


def run_fig3(lam: float = 1000.0, p: int = 32, mu_h: float = 1200.0,
             a_values: Sequence[float] = FIG3_A_VALUES,
             inv_r_values: Sequence[int] = FIG3_INV_R) -> Fig3Result:
    """Regenerate both panels of Figure 3 from the queuing formulas."""
    rows: List[Fig3Row] = []
    for a in a_values:
        for inv_r in inv_r_values:
            w = Workload.from_ratios(lam=lam, a=a, mu_h=mu_h,
                                     r=1.0 / inv_r, p=p)
            if not w.feasible:
                continue
            design = optimal_masters(w)
            sf = flat_stretch(w)
            smp = best_msprime(w).total
            rows.append(Fig3Row(
                a=a, inv_r=inv_r, m_opt=design.m, theta_opt=design.theta,
                sm=design.sm, sf=sf, sm_prime=smp,
                improvement_vs_flat=improvement_percent(sf, design.sm),
                improvement_vs_msprime=improvement_percent(smp, design.sm),
            ))
    return Fig3Result(lam=lam, p=p, mu_h=mu_h, rows=rows)


# ---------------------------------------------------------------------------
# Table 1 — trace characteristics of the synthetic generators
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Table1Row:
    name: str
    spec_pct_cgi: float
    got_pct_cgi: float
    spec_interval: float
    got_interval: float
    spec_html: float
    got_html: float
    spec_cgi_size: float
    got_cgi_size: float


@dataclass(slots=True)
class Table1Result:
    rows: List[Table1Row]
    n: int

    def render(self) -> str:
        rows = [
            [r.name, r.spec_pct_cgi, r.got_pct_cgi, r.spec_interval,
             r.got_interval, r.spec_html, r.got_html, r.spec_cgi_size,
             r.got_cgi_size]
            for r in self.rows
        ]
        return format_table(
            ["trace", "%CGI spec", "%CGI got", "intv spec", "intv got",
             "HTML spec", "HTML got", "CGI spec", "CGI got"],
            rows,
            title=f"Table 1 (synthetic trace statistics, n={self.n} each)",
            floatfmt="{:.3f}",
        )


def run_table1(n: int = 20000, seed: int = 7) -> Table1Result:
    """Generate each Table-1 trace at its native rate and compare stats."""
    rows: List[Table1Row] = []
    for spec in TRACES.values():
        trace = generate_trace(spec, rate=spec.native_rate, n=n, seed=seed)
        stats = trace_statistics(trace)
        rows.append(Table1Row(
            name=spec.name,
            spec_pct_cgi=spec.pct_cgi, got_pct_cgi=stats["pct_cgi"],
            spec_interval=spec.mean_interval,
            got_interval=stats["mean_interval"],
            spec_html=float(spec.html_size), got_html=stats["html_size"],
            spec_cgi_size=float(spec.cgi_size),
            got_cgi_size=stats["cgi_size"],
        ))
    return Table1Result(rows=rows, n=n)


# ---------------------------------------------------------------------------
# Table 2 / Figure 4 — the simulated optimization bake-off
# ---------------------------------------------------------------------------

#: Offered-load levels replayed per (trace, 1/r).  The paper fixes a ladder
#: of arrival rates per trace ("arrival rates are scaled in replaying to
#: reflect various workloads ... such a setting creates reasonable loads");
#: because the offered load of a fixed rate varies by a factor of ~8 across
#: the 1/r sweep, we pin the *utilisation* instead and derive each rate, so
#: every grid point sits at a comparable, paper-style "reasonable" load.
FIG4_UTILIZATIONS: Tuple[float, ...] = (0.6, 0.75, 0.9)

FIG4_INV_R: Tuple[int, ...] = (20, 40, 80, 160)


def iso_load_rate(spec: TraceSpec, mu_h: float, r: float, p: int,
                  utilization: float) -> float:
    """Arrival rate putting the single-server offered load at
    ``utilization * p`` for this trace and CGI cost ratio."""
    if not 0.0 < utilization < 1.0:
        raise ValueError("utilization must be in (0, 1)")
    unit = Workload.from_ratios(lam=1.0, a=spec.arrival_ratio_a,
                                mu_h=mu_h, r=r, p=p).total_offered
    return utilization * p / unit


@dataclass(slots=True)
class Fig4Result:
    results: List[BakeoffResult]
    utilizations: Dict[Tuple[str, float, int, int], float] = field(
        default_factory=dict)

    def improvements(self, over: str) -> List[float]:
        return [res.improvement(over) for res in self.results]

    def max_improvement(self, over: str) -> float:
        return max(self.improvements(over))

    def render(self) -> str:
        rows = []
        for res in self.results:
            util = self.utilizations.get(
                (res.spec_name, res.lam, res.p, int(round(1 / res.r))), 0.0)
            rows.append([
                res.spec_name, res.p, f"{util:.2f}", int(res.lam),
                int(round(1 / res.r)), res.m, res.stretch("MS"),
                res.improvement("MS-ns"), res.improvement("MS-nr"),
                res.improvement("MS-1"), res.improvement("Flat"),
            ])
        table = format_table(
            ["trace", "p", "util", "lam", "1/r", "m", "S(MS)",
             ">MS-ns %", ">MS-nr %", ">MS-1 %", ">Flat %"],
            rows,
            title="Figure 4 (simulated): improvement of M/S over ablations",
        )
        groups = []
        for res in self.results:
            label = (f"{res.spec_name} p={res.p} 1/r="
                     f"{int(round(1 / res.r))} lam={int(res.lam)}")
            groups.append((label, [
                ("vs MS-ns", res.improvement("MS-ns")),
                ("vs MS-nr", res.improvement("MS-nr")),
                ("vs MS-1", res.improvement("MS-1")),
            ]))
        bars = grouped_bar_chart(
            groups, unit="%",
            title="M/S improvement per configuration (bars clipped at 0)")
        return table + "\n\n" + bars


def run_fig4(
    p_values: Sequence[int] = (32, 128),
    inv_r_values: Sequence[int] = FIG4_INV_R,
    utilizations: Sequence[float] = FIG4_UTILIZATIONS,
    base_duration: float = 10.0,
    seed: int = 11,
    mu_h: float = 1200.0,
    jobs: int = 1,
) -> Fig4Result:
    """Replay the Figure-4 grid: {UCB,KSU,ADL} x load ladder x 1/r x {p}.

    ``base_duration`` is the replayed trace span for a 32-node cluster;
    larger clusters replay proportionally shorter spans so each grid point
    simulates a comparable number of requests.  ``jobs`` fans the grid
    points out over worker processes; results are identical to ``jobs=1``.
    """
    points: List[BakeoffSpec] = []
    utils: Dict[Tuple[str, float, int, int], float] = {}
    for p in p_values:
        duration = max(3.0, base_duration * 32.0 / p)
        for spec in EXPERIMENT_TRACES:
            for util in utilizations:
                for inv_r in inv_r_values:
                    r = 1.0 / inv_r
                    lam = iso_load_rate(spec, mu_h, r, p, util)
                    points.append(BakeoffSpec(
                        spec_name=spec.name, lam=lam, r=r, p=p,
                        duration=duration, mu_h=mu_h, seed=seed))
                    utils[(spec.name, lam, p, inv_r)] = util
    results = run_bakeoff_grid(points, jobs=jobs)
    return Fig4Result(results=results, utilizations=utils)


@dataclass(slots=True)
class Table2Result:
    rows: List[Tuple[str, int, Tuple[int, ...], Tuple[int, ...], float]]

    def render(self) -> str:
        rows = [
            [name, p, "/".join(str(x) for x in lams),
             "/".join(f"1_{ir}" for ir in inv_rs), f"{a:.2f}"]
            for name, p, lams, inv_rs, a in self.rows
        ]
        return format_table(
            ["trace", "p", "lam (req/s)", "r values", "a"],
            rows, title="Table 2 (workload parameters examined)",
        )


def run_table2(
    p_values: Sequence[int] = (32, 128),
    inv_r_values: Sequence[int] = FIG4_INV_R,
    utilizations: Sequence[float] = FIG4_UTILIZATIONS,
    mu_h: float = 1200.0,
) -> Table2Result:
    """Emit the parameter grid actually swept (Table 2's analogue)."""
    rows = []
    for p in p_values:
        for spec in EXPERIMENT_TRACES:
            lams = tuple(sorted({
                int(round(iso_load_rate(spec, mu_h, 1.0 / ir, p, u)))
                for u in utilizations for ir in inv_r_values
            }))
            rows.append((spec.name, p, lams, tuple(inv_r_values),
                         spec.arrival_ratio_a))
    return Table2Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 5 — sensitivity to a fixed number of masters
# ---------------------------------------------------------------------------

#: Reference parameters the paper samples to fix m: r=1/60, a=0.44,
#: lam=750 (p=32) / 3000 (p=128).  It reports m=6 and m=25.
FIG5_REFERENCE = {"r": 1.0 / 60.0, "a": 0.44, 32: 750.0, 128: 3000.0}

#: The 12 bar groups: (trace, utilization, 1/r) per cluster size, spanning
#: the paper's "r varies from 1/20 to 1/160, a from 0.12 to 0.78" ranges.
#: Static-heavy/cheap-CGI corners are excluded: the paper's rate ladder
#: (500-2000 req/s at p=32) never pushes the static tier beyond a handful
#: of nodes, and a fixed master count is only meaningful in that regime.
FIG5_CONFIGS: Dict[int, Tuple[Tuple[str, float, int], ...]] = {
    32: (("UCB", 0.75, 80), ("UCB", 0.6, 160),
         ("KSU", 0.75, 80), ("KSU", 0.6, 40),
         ("ADL", 0.75, 40), ("ADL", 0.6, 20)),
    128: (("UCB", 0.75, 80), ("UCB", 0.6, 160),
          ("KSU", 0.75, 80), ("KSU", 0.6, 40),
          ("ADL", 0.75, 40), ("ADL", 0.6, 20)),
}


@dataclass(slots=True)
class Fig5Row:
    trace: str
    p: int
    lam: float
    inv_r: int
    m_fixed: int
    m_adaptive: int
    stretch_fixed: float
    stretch_adaptive: float

    @property
    def degradation(self) -> float:
        """Percent increase of the fixed-m stretch over the adaptive one."""
        return (self.stretch_fixed / self.stretch_adaptive - 1.0) * 100.0


@dataclass(slots=True)
class Fig5Result:
    rows: List[Fig5Row]
    m_fixed: Dict[int, int]

    @property
    def max_degradation(self) -> float:
        return max(r.degradation for r in self.rows)

    @property
    def mean_degradation(self) -> float:
        degs = [r.degradation for r in self.rows]
        return sum(degs) / len(degs)

    def render(self) -> str:
        rows = [[r.trace, r.p, int(r.lam), r.inv_r, r.m_fixed, r.m_adaptive,
                 r.stretch_fixed, r.stretch_adaptive, r.degradation]
                for r in self.rows]
        txt = format_table(
            ["trace", "p", "lam", "1/r", "m fixed", "m adapt",
             "S fixed", "S adapt", "degr %"],
            rows, title="Figure 5 (simulated): fixed vs adaptive m",
        )
        txt += (f"\nmax degradation {self.max_degradation:.1f}% "
                f"(paper: <=9%), mean {self.mean_degradation:.1f}% "
                f"(paper: ~4%)")
        groups = [(f"{r.trace} p={r.p} 1/r={r.inv_r}",
                   [("fixed m", r.stretch_fixed),
                    ("adaptive", r.stretch_adaptive)])
                  for r in self.rows]
        txt += "\n\n" + grouped_bar_chart(
            groups, title="stretch: fixed vs adaptive master count")
        return txt


def fixed_master_count(p: int, mu_h: float = 1200.0) -> int:
    """The paper's fixed-m rule: Theorem 1 at the reference parameters.

    The paper samples lam=750 for p=32 and lam=3000 for p=128; other
    cluster sizes scale the reference rate proportionally.
    """
    ref = FIG5_REFERENCE
    lam = ref.get(p, ref[32] * p / 32.0)
    w = Workload.from_ratios(lam=lam, a=ref["a"], mu_h=mu_h,
                             r=ref["r"], p=p)
    return optimal_masters(w).m


def run_fig5(
    p_values: Sequence[int] = (32, 128),
    duration: float = 8.0,
    seed: int = 23,
    configs: Optional[Dict[int, Tuple[Tuple[str, float, int], ...]]] = None,
    mu_h: float = 1200.0,
    jobs: int = 1,
) -> Fig5Result:
    """Degradation of M/S with a fixed master count vs per-config sizing.

    ``jobs`` fans the fixed/adaptive replays out over worker processes;
    results are identical to ``jobs=1``.
    """
    configs = configs or FIG5_CONFIGS
    m_fixed_by_p = {p: fixed_master_count(p, mu_h) for p in p_values}
    meta: List[Tuple[str, int, float, int, int, int]] = []
    points: List[BakeoffSpec] = []
    for p in p_values:
        span = max(3.0, duration * 32.0 / p)
        for trace_name, util, inv_r in configs[p]:
            spec = TRACES[trace_name]
            r = 1.0 / inv_r
            lam = iso_load_rate(spec, mu_h, r, p, util)
            m_adapt = choose_masters(spec, lam, mu_h, r, p)
            common = dict(spec_name=trace_name, lam=lam, r=r, p=p,
                          duration=span, mu_h=mu_h, seed=seed,
                          policies=("MS",))
            points.append(BakeoffSpec(m=m_fixed_by_p[p], **common))
            points.append(BakeoffSpec(m=m_adapt, **common))
            meta.append((trace_name, p, lam, inv_r, m_fixed_by_p[p],
                         m_adapt))
    results = run_bakeoff_grid(points, jobs=jobs)
    rows: List[Fig5Row] = []
    for i, (trace_name, p, lam, inv_r, m_fixed, m_adapt) in enumerate(meta):
        fixed, adaptive = results[2 * i], results[2 * i + 1]
        rows.append(Fig5Row(
            trace=trace_name, p=p, lam=lam, inv_r=inv_r,
            m_fixed=m_fixed, m_adaptive=m_adapt,
            stretch_fixed=fixed.stretch("MS"),
            stretch_adaptive=adaptive.stretch("MS"),
        ))
    return Fig5Result(rows=rows, m_fixed=m_fixed_by_p)


# ---------------------------------------------------------------------------
# Table 3 — simulator vs (emulated) Sun-cluster validation
# ---------------------------------------------------------------------------

#: Master counts the paper used on the 6-node testbed per trace.
TABLE3_MASTERS = {"UCB": 3, "KSU": 1, "ADL": 1}
#: The paper drove its Ultra-1 cluster at 20 and 40 req/s; those loads sit
#: below 35% utilisation in our (faster-I/O) substrate, where all schedulers
#: coincide, so the emulated validation replays at 40 and 70 req/s to reach
#: the same moderately-loaded regime the paper measured.
TABLE3_RATES: Tuple[float, ...] = (40.0, 70.0)
TABLE3_R = 1.0 / 40.0


@dataclass(slots=True)
class Table3Row:
    trace: str
    rate: float
    comparison: str       # "MS-1", "MS-ns" or "MS-nr"
    actual: float         # improvement % on the noisy testbed emulator
    simulated: float      # improvement % on the clean simulator

    @property
    def gap(self) -> float:
        return self.simulated - self.actual


@dataclass(slots=True)
class Table3Result:
    rows: List[Table3Row]

    @property
    def mean_abs_gap(self) -> float:
        gaps = [abs(r.gap) for r in self.rows]
        return sum(gaps) / len(gaps)

    def render(self) -> str:
        rows = [[r.trace, int(r.rate), r.comparison, r.actual, r.simulated,
                 r.gap] for r in self.rows]
        txt = format_table(
            ["trace", "rate/s", "MS vs", "actual %", "simu %", "gap"],
            rows,
            title=("Table 3: M/S improvement, emulated Sun cluster "
                   "(actual) vs clean simulator (simu)"),
        )
        txt += (f"\nmean |gap| = {self.mean_abs_gap:.1f} points "
                f"(paper: ~3, simulator slightly optimistic)")
        return txt


def run_table3(
    rates: Sequence[float] = TABLE3_RATES,
    r: float = TABLE3_R,
    duration: float = 60.0,
    seed: int = 31,
    comparisons: Sequence[str] = ("MS-1", "MS-ns", "MS-nr"),
    testbed: Optional[TestbedConfig] = None,
) -> Table3Result:
    """Replay the Sun-cluster validation on both platforms."""
    tb = testbed or TestbedConfig()
    mu_h = tb.static_rate
    p = tb.num_nodes
    rows: List[Table3Row] = []
    for spec in (UCB, KSU, ADL):
        m = TABLE3_MASTERS[spec.name]
        for rate in rates:
            trace = generate_trace(spec, rate=rate, duration=duration,
                                   mu_h=mu_h, r=r, seed=seed)
            sampler = pretrain_sampler(trace, seed=seed)

            def run_both(policy_name: str) -> Tuple[float, float]:
                policy_tb = make_bakeoff_policy(policy_name, p, m, sampler,
                                                seed + 5)
                actual = replay_on_testbed(policy_tb, trace, tb).overall.stretch
                policy_sim = make_bakeoff_policy(policy_name, p, m, sampler,
                                                 seed + 5)
                cfg = tb.sim_config()
                simulated = replay(cfg, policy_sim, trace).report.overall.stretch
                return actual, simulated

            ms_actual, ms_sim = run_both("MS")
            for comp in comparisons:
                other_actual, other_sim = run_both(comp)
                rows.append(Table3Row(
                    trace=spec.name, rate=rate, comparison=comp,
                    actual=improvement_percent(other_actual, ms_actual),
                    simulated=improvement_percent(other_sim, ms_sim),
                ))
    return Table3Result(rows=rows)


# ---------------------------------------------------------------------------
# Chaos — availability of the resilience layer under composed failures
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ChaosRow:
    """One cluster variant's availability under a chaos scenario."""

    label: str
    submitted: int
    completed: int
    dropped: int
    lost: int
    retries: int
    goodput: float
    slo_violations: int
    p99_stretch: float
    static_mean_response: float
    mean_unavailability: float
    balance: int


@dataclass(slots=True)
class ChaosResult:
    """Baseline vs resilient (vs failure-free reference) on one scenario."""

    scenario: ChaosScenario
    horizon: float
    rows: List[ChaosRow]
    #: Whether each variant's span stream passed the trace auditor.
    audited: bool = False
    #: Total spans audited across the scenario's variants.
    audit_spans: int = 0

    def row(self, label: str) -> ChaosRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        rows = [[r.label, r.submitted, r.completed, r.dropped, r.lost,
                 r.retries, f"{r.goodput:.1f}", r.slo_violations,
                 f"{r.p99_stretch:.1f}", f"{r.static_mean_response * 1e3:.1f}",
                 f"{r.mean_unavailability * 100:.1f}", r.balance]
                for r in self.rows]
        txt = format_table(
            ["variant", "subm", "done", "drop", "lost", "retry",
             "goodput/s", "slo-viol", "p99 S", "static ms",
             "unavail %", "balance"],
            rows,
            title=(f"Chaos scenario {self.scenario.name!r}: "
                   f"{self.scenario.description}"),
        )
        txt += ("\nbalance must be 0 on every row "
                "(request-conservation invariant)")
        return txt


def _chaos_trace(spec: TraceSpec, scenario: ChaosScenario, rate: float,
                 duration: float, mu_h: float, r: float,
                 seed: int) -> List[Request]:
    """The scenario's trace: base load plus its overload burst, renumbered."""
    base = generate_trace(spec, rate=rate, duration=duration, mu_h=mu_h,
                          r=r, seed=seed)
    if scenario.burst_factor > 1.0 and scenario.burst_duration_frac > 0:
        start, end = scenario.burst_window(duration)
        extra = generate_trace(spec, rate=rate * (scenario.burst_factor - 1.0),
                               duration=end - start, mu_h=mu_h, r=r,
                               seed=seed + 1, start=start)
        base = sorted(base + extra, key=lambda q: q.arrival_time)
        for i, req in enumerate(base):
            req.req_id = i
    return base


def default_chaos_resilience(duration: float) -> ResilienceConfig:
    """Resilience tuning used by the chaos experiments: finite dynamic
    deadlines well above healthy response times, a modest retry budget,
    and shedding thresholds reachable within a short run."""
    return ResilienceConfig(
        deadline_static=None,
        deadline_dynamic=min(10.0, duration / 4.0),
        max_retries=4,
        shed_stretch=40.0,
        shed_backlog=30.0,
    )


def run_chaos(
    scenario: str | ChaosScenario = "storm-burst",
    trace_name: str = "UCB",
    p: int = 16,
    rate: float = 400.0,
    duration: float = 60.0,
    inv_r: int = 40,
    drain: float = 60.0,
    seed: int = 0,
    mu_h: float = 1200.0,
    detection_mode: str = "monitor",
    resilience_cfg: Optional[ResilienceConfig] = None,
    include_reference: bool = True,
    audit: bool = True,
    control: Optional["ControlConfig"] = None,
) -> ChaosResult:
    """Drive one chaos scenario against seed-behaviour and resilient M/S.

    Three clusters replay the *same* trace (base load plus the scenario's
    overload burst) under the same policy construction and seeds:

    * ``failure-free`` — resilience armed but no chaos events: the
      reference the degradation criteria compare against;
    * ``baseline`` — chaos with seed semantics (no deadlines/retry budget
      /shedding; crashed work restarts per the failure policy);
    * ``resilient`` — chaos with the resilience layer armed.

    With ``control`` set (a :class:`repro.control.ControlConfig`), every
    variant also runs with the online control plane attached, so role
    transitions race the scenario's crash/recovery events and the audit
    additionally proves the CONTROL-span invariants.

    The request-conservation invariant is asserted on every variant, and
    with ``audit=True`` (the default) each variant also runs with tracing
    on and its full span stream through the trace auditor — causality,
    device exclusivity, reservation caps, conservation, and stretch
    recomputation are all re-derived from the trace and any violation
    raises :class:`repro.obs.TraceAuditError`.  Each variant gets a fresh
    tracer that is discarded after its audit, bounding span memory.
    """
    if isinstance(scenario, str):
        try:
            scenario = CHAOS_SCENARIOS[scenario]
        except KeyError:
            raise ValueError(
                f"unknown scenario {scenario!r}; known: "
                f"{sorted(CHAOS_SCENARIOS)}") from None
    scenario.validate()
    spec = TRACES[trace_name]
    r = 1.0 / inv_r
    trace = _chaos_trace(spec, scenario, rate, duration, mu_h, r, seed)
    sampler = pretrain_sampler(trace, seed=seed)
    m = choose_masters(spec, rate, mu_h, r, p)
    res_cfg = resilience_cfg or default_chaos_resilience(duration)
    failure_policy = FailurePolicy(detection_mode=detection_mode)

    variants: List[Tuple[str, bool, Optional[ResilienceConfig]]] = []
    if include_reference:
        variants.append(("failure-free", False, res_cfg))
    variants.append(("baseline", True, None))
    variants.append(("resilient", True, res_cfg))

    rows: List[ChaosRow] = []
    horizon = duration + drain
    audit_spans = 0
    for label, inject, res in variants:
        policy = make_ms(p, m, sampler=sampler, seed=seed + 5)
        tracer = Tracer() if audit else None
        cluster = Cluster(SimConfig(num_nodes=p, seed=seed),
                          policy, failure_policy=failure_policy,
                          resilience=res, tracer=tracer)
        if control is not None:
            from repro.control import SimControlLoop

            SimControlLoop(cluster, control).start()
        if inject:
            scenario.apply(cluster, duration,
                           np.random.default_rng(seed + 17))
        cluster.submit_many(trace)
        deadline = duration + drain
        cluster.run(until=deadline)
        extensions = 0
        while (any(node.active for node in cluster.nodes)
               or cluster.pending_requests()) and extensions < 20:
            deadline += drain
            cluster.run(until=deadline)
            extensions += 1
        cluster.assert_conservation()
        if tracer is not None:
            audit_spans += len(tracer)
            audit_cluster(cluster).raise_if_failed()
            tracer.clear()
        avail = cluster.availability(horizon=cluster.engine.now,
                                     slo_stretch=res_cfg.slo_stretch)
        report = cluster.metrics.report()
        static_mean = report.static.mean_response
        rows.append(ChaosRow(
            label=label,
            submitted=avail.submitted,
            completed=avail.completed,
            dropped=avail.total_dropped,
            lost=avail.lost,
            retries=avail.retries,
            goodput=avail.goodput,
            slo_violations=avail.slo_violations,
            p99_stretch=avail.p99_stretch,
            static_mean_response=static_mean,
            mean_unavailability=avail.mean_unavailability,
            balance=avail.balance,
        ))
        horizon = max(horizon, cluster.engine.now)
    return ChaosResult(scenario=scenario, horizon=horizon, rows=rows,
                       audited=audit, audit_spans=audit_spans)


def _chaos_task(kwargs: Dict[str, object]) -> ChaosResult:
    """Worker for :func:`run_chaos_suite` (module-level so it pickles)."""
    return run_chaos(**kwargs)


def run_chaos_suite(
    scenarios: Sequence[str],
    jobs: int = 1,
    **kwargs: object,
) -> List[ChaosResult]:
    """Run several chaos scenarios, ``jobs`` worker processes at a time.

    ``kwargs`` are passed through to :func:`run_chaos` for every scenario.
    Results come back in the scenarios' order.
    """
    from repro.perf.pool import run_values

    payloads = [dict(kwargs, scenario=name) for name in scenarios]
    return run_values(_chaos_task, payloads, jobs)


# ---------------------------------------------------------------------------
# Control drift — online control plane vs a frozen Theorem-1 design
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class DriftPhase:
    """One stationary phase of the drift scenario (filled in by the run)."""

    pct_cgi: float          # CGI percentage, 0-100
    utilization: float      # target single-server offered load / p
    duration: float         # phase span, virtual seconds
    rate: float = 0.0       # iso-utilisation arrival rate (derived)
    requests: int = 0       # generated request count
    m_opt: int = 0          # Theorem-1 optimal masters for this phase
    analytic_sm: float = 0.0  # Theorem-1 predicted M/S stretch at m_opt


@dataclass(slots=True)
class ControlDriftResult:
    """Frozen-design vs controlled cluster on a workload-drift trace."""

    trace: str
    p: int
    m_frozen: int
    phases: List[DriftPhase]
    frozen_stretch: float
    controlled_stretch: float
    #: Request-weighted mean of the per-phase analytic optima — the
    #: stationary lower bound a clairvoyant per-phase design would see.
    analytic_sm: float
    #: ``(kind, node_id, value)`` of every *applied* control action.
    actions: List[Tuple[str, int, object]]
    final_masters: Tuple[int, ...]
    ticks: int
    audited: bool
    dry_run: bool
    background_jobs: int = 0

    @property
    def margin(self) -> float:
        """Fractional stretch improvement of controlled over frozen."""
        return self.frozen_stretch / self.controlled_stretch - 1.0

    @property
    def optimality_gap(self) -> float:
        """Controlled stretch over the per-phase analytic optimum."""
        return self.controlled_stretch / self.analytic_sm

    def render(self) -> str:
        rows = [[f"phase {i}", f"{ph.pct_cgi:.0f}%", f"{ph.rate:.0f}",
                 f"{ph.duration:.0f}s", ph.requests, ph.m_opt,
                 f"{ph.analytic_sm:.3f}"]
                for i, ph in enumerate(self.phases)]
        txt = format_table(
            ["phase", "cgi", "rate/s", "span", "requests", "m*", "SM*"],
            rows,
            title=(f"Control drift on {self.trace}-like trace, p={self.p} "
                   f"(frozen design m={self.m_frozen})"),
        )
        kinds: Dict[str, int] = {}
        for kind, _node, _value in self.actions:
            kinds[kind] = kinds.get(kind, 0) + 1
        acted = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items())) \
            or "none"
        txt += (
            f"\nfrozen stretch      {self.frozen_stretch:.3f}"
            f"\ncontrolled stretch  {self.controlled_stretch:.3f}"
            f"  ({'dry-run, no actuation' if self.dry_run else acted})"
            f"\nanalytic optimum    {self.analytic_sm:.3f}"
            f"  (request-weighted per-phase Theorem 1)"
            f"\nmargin              {self.margin * 100:+.1f}%"
            f"  (gap to optimum {self.optimality_gap:.2f}x)"
            f"\nfinal masters       {list(self.final_masters)}"
            f"  after {self.ticks} control ticks"
        )
        if self.background_jobs:
            txt += f"\nbackground jobs     {self.background_jobs} (confounder)"
        return txt


def drift_trace(spec: TraceSpec,
                phases: Sequence[DriftPhase],
                mu_h: float, r: float, p: int,
                seed: int = 0) -> List[Request]:
    """Concatenate one iso-utilisation sub-trace per phase.

    Each phase replays ``spec`` with its CGI share overridden, at the
    arrival rate that pins the single-server offered load at
    ``utilization * p`` *for that phase's mix* — so the drift is a mix
    shift, not a trivial overload.  Phase fields (rate, request count)
    are filled in in place; request ids are globally renumbered.
    """
    import dataclasses

    out: List[Request] = []
    start = 0.0
    for i, ph in enumerate(phases):
        sub_spec = dataclasses.replace(spec, pct_cgi=ph.pct_cgi)
        ph.rate = iso_load_rate(sub_spec, mu_h, r, p, ph.utilization)
        sub = generate_trace(sub_spec, rate=ph.rate, duration=ph.duration,
                             mu_h=mu_h, r=r, seed=seed + 31 * i,
                             start=start)
        ph.requests = len(sub)
        out.extend(sub)
        start += ph.duration
    for i, req in enumerate(out):
        req.req_id = i
    return out


def run_control_drift(
    trace_name: str = "UCB",
    p: int = 8,
    mu_h: float = 1200.0,
    inv_r: int = 40,
    phase_specs: Sequence[Tuple[float, float, float]] = (
        (20.0, 0.60, 4.0), (5.0, 0.60, 10.0)),
    seed: int = 0,
    control: Optional["ControlConfig"] = None,
    dry_run: bool = False,
    audit: bool = True,
    drain: float = 30.0,
    noise: Optional[object] = None,
    tracer: Optional[Tracer] = None,
) -> ControlDriftResult:
    """The control plane's headline scenario: mid-run workload drift.

    A two-phase (or longer) trace ramps the dynamic-request share —
    ``phase_specs`` is ``(pct_cgi, utilization, duration)`` per phase —
    and the same trace is replayed twice under M/S policies sized by
    Theorem 1 *for phase 0*:

    * **frozen** — that design stays in force for the whole run (the
      seed repo's behaviour: design once, never look back);
    * **controlled** — a :class:`repro.control.SimControlLoop` with
      ``control`` (default :class:`~repro.control.ControlConfig`)
      estimates the live workload and re-solves Theorem 1 periodically,
      retuning theta'_2 / the RSRC weight and stepping the master set.

    Both runs are trace-audited when ``audit`` is set (the controlled
    one including the CONTROL-span consistency invariant).  ``noise``
    optionally attaches a :class:`repro.testbed.noise.NoiseConfig`-driven
    background-job confounder to *both* variants, exercising the
    estimator under un-modelled load.  ``dry_run`` arms the controller in
    shadow mode: decisions are logged but never actuated, so the two
    variants must then agree up to background-load jitter.
    """
    from repro.control import ControlConfig, SimControlLoop
    from repro.testbed.noise import BackgroundLoad

    spec = TRACES[trace_name]
    r = 1.0 / inv_r
    phases = [DriftPhase(pct_cgi=c, utilization=u, duration=d)
              for c, u, d in phase_specs]
    trace = drift_trace(spec, phases, mu_h, r, p, seed=seed)
    total_span = sum(ph.duration for ph in phases)

    # Per-phase analytic optima (the clairvoyant stationary bound).
    import dataclasses

    for ph in phases:
        w = Workload.from_ratios(
            lam=ph.rate,
            a=dataclasses.replace(spec, pct_cgi=ph.pct_cgi).arrival_ratio_a,
            mu_h=mu_h, r=r, p=p)
        design = optimal_masters(w)
        ph.m_opt, ph.analytic_sm = design.m, design.sm
    weight = sum(ph.requests for ph in phases)
    analytic_sm = sum(ph.analytic_sm * ph.requests for ph in phases) / weight

    m_frozen = choose_masters(
        dataclasses.replace(spec, pct_cgi=phases[0].pct_cgi),
        phases[0].rate, mu_h, r, p)
    sampler = pretrain_sampler(trace, seed=seed)
    warmup = trace[0].arrival_time + 0.1 * total_span

    if control is None:
        control = ControlConfig()
    if dry_run:
        control = dataclasses.replace(control, dry_run=True)

    def one_run(control_cfg, run_tracer=None):
        policy = make_ms(p, m_frozen, sampler=sampler, seed=seed + 5)
        if run_tracer is None and audit:
            run_tracer = Tracer()
        cluster = Cluster(SimConfig(num_nodes=p, static_rate=mu_h,
                                    seed=seed), policy, tracer=run_tracer)
        loop = None
        if control_cfg is not None:
            loop = SimControlLoop(cluster, control_cfg).start()
        bg = None
        if noise is not None:
            bg = BackgroundLoad(cluster, noise, stop_at=total_span)
            bg.start()
        cluster.submit_many(trace)
        deadline = total_span + drain
        cluster.run(until=deadline)
        extensions = 0
        while (any(node.active for node in cluster.nodes)
               and extensions < 20):
            deadline += drain
            cluster.run(until=deadline)
            extensions += 1
        cluster.assert_conservation()
        if audit and run_tracer is not None:
            audit_cluster(cluster).raise_if_failed()
        stretch = cluster.metrics.report(warmup=warmup).overall.stretch
        return stretch, loop, cluster, bg

    frozen_stretch, _, _, _ = one_run(None)
    controlled_stretch, loop, cluster, bg = one_run(control, tracer)
    ctl = loop.controller
    return ControlDriftResult(
        trace=trace_name, p=p, m_frozen=m_frozen, phases=phases,
        frozen_stretch=frozen_stretch,
        controlled_stretch=controlled_stretch,
        analytic_sm=analytic_sm,
        actions=[(a.kind, a.node_id, a.value) for a in ctl.applied],
        final_masters=tuple(sorted(cluster.policy.master_ids)),
        ticks=ctl.ticks, audited=audit, dry_run=control.dry_run,
        background_jobs=bg.injected if bg is not None else 0,
    )
