"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``design``
    Theorem-1 sizing for a workload: optimal master count, theta bounds,
    predicted stretch factors.
``trace``
    Generate a synthetic trace (optionally saving it to JSON Lines), or —
    with ``--record`` / ``--audit`` / ``--summarize`` — drive the
    ``repro.obs`` tracing subsystem: record an audited span stream from a
    replay, audit a saved stream (or, bare, the fig3/fig4/chaos suites),
    or summarise a saved stream.
``replay``
    Run one trace (generated or loaded) through a cluster under a policy
    and print the metrics report.
``fig3 / table1 / table2 / fig4 / fig5 / table3``
    Regenerate the paper's artifacts (quick grids; see benchmarks/ for the
    asserting versions).
``chaos``
    Run a named chaos scenario (crash storms, recruitment churn, overload
    bursts) against baseline and resilience-enabled M/S clusters and print
    the availability comparison.
``calibrate``
    Check the clean simulator against M/M/1.
``serve / loadgen / live-validate``
    Drive the :mod:`repro.live` subsystem: boot a real asyncio
    master/slave cluster on localhost, replay a workload against it over
    HTTP (optionally saving its auditable span stream), or cross-validate
    live stretch against the simulator.
``control``
    Arm the :mod:`repro.control` online control plane.  Bare, replay the
    workload-drift scenario in the simulator — a frozen Theorem-1 design
    against a controlled cluster that re-estimates the workload and
    re-solves Theorem 1 mid-run — and print the comparison plus the
    applied actions; ``--live`` attaches the reconciliation loop to a
    real loopback cluster instead.  ``--dry-run`` logs decisions without
    actuating; ``--spans`` saves the controlled run's auditable span
    stream (CONTROL spans included).
``bench``
    Run the perf suite (``--jobs N`` fans the grids over worker
    processes) and emit a machine-readable ``BENCH_<timestamp>.json``
    record; gates against ``benchmarks/baseline.json`` when present.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.analysis.sweep import choose_masters
from repro.analysis.validation import mm1_calibration
from repro.core.policies import make_policy
from repro.obs import (
    Tracer,
    TraceAuditError,
    audit_cluster,
    audit_spans,
    load_jsonl,
    save_jsonl,
    summarize_spans,
)
from repro.core.queuing import Workload, flat_stretch
from repro.core.theorem import optimal_masters, theta_bounds
from repro.perf.bench import add_bench_parser
from repro.sim.config import paper_sim_config
from repro.sim.failures import CHAOS_SCENARIOS
from repro.workload.generator import generate_trace, trace_statistics
from repro.workload.io import load_trace, save_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import get_trace


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="UCB",
                        help="trace spec name (UCB/KSU/ADL/DEC)")
    parser.add_argument("--rate", type=float, default=800.0,
                        help="arrival rate, requests/second")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="trace span in virtual seconds")
    parser.add_argument("--inv-r", type=float, default=40.0,
                        help="CGI cost ratio 1/r")
    parser.add_argument("--mu-h", type=float, default=1200.0,
                        help="per-node static service rate")
    parser.add_argument("--seed", type=int, default=0)


def cmd_design(args: argparse.Namespace) -> int:
    """``repro design``: Theorem-1 sizing for a described workload."""
    w = Workload.from_ratios(lam=args.lam, a=args.a, mu_h=args.mu_h,
                             r=1.0 / args.inv_r, p=args.p)
    if not w.feasible:
        print(f"offered load {w.total_offered:.1f} exceeds p={w.p}: "
              f"no stable configuration", file=sys.stderr)
        return 1
    design = optimal_masters(w)
    sf = flat_stretch(w)
    t1, t2 = theta_bounds(w, design.m) if design.m < w.p else (1.0, 1.0)
    print(format_table(
        ["quantity", "value"],
        [["masters m*", design.m],
         ["theta*", f"{design.theta:.4f}"],
         ["theta bounds", f"[{t1:.4f}, {t2:.4f}]"],
         ["SM (M/S stretch)", f"{design.sm:.4f}"],
         ["SF (flat stretch)", f"{sf:.4f}"],
         ["improvement", f"{100 * (sf / design.sm - 1):.1f}%"]],
        title=(f"Theorem 1 design: lam={args.lam}, a={args.a}, "
               f"1/r={args.inv_r}, p={args.p}"),
    ))
    return 0


#: Sentinel for a bare ``--audit`` (no file): audit the standard suites.
_AUDIT_SUITES = "__suites__"


def _trace_record(args: argparse.Namespace) -> int:
    """``repro trace --record OUT``: replay, audit, and save the spans."""
    spec = get_trace(args.trace)
    trace = generate_trace(spec, rate=args.rate, duration=args.duration,
                           mu_h=args.mu_h, r=1.0 / args.inv_r,
                           seed=args.seed,
                           cacheable_fraction=args.cacheable)
    masters = args.masters
    if masters is None:
        masters = choose_masters(spec, args.rate, args.mu_h,
                                 1.0 / args.inv_r, args.nodes)
    sampler = pretrain_sampler(trace, seed=args.seed)
    policy = make_policy(args.policy, args.nodes, masters,
                         sampler=sampler, seed=args.seed + 17)
    cfg = paper_sim_config(num_nodes=args.nodes, seed=args.seed)
    cfg.static_rate = args.mu_h
    tracer = Tracer()
    result = replay(cfg, policy, trace, tracer=tracer, audit=False)
    report = audit_cluster(result.cluster)
    save_jsonl(tracer.spans, args.record, meta={
        "trace": args.trace, "policy": args.policy, "nodes": args.nodes,
        "masters": masters, "rate": args.rate, "duration": args.duration,
        "seed": args.seed, "audit_ok": report.ok,
    })
    summary = summarize_spans(tracer.spans)
    print(f"wrote {summary['spans']} spans ({summary['requests']} requests, "
          f"{summary['nodes']} nodes) to {args.record}")
    print(f"digest {summary['digest']}")
    if report.ok:
        print(f"audit: clean ({report.checked})")
        return 0
    print(report.render(), file=sys.stderr)
    return 1


def _trace_summarize(path: str) -> int:
    """``repro trace --summarize FILE``: per-kind counts + digest."""
    spans, header = load_jsonl(path)
    summary = summarize_spans(spans)
    rows = [["spans", summary["spans"]],
            ["requests", summary["requests"]],
            ["nodes", summary["nodes"]],
            ["virtual horizon",
             f"[{summary['t_min']:.3f}, {summary['t_max']:.3f}]"],
            ["digest", summary["digest"][:16] + "..."]]
    rows += [[f"  {kind}", count]
             for kind, count in summary["kinds"].items()]
    meta = header.get("meta")
    title = f"{path}" + (f" ({meta})" if meta else "")
    print(format_table(["quantity", "value"], rows, title=title))
    return 0


def _trace_audit_file(path: str) -> int:
    """``repro trace --audit FILE``: structural audit of a saved stream.

    A saved stream has no live cluster ledger or metrics report, so this
    checks the trace-derivable invariants (causality, lifecycle, device
    exclusivity, reservation caps) but not the ledger cross-checks.
    """
    spans, _header = load_jsonl(path)
    report = audit_spans(spans)
    if report.ok:
        print(f"{path}: clean ({report.checked})")
        return 0
    print(report.render(), file=sys.stderr)
    return 1


def _trace_audit_suites(args: argparse.Namespace) -> int:
    """Bare ``repro trace --audit``: audit fig3/fig4-style replays and the
    chaos harness end to end; exit non-zero on any invariant violation."""
    rows: List[List[object]] = []
    failures = 0

    def audited_replay(label: str, spec_name: str, policy_name: str,
                       p: int, util: float, inv_r: int) -> None:
        nonlocal failures
        spec = get_trace(spec_name)
        r = 1.0 / inv_r
        lam = experiments.iso_load_rate(spec, 1200.0, r, p, util)
        trace = generate_trace(spec, rate=lam, duration=6.0, mu_h=1200.0,
                               r=r, seed=args.seed)
        sampler = pretrain_sampler(trace, seed=args.seed)
        m = choose_masters(spec, lam, 1200.0, r, p)
        policy = make_policy(policy_name, p, m, sampler=sampler,
                             seed=args.seed + 17)
        tracer = Tracer()
        result = replay(paper_sim_config(num_nodes=p, seed=args.seed),
                        policy, trace, tracer=tracer, audit=False)
        report = audit_cluster(result.cluster)
        failures += len(report.violations)
        rows.append([label, f"{spec_name}/{policy_name}",
                     len(tracer.spans), len(report.violations),
                     "ok" if report.ok else "FAIL"])
        if not report.ok:
            print(report.render(), file=sys.stderr)

    # Fig-3 operating point (scaled to p=8): M/S vs the M/S-1 variant.
    for policy_name in ("MS", "MS-1"):
        audited_replay("fig3", "UCB", policy_name, p=8, util=0.6, inv_r=40)
    # Fig-4 corners: both traces, both r extremes, low/high utilisation.
    audited_replay("fig4", "UCB", "MS", p=8, util=0.9, inv_r=20)
    audited_replay("fig4", "KSU", "MS", p=8, util=0.6, inv_r=80)
    audited_replay("fig4", "KSU", "MSPrime", p=8, util=0.75, inv_r=40)

    # Chaos: crash storm and the overloaded storm-burst, fully audited
    # inside run_chaos (every variant's span stream).
    for scenario, rate, duration in (("crash-storm", 200.0, 15.0),
                                     ("storm-burst", 983.6, 15.0)):
        try:
            res = experiments.run_chaos(scenario, p=8, rate=rate,
                                        duration=duration, drain=40.0,
                                        seed=args.seed, audit=True)
            rows.append(["chaos", scenario, res.audit_spans, 0, "ok"])
        except TraceAuditError as exc:
            failures += len(exc.report.violations)
            rows.append(["chaos", scenario, "-",
                         len(exc.report.violations), "FAIL"])
            print(exc.report.render(), file=sys.stderr)

    print(format_table(["suite", "config", "spans", "violations", "status"],
                       rows, title="trace-audit suites"))
    if failures:
        print(f"{failures} invariant violation(s)", file=sys.stderr)
        return 1
    print("all suites clean")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: generate a synthetic trace, or record/audit/
    summarise an observability span stream."""
    modes = [name for name in ("record", "audit", "summarize")
             if getattr(args, name) is not None]
    if len(modes) > 1:
        print(f"--{modes[0]} and --{modes[1]} are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.record is not None:
        return _trace_record(args)
    if args.audit is not None:
        if args.audit == _AUDIT_SUITES:
            return _trace_audit_suites(args)
        return _trace_audit_file(args.audit)
    if args.summarize is not None:
        return _trace_summarize(args.summarize)
    return _trace_generate(args)


def _trace_generate(args: argparse.Namespace) -> int:
    """Original ``repro trace``: generate (and maybe save) a workload."""
    spec = get_trace(args.trace)
    trace = generate_trace(spec, rate=args.rate, duration=args.duration,
                           mu_h=args.mu_h, r=1.0 / args.inv_r,
                           seed=args.seed,
                           cacheable_fraction=args.cacheable)
    stats = trace_statistics(trace)
    print(format_table(
        ["stat", "value"],
        [[k, f"{v:.4f}" if isinstance(v, float) else v]
         for k, v in stats.items()],
        title=f"generated {len(trace)} requests ({spec.name}-like)",
    ))
    if args.out:
        n = save_trace(trace, args.out)
        print(f"wrote {n} requests to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """``repro replay``: simulate one trace under one policy."""
    if args.from_file:
        trace = load_trace(args.from_file)
        spec = get_trace(args.trace)
    else:
        spec = get_trace(args.trace)
        trace = generate_trace(spec, rate=args.rate,
                               duration=args.duration, mu_h=args.mu_h,
                               r=1.0 / args.inv_r, seed=args.seed)
    masters = args.masters
    if masters is None:
        masters = choose_masters(spec, args.rate, args.mu_h,
                                 1.0 / args.inv_r, args.nodes)
    sampler = pretrain_sampler(trace, seed=args.seed)
    policy = make_policy(args.policy, args.nodes, masters,
                         sampler=sampler, seed=args.seed + 17)
    cfg = paper_sim_config(num_nodes=args.nodes, seed=args.seed)
    cfg.static_rate = args.mu_h
    report = replay(cfg, policy, trace).report
    print(format_table(
        ["metric", "overall", "static", "dynamic"],
        [["stretch", report.overall.stretch, report.static.stretch,
          report.dynamic.stretch],
         ["mean response (ms)", report.overall.mean_response * 1e3,
          report.static.mean_response * 1e3,
          report.dynamic.mean_response * 1e3],
         ["p95 response (ms)", report.overall.p95_response * 1e3,
          report.static.p95_response * 1e3,
          report.dynamic.p95_response * 1e3],
         ["count", report.overall.count, report.static.count,
          report.dynamic.count]],
        title=(f"{args.policy} on {args.nodes} nodes ({masters} masters): "
               f"{report.completed} completed, "
               f"{report.remote_dispatches} remote CGI"),
    ))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro fig3|table1|...``: regenerate a paper artifact."""
    name = args.experiment
    if name == "fig3":
        print(experiments.run_fig3().render())
    elif name == "table1":
        print(experiments.run_table1(n=args.n).render())
    elif name == "table2":
        print(experiments.run_table2().render())
    elif name == "fig4":
        print(experiments.run_fig4(
            p_values=(32,), inv_r_values=(20, 80),
            utilizations=(0.6, 0.9),
            base_duration=args.duration).render())
    elif name == "fig5":
        print(experiments.run_fig5(p_values=(32,),
                                   duration=args.duration).render())
    elif name == "table3":
        print(experiments.run_table3(duration=4 * args.duration).render())
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(name)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: availability under a composed failure scenario."""
    result = experiments.run_chaos(
        scenario=args.scenario,
        trace_name=args.trace,
        p=args.nodes,
        rate=args.rate,
        duration=args.duration,
        inv_r=int(args.inv_r),
        seed=args.seed,
        mu_h=args.mu_h,
        detection_mode=args.detection_mode,
    )
    print(result.render())
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """``repro calibrate``: clean-simulator vs M/M/1 check."""
    rows = mm1_calibration(duration=args.duration * 5, seed=args.seed)
    print(format_table(
        ["rho", "1/(1-rho)", "simulated", "error %"],
        [[f"{r.rho:.2f}", r.predicted, r.simulated,
          100 * r.relative_error] for r in rows],
        title="clean simulator vs M/M/1",
    ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: boot a live loopback cluster and run until ^C."""
    import asyncio

    from repro.live.cluster import LiveCluster, LiveClusterConfig

    async def _run() -> None:
        cluster = LiveCluster(LiveClusterConfig(
            num_slaves=args.slaves, master_workers=args.workers,
            slave_workers=args.workers, seed=args.seed))
        async with cluster:
            m = cluster.master
            print(f"master node 0: http://{m.host}:{m.http_port} "
                  f"(heartbeat udp {m.udp_port}, cgi tcp {m.cgi_port})")
            for slave_id, port in enumerate(cluster.slave_ports, start=1):
                print(f"slave node {slave_id}: cgi tcp {port}")
            print("endpoints: /req /healthz /control/stats /control/spans")
            print("serving; Ctrl-C to stop", flush=True)
            while True:
                await asyncio.sleep(3600)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: open-loop trace replay against a live master."""
    import asyncio

    from repro.live.loadgen import http_get, run_loadgen
    from repro.live.validate import make_validation_trace

    if not args.spawn and args.port is None:
        print("loadgen needs --port (or --spawn to boot a cluster)",
              file=sys.stderr)
        return 2
    trace = make_validation_trace(args.trace, rate=args.rate,
                                  duration=args.duration, mu_h=args.mu_h,
                                  inv_r=args.inv_r, seed=args.seed)

    async def _replay(host: str, port: int):
        result = await run_loadgen(host, port, trace,
                                   time_scale=args.time_scale)
        if args.spans:
            status, body = await http_get(host, port, "/control/spans")
            if status != 200:
                raise RuntimeError(f"/control/spans returned HTTP {status}")
            with open(args.spans, "w", encoding="utf-8") as fh:
                fh.write(body.decode("utf-8"))
        return result

    async def _run():
        if args.spawn:
            from repro.live.cluster import LiveCluster, LiveClusterConfig
            cluster = LiveCluster(LiveClusterConfig(num_slaves=args.slaves,
                                                    seed=args.seed))
            async with cluster:
                assert cluster.master.http_port is not None
                return await _replay(cluster.master.host,
                                     cluster.master.http_port)
        return await _replay(args.host, args.port)

    result = asyncio.run(_run())
    rows = [[k, f"{v:.4f}" if isinstance(v, float) else v]
            for k, v in result.summary().items()]
    print(format_table(["quantity", "value"], rows,
                       title=f"loadgen: {len(trace)} requests "
                             f"({args.trace}-like)"))
    for message in result.error_messages[:5]:
        print(f"  error: {message}", file=sys.stderr)
    if args.spans:
        print(f"wrote live span stream to {args.spans}")
    if result.errors or (result.ok == 0 and result.submitted > 0):
        return 1
    return 0


def _control_config(args: argparse.Namespace):
    from repro.control import ControlConfig

    cfg = ControlConfig(
        period=args.period, cooldown=args.cooldown,
        min_masters=args.min_masters, max_masters=args.max_masters,
        dry_run=args.dry_run,
    )
    cfg.validate()
    return cfg


def cmd_control(args: argparse.Namespace) -> int:
    """``repro control``: online re-solving of Theorem 1 against a
    running cluster (simulated drift scenario, or ``--live``)."""
    cfg = _control_config(args)
    if args.live:
        return _control_live(args, cfg)
    tracer = Tracer()
    result = experiments.run_control_drift(
        trace_name=args.trace, p=args.nodes, mu_h=args.mu_h,
        inv_r=int(args.inv_r), seed=args.seed, control=cfg,
        tracer=tracer)
    print(result.render())
    if args.dry_run:
        print("dry-run: decisions were logged as CONTROL spans but "
              "nothing was actuated")
    if args.spans:
        save_jsonl(tracer.spans, args.spans, meta={
            "mode": "control-drift", "trace": args.trace,
            "nodes": args.nodes, "dry_run": args.dry_run,
            "seed": args.seed,
        })
        print(f"wrote controlled-run span stream to {args.spans}")
    return 0


def _control_live(args: argparse.Namespace, cfg) -> int:
    """``repro control --live``: reconciliation loop on a real cluster."""
    import asyncio

    from repro.control import LiveControlLoop
    from repro.live.cluster import LiveCluster, LiveClusterConfig
    from repro.live.loadgen import run_loadgen
    from repro.live.validate import make_validation_trace

    trace = make_validation_trace(args.trace, rate=args.rate,
                                  duration=args.duration, mu_h=args.mu_h,
                                  inv_r=args.inv_r, seed=args.seed)

    async def _run():
        cluster = LiveCluster(LiveClusterConfig(num_slaves=args.slaves,
                                                seed=args.seed))
        async with cluster:
            loop = LiveControlLoop(cluster.master, cfg).start()
            try:
                assert cluster.master.http_port is not None
                result = await run_loadgen(cluster.master.host,
                                           cluster.master.http_port, trace,
                                           time_scale=args.time_scale)
            finally:
                await loop.stop()
            spans = (list(cluster.master.tracer.spans)
                     if cluster.master.tracer is not None else [])
            return result, spans, loop.controller

    result, spans, controller = asyncio.run(_run())
    rows = [[k, f"{v:.4f}" if isinstance(v, float) else v]
            for k, v in result.summary().items()]
    rows += [["control ticks", controller.ticks],
             ["actions applied", len(controller.applied)],
             ["actions proposed", len(controller.proposed)]]
    print(format_table(["quantity", "value"], rows,
                       title=f"live controlled run: {len(trace)} requests "
                             f"({args.trace}-like)"))
    for action in controller.applied:
        print(f"  applied: {action.kind} node={action.node_id} "
              f"value={action.value} ({action.reason})")
    report = audit_spans(spans)
    if args.spans:
        save_jsonl(spans, args.spans, meta={
            "mode": "control-live", "trace": args.trace,
            "slaves": args.slaves, "dry_run": args.dry_run,
            "audit_ok": report.ok,
        })
        print(f"wrote live span stream to {args.spans}")
    if not report.ok:
        print(report.render(), file=sys.stderr)
        return 1
    print(f"audit: clean ({report.checked})")
    return 1 if result.errors else 0


def cmd_live_validate(args: argparse.Namespace) -> int:
    """``repro live-validate``: live vs simulated stretch comparison."""
    import asyncio

    from repro.live.validate import TOLERANCE, validate

    tolerance = args.tolerance if args.tolerance is not None else TOLERANCE
    result = asyncio.run(validate(
        args.trace, rate=args.rate, duration=args.duration, mu_h=args.mu_h,
        inv_r=args.inv_r, num_slaves=args.slaves, seed=args.seed,
        tolerance=tolerance))
    print(result.render())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Master/slave Web-cluster scheduling (SPAA'99 "
                     "reproduction)"),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("design", help="Theorem-1 master sizing")
    p.add_argument("--lam", type=float, required=True)
    p.add_argument("--a", type=float, required=True)
    p.add_argument("--inv-r", type=float, default=40.0)
    p.add_argument("--mu-h", type=float, default=1200.0)
    p.add_argument("--p", type=int, required=True)
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("trace",
                       help="generate a synthetic trace, or record/audit/"
                            "summarize an observability span stream")
    _add_workload_args(p)
    p.add_argument("--cacheable", type=float, default=0.0,
                   help="fraction of CGI output that is cacheable")
    p.add_argument("--out", help="write JSON Lines trace here")
    p.add_argument("--record", metavar="SPANS.jsonl",
                   help="replay the workload with tracing on, audit it, "
                        "and save the span stream here")
    p.add_argument("--audit", nargs="?", const=_AUDIT_SUITES,
                   metavar="SPANS.jsonl",
                   help="audit a saved span stream; bare, audit the "
                        "fig3/fig4/chaos suites end to end")
    p.add_argument("--summarize", metavar="SPANS.jsonl",
                   help="print per-kind counts and digest of a saved "
                        "span stream")
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size for --record")
    p.add_argument("--masters", type=int, default=None,
                   help="master count for --record (default: Theorem 1)")
    p.add_argument("--policy", default="MS",
                   help="dispatch policy for --record")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("replay", help="simulate one trace under a policy")
    _add_workload_args(p)
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--masters", type=int, default=None,
                   help="master count (default: Theorem 1)")
    p.add_argument("--policy", default="MS",
                   help="MS, MS-ns, MS-nr, MS-1, Flat, MSPrime, "
                        "RoundRobin, LeastActive")
    p.add_argument("--from-file", help="replay a saved JSON Lines trace")
    p.set_defaults(func=cmd_replay)

    for exp in ("fig3", "table1", "table2", "fig4", "fig5", "table3"):
        p = sub.add_parser(exp, help=f"regenerate {exp} (quick grid)")
        p.add_argument("--duration", type=float, default=6.0)
        p.add_argument("--n", type=int, default=20000)
        p.set_defaults(func=cmd_experiment, experiment=exp)

    p = sub.add_parser("chaos", help="availability under failure scenarios")
    _add_workload_args(p)
    p.set_defaults(rate=400.0, duration=45.0)
    p.add_argument("--scenario", default="storm-burst",
                   choices=sorted(CHAOS_SCENARIOS),
                   help="named failure composition")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--detection-mode", default="monitor",
                   choices=("switch", "monitor"),
                   help="how membership learns about crashes")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("calibrate", help="simulator vs M/M/1")
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("serve",
                       help="boot a live loopback master/slave cluster")
    p.add_argument("--slaves", type=int, default=2)
    p.add_argument("--workers", type=int, default=2,
                   help="worker threads per node")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("loadgen",
                       help="replay a trace against a live master over HTTP")
    _add_workload_args(p)
    p.set_defaults(rate=60.0, duration=3.0, inv_r=12.0, mu_h=240.0)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="HTTP port of a running master")
    p.add_argument("--spawn", action="store_true",
                   help="boot a loopback cluster for the duration of the run")
    p.add_argument("--slaves", type=int, default=2,
                   help="slave count for --spawn")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="stretch (>1) or compress (<1) inter-arrival gaps")
    p.add_argument("--spans", metavar="OUT.jsonl",
                   help="save the master's span stream (via /control/spans)")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("live-validate",
                       help="cross-validate live stretch against the "
                            "simulator")
    _add_workload_args(p)
    p.set_defaults(trace="ADL", rate=60.0, duration=3.0, inv_r=12.0,
                   mu_h=240.0)
    p.add_argument("--slaves", type=int, default=2)
    p.add_argument("--tolerance", type=float, default=None,
                   help="live/sim stretch ratio band (default: "
                        "repro.live.validate.TOLERANCE)")
    p.set_defaults(func=cmd_live_validate)

    p = sub.add_parser("control",
                       help="online control plane: re-solve Theorem 1 "
                            "against a running cluster")
    _add_workload_args(p)
    p.add_argument("--nodes", type=int, default=8,
                   help="cluster size for the sim drift scenario")
    p.add_argument("--period", type=float, default=0.5,
                   help="reconciliation period, seconds")
    p.add_argument("--cooldown", type=float, default=2.0,
                   help="minimum spacing between role transitions")
    p.add_argument("--min-masters", type=int, default=1)
    p.add_argument("--max-masters", type=int, default=None,
                   help="role-step ceiling (default p-1)")
    p.add_argument("--dry-run", action="store_true",
                   help="log decisions as CONTROL spans, actuate nothing")
    p.add_argument("--spans", metavar="OUT.jsonl",
                   help="save the controlled run's span stream")
    p.add_argument("--live", action="store_true",
                   help="attach the loop to a real loopback cluster "
                        "instead of the sim drift scenario")
    p.add_argument("--slaves", type=int, default=2,
                   help="slave count for --live")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="inter-arrival scaling for --live")
    p.set_defaults(rate=60.0, func=cmd_control)

    add_bench_parser(sub)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is None:
        parser.print_help(sys.stderr)
        print("\nrepro: error: a command is required "
              "(pick one from the list above)", file=sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
