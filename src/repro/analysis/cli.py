"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``design``
    Theorem-1 sizing for a workload: optimal master count, theta bounds,
    predicted stretch factors.
``trace``
    Generate a synthetic trace (optionally saving it to JSON Lines).
``replay``
    Run one trace (generated or loaded) through a cluster under a policy
    and print the metrics report.
``fig3 / table1 / table2 / fig4 / fig5 / table3``
    Regenerate the paper's artifacts (quick grids; see benchmarks/ for the
    asserting versions).
``chaos``
    Run a named chaos scenario (crash storms, recruitment churn, overload
    bursts) against baseline and resilience-enabled M/S clusters and print
    the availability comparison.
``calibrate``
    Check the clean simulator against M/M/1.
``bench``
    Run the perf suite (``--jobs N`` fans the grids over worker
    processes) and emit a machine-readable ``BENCH_<timestamp>.json``
    record; gates against ``benchmarks/baseline.json`` when present.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.analysis.sweep import choose_masters
from repro.analysis.validation import mm1_calibration
from repro.core.policies import make_policy
from repro.core.queuing import Workload, flat_stretch
from repro.core.theorem import optimal_masters, theta_bounds
from repro.perf.bench import add_bench_parser
from repro.sim.config import paper_sim_config
from repro.sim.failures import CHAOS_SCENARIOS
from repro.workload.generator import generate_trace, trace_statistics
from repro.workload.io import load_trace, save_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import get_trace


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="UCB",
                        help="trace spec name (UCB/KSU/ADL/DEC)")
    parser.add_argument("--rate", type=float, default=800.0,
                        help="arrival rate, requests/second")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="trace span in virtual seconds")
    parser.add_argument("--inv-r", type=float, default=40.0,
                        help="CGI cost ratio 1/r")
    parser.add_argument("--mu-h", type=float, default=1200.0,
                        help="per-node static service rate")
    parser.add_argument("--seed", type=int, default=0)


def cmd_design(args: argparse.Namespace) -> int:
    """``repro design``: Theorem-1 sizing for a described workload."""
    w = Workload.from_ratios(lam=args.lam, a=args.a, mu_h=args.mu_h,
                             r=1.0 / args.inv_r, p=args.p)
    if not w.feasible:
        print(f"offered load {w.total_offered:.1f} exceeds p={w.p}: "
              f"no stable configuration", file=sys.stderr)
        return 1
    design = optimal_masters(w)
    sf = flat_stretch(w)
    t1, t2 = theta_bounds(w, design.m) if design.m < w.p else (1.0, 1.0)
    print(format_table(
        ["quantity", "value"],
        [["masters m*", design.m],
         ["theta*", f"{design.theta:.4f}"],
         ["theta bounds", f"[{t1:.4f}, {t2:.4f}]"],
         ["SM (M/S stretch)", f"{design.sm:.4f}"],
         ["SF (flat stretch)", f"{sf:.4f}"],
         ["improvement", f"{100 * (sf / design.sm - 1):.1f}%"]],
        title=(f"Theorem 1 design: lam={args.lam}, a={args.a}, "
               f"1/r={args.inv_r}, p={args.p}"),
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: generate (and optionally save) a synthetic trace."""
    spec = get_trace(args.trace)
    trace = generate_trace(spec, rate=args.rate, duration=args.duration,
                           mu_h=args.mu_h, r=1.0 / args.inv_r,
                           seed=args.seed,
                           cacheable_fraction=args.cacheable)
    stats = trace_statistics(trace)
    print(format_table(
        ["stat", "value"],
        [[k, f"{v:.4f}" if isinstance(v, float) else v]
         for k, v in stats.items()],
        title=f"generated {len(trace)} requests ({spec.name}-like)",
    ))
    if args.out:
        n = save_trace(trace, args.out)
        print(f"wrote {n} requests to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """``repro replay``: simulate one trace under one policy."""
    if args.from_file:
        trace = load_trace(args.from_file)
        spec = get_trace(args.trace)
    else:
        spec = get_trace(args.trace)
        trace = generate_trace(spec, rate=args.rate,
                               duration=args.duration, mu_h=args.mu_h,
                               r=1.0 / args.inv_r, seed=args.seed)
    masters = args.masters
    if masters is None:
        masters = choose_masters(spec, args.rate, args.mu_h,
                                 1.0 / args.inv_r, args.nodes)
    sampler = pretrain_sampler(trace, seed=args.seed)
    policy = make_policy(args.policy, args.nodes, masters,
                         sampler=sampler, seed=args.seed + 17)
    cfg = paper_sim_config(num_nodes=args.nodes, seed=args.seed)
    cfg.static_rate = args.mu_h
    report = replay(cfg, policy, trace).report
    print(format_table(
        ["metric", "overall", "static", "dynamic"],
        [["stretch", report.overall.stretch, report.static.stretch,
          report.dynamic.stretch],
         ["mean response (ms)", report.overall.mean_response * 1e3,
          report.static.mean_response * 1e3,
          report.dynamic.mean_response * 1e3],
         ["p95 response (ms)", report.overall.p95_response * 1e3,
          report.static.p95_response * 1e3,
          report.dynamic.p95_response * 1e3],
         ["count", report.overall.count, report.static.count,
          report.dynamic.count]],
        title=(f"{args.policy} on {args.nodes} nodes ({masters} masters): "
               f"{report.completed} completed, "
               f"{report.remote_dispatches} remote CGI"),
    ))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro fig3|table1|...``: regenerate a paper artifact."""
    name = args.experiment
    if name == "fig3":
        print(experiments.run_fig3().render())
    elif name == "table1":
        print(experiments.run_table1(n=args.n).render())
    elif name == "table2":
        print(experiments.run_table2().render())
    elif name == "fig4":
        print(experiments.run_fig4(
            p_values=(32,), inv_r_values=(20, 80),
            utilizations=(0.6, 0.9),
            base_duration=args.duration).render())
    elif name == "fig5":
        print(experiments.run_fig5(p_values=(32,),
                                   duration=args.duration).render())
    elif name == "table3":
        print(experiments.run_table3(duration=4 * args.duration).render())
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(name)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: availability under a composed failure scenario."""
    result = experiments.run_chaos(
        scenario=args.scenario,
        trace_name=args.trace,
        p=args.nodes,
        rate=args.rate,
        duration=args.duration,
        inv_r=int(args.inv_r),
        seed=args.seed,
        mu_h=args.mu_h,
        detection_mode=args.detection_mode,
    )
    print(result.render())
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """``repro calibrate``: clean-simulator vs M/M/1 check."""
    rows = mm1_calibration(duration=args.duration * 5, seed=args.seed)
    print(format_table(
        ["rho", "1/(1-rho)", "simulated", "error %"],
        [[f"{r.rho:.2f}", r.predicted, r.simulated,
          100 * r.relative_error] for r in rows],
        title="clean simulator vs M/M/1",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Master/slave Web-cluster scheduling (SPAA'99 "
                     "reproduction)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("design", help="Theorem-1 master sizing")
    p.add_argument("--lam", type=float, required=True)
    p.add_argument("--a", type=float, required=True)
    p.add_argument("--inv-r", type=float, default=40.0)
    p.add_argument("--mu-h", type=float, default=1200.0)
    p.add_argument("--p", type=int, required=True)
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("trace", help="generate a synthetic trace")
    _add_workload_args(p)
    p.add_argument("--cacheable", type=float, default=0.0,
                   help="fraction of CGI output that is cacheable")
    p.add_argument("--out", help="write JSON Lines trace here")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("replay", help="simulate one trace under a policy")
    _add_workload_args(p)
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--masters", type=int, default=None,
                   help="master count (default: Theorem 1)")
    p.add_argument("--policy", default="MS",
                   help="MS, MS-ns, MS-nr, MS-1, Flat, MSPrime, "
                        "RoundRobin, LeastActive")
    p.add_argument("--from-file", help="replay a saved JSON Lines trace")
    p.set_defaults(func=cmd_replay)

    for exp in ("fig3", "table1", "table2", "fig4", "fig5", "table3"):
        p = sub.add_parser(exp, help=f"regenerate {exp} (quick grid)")
        p.add_argument("--duration", type=float, default=6.0)
        p.add_argument("--n", type=int, default=20000)
        p.set_defaults(func=cmd_experiment, experiment=exp)

    p = sub.add_parser("chaos", help="availability under failure scenarios")
    _add_workload_args(p)
    p.set_defaults(rate=400.0, duration=45.0)
    p.add_argument("--scenario", default="storm-burst",
                   choices=sorted(CHAOS_SCENARIOS),
                   help="named failure composition")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--detection-mode", default="monitor",
                   choices=("switch", "monitor"),
                   help="how membership learns about crashes")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("calibrate", help="simulator vs M/M/1")
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_calibrate)

    add_bench_parser(sub)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
