"""Calibration of the simulator against closed-form queuing theory.

The Section-3 analysis rests on M/M/1 behaviour: with Poisson arrivals and
exponential service, a station at utilisation ``rho`` has expected stretch
``1/(1 - rho)``.  Our simulator is far richer (quanta, priorities, context
switches, two resources, paging), but when those features are switched off
it must collapse to the textbook law — otherwise the Figure-4 comparisons
against Theorem 1 would be comparing apples to a broken orange.

``mm1_calibration`` runs that collapse test; ``ms_model_calibration`` runs
the two-tier version (an M/S split under the same clean assumptions) so the
Theorem-1 stretch predictions can be checked end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.policies import FlatPolicy, MSPolicy
from repro.core.queuing import Workload, flat_stretch, ms_stretch
from repro.sim.config import SimConfig
from repro.workload.replay import replay
from repro.workload.request import Request, RequestKind


def _clean_config(num_nodes: int, seed: int) -> SimConfig:
    """A simulator stripped to the queuing model's assumptions."""
    cfg = SimConfig(num_nodes=num_nodes, seed=seed)
    cfg.cpu.context_switch_overhead = 0.0
    cfg.cpu.fork_overhead = 0.0
    cfg.memory.enable_paging = False
    cfg.network.remote_cgi_latency = 0.0
    return cfg.validate()


def exponential_trace(lam: float, mean_demand: float, duration: float,
                      seed: int, kind: RequestKind = RequestKind.STATIC,
                      start_id: int = 0) -> List[Request]:
    """Poisson arrivals with exponential, CPU-only service demands."""
    if lam <= 0 or mean_demand <= 0 or duration <= 0:
        raise ValueError("lam, mean_demand and duration must be positive")
    rng = np.random.default_rng(seed)
    n = max(1, int(round(lam * duration)))
    gaps = rng.exponential(1.0 / lam, size=n)
    arrivals = np.cumsum(gaps)
    demands = rng.exponential(mean_demand, size=n)
    return [
        Request(req_id=start_id + i, arrival_time=float(arrivals[i]),
                kind=kind, cpu_demand=float(max(demands[i], 1e-7)),
                io_demand=0.0, mem_pages=0,
                type_key="static" if kind is RequestKind.STATIC
                else "cgi:exp")
        for i in range(n)
    ]


@dataclass(slots=True)
class CalibrationRow:
    rho: float
    predicted: float
    simulated: float

    @property
    def relative_error(self) -> float:
        return abs(self.simulated - self.predicted) / self.predicted


def class_level_stretch(report) -> float:
    """Mean-response / mean-demand, combined across classes by counts.

    This is the quantity the Section-3 formulas predict: per *class*,
    ``E[T] / E[d] = 1/(1-rho)`` for an M/M/1 station.  (The per-request
    ``mean(t/d)`` is a different functional: under FCFS-like service it is
    dominated by tiny-demand requests and diverges for exponential demands,
    so it cannot be used to calibrate against the closed forms.)
    """
    parts = []
    weights = []
    for stats in (report.static, report.dynamic):
        if stats.count > 0:
            parts.append(stats.mean_response / stats.mean_demand)
            weights.append(stats.count)
    return float(np.average(parts, weights=weights))


def mm1_calibration(rho_values: Sequence[float] = (0.3, 0.5, 0.7, 0.85),
                    mu: float = 1200.0, duration: float = 60.0,
                    seed: int = 0) -> List[CalibrationRow]:
    """Single node, Poisson/exponential: stretch must match 1/(1-rho).

    The simulated value is the class-level stretch (mean response over
    mean demand) — see :func:`class_level_stretch` for why the per-request
    ``mean(t/d)`` cannot calibrate against the closed form.
    """
    rows = []
    for i, rho in enumerate(rho_values):
        if not 0 < rho < 1:
            raise ValueError("rho must be in (0, 1)")
        cfg = _clean_config(1, seed + i)
        trace = exponential_trace(lam=rho * mu, mean_demand=1.0 / mu,
                                  duration=duration, seed=seed + 100 + i)
        report = replay(cfg, FlatPolicy(1, seed=seed), trace,
                        warmup_fraction=0.2).report
        rows.append(CalibrationRow(
            rho=rho, predicted=1.0 / (1.0 - rho),
            simulated=class_level_stretch(report)))
    return rows


def flat_cluster_calibration(w: Workload, duration: float = 30.0,
                             seed: int = 0) -> CalibrationRow:
    """Uniform random dispatch over p clean nodes vs the flat formula."""
    cfg = _clean_config(w.p, seed)
    statics = exponential_trace(w.lam_h, 1.0 / w.mu_h, duration, seed + 1)
    dynamics = exponential_trace(w.lam_c, 1.0 / w.mu_c, duration, seed + 2,
                                 kind=RequestKind.DYNAMIC,
                                 start_id=len(statics))
    trace = sorted(statics + dynamics, key=lambda q: q.arrival_time)
    report = replay(cfg, FlatPolicy(w.p, seed=seed + 3), trace,
                    warmup_fraction=0.2).report
    return CalibrationRow(rho=w.total_offered / w.p,
                          predicted=flat_stretch(w),
                          simulated=class_level_stretch(report))


def ms_model_calibration(w: Workload, m: int, theta: float,
                         duration: float = 30.0,
                         seed: int = 0) -> CalibrationRow:
    """M/S split under clean assumptions vs the Equation-1 stretch.

    The policy is pinned to the analytic operating point: reservation cap
    frozen at ``theta`` and random (not RSRC) placement, so the simulated
    system *is* the queuing model's routing.
    """
    cfg = _clean_config(w.p, seed)
    statics = exponential_trace(w.lam_h, 1.0 / w.mu_h, duration, seed + 1)
    dynamics = exponential_trace(w.lam_c, 1.0 / w.mu_c, duration, seed + 2,
                                 kind=RequestKind.DYNAMIC,
                                 start_id=len(statics))
    trace = sorted(statics + dynamics, key=lambda q: q.arrival_time)

    from repro.core.policies import Route

    class AnalyticSplit(MSPolicy):
        """Random dispatch at exactly the model's theta split."""

        def _route_dynamic(self, request, view, accept):
            if self.rng.random() < theta:
                node = self._random_alive_master(view)
            else:
                slaves = self._alive(view, self._slaves)
                node = int(slaves[self.rng.integers(len(slaves))])
            return Route(node, remote=(node != accept))

    policy = AnalyticSplit(w.p, m, use_sampling=False,
                           use_reservation=False, seed=seed + 3)
    report = replay(cfg, policy, trace, warmup_fraction=0.2).report
    # The Equation-1 combination weights class stretches by arrival rates;
    # class_level_stretch weights by completed counts, which converges to
    # the same thing.
    return CalibrationRow(rho=w.total_offered / w.p,
                          predicted=ms_stretch(w, m, theta).total,
                          simulated=class_level_stretch(report))
