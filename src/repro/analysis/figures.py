"""Plain-text chart rendering for figure-shaped results.

The paper's figures are bar groups and line plots; these helpers render
the same shapes as fixed-width text so `pytest -s`, the CLI, and
EXPERIMENTS.md can show them without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _scaled(value: float, vmax: float, width: int) -> str:
    """A horizontal bar of ``value/vmax`` scaled to ``width`` cells."""
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    rem = cells - full
    partial = _BLOCKS[int(rem * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * full + partial


def bar_chart(items: Sequence[Tuple[str, float]],
              title: Optional[str] = None,
              width: int = 40,
              unit: str = "") -> str:
    """Horizontal bar chart.

    >>> print(bar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a  ████ 2.00
    b  ██   1.00
    """
    if not items:
        raise ValueError("no bars to draw")
    if width < 1:
        raise ValueError("width must be >= 1")
    labels = [label for label, _ in items]
    values = [float(v) for _, v in items]
    if any(v < 0 for v in values):
        raise ValueError("bar values must be >= 0")
    vmax = max(values) or 1.0
    label_w = max(len(s) for s in labels)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        bar = _scaled(value, vmax, width)
        lines.append(f"{label.ljust(label_w)}  {bar.ljust(width)} "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
                      title: Optional[str] = None,
                      width: int = 40,
                      unit: str = "") -> str:
    """Bar groups (the paper's Figure 4/5 style): one block per group."""
    if not groups:
        raise ValueError("no groups to draw")
    vmax = max((float(v) for _, bars in groups for _, v in bars),
               default=0.0) or 1.0
    label_w = max(len(name) for _, bars in groups for name, _ in bars)
    lines = [] if title is None else [title]
    for group_name, bars in groups:
        lines.append(f"{group_name}:")
        for name, value in bars:
            bar = _scaled(max(0.0, float(value)), vmax, width)
            sign = "" if value >= 0 else " (negative)"
            lines.append(f"  {name.ljust(label_w)}  {bar.ljust(width)} "
                         f"{float(value):.1f}{unit}{sign}")
    return "\n".join(lines)


def line_plot(series: Dict[str, Sequence[Tuple[float, float]]],
              title: Optional[str] = None,
              width: int = 60, height: int = 16,
              xlabel: str = "x", ylabel: str = "y") -> str:
    """Scatter/line plot on a character grid, one glyph per series.

    Designed for the Figure-3 shape: a handful of monotone curves.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    glyphs = "ox+*#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, pts) in zip(glyphs, series.items()):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = [] if title is None else [title]
    lines.append(f"{ylabel} (top={y_hi:.1f}, bottom={y_lo:.1f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {x_lo:g} .. {x_hi:g}")
    legend = "  ".join(f"{glyph}={name}"
                       for glyph, name in zip(glyphs, series))
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
