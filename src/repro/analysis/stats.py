"""Multi-seed experiment statistics.

Single replays of short traces are noisy (the paper replayed hours of
trace; our quick grids replay seconds), so conclusions should rest on
several seeds.  This module provides mean / confidence-interval
aggregation over repeated bake-offs and a significance-aware comparison
helper used by the wide benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.analysis.sweep import BAKEOFF_POLICIES, BakeoffResult, run_bakeoff
from repro.workload.traces import TraceSpec


@dataclass(slots=True)
class Summary:
    """Mean and two-sided confidence interval of repeated measurements."""

    mean: float
    half_width: float     # CI half-width; 0 for single samples
    n: int
    values: tuple

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.2f}"
        return f"{self.mean:.2f}±{self.half_width:.2f}"


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Student-t confidence interval of a small sample.

    >>> s = summarize([2.0, 2.0, 2.0])
    >>> (s.mean, s.half_width)
    (2.0, 0.0)
    """
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(vals.mean())
    if vals.size == 1:
        return Summary(mean=mean, half_width=0.0, n=1, values=tuple(vals))
    sem = float(vals.std(ddof=1)) / math.sqrt(vals.size)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=vals.size - 1))
    return Summary(mean=mean, half_width=t * sem, n=int(vals.size),
                   values=tuple(vals))


@dataclass(slots=True)
class MultiSeedBakeoff:
    """Aggregated bake-off across seeds."""

    spec_name: str
    lam: float
    r: float
    p: int
    stretch: Dict[str, Summary]          # per policy
    improvement: Dict[str, Summary]      # per policy, vs "MS", in percent
    results: List[BakeoffResult]

    def significantly_better(self, over: str) -> bool:
        """Whether M/S beats ``over`` with the CI clear of zero."""
        s = self.improvement[over]
        return s.lo > 0.0

    def significantly_worse(self, over: str) -> bool:
        s = self.improvement[over]
        return s.hi < 0.0


def run_bakeoff_multi(
    spec: TraceSpec,
    *,
    lam: float,
    r: float,
    p: int,
    duration: float,
    seeds: Sequence[int],
    policies: Sequence[str] = BAKEOFF_POLICIES,
    confidence: float = 0.95,
    mu_h: float = 1200.0,
    m: Optional[int] = None,
) -> MultiSeedBakeoff:
    """Repeat :func:`~repro.analysis.sweep.run_bakeoff` over seeds.

    Each seed regenerates the trace *and* the policy randomness, so the CI
    covers both workload sampling noise and scheduling tie-breaks.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results = [run_bakeoff(spec, lam=lam, r=r, p=p, duration=duration,
                           mu_h=mu_h, seed=seed, policies=policies, m=m)
               for seed in seeds]
    stretch: Dict[str, Summary] = {}
    improvement: Dict[str, Summary] = {}
    for name in policies:
        stretch[name] = summarize(
            [res.stretch(name) for res in results], confidence)
        if name != "MS" and "MS" in policies:
            improvement[name] = summarize(
                [res.improvement(name) for res in results], confidence)
    return MultiSeedBakeoff(spec_name=spec.name, lam=lam, r=r, p=p,
                            stretch=stretch, improvement=improvement,
                            results=results)
