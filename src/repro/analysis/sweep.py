"""Shared machinery for the replay experiments: feasibility checks, master
-count selection, and the per-configuration policy bake-off.

Grid points are described by the picklable :class:`BakeoffSpec` so whole
sweeps can fan out across processes via :func:`run_bakeoff_grid` (each
worker regenerates its trace from the spec's seed, so ``jobs=1`` and
``jobs=N`` produce bit-identical reports).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import (
    FlatPolicy,
    Policy,
    make_ms,
    make_ms_1,
    make_ms_ns,
    make_ms_nr,
)
from repro.core.queuing import Workload
from repro.core.theorem import optimal_masters
from repro.perf.pool import run_tasks
from repro.sim.config import SimConfig, paper_sim_config
from repro.sim.metrics import MetricsReport
from repro.workload.cgi_profiles import get_profile
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import TRACES, TraceSpec


def resource_utilization(spec: TraceSpec, lam: float, mu_h: float, r: float,
                         p: int) -> tuple[float, float]:
    """(cpu, disk) utilisation per node under perfect load spreading.

    Unlike the single-server queuing model, the simulator lets a node's CPU
    and disk work concurrently, so the binding constraint is the busier
    *resource*, not the summed demand.
    """
    a = spec.arrival_ratio_a
    lam_h = lam / (1.0 + a)
    lam_c = lam - lam_h
    d_h = 1.0 / mu_h
    d_c = 1.0 / (mu_h * r)
    w = _mixture_w(spec)
    # Static service is pure CPU; cache-miss disk reads are second-order.
    cpu = (lam_h * d_h + lam_c * d_c * w) / p
    disk = (lam_c * d_c * (1 - w)) / p
    return cpu, disk


def _mixture_w(spec: TraceSpec) -> float:
    return sum(get_profile(name).w_cpu * wt for name, wt in spec.cgi_mix)


def feasible_rate(spec: TraceSpec, lam: float, mu_h: float, r: float,
                  p: int, limit: float = 0.95) -> bool:
    """Whether the configuration leaves headroom on both resources."""
    cpu, disk = resource_utilization(spec, lam, mu_h, r, p)
    return max(cpu, disk) < limit


def choose_masters(spec: TraceSpec, lam: float, mu_h: float, r: float,
                   p: int) -> int:
    """Number of master nodes for a configuration, per Theorem 1.

    When the single-server queuing model declares the load infeasible (the
    two-resource simulator still copes there because a node's CPU and disk
    overlap), fall back to a two-resource min-max sizing: pick the (m,
    theta) whose most-utilised resource across the master and slave tiers
    is smallest, and return that m.
    """
    if p == 1:
        return 1
    w = Workload.from_ratios(lam=lam, a=spec.arrival_ratio_a, mu_h=mu_h,
                             r=r, p=p)
    if w.feasible:
        try:
            return min(optimal_masters(w).m, p - 1)
        except ArithmeticError:
            pass
    lam_h, lam_c = w.lam_h, w.lam_c
    d_h, d_c = 1.0 / mu_h, 1.0 / (mu_h * r)
    w_cpu = _mixture_w(spec)
    best_m, best_peak = 1, math.inf
    for m in range(1, p):
        peak_m = math.inf
        for theta in (t / 50.0 for t in range(51)):
            master_cpu = (lam_h * d_h + theta * lam_c * d_c * w_cpu) / m
            master_disk = (theta * lam_c * d_c * (1 - w_cpu)) / m
            slave_cpu = ((1 - theta) * lam_c * d_c * w_cpu) / (p - m)
            slave_disk = ((1 - theta) * lam_c * d_c * (1 - w_cpu)) / (p - m)
            peak = max(master_cpu, master_disk, slave_cpu, slave_disk)
            peak_m = min(peak_m, peak)
        if peak_m < best_peak:
            best_m, best_peak = m, peak_m
    return best_m


@dataclass(slots=True)
class BakeoffResult:
    """Per-policy reports for one (trace, lam, r, p) configuration."""

    spec_name: str
    lam: float
    r: float
    p: int
    m: int
    reports: Dict[str, MetricsReport]

    def stretch(self, policy: str) -> float:
        return self.reports[policy].overall.stretch

    def improvement(self, over: str, of: str = "MS") -> float:
        """Paper metric: ``(stretch(over)/stretch(of) - 1) * 100``."""
        return (self.stretch(over) / self.stretch(of) - 1.0) * 100.0


#: The four schedulers of Figure 4 plus the flat baseline.
BAKEOFF_POLICIES = ("MS", "MS-ns", "MS-nr", "MS-1", "Flat")


def make_bakeoff_policy(name: str, p: int, m: int, sampler, seed: int) -> Policy:
    """Instantiate one of the Figure-4 schedulers by its paper name."""
    if name == "MS":
        return make_ms(p, m, sampler, seed=seed)
    if name == "MS-ns":
        return make_ms_ns(p, m, seed=seed)
    if name == "MS-nr":
        return make_ms_nr(p, m, sampler, seed=seed)
    if name == "MS-1":
        return make_ms_1(p, sampler, seed=seed)
    if name == "Flat":
        return FlatPolicy(p, seed=seed)
    raise ValueError(f"unknown bake-off policy {name!r}")


def run_bakeoff(
    spec: TraceSpec,
    *,
    lam: float,
    r: float,
    p: int,
    duration: float,
    mu_h: float = 1200.0,
    seed: int = 0,
    policies: Sequence[str] = BAKEOFF_POLICIES,
    m: Optional[int] = None,
    cfg: Optional[SimConfig] = None,
    warmup_fraction: float = 0.15,
    jobs: Optional[int] = None,
) -> BakeoffResult:
    """Replay one configuration under several schedulers.

    All policies see the *same* synthetic trace (same seed), so differences
    are pure scheduling effects.

    ``jobs`` fans the per-policy replays out over worker processes
    (defaulting to ``cfg.parallelism`` when a config is given); each worker
    regenerates the trace from the seed, so results are identical to the
    serial run.
    """
    masters = m if m is not None else choose_masters(spec, lam, mu_h, r, p)
    if jobs is None:
        jobs = cfg.parallelism if cfg is not None else 1
    point = BakeoffSpec(spec_name=spec.name, lam=lam, r=r, p=p,
                        duration=duration, mu_h=mu_h, seed=seed,
                        policies=tuple(policies), m=masters, cfg=cfg,
                        warmup_fraction=warmup_fraction)
    if jobs > 1 and len(point.policies) > 1:
        payloads = [(point, name) for name in point.policies]
        reports = dict(zip(point.policies,
                           (res.unwrap() for res in
                            run_tasks(_policy_task, payloads, jobs))))
    else:
        trace = generate_trace(spec, rate=lam, duration=duration, mu_h=mu_h,
                               r=r, seed=seed)
        sampler = pretrain_sampler(trace, seed=seed)
        base_cfg = _spec_config(point)
        reports = {}
        for name in point.policies:
            policy = make_bakeoff_policy(name, p, masters, sampler, seed + 17)
            result = replay(base_cfg.copy(), policy, trace,
                            warmup_fraction=warmup_fraction)
            reports[name] = result.report
    return BakeoffResult(spec_name=spec.name, lam=lam, r=r, p=p,
                         m=masters, reports=reports)


# -- parallel grids ----------------------------------------------------------


@dataclass(slots=True)
class BakeoffSpec:
    """Picklable description of one bake-off grid point.

    Carries everything a worker process needs to reproduce the
    configuration from scratch — including the trace seed, so the
    generated workload is bit-identical no matter which process replays
    it.  ``m=None`` lets the worker size masters via Theorem 1.
    """

    spec_name: str
    lam: float
    r: float
    p: int
    duration: float
    mu_h: float = 1200.0
    seed: int = 0
    policies: Tuple[str, ...] = BAKEOFF_POLICIES
    m: Optional[int] = None
    cfg: Optional[SimConfig] = None
    warmup_fraction: float = 0.15

    def derive_seed(self, index: int) -> "BakeoffSpec":
        """Deterministic per-config seed for position ``index`` in a grid
        (used by sweeps that vary only the replication index)."""
        return replace(self, seed=self.seed + 1009 * index)


def _spec_config(point: BakeoffSpec) -> SimConfig:
    cfg = point.cfg if point.cfg is not None else paper_sim_config(
        num_nodes=point.p, seed=point.seed)
    cfg.static_rate = point.mu_h
    return cfg


def _policy_task(payload: Tuple[BakeoffSpec, str]) -> MetricsReport:
    """Worker: one (grid point, policy) replay.  Module-level so it pickles
    by reference."""
    point, name = payload
    spec = TRACES[point.spec_name]
    trace = generate_trace(spec, rate=point.lam, duration=point.duration,
                           mu_h=point.mu_h, r=point.r, seed=point.seed)
    sampler = pretrain_sampler(trace, seed=point.seed)
    policy = make_bakeoff_policy(name, point.p, point.m, sampler,
                                 point.seed + 17)
    return replay(_spec_config(point).copy(), policy, trace,
                  warmup_fraction=point.warmup_fraction).report


def _bakeoff_task(point: BakeoffSpec) -> BakeoffResult:
    """Worker: one whole grid point (all policies, serial within)."""
    return run_bakeoff(
        TRACES[point.spec_name], lam=point.lam, r=point.r, p=point.p,
        duration=point.duration, mu_h=point.mu_h, seed=point.seed,
        policies=point.policies, m=point.m, cfg=point.cfg,
        warmup_fraction=point.warmup_fraction, jobs=1)


def run_bakeoff_grid(
    points: Sequence[BakeoffSpec],
    jobs: int = 1,
    *,
    chunk_size: int = 1,
) -> List[BakeoffResult]:
    """Run many grid points, ``jobs`` worker processes at a time.

    Results come back in input order and are bit-identical to running each
    point serially (the workers rebuild traces from the specs' own seeds).
    A worker crash fails only its grid point; the error surfaces here as a
    ``RuntimeError`` naming the point.
    """
    results = run_tasks(_bakeoff_task, points, jobs, chunk_size=chunk_size)
    out: List[BakeoffResult] = []
    for point, res in zip(points, results):
        if not res.ok:
            raise RuntimeError(
                f"bake-off failed for {point.spec_name} lam={point.lam:.0f} "
                f"1/r={1 / point.r:.0f} p={point.p}: {res.error}")
        out.append(res.value)
    return out
