"""Shared machinery for the replay experiments: feasibility checks, master
-count selection, and the per-configuration policy bake-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.policies import (
    FlatPolicy,
    Policy,
    make_ms,
    make_ms_1,
    make_ms_ns,
    make_ms_nr,
)
from repro.core.queuing import Workload
from repro.core.theorem import optimal_masters
from repro.sim.config import SimConfig, paper_sim_config
from repro.sim.metrics import MetricsReport
from repro.workload.cgi_profiles import get_profile
from repro.workload.generator import generate_trace
from repro.workload.replay import pretrain_sampler, replay
from repro.workload.traces import TraceSpec


def resource_utilization(spec: TraceSpec, lam: float, mu_h: float, r: float,
                         p: int) -> tuple[float, float]:
    """(cpu, disk) utilisation per node under perfect load spreading.

    Unlike the single-server queuing model, the simulator lets a node's CPU
    and disk work concurrently, so the binding constraint is the busier
    *resource*, not the summed demand.
    """
    a = spec.arrival_ratio_a
    lam_h = lam / (1.0 + a)
    lam_c = lam - lam_h
    d_h = 1.0 / mu_h
    d_c = 1.0 / (mu_h * r)
    w = _mixture_w(spec)
    # Static service is pure CPU; cache-miss disk reads are second-order.
    cpu = (lam_h * d_h + lam_c * d_c * w) / p
    disk = (lam_c * d_c * (1 - w)) / p
    return cpu, disk


def _mixture_w(spec: TraceSpec) -> float:
    return sum(get_profile(name).w_cpu * wt for name, wt in spec.cgi_mix)


def feasible_rate(spec: TraceSpec, lam: float, mu_h: float, r: float,
                  p: int, limit: float = 0.95) -> bool:
    """Whether the configuration leaves headroom on both resources."""
    cpu, disk = resource_utilization(spec, lam, mu_h, r, p)
    return max(cpu, disk) < limit


def choose_masters(spec: TraceSpec, lam: float, mu_h: float, r: float,
                   p: int) -> int:
    """Number of master nodes for a configuration, per Theorem 1.

    When the single-server queuing model declares the load infeasible (the
    two-resource simulator still copes there because a node's CPU and disk
    overlap), fall back to a two-resource min-max sizing: pick the (m,
    theta) whose most-utilised resource across the master and slave tiers
    is smallest, and return that m.
    """
    if p == 1:
        return 1
    w = Workload.from_ratios(lam=lam, a=spec.arrival_ratio_a, mu_h=mu_h,
                             r=r, p=p)
    if w.feasible:
        try:
            return min(optimal_masters(w).m, p - 1)
        except ArithmeticError:
            pass
    lam_h, lam_c = w.lam_h, w.lam_c
    d_h, d_c = 1.0 / mu_h, 1.0 / (mu_h * r)
    w_cpu = _mixture_w(spec)
    best_m, best_peak = 1, math.inf
    for m in range(1, p):
        peak_m = math.inf
        for theta in (t / 50.0 for t in range(51)):
            master_cpu = (lam_h * d_h + theta * lam_c * d_c * w_cpu) / m
            master_disk = (theta * lam_c * d_c * (1 - w_cpu)) / m
            slave_cpu = ((1 - theta) * lam_c * d_c * w_cpu) / (p - m)
            slave_disk = ((1 - theta) * lam_c * d_c * (1 - w_cpu)) / (p - m)
            peak = max(master_cpu, master_disk, slave_cpu, slave_disk)
            peak_m = min(peak_m, peak)
        if peak_m < best_peak:
            best_m, best_peak = m, peak_m
    return best_m


@dataclass(slots=True)
class BakeoffResult:
    """Per-policy reports for one (trace, lam, r, p) configuration."""

    spec_name: str
    lam: float
    r: float
    p: int
    m: int
    reports: Dict[str, MetricsReport]

    def stretch(self, policy: str) -> float:
        return self.reports[policy].overall.stretch

    def improvement(self, over: str, of: str = "MS") -> float:
        """Paper metric: ``(stretch(over)/stretch(of) - 1) * 100``."""
        return (self.stretch(over) / self.stretch(of) - 1.0) * 100.0


#: The four schedulers of Figure 4 plus the flat baseline.
BAKEOFF_POLICIES = ("MS", "MS-ns", "MS-nr", "MS-1", "Flat")


def make_bakeoff_policy(name: str, p: int, m: int, sampler, seed: int) -> Policy:
    """Instantiate one of the Figure-4 schedulers by its paper name."""
    if name == "MS":
        return make_ms(p, m, sampler, seed=seed)
    if name == "MS-ns":
        return make_ms_ns(p, m, seed=seed)
    if name == "MS-nr":
        return make_ms_nr(p, m, sampler, seed=seed)
    if name == "MS-1":
        return make_ms_1(p, sampler, seed=seed)
    if name == "Flat":
        return FlatPolicy(p, seed=seed)
    raise ValueError(f"unknown bake-off policy {name!r}")


def run_bakeoff(
    spec: TraceSpec,
    *,
    lam: float,
    r: float,
    p: int,
    duration: float,
    mu_h: float = 1200.0,
    seed: int = 0,
    policies: Sequence[str] = BAKEOFF_POLICIES,
    m: Optional[int] = None,
    cfg: Optional[SimConfig] = None,
    warmup_fraction: float = 0.15,
) -> BakeoffResult:
    """Replay one configuration under several schedulers.

    All policies see the *same* synthetic trace (same seed), so differences
    are pure scheduling effects.
    """
    trace = generate_trace(spec, rate=lam, duration=duration, mu_h=mu_h,
                           r=r, seed=seed)
    sampler = pretrain_sampler(trace, seed=seed)
    masters = m if m is not None else choose_masters(spec, lam, mu_h, r, p)
    base_cfg = cfg if cfg is not None else paper_sim_config(num_nodes=p,
                                                            seed=seed)
    base_cfg.static_rate = mu_h

    reports: Dict[str, MetricsReport] = {}
    for name in policies:
        policy = make_bakeoff_policy(name, p, masters, sampler, seed + 17)
        result = replay(base_cfg.copy(), policy, trace,
                        warmup_fraction=warmup_fraction)
        reports[name] = result.report
    return BakeoffResult(spec_name=spec.name, lam=lam, r=r, p=p,
                         m=masters, reports=reports)
