"""Adaptive reservation of master resources for static requests (Section 4).

The scheduler caps the fraction of dynamic requests admitted to master
nodes at ``theta'_2`` — the Theorem-1 upper bound recomputed online:

* the arrival-rate ratio ``a`` is monitored directly from the request
  stream;
* the service-rate ratio ``r`` is hard to measure online, so it is
  approximated by the ratio of current mean response times of static and
  dynamic requests ("we use current relative response times of static and
  dynamic content requests to approximate r").

The paper argues the update is **self-stabilising**, and the feedback loop
works through ``r_est = resp_static / resp_dynamic``: if the cap is too
low, masters run few CGIs, slave-side dynamic responses inflate, so
``r_est`` falls — which *raises* the cap (``theta_2`` grows as ``r``
shrinks because the ``(r/a)(m/p - 1)`` penalty term shrinks), admitting
more CGIs to masters.  If the cap is too high, master-side static
responses inflate, ``r_est`` rises, and the cap comes back down.  The
test suite checks convergence from both extreme initial caps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.theorem import reservation_ratio
from repro.workload.request import RequestKind


@dataclass(slots=True)
class ReservationConfig:
    """Tunables of the adaptive controller."""

    #: Seconds between cap recomputations.
    update_period: float = 1.0
    #: EWMA factor for the response-time and admission-fraction estimates.
    smoothing: float = 0.1
    #: Initial cap before any measurements exist.
    theta_init: float = 0.25
    #: Floor on the measured-arrivals window before trusting ``a``.
    min_arrivals: int = 20

    def validate(self) -> None:
        if self.update_period <= 0:
            raise ValueError("update_period must be positive")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 <= self.theta_init <= 1.0:
            raise ValueError("theta_init must be in [0, 1]")
        if self.min_arrivals < 1:
            raise ValueError("min_arrivals must be >= 1")


class ReservationController:
    """Tracks ``a``, approximates ``r``, and maintains the cap
    ``theta'_2`` plus the running master-admission fraction it gates on.

    Usage (the M/S policy drives this):

    * :meth:`observe_arrival` on every routed request;
    * :meth:`admit_to_master` when routing a dynamic request — ``True``
      means masters may be considered;
    * :meth:`record_decision` with the actual placement;
    * :meth:`observe_response` on every completion.
    """

    __slots__ = ("cfg", "m", "p", "theta_cap", "cap_scale", "external_cap",
                 "master_fraction", "_resp_static", "_resp_dynamic",
                 "_arr_static", "_arr_dynamic", "_a_est", "_next_update",
                 "updates")

    def __init__(self, m: int, p: int,
                 cfg: ReservationConfig | None = None):
        if not 1 <= m <= p:
            raise ValueError(f"need 1 <= m <= p; got m={m}, p={p}")
        self.cfg = cfg or ReservationConfig()
        self.cfg.validate()
        self.m = m
        self.p = p
        self.theta_cap = self.cfg.theta_init
        #: External pressure multiplier on the cap (overload shedding
        #: tightens it toward 0 so masters keep serving static traffic).
        self.cap_scale = 1.0
        #: When True, an attached control plane (repro.control) is the
        #: sole writer of ``theta_cap``: the local response-ratio feedback
        #: keeps estimating ``a``/``r`` but no longer actuates, so every
        #: cap in force is traceable to a recorded CONTROL action.
        self.external_cap = False
        #: EWMA of the fraction of dynamic requests sent to masters.
        self.master_fraction = 0.0
        self._resp_static: float | None = None
        self._resp_dynamic: float | None = None
        self._arr_static = 0
        self._arr_dynamic = 0
        self._a_est: float | None = None
        self._next_update = self.cfg.update_period
        self.updates = 0

    # -- measurements ---------------------------------------------------------------

    def observe_arrival(self, kind: RequestKind, now: float) -> None:
        """Count an arrival (drives the ``a`` estimate and cap updates)."""
        if kind is RequestKind.DYNAMIC:
            self._arr_dynamic += 1
        else:
            self._arr_static += 1
        if now >= self._next_update:
            self._update(now)

    def observe_response(self, kind: RequestKind, response_time: float) -> None:
        """Feed a completion into the per-class response-time EWMAs."""
        if response_time <= 0:
            return
        s = self.cfg.smoothing
        if kind is RequestKind.DYNAMIC:
            prev = self._resp_dynamic
            self._resp_dynamic = (
                response_time if prev is None
                else s * response_time + (1 - s) * prev
            )
        else:
            prev = self._resp_static
            self._resp_static = (
                response_time if prev is None
                else s * response_time + (1 - s) * prev
            )

    # -- gate ------------------------------------------------------------------------

    def set_pressure(self, scale: float) -> None:
        """Scale the effective cap by ``scale`` in [0, 1].

        Called by the overload controller: ``0.0`` closes masters to new
        dynamic work entirely; ``1.0`` restores the adaptive Theorem-1
        cap.  The underlying ``theta_cap`` keeps adapting throughout, so
        releasing pressure resumes from an up-to-date estimate.
        """
        self.cap_scale = min(1.0, max(0.0, scale))

    @property
    def effective_cap(self) -> float:
        """The cap actually gated on: ``theta_cap * cap_scale``."""
        return self.theta_cap * self.cap_scale

    def admit_to_master(self) -> bool:
        """May the next dynamic request consider master nodes?"""
        return self.master_fraction < self.effective_cap

    def record_decision(self, to_master: bool) -> None:
        """Update the running master-admission fraction the gate uses."""
        s = self.cfg.smoothing
        self.master_fraction = (
            s * (1.0 if to_master else 0.0) + (1 - s) * self.master_fraction
        )

    # -- estimates --------------------------------------------------------------------

    @property
    def a_estimate(self) -> float | None:
        """Monitored arrival-rate ratio, ``None`` until enough arrivals."""
        return self._a_est

    @property
    def r_estimate(self) -> float | None:
        """Response-time approximation of the service-rate ratio."""
        if not self._resp_static or not self._resp_dynamic:
            return None
        if self._resp_dynamic <= 0:
            return None
        return min(1.0, self._resp_static / self._resp_dynamic)

    def _update(self, now: float) -> None:
        total = self._arr_static + self._arr_dynamic
        if total >= self.cfg.min_arrivals and self._arr_static > 0:
            a_new = self._arr_dynamic / self._arr_static
            s = self.cfg.smoothing
            self._a_est = (
                a_new if self._a_est is None
                else s * a_new + (1 - s) * self._a_est
            )
            self._arr_static = 0
            self._arr_dynamic = 0
        r_est = self.r_estimate
        if (not self.external_cap and self._a_est is not None
                and self._a_est > 0 and r_est is not None):
            self.theta_cap = reservation_ratio(self._a_est, r_est, self.m, self.p)
            self.updates += 1
        while self._next_update <= now:
            self._next_update += self.cfg.update_period
