"""The stretch-factor performance metric (paper Section 2).

"Given a sequence of requests with execution times (or called service
demands) d_1, d_2, ..., d_n and their request response times at the server
site t_1, ..., t_n, the stretch factor is ``sum(t_i/d_i) / n``."

The stretch factor relates a customer's waiting time to its service demand:
small requests are expected to finish fast, large requests may wait longer.
A system with high stretch is overloaded; a system with high *response time*
may simply be running long jobs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def stretch_factor(response_times: Sequence[float],
                   demands: Sequence[float]) -> float:
    """Mean slowdown ``mean(t_i / d_i)`` of a completed request sequence.

    Raises on impossible samples (a response time below the corresponding
    service demand would mean the request ran faster than on an idle node).

    >>> stretch_factor([2.0, 4.0], [1.0, 2.0])
    2.0
    """
    t = np.asarray(response_times, dtype=float)
    d = np.asarray(demands, dtype=float)
    if t.shape != d.shape:
        raise ValueError("response_times and demands must have the same shape")
    if t.size == 0:
        raise ValueError("empty sample")
    if (d <= 0).any():
        raise ValueError("demands must be positive")
    if (t < d - 1e-12).any():
        raise ValueError("response time below service demand — impossible")
    return float(np.mean(t / d))


def combine_stretch(stretches: Sequence[float],
                    weights: Sequence[float]) -> float:
    """Arrival-rate-weighted combination of per-class stretch factors.

    This is Equation 2's pattern: the overall stretch of a multi-class
    system is the per-class stretch weighted by each class's share of the
    request stream.

    >>> combine_stretch([1.0, 3.0], [3.0, 1.0])
    1.5
    """
    s = np.asarray(stretches, dtype=float)
    w = np.asarray(weights, dtype=float)
    if s.shape != w.shape:
        raise ValueError("stretches and weights must have the same shape")
    if s.size == 0:
        raise ValueError("empty sample")
    if (w < 0).any() or w.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    return float(np.sum(s * w) / np.sum(w))


def improvement_percent(baseline: float, candidate: float) -> float:
    """The paper's improvement metric ``(baseline/candidate - 1) * 100``.

    Positive means ``candidate`` (usually M/S) beats ``baseline``.

    >>> improvement_percent(3.0, 2.0)
    50.0
    """
    if candidate <= 0:
        raise ValueError("candidate stretch must be positive")
    if not np.isfinite(candidate):
        raise ValueError("candidate stretch must be finite")
    if not np.isfinite(baseline):
        return float("inf")
    return (baseline / candidate - 1.0) * 100.0
