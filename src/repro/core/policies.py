"""Dispatch policies: the flat architecture, the optimized M/S scheduler,
its ablations (M/S-ns, M/S-nr, M/S-1), the M/S' alternative, and two
baseline policies a load-balancing switch might implement.

A policy maps each arriving request to an executing node, given only the
load view a real front end would have (periodic, slightly stale CPU-idle
and disk-available ratios).  The cluster charges the remote-CGI network
latency whenever the executing node differs from the accepting node.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Sequence

import numpy as np

from repro.core.reservation import ReservationConfig, ReservationController
from repro.core.rsrc import DEFAULT_W, rsrc_cost, select_min_rsrc
from repro.core.sampling import DemandSampler
from repro.workload.request import Request, RequestKind


class LoadView(Protocol):
    """What a policy is allowed to observe about the cluster.

    Views may additionally expose a suspicion layer — ``all_healthy()``,
    ``healthy_array()``, ``is_suspect(node_id)`` (see
    :class:`repro.sim.cluster.ClusterView`).  Policies probe for it with
    ``getattr`` so minimal views (tests, external drivers) keep working.
    """

    @property
    def num_nodes(self) -> int: ...

    @property
    def now(self) -> float: ...

    def cpu_idle(self, node_id: int) -> float: ...

    def disk_avail(self, node_id: int) -> float: ...

    def cpu_idle_array(self) -> np.ndarray: ...

    def disk_avail_array(self) -> np.ndarray: ...

    def active_requests(self, node_id: int) -> int: ...

    def is_alive(self, node_id: int) -> bool: ...

    def all_alive(self) -> bool: ...

    def alive_array(self) -> np.ndarray: ...


@dataclass(frozen=True, slots=True)
class Route:
    """Outcome of a dispatch decision."""

    node_id: int
    #: True when the executing node differs from the accepting node, which
    #: costs one remote-CGI dispatch latency.
    remote: bool
    #: Additional dispatch latency beyond the standard network costs —
    #: e.g. a client round-trip for HTTP-redirection rescheduling.
    extra_latency: float = 0.0
    #: Execute this request instead of the submitted one (same identity,
    #: different demand) — used by the CGI cache to serve hits cheaply.
    substitute: Optional["Request"] = None


class Policy(abc.ABC):
    """Base class for dispatch policies."""

    #: When true (set by a traced cluster), :meth:`route` stashes its
    #: per-decision verdict in :attr:`last_decision` as ``(w, rsrc_cost,
    #: gate, effective_cap, master_fraction)`` — ``gate`` is ``None`` for
    #: policies/paths where the reservation cap does not apply.  Policies
    #: that never run the dynamic-dispatch path simply leave it ``None``.
    trace_decisions = False
    last_decision: Optional[tuple] = None

    def __init__(self, num_nodes: int, master_ids: Sequence[int],
                 seed: int = 0):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        ids = frozenset(master_ids)
        if not ids:
            raise ValueError("at least one master/acceptor node is required")
        if not all(0 <= i < num_nodes for i in ids):
            raise ValueError("master ids out of range")
        self.num_nodes = num_nodes
        self.master_ids = ids
        self._masters = np.array(sorted(ids), dtype=np.intp)
        self._slaves = np.array(
            sorted(set(range(num_nodes)) - ids), dtype=np.intp
        )
        self.rng = np.random.default_rng(seed)

    def is_master(self, node_id: int) -> bool:
        return node_id in self.master_ids

    @property
    def num_masters(self) -> int:
        return len(self._masters)

    def set_masters(self, master_ids: Iterable[int]) -> None:
        """Replace the master/slave role split mid-run (control plane).

        Only routing state changes: in-flight requests keep executing
        where they were dispatched (the cluster tracks them by request
        id, not by role), so a role transition is loss-free by
        construction.  Subclasses holding derived per-role state extend
        this.
        """
        ids = frozenset(int(i) for i in master_ids)
        if not ids:
            raise ValueError("at least one master/acceptor node is required")
        if not all(0 <= i < self.num_nodes for i in ids):
            raise ValueError("master ids out of range")
        self.master_ids = ids
        self._masters = np.array(sorted(ids), dtype=np.intp)
        self._slaves = np.array(
            sorted(set(range(self.num_nodes)) - ids), dtype=np.intp
        )

    @abc.abstractmethod
    def route(self, request: Request, view: LoadView) -> Route:
        """Choose the executing node for a request."""

    def on_complete(self, request: Request, response_time: float,
                    on_master: bool, node_id: int) -> None:
        """Completion feedback; default: ignore."""

    def on_abort(self, request: Request, node_id: int) -> None:
        """Forget in-flight bookkeeping for a request that will never
        complete (timeout, dead node).  Unlike :meth:`on_complete` this
        must not feed the response-time estimators — a failure elapsed
        time is not a service-time observation.  Default: ignore."""

    def _stash_decision(self, w: float, eff_cpu: np.ndarray,
                        eff_disk: np.ndarray, node: int,
                        gate: Optional[bool]) -> None:
        """Record a dynamic-dispatch verdict for the tracing layer.

        Called *before* ``record_decision`` moves the admission EWMA, so
        the stashed gate state is the one the dispatch was gated on.
        """
        res = getattr(self, "reservation", None)
        self.last_decision = (
            w,
            rsrc_cost(w, float(eff_cpu[node]), float(eff_disk[node])),
            gate,
            None if res is None else res.effective_cap,
            None if res is None else res.master_fraction,
        )

    def _random_master(self) -> int:
        return int(self._masters[self.rng.integers(len(self._masters))])

    def _alive(self, view: LoadView, ids: np.ndarray) -> np.ndarray:
        """Restrict a candidate id array to in-service, trusted nodes.

        When the view exposes the suspicion layer, nodes flagged *suspect*
        (failed probe, stale sample, post-recovery probation) are excluded
        before formal crash detection removes them from membership.  If
        suspicion would empty the pool the plain alive set is used — a
        node with stale load data still beats refusing service.
        """
        all_healthy = getattr(view, "all_healthy", None)
        if all_healthy is not None:
            if all_healthy():
                return ids
            alive = view.alive_array()
            pool = ids[alive[ids]]
            if len(pool) == 0:
                return pool
            trusted = ids[view.healthy_array()[ids]]
            return trusted if len(trusted) else pool
        if view.all_alive():
            return ids
        alive = view.alive_array()
        return ids[alive[ids]]

    def _random_alive_master(self, view: LoadView) -> int:
        """An in-service accepting master; any alive node acts as master
        when the whole master tier is down (emergency promotion)."""
        masters = self._alive(view, self._masters)
        if len(masters) == 0:
            masters = self._alive(
                view, np.arange(self.num_nodes, dtype=np.intp))
            if len(masters) == 0:
                raise RuntimeError("no nodes in service")
        return int(masters[self.rng.integers(len(masters))])

    @property
    def name(self) -> str:
        return type(self).__name__


# -- flat architecture and switch baselines ------------------------------------------


class FlatPolicy(Policy):
    """Uniform random dispatch; every node serves every class locally.

    This is the paper's model of a DNS-rotation or switch-based cluster
    ("requests are randomly dispatched to nodes in the cluster with a
    uniform distribution").

    ``failure_aware`` distinguishes the two flat front ends the paper
    discusses: a load-balancing switch detects dead nodes sub-second and
    removes them from the pool (True); DNS rotation with client-side IP
    caching keeps sending traffic to dead nodes (False), costing those
    clients a retry timeout.
    """

    def __init__(self, num_nodes: int, seed: int = 0,
                 failure_aware: bool = True):
        super().__init__(num_nodes, range(num_nodes), seed)
        self.failure_aware = failure_aware
        self._all = np.arange(num_nodes, dtype=np.intp)

    def route(self, request: Request, view: LoadView) -> Route:
        pool = self._alive(view, self._all) if self.failure_aware \
            else self._all
        if len(pool) == 0:
            raise RuntimeError("no nodes in service")
        node = int(pool[self.rng.integers(len(pool))])
        return Route(node, remote=False)


class DNSAffinityPolicy(Policy):
    """DNS rotation with client-side IP caching.

    The paper's Section-1/2 model of the NCSA-style cluster: the DNS
    server hands out node IPs round-robin, but each *client* caches its
    answer and keeps hitting the same node for all of its requests.  Load
    balance is then only as good as the client mix — heavy clients pile
    onto single nodes, which is exactly why "research has demonstrated
    that DNS round-robin rotation does not evenly distribute the load".

    Requests without a client id (``client_id == -1``) fall back to
    per-request rotation (an uncached resolver).
    """

    def __init__(self, num_nodes: int, seed: int = 0):
        super().__init__(num_nodes, range(num_nodes), seed)
        self._next = 0
        self._bindings: dict[int, int] = {}
        self.failure_aware = False  # cached IPs ignore failures

    def route(self, request: Request, view: LoadView) -> Route:
        client = request.client_id
        if client < 0:
            node = self._next
            self._next = (self._next + 1) % self.num_nodes
            return Route(node, remote=False)
        node = self._bindings.get(client)
        if node is None:
            node = self._next
            self._next = (self._next + 1) % self.num_nodes
            self._bindings[client] = node
        return Route(node, remote=False)

    @property
    def distinct_bindings(self) -> int:
        return len(self._bindings)


class RoundRobinPolicy(Policy):
    """Strict cyclic dispatch (NCSA-style DNS rotation)."""

    def __init__(self, num_nodes: int, seed: int = 0,
                 failure_aware: bool = True):
        super().__init__(num_nodes, range(num_nodes), seed)
        self._next = 0
        self.failure_aware = failure_aware

    def route(self, request: Request, view: LoadView) -> Route:
        for _ in range(self.num_nodes):
            node = self._next
            self._next = (self._next + 1) % self.num_nodes
            if not self.failure_aware or view.is_alive(node):
                return Route(node, remote=False)
        if self.failure_aware:
            raise RuntimeError("no nodes in service")
        return Route(self._next, remote=False)


class LeastActivePolicy(Policy):
    """Send to the node with the fewest in-flight requests — the
    "least connections" scheme of a load-balancing switch."""

    def __init__(self, num_nodes: int, seed: int = 0):
        super().__init__(num_nodes, range(num_nodes), seed)

    def route(self, request: Request, view: LoadView) -> Route:
        pool = [i for i in range(self.num_nodes) if view.is_alive(i)]
        if not pool:
            raise RuntimeError("no nodes in service")
        counts = {i: view.active_requests(i) for i in pool}
        best = min(counts.values())
        ties = [i for i, c in counts.items() if c == best]
        node = ties[int(self.rng.integers(len(ties)))]
        return Route(node, remote=False)


# -- the master/slave scheduler and its ablations -----------------------------------


class MSPolicy(Policy):
    """The paper's optimized master/slave scheduler.

    * static requests are processed at a uniformly random master;
    * dynamic requests are placed on the minimum-RSRC node among the slaves
      plus — when the reservation gate admits — the masters;
    * the CPU weight ``w`` per request family comes from the offline
      :class:`DemandSampler` (Equation 5), defaulting to 0.5;
    * the reservation cap ``theta'_2`` adapts online from monitored ``a``
      and response-time-approximated ``r``.

    Ablations are expressed by the flags (factories below):

    * ``use_sampling=False`` → **M/S-ns** (``w`` fixed at 0.5);
    * ``use_reservation=False`` → **M/S-nr** (masters always candidates);
    * ``num_masters == num_nodes`` → **M/S-1** (no slaves; flat + remote
      CGI with the same RSRC selection).
    """

    def __init__(self, num_nodes: int, num_masters: int,
                 sampler: Optional[DemandSampler] = None,
                 use_sampling: bool = True,
                 use_reservation: bool = True,
                 reservation_cfg: Optional[ReservationConfig] = None,
                 default_w: float = DEFAULT_W,
                 seed: int = 0,
                 herding_discount: float = 0.5):
        if not 1 <= num_masters <= num_nodes:
            raise ValueError(
                f"need 1 <= num_masters <= num_nodes; got {num_masters}"
            )
        super().__init__(num_nodes, range(num_masters), seed)
        self.use_sampling = use_sampling
        self.sampler = sampler if use_sampling else None
        self.default_w = default_w
        self.use_reservation = use_reservation and num_masters < num_nodes
        self.reservation: Optional[ReservationController] = (
            ReservationController(num_masters, num_nodes, reservation_cfg)
            if self.use_reservation else None
        )
        # In-flight dynamic work per node, split by resource using each
        # request's sampled CPU weight.  A master performing remote CGI
        # execution knows what it has sent and not yet seen complete;
        # discounting the reported idle ratios by that outstanding work
        # avoids herding every request onto the node that looked idlest at
        # the last rstat() poll.
        self._outstanding_cpu = np.zeros(num_nodes)
        self._outstanding_disk = np.zeros(num_nodes)
        self._dispatched_w: dict[int, float] = {}
        if not 0.0 < herding_discount <= 1.0:
            raise ValueError("herding_discount must be in (0, 1]")
        #: Idle-ratio discount per unit of outstanding work on a resource.
        self.herding_discount = herding_discount

    # -- routing -------------------------------------------------------------

    def route(self, request: Request, view: LoadView) -> Route:
        if self.reservation is not None:
            self.reservation.observe_arrival(request.kind, view.now)
        accept = self._random_alive_master(view)
        if request.kind is RequestKind.STATIC:
            return Route(accept, remote=False)
        return self._route_dynamic(request, view, accept)

    def _route_dynamic(self, request: Request, view: LoadView,
                       accept: int) -> Route:
        slaves = self._alive(view, self._slaves)
        masters = self._alive(view, self._masters)
        gate = None
        if len(slaves) == 0:
            candidates = masters
        else:
            if self.reservation is not None:
                gate = self.reservation.admit_to_master()
            if gate is None or gate:
                candidates = np.concatenate([slaves, masters])
            else:
                candidates = slaves
        if len(candidates) == 0:
            # Emergency fallback: the reservation cap cannot be honoured
            # when the preferred tier is entirely out of service.
            gate = None
            candidates = self._alive(
                view, np.arange(self.num_nodes, dtype=np.intp))
            if len(candidates) == 0:
                raise RuntimeError("no nodes in service")
        w = (self.sampler.w(request.type_key) if self.sampler is not None
             else self.default_w)
        g = self.herding_discount
        eff_cpu = view.cpu_idle_array() * g ** self._outstanding_cpu
        eff_disk = view.disk_avail_array() * g ** self._outstanding_disk
        node = select_min_rsrc(w, eff_cpu, eff_disk, candidates, self.rng)
        if self.trace_decisions:
            self._stash_decision(w, eff_cpu, eff_disk, node, gate)
        self._outstanding_cpu[node] += w
        self._outstanding_disk[node] += 1.0 - w
        self._dispatched_w[request.req_id] = w
        if self.reservation is not None:
            self.reservation.record_decision(self.is_master(node))
        return Route(node, remote=(node != accept))

    def on_complete(self, request: Request, response_time: float,
                    on_master: bool, node_id: int) -> None:
        w = self._dispatched_w.pop(request.req_id, None)
        if w is not None:
            self._outstanding_cpu[node_id] = max(
                0.0, self._outstanding_cpu[node_id] - w)
            self._outstanding_disk[node_id] = max(
                0.0, self._outstanding_disk[node_id] - (1.0 - w))
        if self.reservation is not None:
            self.reservation.observe_response(request.kind, response_time)
        # Online refinement of the sampler from real executions keeps the
        # offline estimates fresh (harmless if already trained).
        if self.sampler is not None and request.is_dynamic:
            self.sampler.observe(request.type_key, request.cpu_demand,
                                 request.io_demand)

    def on_abort(self, request: Request, node_id: int) -> None:
        w = self._dispatched_w.pop(request.req_id, None)
        if w is not None:
            self._outstanding_cpu[node_id] = max(
                0.0, self._outstanding_cpu[node_id] - w)
            self._outstanding_disk[node_id] = max(
                0.0, self._outstanding_disk[node_id] - (1.0 - w))

    @property
    def theta_cap(self) -> Optional[float]:
        """Current reservation cap, or ``None`` when reservation is off."""
        return self.reservation.theta_cap if self.reservation else None

    def set_masters(self, master_ids: Iterable[int]) -> None:
        """Role change plus reservation bookkeeping: the cap formula
        theta_2(a, r, m, p) depends on the master count, so the
        reservation controller's ``m`` follows the new split.  In-flight
        bookkeeping (``_outstanding_*``, ``_dispatched_w``) is keyed by
        node/request, not role, and is deliberately left alone."""
        super().set_masters(master_ids)
        if self.reservation is not None:
            self.reservation.m = self.num_masters


class FrontEndMSPolicy(MSPolicy):
    """The M/S scheduler as run by *one* accepting front end.

    :class:`MSPolicy` models the cluster's aggregate dispatch: it draws
    the accepting master uniformly per request ("static requests are
    processed at a random master").  A live deployment runs one policy
    instance inside each master process, and the accepting node is pinned
    by reality — whichever master's HTTP listener the request hit.  Static
    requests execute on the accepting node; dynamic requests follow the
    usual reservation-gated min-RSRC choice, with ``remote`` meaning "not
    this process" (one intra-cluster dispatch hop).

    Each front end carries its own reservation controller and sampler
    state, mirroring the paper's implementation where every master makes
    decisions from its own periodically-refreshed load view.
    """

    def __init__(self, num_nodes: int, num_masters: int, accept_node: int,
                 **kwargs):
        super().__init__(num_nodes, num_masters, **kwargs)
        if accept_node not in self.master_ids:
            raise ValueError(
                f"accept_node {accept_node} is not a master "
                f"(masters: {sorted(self.master_ids)})")
        self.accept_node = accept_node

    def set_masters(self, master_ids: Iterable[int]) -> None:
        """The accepting front end can never be demoted out from under
        its own HTTP listener — statics execute here by construction."""
        ids = frozenset(int(i) for i in master_ids)
        if self.accept_node not in ids:
            raise ValueError(
                f"accept_node {self.accept_node} must remain a master")
        super().set_masters(ids)

    def route(self, request: Request, view: LoadView) -> Route:
        if self.reservation is not None:
            self.reservation.observe_arrival(request.kind, view.now)
        if request.kind is not RequestKind.DYNAMIC:
            return Route(self.accept_node, remote=False)
        return self._route_dynamic(request, view, self.accept_node)


class MSPrimePolicy(Policy):
    """The M/S' alternative of Section 3: dynamic requests are pinned to a
    fixed subset of ``k`` nodes (min-RSRC within the subset), while static
    requests are spread uniformly over **all** nodes."""

    def __init__(self, num_nodes: int, num_dynamic_nodes: int,
                 sampler: Optional[DemandSampler] = None,
                 default_w: float = DEFAULT_W, seed: int = 0):
        if not 1 <= num_dynamic_nodes <= num_nodes:
            raise ValueError("need 1 <= num_dynamic_nodes <= num_nodes")
        # Every node accepts (static goes everywhere); record the dynamic
        # subset separately.
        super().__init__(num_nodes, range(num_nodes), seed)
        self.dynamic_nodes = np.arange(num_dynamic_nodes, dtype=np.intp)
        self.sampler = sampler
        self.default_w = default_w
        self._outstanding_cpu = np.zeros(num_nodes)
        self._outstanding_disk = np.zeros(num_nodes)
        self._dispatched_w: dict[int, float] = {}
        self.herding_discount = 0.5

    def route(self, request: Request, view: LoadView) -> Route:
        pool = self._alive(view, np.arange(self.num_nodes, dtype=np.intp))
        if len(pool) == 0:
            raise RuntimeError("no nodes in service")
        accept = int(pool[self.rng.integers(len(pool))])
        if request.kind is RequestKind.STATIC:
            return Route(accept, remote=False)
        w = (self.sampler.w(request.type_key) if self.sampler is not None
             else self.default_w)
        g = self.herding_discount
        eff_cpu = view.cpu_idle_array() * g ** self._outstanding_cpu
        eff_disk = view.disk_avail_array() * g ** self._outstanding_disk
        dyn = self._alive(view, self.dynamic_nodes)
        if len(dyn) == 0:
            dyn = pool
        node = select_min_rsrc(w, eff_cpu, eff_disk, dyn, self.rng)
        if self.trace_decisions:
            self._stash_decision(w, eff_cpu, eff_disk, node, None)
        self._outstanding_cpu[node] += w
        self._outstanding_disk[node] += 1.0 - w
        self._dispatched_w[request.req_id] = w
        return Route(node, remote=(node != accept))

    def on_complete(self, request: Request, response_time: float,
                    on_master: bool, node_id: int) -> None:
        w = self._dispatched_w.pop(request.req_id, None)
        if w is not None:
            self._outstanding_cpu[node_id] = max(
                0.0, self._outstanding_cpu[node_id] - w)
            self._outstanding_disk[node_id] = max(
                0.0, self._outstanding_disk[node_id] - (1.0 - w))


class HeteroMSPolicy(MSPolicy):
    """Speed-aware M/S for heterogeneous clusters.

    The paper notes that on non-uniform nodes "the relative speed in
    accessing CPU and disk I/O resource needs to be considered" (its
    adaptive-load-sharing companion work).  Two changes over the
    homogeneous scheduler:

    * **RSRC with relative speeds** — an idle fast node is worth more than
      an idle slow one, so Equation 5 becomes
      ``w/(s_cpu * CPUIdleRatio) + (1-w)/(s_disk * DiskAvailRatio)``;
    * **capacity-weighted static dispatch** — the accepting master is
      drawn proportionally to CPU speed rather than uniformly, keeping
      master utilisations equal across a mixed tier.
    """

    def __init__(self, num_nodes: int, num_masters: int,
                 cpu_speeds: Sequence[float],
                 disk_speeds: Optional[Sequence[float]] = None,
                 **kwargs):
        super().__init__(num_nodes, num_masters, **kwargs)
        cpu = np.asarray(cpu_speeds, dtype=float)
        if cpu.shape != (num_nodes,):
            raise ValueError("need one cpu speed per node")
        if (cpu <= 0).any():
            raise ValueError("cpu speeds must be positive")
        disk = (np.asarray(disk_speeds, dtype=float)
                if disk_speeds is not None else cpu.copy())
        if disk.shape != (num_nodes,):
            raise ValueError("need one disk speed per node")
        if (disk <= 0).any():
            raise ValueError("disk speeds must be positive")
        self.cpu_speeds = cpu
        self.disk_speeds = disk
        master_caps = cpu[self._masters]
        self._master_weights = master_caps / master_caps.sum()

    def set_masters(self, master_ids: Iterable[int]) -> None:
        super().set_masters(master_ids)
        master_caps = self.cpu_speeds[self._masters]
        self._master_weights = master_caps / master_caps.sum()

    def _random_alive_master(self, view: LoadView) -> int:
        masters = self._alive(view, self._masters)
        if len(masters) == 0:
            return super()._random_alive_master(view)
        weights = self.cpu_speeds[masters]
        idx = self.rng.choice(len(masters), p=weights / weights.sum())
        return int(masters[idx])

    def _route_dynamic(self, request: Request, view: LoadView,
                       accept: int) -> Route:
        slaves = self._alive(view, self._slaves)
        masters = self._alive(view, self._masters)
        gate = None
        if len(slaves) == 0:
            candidates = masters
        else:
            if self.reservation is not None:
                gate = self.reservation.admit_to_master()
            if gate is None or gate:
                candidates = np.concatenate([slaves, masters])
            else:
                candidates = slaves
        if len(candidates) == 0:
            gate = None
            candidates = self._alive(
                view, np.arange(self.num_nodes, dtype=np.intp))
            if len(candidates) == 0:
                raise RuntimeError("no nodes in service")
        w = (self.sampler.w(request.type_key) if self.sampler is not None
             else self.default_w)
        g = self.herding_discount
        # Effective *capacity* per resource: speed times available ratio,
        # discounted by work this dispatcher has in flight there.
        eff_cpu = (self.cpu_speeds * view.cpu_idle_array()
                   * g ** self._outstanding_cpu)
        eff_disk = (self.disk_speeds * view.disk_avail_array()
                    * g ** self._outstanding_disk)
        node = select_min_rsrc(w, eff_cpu, eff_disk, candidates, self.rng)
        if self.trace_decisions:
            self._stash_decision(w, eff_cpu, eff_disk, node, gate)
        self._outstanding_cpu[node] += w
        self._outstanding_disk[node] += 1.0 - w
        self._dispatched_w[request.req_id] = w
        if self.reservation is not None:
            self.reservation.record_decision(self.is_master(node))
        return Route(node, remote=(node != accept))


class RedirectMSPolicy(MSPolicy):
    """SWEB-style rescheduling by HTTP redirection.

    The authors' earlier SWEB system rebalanced load by sending the client
    an HTTP redirect to another server; the paper rejects that because "it
    adds client round-trip latency for every rescheduled request and also
    exposes IP addresses of server nodes".  This baseline quantifies the
    first objection: placement decisions are identical to M/S, but moving a
    request to a node other than its accepting master costs a full client
    round-trip instead of the 1 ms intra-cluster dispatch.
    """

    def __init__(self, num_nodes: int, num_masters: int,
                 client_rtt: float = 0.080, **kwargs):
        super().__init__(num_nodes, num_masters, **kwargs)
        if client_rtt < 0:
            raise ValueError("client_rtt must be >= 0")
        self.client_rtt = client_rtt
        self.redirects = 0

    def _route_dynamic(self, request: Request, view: LoadView,
                       accept: int) -> Route:
        route = super()._route_dynamic(request, view, accept)
        if route.remote:
            self.redirects += 1
            # The redirect replaces remote execution: the client reconnects
            # to the target directly (no intra-cluster hop), paying a WAN
            # round-trip on top.
            return Route(route.node_id, remote=False,
                         extra_latency=self.client_rtt,
                         substitute=route.substitute)
        return route


# -- factories matching the paper's names ----------------------------------------------


def make_ms(num_nodes: int, num_masters: int,
            sampler: Optional[DemandSampler] = None, seed: int = 0,
            reservation_cfg: Optional[ReservationConfig] = None) -> MSPolicy:
    """The full optimized scheduler ("M/S")."""
    return MSPolicy(num_nodes, num_masters, sampler=sampler,
                    use_sampling=True, use_reservation=True,
                    reservation_cfg=reservation_cfg, seed=seed)


def make_ms_ns(num_nodes: int, num_masters: int, seed: int = 0,
               reservation_cfg: Optional[ReservationConfig] = None) -> MSPolicy:
    """M/S-ns: no demand sampling; ``w = 0.5`` for every request."""
    return MSPolicy(num_nodes, num_masters, sampler=None,
                    use_sampling=False, use_reservation=True,
                    reservation_cfg=reservation_cfg, seed=seed)


def make_ms_nr(num_nodes: int, num_masters: int,
               sampler: Optional[DemandSampler] = None,
               seed: int = 0) -> MSPolicy:
    """M/S-nr: no reservation of master resources for static requests."""
    return MSPolicy(num_nodes, num_masters, sampler=sampler,
                    use_sampling=True, use_reservation=False, seed=seed)


def make_ms_1(num_nodes: int,
              sampler: Optional[DemandSampler] = None,
              seed: int = 0) -> MSPolicy:
    """M/S-1: every node is a master (separation ablation)."""
    return MSPolicy(num_nodes, num_nodes, sampler=sampler,
                    use_sampling=True, use_reservation=True, seed=seed)


POLICY_NAMES = ("MS", "MS-ns", "MS-nr", "MS-1", "Flat", "MSPrime",
                "RoundRobin", "LeastActive", "Redirect", "DNS")


def make_policy(name: str, num_nodes: int, num_masters: int = 1,
                sampler: Optional[DemandSampler] = None,
                seed: int = 0) -> Policy:
    """Construct any policy by its paper name (see ``POLICY_NAMES``)."""
    key = name.lower()
    if key == "ms":
        return make_ms(num_nodes, num_masters, sampler, seed)
    if key == "ms-ns":
        return make_ms_ns(num_nodes, num_masters, seed)
    if key == "ms-nr":
        return make_ms_nr(num_nodes, num_masters, sampler, seed)
    if key == "ms-1":
        return make_ms_1(num_nodes, sampler, seed)
    if key == "flat":
        return FlatPolicy(num_nodes, seed)
    if key == "msprime":
        return MSPrimePolicy(num_nodes, num_masters, sampler, seed=seed)
    if key == "roundrobin":
        return RoundRobinPolicy(num_nodes, seed)
    if key == "leastactive":
        return LeastActivePolicy(num_nodes, seed)
    if key == "redirect":
        return RedirectMSPolicy(num_nodes, num_masters, sampler=sampler,
                                seed=seed)
    if key == "dns":
        return DNSAffinityPolicy(num_nodes, seed)
    raise ValueError(f"unknown policy {name!r}; known: {POLICY_NAMES}")
