"""The paper's contribution: scheduling models, Theorem 1, and policies."""
