"""Dynamic-content (CGI result) caching — the Swala extension.

The paper's testbed is built on the authors' Swala server, which supports
cooperative caching of dynamic content; the paper notes "a simple extension
to consider caching in our scheme can be incorporated".  This module is that
extension:

* :class:`CGICache` — a TTL'd LRU store of generated responses, shared by
  the master tier (Swala's cooperative cache is visible to every server).
* :class:`CachingMSPolicy` — the optimized M/S scheduler with a cache
  lookup in front of dynamic dispatch: a hit is served at the accepting
  master for roughly the cost of a static request (the result just has to
  be sent), a miss executes normally and populates the cache.

Only requests carrying a ``cache_key`` participate; personalised or
non-idempotent CGI output stays uncacheable, as in real deployments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.policies import MSPolicy, Route
from repro.workload.request import Request, RequestKind


@dataclass(slots=True)
class CacheStats:
    """Counters for one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CGICache:
    """LRU + TTL cache of generated dynamic content.

    Entries are keyed by the request's ``cache_key`` and carry the response
    size so a hit can be priced like a file send.  Capacity is counted in
    entries (Swala's cache holds whole responses; response sizes in the
    trace specs are a few KB, so entry-count capacity is the right model).
    """

    def __init__(self, capacity: int, ttl: float = 60.0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self._entries: "OrderedDict[str, tuple[float, int]]" = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, key: str, now: float) -> Optional[int]:
        """Return the cached response size, or ``None`` on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_at, size = entry
        if now - stored_at > self.ttl:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return size

    def insert(self, key: str, size: int, now: float) -> None:
        """Store a freshly generated response."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (now, size)
        self.stats.inserts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry (content changed).  Returns whether it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class CachingMSPolicy(MSPolicy):
    """M/S with a cooperative CGI result cache at the master tier.

    Parameters beyond :class:`MSPolicy`:

    cache:
        Shared result store.
    hit_service_rate:
        Service rate for serving a cached result (requests/second on an
        idle node) — sending bytes, no script execution.  Defaults to the
        SPECweb96 static rate, since a hit *is* a file send.
    """

    def __init__(self, num_nodes: int, num_masters: int,
                 cache: CGICache,
                 hit_service_rate: float = 1200.0,
                 **kwargs):
        super().__init__(num_nodes, num_masters, **kwargs)
        if hit_service_rate <= 0:
            raise ValueError("hit_service_rate must be positive")
        self.cache = cache
        self.hit_service_rate = hit_service_rate

    def route(self, request: Request, view) -> Route:
        if (request.kind is RequestKind.DYNAMIC
                and request.cache_key is not None):
            size = self.cache.lookup(request.cache_key, view.now)
            if size is not None:
                # Serve the hit at the accepting master as a cheap send.
                if self.reservation is not None:
                    # Hits load masters like statics, not like CGI.
                    self.reservation.observe_arrival(RequestKind.STATIC,
                                                     view.now)
                accept = self._random_alive_master(view)
                substitute = Request(
                    req_id=request.req_id,
                    arrival_time=request.arrival_time,
                    kind=RequestKind.DYNAMIC,
                    cpu_demand=1.0 / self.hit_service_rate,
                    io_demand=0.0,
                    mem_pages=1,
                    size_bytes=size,
                    type_key="cgi:cache-hit",
                    cache_key=request.cache_key,
                )
                return Route(accept, remote=False, substitute=substitute)
        return super().route(request, view)

    def on_complete(self, request: Request, response_time: float,
                    on_master: bool, node_id: int) -> None:
        super().on_complete(request, response_time, on_master, node_id)
        if (request.kind is RequestKind.DYNAMIC
                and request.cache_key is not None
                and request.type_key != "cgi:cache-hit"):
            # A miss finished executing: publish its result, timestamped at
            # its completion instant (arrival + response time).
            self.cache.insert(request.cache_key, request.size_bytes,
                              now=request.arrival_time + response_time)
