"""Theorem 1: when does master/slave beat the flat architecture?

The paper reduces the inequality ``SM <= SF`` to a quadratic
``A*theta^2 + B*theta + C <= 0`` whose roots ``theta_1 <= theta_2`` bound the
master-side dynamic fraction for which M/S wins.  The printed coefficient
expressions are unwieldy; we construct the same quadratic directly from the
utilisation expressions (both station loads are linear in ``theta``), which
is algebraically identical and testable.

Closed form for the upper root (derived; verified against the numeric
quadratic in the test suite): at ``theta_2`` both the master and slave
utilisations equal the flat per-node utilisation, giving

    ``theta_2 = m/p + (r/a) * (m/p - 1)``.

This is the quantity the scheduler uses as its **reservation ratio**: capping
the dynamic fraction sent to masters at ``theta_2`` guarantees masters are
never more loaded than a flat node would be, so static requests are always
served at least as fast as in the flat architecture.

Theorem 1 also prescribes ``theta_m = max((theta_1 + theta_2)/2, 0)`` and a
numeric sweep over ``m`` for the best master count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np
from numpy.polynomial import polynomial as npoly

from repro.core.queuing import MSStretch, Workload, flat_stretch, ms_stretch

ThetaMethod = Literal["midpoint", "numeric"]


def reservation_ratio(a: float, r: float, m: int, p: int) -> float:
    """Upper bound ``theta_2`` on the master-side dynamic fraction, clamped
    to [0, 1].  This is what the online reservation controller recomputes
    from monitored ``a`` and approximated ``r``.

    >>> round(reservation_ratio(a=0.5, r=1/40, m=8, p=32), 6)
    0.2125
    """
    if a <= 0:
        # No dynamic traffic: the cap is irrelevant; admit freely.
        return 1.0
    if not 1 <= m <= p:
        raise ValueError(f"m must be in [1, p]; got m={m}, p={p}")
    frac = m / p
    theta2 = frac + (r / a) * (frac - 1.0)
    return min(1.0, max(0.0, theta2))


def min_masters(w: Workload) -> int:
    """Smallest ``m`` for which ``theta_2 >= 0`` (Theorem 1's condition
    ``m >= p*r / (a + r)``)."""
    a, r, p = w.a, w.r, w.p
    if a <= 0:
        return 1
    return max(1, math.ceil(p * r / (a + r) - 1e-12))


def _validate_ms_workload(w: Workload, where: str) -> None:
    """Reject degenerate workloads with a diagnosis instead of letting a
    ZeroDivisionError (or a cryptic root count) surface downstream.

    Degenerate means: no dynamic traffic at all (``a = 0`` — the master/
    slave split is meaningless, use the flat design; an all-dynamic
    stream, the other extreme, is unrepresentable because ``Workload``
    requires ``lam_h > 0``), or non-finite parameters from zero/NaN
    demand estimates.
    """
    if w.a <= 0.0:
        raise ValueError(
            f"{where}: workload has no dynamic traffic (a = {w.a}); the "
            "Theorem-1 quadratic is degenerate — every theta is "
            "equivalent, use the flat design (m = p)")
    if not all(math.isfinite(v) and v > 0.0 for v in (w.r, w.rho, w.a)):
        raise ValueError(
            f"{where}: non-finite or non-positive workload parameters "
            f"(a={w.a}, r={w.r}, rho={w.rho}) — check for zero service "
            "demands in the estimates")


def theta_bounds(w: Workload, m: int) -> tuple[float, float]:
    """Roots ``(theta_1, theta_2)`` of the Theorem-1 quadratic for a given
    master count.

    For ``theta`` strictly inside the interval, ``SM(theta) < SF``; outside,
    M/S loses to flat.  Raises ``ValueError`` if the workload is
    infeasible (then no architecture is stable), degenerate (no dynamic
    traffic, zero demands), or ``m`` leaves no slaves.
    """
    if not 1 <= m <= w.p - 1:
        raise ValueError(f"need 1 <= m <= p-1 for the M/S split; got m={m}")
    _validate_ms_workload(w, "theta_bounds")
    if not w.feasible:
        raise ValueError(
            "offered load exceeds cluster capacity; every configuration is "
            "unstable"
        )
    sf = flat_stretch(w)
    rho, a, r, p = w.rho, w.a, w.r, w.p

    # Station utilisations as degree-1 polynomials in theta.
    u_master = (rho / m, rho * a / (r * m))
    u_slave = (rho * a / (r * (p - m)), -rho * a / (r * (p - m)))
    pm = (1.0 - u_master[0], -u_master[1])       # 1 - U_M(theta)
    ps = (1.0 - u_slave[0], -u_slave[1])         # 1 - U_S(theta)

    # N(theta) = (1+a*theta)*PS + a*(1-theta)*PM - (1+a)*SF*PM*PS  <=  0
    n = npoly.polyadd(
        npoly.polymul((1.0, a), ps),
        npoly.polymul((a, -a), pm),
    )
    n = npoly.polysub(n, (1.0 + a) * sf * npoly.polymul(pm, ps))

    roots = npoly.polyroots(n)
    real = sorted(float(z.real) for z in roots if abs(z.imag) < 1e-9)
    if len(real) != 2:
        raise ArithmeticError(
            f"Theorem-1 quadratic did not yield two real roots: {roots}"
        )
    return real[0], real[1]


def theta2_closed_form(w: Workload, m: int) -> float:
    """Unclamped closed-form upper root (see module docstring)."""
    _validate_ms_workload(w, "theta2_closed_form")
    frac = m / w.p
    return frac + (w.r / w.a) * (frac - 1.0)


def theta_feasible_interval(w: Workload, m: int) -> tuple[float, float]:
    """Open interval of ``theta`` keeping both station classes stable.

    Both ends are clamped into ``[0, 1]`` (theta is a fraction); an
    *empty* interval — no theta stabilises this ``m``, e.g. masters
    overloaded even at ``theta = 0`` — comes back as ``lo >= hi``.
    """
    rho, a, r, p = w.rho, w.a, w.r, w.p
    # U_M < 1:  theta < (m/rho - 1) * r / a
    hi = (m / rho - 1.0) * r / a if a > 0 else 1.0
    # U_S < 1:  theta > 1 - r*(p-m) / (a*rho)
    lo = 1.0 - r * (p - m) / (a * rho) if a > 0 else 0.0
    return min(1.0, max(0.0, lo)), min(1.0, max(0.0, hi))


@dataclass(frozen=True, slots=True)
class MSDesign:
    """A concrete M/S operating point chosen by Theorem 1."""

    m: int
    theta: float
    stretch: MSStretch
    theta_bounds: tuple[float, float]

    @property
    def sm(self) -> float:
        return self.stretch.total


def theta_opt(w: Workload, m: int, method: ThetaMethod = "midpoint") -> float:
    """Best master-side dynamic fraction for a fixed master count.

    ``"midpoint"`` is the paper's rule ``theta_m = max((t1+t2)/2, 0)``;
    ``"numeric"`` minimises SM directly over the stable interval (an
    ablation: the true optimum of the rational SM is not exactly the
    midpoint of the winning interval).
    """
    t1, t2 = theta_bounds(w, m)
    if method == "midpoint":
        theta = max((t1 + t2) / 2.0, 0.0)
        return min(theta, 1.0)
    if method == "numeric":
        from scipy.optimize import minimize_scalar

        lo, hi = theta_feasible_interval(w, m)
        eps = 1e-9 * max(1.0, hi - lo)
        lo, hi = lo + eps, hi - eps
        if hi <= lo:
            return max(lo, 0.0)
        objective = lambda th: ms_stretch(  # noqa: E731
            w, m, float(np.clip(th, 0.0, 1.0))).total
        res = minimize_scalar(objective, bounds=(lo, hi), method="bounded")
        # The bounded search can stall a hair inside the interval; also try
        # the boundaries so a boundary minimum is returned exactly.
        candidates = [float(np.clip(res.x, 0.0, 1.0)),
                      max(lo, 0.0), min(hi, 1.0)]
        return min(candidates, key=objective)
    raise ValueError(f"unknown method {method!r}")


def design_for_m(w: Workload, m: int,
                 method: ThetaMethod = "midpoint") -> Optional[MSDesign]:
    """Evaluate one master count; ``None`` if it cannot be stable."""
    if m >= w.p:
        # Degenerate: all masters, no slaves — equivalent to flat + remote CGI.
        stretch = ms_stretch(w, w.p, 1.0)
        if not stretch.stable:
            return None
        return MSDesign(m=w.p, theta=1.0, stretch=stretch,
                        theta_bounds=(1.0, 1.0))
    if w.rho >= m:
        return None  # masters cannot even absorb the static load
    try:
        bounds = theta_bounds(w, m)
    except (ValueError, ArithmeticError):
        return None
    theta = theta_opt(w, m, method)
    stretch = ms_stretch(w, m, theta)
    if not stretch.stable:
        return None
    return MSDesign(m=m, theta=theta, stretch=stretch, theta_bounds=bounds)


def optimal_masters(w: Workload, method: ThetaMethod = "midpoint") -> MSDesign:
    """Theorem 1's numeric minimisation over ``m`` (and ``theta``).

    Sweeps every integer master count, picking the pair ``(m, theta_m)``
    with the smallest combined stretch.
    """
    _validate_ms_workload(w, "optimal_masters")
    if not w.feasible:
        raise ValueError("offered load exceeds cluster capacity")
    best: Optional[MSDesign] = None
    for m in range(1, w.p + 1):
        cand = design_for_m(w, m, method)
        if cand is None:
            continue
        if best is None or cand.sm < best.sm:
            best = cand
    if best is None:
        raise ArithmeticError("no stable M/S configuration found")
    return best
