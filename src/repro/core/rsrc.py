"""RSRC — relative server-site response cost (paper Section 4, Equation 5).

Without knowing a dynamic request's exact demand, the scheduler estimates
the *relative* cost of running it on each node from the request family's
average CPU weight ``w`` and the node's current idle ratios:

    ``RSRC = w / CPUIdleRatio + (1 - w) / DiskAvailRatio``

and picks the node with the minimum cost.  ``w`` comes from offline sampling
(:mod:`repro.core.sampling`); when unavailable the paper assumes ``w = 0.5``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Idle ratios are floored at this value so a saturated resource yields a
#: large-but-finite cost instead of a division by zero.
IDLE_FLOOR = 1e-3

#: Default CPU weight when no sampled value exists (paper: "we assume
#: w = 0.5, which means that I/O and CPU resources are considered to be
#: equally important").
DEFAULT_W = 0.5


def rsrc_cost(w: float, cpu_idle, disk_avail, floor: float = IDLE_FLOOR):
    """Evaluate Equation 5.  Accepts scalars or aligned numpy arrays.

    >>> rsrc_cost(0.5, 1.0, 1.0)
    1.0
    >>> rsrc_cost(1.0, 0.5, 0.01)   # pure-CPU request ignores the disk
    2.0
    """
    if not 0.0 <= w <= 1.0:
        raise ValueError(f"w must be in [0, 1]; got {w}")
    cpu = np.maximum(np.asarray(cpu_idle, dtype=float), floor)
    disk = np.maximum(np.asarray(disk_avail, dtype=float), floor)
    out = w / cpu + (1.0 - w) / disk
    return float(out) if out.ndim == 0 else out


def select_min_rsrc(
    w: float,
    cpu_idle: np.ndarray,
    disk_avail: np.ndarray,
    candidates: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    tie_tolerance: float = 1e-9,
    load_penalty: Optional[np.ndarray] = None,
) -> int:
    """Pick the candidate node with the minimum RSRC.

    Near-ties are broken uniformly at random (when ``rng`` is given) so that
    a fleet of equally idle nodes does not herd onto the lowest index
    between two load-monitor updates.  ``load_penalty`` (a per-node
    multiplier >= 1, typically ``1 + outstanding dispatches``) lets the
    dispatcher fold in work it has sent since the last monitor update.
    """
    cand = np.asarray(candidates, dtype=np.intp)
    if cand.size == 0:
        raise ValueError("candidate set is empty")
    costs = rsrc_cost(w, cpu_idle[cand], disk_avail[cand])
    costs = np.atleast_1d(costs)
    if load_penalty is not None:
        pen = np.asarray(load_penalty, dtype=float)[cand]
        if (pen < 1.0 - 1e-12).any():
            raise ValueError("load_penalty multipliers must be >= 1")
        costs = costs * pen
    best = costs.min()
    if rng is None:
        return int(cand[int(np.argmin(costs))])
    ties = np.flatnonzero(costs <= best + tie_tolerance)
    pick = ties[int(rng.integers(len(ties)))] if len(ties) > 1 else ties[0]
    return int(cand[pick])
