"""Heterogeneous-cluster extension of the Theorem-1 analysis.

The paper states its results "can also be extended for a heterogeneous
system with non-uniform nodes" (Section 3) and announces heterogeneous
management as ongoing work (Section 6).  This module carries the analysis
over:

* Nodes have speed multipliers ``s_i`` relative to the reference node
  (service rates ``s_i * mu``).  Within a tier, traffic is spread
  proportionally to capacity (a weighted random dispatch any front end can
  implement), so every node in a tier runs at the tier utilisation:

      ``U_master = (lam_h/mu_h + theta * lam_c/mu_c) / C_M``
      ``U_slave  = ((1-theta) * lam_c/mu_c) / C_S``

  where ``C_M`` and ``C_S`` are the summed speeds of the master and slave
  sets (the homogeneous case is ``s_i = 1``, ``C_M = m``).

* A request of reference demand ``d`` on node ``i`` responds in
  ``d / (s_i (1 - U))``, i.e. its stretch (relative to the reference
  demand, which is what the trace records) is ``1 / (s_i (1 - U))``.
  Averaged over a tier's capacity-weighted traffic, the tier stretch is

      ``S_tier = n_tier / (C_tier * (1 - U_tier))``

  — node count over capacity, times the M/M/1 factor.  Unit speeds
  recover ``1/(1-U)`` exactly.

* The Theorem-1 reservation cap generalises by substituting capacity for
  count: ``theta_2 = C_M/C + (r/a)(C_M/C - 1)``.

Master-set selection is a subset problem; we expose the two natural greedy
orders (slowest-first and fastest-first prefixes of the speed-sorted node
list) plus exact evaluation of any explicit set.  The count/capacity
factor usually favours *fast* masters: the count-weighted stretch metric
cares most about the numerous small static requests, and those finish
fastest on fast machines — at the price of slower slaves for the few big
CGI jobs.  (A response-time-weighted objective would flip this; the
simulator lets you check both.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional, Sequence, Tuple

from repro.core.queuing import UNSTABLE, Workload

MasterOrder = Literal["slowest-first", "fastest-first"]


def _validate_speeds(speeds: Sequence[float], p: int) -> None:
    if len(speeds) != p:
        raise ValueError(f"need one speed per node ({len(speeds)} != {p})")
    if any(s <= 0 for s in speeds):
        raise ValueError("speeds must be positive")


@dataclass(frozen=True, slots=True)
class HeteroMSStretch:
    """Stretch of one heterogeneous M/S configuration."""

    total: float
    master: float
    slave: float
    master_ids: Tuple[int, ...]
    theta: float

    @property
    def stable(self) -> bool:
        return math.isfinite(self.total)


def hetero_ms_stretch(w: Workload, speeds: Sequence[float],
                      master_ids: Sequence[int],
                      theta: float) -> HeteroMSStretch:
    """Equation-1 stretch with capacity-weighted tiers.

    ``w.p`` is the node count; ``w.mu_h``/``w.mu_c`` are the *reference*
    node's service rates.
    """
    _validate_speeds(speeds, w.p)
    masters = tuple(sorted(set(master_ids)))
    if not masters:
        raise ValueError("need at least one master")
    if any(not 0 <= i < w.p for i in masters):
        raise ValueError("master ids out of range")
    if not 0.0 <= theta <= 1.0:
        raise ValueError("theta must be in [0, 1]")
    cap_m = sum(speeds[i] for i in masters)
    cap_s = sum(speeds[i] for i in range(w.p) if i not in set(masters))
    if cap_s == 0 and theta < 1.0:
        raise ValueError("no slave capacity; theta must be 1")

    n_m = len(masters)
    n_s = w.p - n_m
    u_master = (w.lam_h / w.mu_h + theta * w.lam_c / w.mu_c) / cap_m
    u_slave = 0.0 if cap_s == 0 else \
        ((1.0 - theta) * w.lam_c / w.mu_c) / cap_s
    s_master = UNSTABLE if u_master >= 1 else \
        (n_m / cap_m) / (1.0 - u_master)
    s_slave = 1.0 if cap_s == 0 else (
        UNSTABLE if u_slave >= 1 else (n_s / cap_s) / (1.0 - u_slave))
    a = w.a
    if math.isinf(s_master) or (theta < 1.0 and math.isinf(s_slave)):
        total = UNSTABLE
    else:
        total = ((1.0 + a * theta) * s_master
                 + a * (1.0 - theta) * s_slave) / (1.0 + a)
    return HeteroMSStretch(total=total, master=s_master, slave=s_slave,
                           master_ids=masters, theta=theta)


def hetero_flat_stretch(w: Workload, speeds: Sequence[float]) -> float:
    """Flat architecture with capacity-weighted dispatch.

    Count-over-capacity form: ``p / (C * (1 - U))``.
    """
    _validate_speeds(speeds, w.p)
    cap = sum(speeds)
    util = (w.lam_h / w.mu_h + w.lam_c / w.mu_c) / cap
    return UNSTABLE if util >= 1 else (w.p / cap) / (1.0 - util)


def hetero_reservation_ratio(a: float, r: float, cap_masters: float,
                             cap_total: float) -> float:
    """Capacity-form reservation cap
    ``theta_2 = C_M/C + (r/a)(C_M/C - 1)``, clamped to [0, 1]."""
    if a <= 0:
        return 1.0
    if not 0 < cap_masters <= cap_total:
        raise ValueError("need 0 < cap_masters <= cap_total")
    frac = cap_masters / cap_total
    return min(1.0, max(0.0, frac + (r / a) * (frac - 1.0)))


def _theta_for_masterset(w: Workload, speeds: Sequence[float],
                         master_ids: Tuple[int, ...]) -> float:
    """Capacity-form midpoint rule for one master set."""
    cap_m = sum(speeds[i] for i in master_ids)
    cap = sum(speeds)
    # Upper root: tiers equal the flat utilisation (capacity form).
    theta2 = cap_m / cap + (w.r / w.a) * (cap_m / cap - 1.0)
    # Lower root via the same quadratic normalisation as the homogeneous
    # case; the midpoint rule clamps at 0 anyway, and theta2 <= cap_m/cap,
    # so max(midpoint, 0) with a symmetric lower root reduces to:
    theta1 = -theta2  # conservative symmetric surrogate
    return min(1.0, max((theta1 + theta2) / 2.0, 0.0))


@dataclass(frozen=True, slots=True)
class HeteroDesign:
    """Chosen master set and operating point for a heterogeneous cluster."""

    master_ids: Tuple[int, ...]
    theta: float
    stretch: HeteroMSStretch
    order: MasterOrder

    @property
    def sm(self) -> float:
        return self.stretch.total


def optimal_masters_hetero(
    w: Workload, speeds: Sequence[float],
    order: Optional[MasterOrder] = None,
) -> HeteroDesign:
    """Best master *set* by sweeping speed-ordered prefixes.

    Subset selection is exponential; prefixes of the speed-sorted node
    list are the natural family (slow machines as masters keep fast ones
    for big CGI jobs, or vice versa).  ``order=None`` tries both and keeps
    the winner.
    """
    _validate_speeds(speeds, w.p)
    offered = w.lam_h / w.mu_h + w.lam_c / w.mu_c
    if offered >= sum(speeds):
        raise ValueError("offered load exceeds heterogeneous capacity")

    orders: Tuple[MasterOrder, ...] = (
        (order,) if order is not None
        else ("slowest-first", "fastest-first"))
    best: Optional[HeteroDesign] = None
    for ordr in orders:
        ranked = sorted(range(w.p), key=lambda i: speeds[i],
                        reverse=(ordr == "fastest-first"))
        for k in range(1, w.p):
            masters = tuple(sorted(ranked[:k]))
            theta = _theta_for_masterset(w, speeds, masters)
            stretch = hetero_ms_stretch(w, speeds, masters, theta)
            if not stretch.stable:
                continue
            cand = HeteroDesign(master_ids=masters, theta=theta,
                                stretch=stretch, order=ordr)
            if best is None or cand.sm < best.sm:
                best = cand
    if best is None:
        raise ArithmeticError("no stable heterogeneous M/S configuration")
    return best
