"""Analytic queuing models for the flat and master/slave architectures.

Reproduces Section 3 of the paper.  Both architectures are modelled as
multi-class open queuing networks with homogeneous servers, Poisson
arrivals, exponential service and processor-sharing (or FCFS — the stretch
formulas coincide for M/M/1).  Under processor sharing, a job of size ``d``
on a server with utilisation ``U`` has expected response ``d / (1 - U)``, so
the per-class expected stretch factor on that server is ``1 / (1 - U)``.

Notation (matching the paper):

* ``lam_h`` / ``lam_c``: arrival rates of static and dynamic requests,
* ``mu_h`` / ``mu_c``: service rates of static and dynamic requests,
* ``p``: number of servers, ``m``: number of masters,
* ``a = lam_c / lam_h``: arrival-rate ratio,
* ``r = mu_c / mu_h``: service-rate ratio (``r << 1`` for CGI-heavy sites),
* ``theta``: fraction of dynamic requests processed at master nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


#: Stretch reported for an unstable (overloaded) station.
UNSTABLE = math.inf


@dataclass(frozen=True, slots=True)
class Workload:
    """Aggregate workload parameters of a cluster.

    Two equivalent constructions are supported: from absolute rates
    (:meth:`from_rates`) or from the paper's ratio parameterisation
    (:meth:`from_ratios` — total rate ``lam``, ratio ``a``, static service
    rate ``mu_h`` and ratio ``r``).
    """

    lam_h: float   # static arrival rate (requests/s, whole cluster)
    lam_c: float   # dynamic arrival rate
    mu_h: float    # static service rate of one node
    mu_c: float    # dynamic service rate of one node
    p: int         # number of nodes

    def __post_init__(self) -> None:
        if self.lam_h <= 0 or self.lam_c < 0:
            raise ValueError("arrival rates must be positive (lam_c may be 0)")
        if self.mu_h <= 0 or self.mu_c <= 0:
            raise ValueError("service rates must be positive")
        if self.p < 1:
            raise ValueError("p must be >= 1")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_rates(lam_h: float, lam_c: float, mu_h: float, mu_c: float,
                   p: int) -> "Workload":
        return Workload(lam_h, lam_c, mu_h, mu_c, p)

    @staticmethod
    def from_ratios(lam: float, a: float, mu_h: float, r: float,
                    p: int) -> "Workload":
        """Paper parameterisation: ``lam = lam_h + lam_c``, ``a``, ``r``.

        >>> w = Workload.from_ratios(lam=1000, a=0.25, mu_h=1200, r=1/40, p=32)
        >>> round(w.lam_h + w.lam_c, 9)
        1000.0
        >>> round(w.a, 9), round(w.r, 9)
        (0.25, 0.025)
        """
        if lam <= 0:
            raise ValueError("lam must be positive")
        if a < 0:
            raise ValueError("a must be >= 0")
        if not 0 < r:
            raise ValueError("r must be positive")
        lam_h = lam / (1.0 + a)
        lam_c = lam - lam_h
        return Workload(lam_h, lam_c, mu_h, mu_h * r, p)

    # -- derived quantities ------------------------------------------------------

    @property
    def lam(self) -> float:
        """Total arrival rate."""
        return self.lam_h + self.lam_c

    @property
    def a(self) -> float:
        """Arrival-rate ratio ``lam_c / lam_h``."""
        return self.lam_c / self.lam_h

    @property
    def r(self) -> float:
        """Service-rate ratio ``mu_c / mu_h`` (usually << 1)."""
        return self.mu_c / self.mu_h

    @property
    def rho(self) -> float:
        """Static offered load per the whole cluster, ``lam_h / mu_h``."""
        return self.lam_h / self.mu_h

    @property
    def total_offered(self) -> float:
        """Total offered load in node-equivalents: must be < p for
        stability under any work-conserving assignment."""
        return self.lam_h / self.mu_h + self.lam_c / self.mu_c

    @property
    def feasible(self) -> bool:
        """Whether any schedule can be stable (offered load < capacity)."""
        return self.total_offered < self.p


def _station_stretch(util: float) -> float:
    """Per-class stretch of an M/M/1-PS station with utilisation ``util``."""
    if util >= 1.0:
        return UNSTABLE
    if util < 0.0:
        raise ValueError(f"negative utilisation {util}")
    return 1.0 / (1.0 - util)


# -- flat architecture -------------------------------------------------------------


def flat_utilization(w: Workload) -> float:
    """Per-node utilisation under uniform random dispatch."""
    return (w.lam_h / w.mu_h + w.lam_c / w.mu_c) / w.p


def flat_stretch(w: Workload) -> float:
    """Stretch factor of the flat architecture (Equation 1/2).

    Every node serves the same mix, so static and dynamic classes see the
    same stretch: ``SF = SF_h = SF_c = 1 / (1 - U_flat)``.
    """
    return _station_stretch(flat_utilization(w))


# -- master/slave architecture ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MSStretch:
    """Per-class and combined stretch of an M/S configuration."""

    total: float      # SM: arrival-weighted combination
    master: float     # SM_h = SM_c1: stretch on master nodes
    slave: float      # SM_c2: stretch of dynamic requests on slaves
    m: int
    theta: float

    @property
    def stable(self) -> bool:
        return math.isfinite(self.total)


def ms_utilizations(w: Workload, m: int, theta: float) -> tuple[float, float]:
    """(master, slave) utilisations for the M/S model.

    Masters serve all static traffic plus a ``theta`` fraction of dynamic
    traffic; slaves share the remaining dynamic traffic.
    """
    if not 1 <= m <= w.p:
        raise ValueError(f"m must be in [1, p]; got m={m}, p={w.p}")
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1]; got {theta}")
    if m == w.p and theta < 1.0:
        raise ValueError("with m == p there are no slaves; theta must be 1")
    u_master = (w.lam_h / w.mu_h + theta * w.lam_c / w.mu_c) / m
    if m == w.p:
        u_slave = 0.0
    else:
        u_slave = ((1.0 - theta) * w.lam_c / w.mu_c) / (w.p - m)
    return u_master, u_slave


def ms_stretch(w: Workload, m: int, theta: float) -> MSStretch:
    """Stretch factors of the M/S architecture (Equation 1).

    ``SM = [(1 + a*theta) * SM_master + a*(1 - theta) * SM_slave] / (1 + a)``
    — static requests and master-side dynamic requests see the master
    stretch; slave-side dynamic requests see the slave stretch.
    """
    u_master, u_slave = ms_utilizations(w, m, theta)
    s_master = _station_stretch(u_master)
    s_slave = _station_stretch(u_slave) if m < w.p else 1.0
    a = w.a
    if math.isinf(s_master) or (theta < 1.0 and math.isinf(s_slave)):
        total = UNSTABLE
    else:
        total = ((1.0 + a * theta) * s_master
                 + a * (1.0 - theta) * s_slave) / (1.0 + a)
    return MSStretch(total=total, master=s_master, slave=s_slave,
                     m=m, theta=theta)


# -- response times and Little's law ---------------------------------------------------


def flat_mean_response(w: Workload) -> tuple[float, float]:
    """(static, dynamic) mean response times in the flat model.

    Per-class mean response is the class's mean demand times the shared
    station stretch: ``E[T_i] = (1/mu_i) / (1 - U_F)``.
    """
    s = flat_stretch(w)
    return s / w.mu_h, s / w.mu_c


def ms_mean_response(w: Workload, m: int,
                     theta: float) -> tuple[float, float]:
    """(static, dynamic) mean response times in the M/S model.

    Dynamic requests mix master and slave service according to ``theta``.
    """
    ms = ms_stretch(w, m, theta)
    static = ms.master / w.mu_h
    dynamic = (theta * ms.master + (1.0 - theta) * ms.slave) / w.mu_c
    return static, dynamic


def mean_in_system(w: Workload, mean_response: float) -> float:
    """Little's law: expected requests in the system, ``lam * E[T]``."""
    if mean_response < 0:
        raise ValueError("mean_response must be >= 0")
    return w.lam * mean_response


def flat_mean_in_system(w: Workload) -> float:
    """Expected population of the flat cluster (both classes)."""
    t_h, t_c = flat_mean_response(w)
    return w.lam_h * t_h + w.lam_c * t_c


# -- the M/S' alternative -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MSPrimeStretch:
    """Stretch of the M/S' scheme (static everywhere, dynamic pinned)."""

    total: float
    dynamic_node: float   # stretch on the k nodes that also run CGI
    static_node: float    # stretch on the p-k static-only nodes
    k: int

    @property
    def stable(self) -> bool:
        return math.isfinite(self.total)


def msprime_stretch(w: Workload, k: int) -> MSPrimeStretch:
    """Stretch of M/S': dynamic requests pinned to ``k`` nodes, static
    requests spread uniformly over **all** ``p`` nodes.

    The paper shows this scheme also beats the flat model but is dominated
    by M/S (Figure 3b).
    """
    if not 1 <= k <= w.p:
        raise ValueError(f"k must be in [1, p]; got k={k}, p={w.p}")
    u_dyn = w.lam_h / w.mu_h / w.p + (w.lam_c / w.mu_c) / k
    u_static = w.lam_h / w.mu_h / w.p
    s_dyn = _station_stretch(u_dyn)
    s_static = _station_stretch(u_static)
    if math.isinf(s_dyn):
        total = UNSTABLE
    else:
        # Static requests land on a dynamic-sharing node with prob k/p.
        frac_on_dyn = k / w.p
        s_h = frac_on_dyn * s_dyn + (1.0 - frac_on_dyn) * s_static
        total = (w.lam_h * s_h + w.lam_c * s_dyn) / w.lam
    return MSPrimeStretch(total=total, dynamic_node=s_dyn,
                          static_node=s_static, k=k)


def best_msprime(w: Workload) -> MSPrimeStretch:
    """M/S' with the best choice of ``k`` (numeric sweep, as for ``m``)."""
    best: MSPrimeStretch | None = None
    for k in range(1, w.p + 1):
        cand = msprime_stretch(w, k)
        if best is None or cand.total < best.total:
            best = cand
    assert best is not None
    return best
