"""Offline demand sampling (paper Section 4).

"``w`` is obtained by off-line sampling, approximating the I/O and CPU
demand of the request on an unloaded system at a Web site.  If a value for
``w`` cannot be obtained, we assume ``w = 0.5``."

:class:`DemandSampler` keeps a running per-request-family estimate of the
CPU weight.  Training happens either *offline* — run a sample of requests
through :meth:`observe` before the experiment (optionally with measurement
noise, since a real profiler never sees perfectly clean numbers) — or
*online* from completed-request accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.rsrc import DEFAULT_W
from repro.workload.request import Request


@dataclass(slots=True)
class _FamilyStats:
    count: int = 0
    cpu_sum: float = 0.0
    io_sum: float = 0.0

    @property
    def w(self) -> float:
        total = self.cpu_sum + self.io_sum
        return self.cpu_sum / total if total > 0 else DEFAULT_W


class DemandSampler:
    """Per-request-family CPU-weight (``w``) estimates.

    Parameters
    ----------
    default_w:
        Returned for families never sampled.
    max_samples_per_family:
        Offline sampling budget; further observations of a family are
        ignored (profiling every request would defeat the point).
    """

    def __init__(self, default_w: float = DEFAULT_W,
                 max_samples_per_family: int = 1000):
        if not 0.0 <= default_w <= 1.0:
            raise ValueError("default_w must be in [0, 1]")
        if max_samples_per_family < 1:
            raise ValueError("max_samples_per_family must be >= 1")
        self.default_w = default_w
        self.max_samples_per_family = max_samples_per_family
        self._families: Dict[str, _FamilyStats] = {}

    # -- training ----------------------------------------------------------------

    def observe(self, type_key: str, cpu_time: float, io_time: float) -> None:
        """Record one measured (cpu, io) split for a request family."""
        if cpu_time < 0 or io_time < 0:
            raise ValueError("sampled times must be >= 0")
        if cpu_time == 0 and io_time == 0:
            return
        stats = self._families.setdefault(type_key, _FamilyStats())
        if stats.count >= self.max_samples_per_family:
            return
        stats.count += 1
        stats.cpu_sum += cpu_time
        stats.io_sum += io_time

    def train_offline(self, requests: Iterable[Request],
                      noise: float = 0.0,
                      rng: Optional[np.random.Generator] = None) -> int:
        """Profile a request sample on an (imaginary) unloaded node.

        ``noise`` perturbs each measured time by a multiplicative lognormal
        factor of that sigma, modelling profiler error.  Returns the number
        of samples actually recorded.
        """
        if noise < 0:
            raise ValueError("noise must be >= 0")
        if noise > 0 and rng is None:
            rng = np.random.default_rng(0)
        n = 0
        for req in requests:
            cpu, io = req.cpu_demand, req.io_demand
            if noise > 0:
                cpu *= float(rng.lognormal(0.0, noise))
                io *= float(rng.lognormal(0.0, noise))
            before = self._families.get(req.type_key)
            before_count = before.count if before else 0
            self.observe(req.type_key, cpu, io)
            after = self._families[req.type_key]
            if after.count > before_count:
                n += 1
        return n

    # -- queries -------------------------------------------------------------------

    def w(self, type_key: str) -> float:
        """Estimated CPU weight for a family (``default_w`` if unseen)."""
        stats = self._families.get(type_key)
        return stats.w if stats is not None and stats.count > 0 else self.default_w

    def sample_count(self, type_key: str) -> int:
        stats = self._families.get(type_key)
        return stats.count if stats is not None else 0

    @property
    def families(self) -> tuple[str, ...]:
        return tuple(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}: w={v.w:.2f} (n={v.count})"
                          for k, v in self._families.items())
        return f"<DemandSampler {parts or 'untrained'}>"
