"""Trace specifications — Table 1 of the paper.

=====  ====  ==========  ======  =============  =========  ========
Web    year  requests    % CGI   avg interval   HTML size  CGI size
=====  ====  ==========  ======  =============  =========  ========
DEC    1996  24.5 M      8.7     0.09 s         8821       5735
UCB    1996  9.2 M       11.2    0.139 s        7519       4591
KSU    1998  47364       29.1    18.486 s       482        8730
ADL    1997  73610       44.3    22.418 s       2186       2027
=====  ====  ==========  ======  =============  =========  ========

The proprietary logs are unavailable (UCB/DEC are scrambled, KSU/ADL are
private), so we regenerate *synthetic* traces matching these published
statistics; see DESIGN.md §3 for why that preserves the experiments.  The
paper itself dropped DEC (similar CGI fraction to UCB) and used a 128668
-request, 4-hour UCB segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, slots=True)
class TraceSpec:
    """Published characteristics of one Web trace plus the CGI substitution
    used to replay it (paper Section 5.1)."""

    name: str
    year: int
    n_requests: int
    pct_cgi: float            # percentage, 0-100
    mean_interval: float      # seconds between consecutive requests
    html_size: int            # mean static response size, bytes
    cgi_size: int             # mean dynamic response size, bytes
    #: CGI families replayed for this trace: (profile name, weight).
    cgi_mix: Tuple[Tuple[str, float], ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.pct_cgi <= 100.0:
            raise ValueError("pct_cgi is a percentage in [0, 100]")
        if self.mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not self.cgi_mix:
            raise ValueError("cgi_mix must name at least one profile")
        total = sum(wt for _, wt in self.cgi_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"cgi_mix weights must sum to 1, got {total}")

    @property
    def cgi_fraction(self) -> float:
        """CGI share as a fraction in [0, 1]."""
        return self.pct_cgi / 100.0

    @property
    def arrival_ratio_a(self) -> float:
        """The queuing model's ``a = lam_c / lam_h`` implied by the mix.

        >>> round(ADL.arrival_ratio_a, 3)   # 44.3% CGI
        0.795
        """
        f = self.cgi_fraction
        return f / (1.0 - f)

    @property
    def native_rate(self) -> float:
        """Request rate of the original log (requests/second)."""
        return 1.0 / self.mean_interval


DEC = TraceSpec(
    name="DEC", year=1996, n_requests=24_500_000, pct_cgi=8.7,
    mean_interval=0.09, html_size=8821, cgi_size=5735,
    cgi_mix=(("spin", 0.8), ("balanced", 0.2)),
    description="Digital's Web proxy trace (scrambled; unused by the paper "
                "because its CGI share matches UCB)",
)

UCB = TraceSpec(
    name="UCB", year=1996, n_requests=9_200_000, pct_cgi=11.2,
    mean_interval=0.139, html_size=7519, cgi_size=4591,
    cgi_mix=(("spin", 0.8), ("balanced", 0.2)),
    description="UC Berkeley Home-IP modem pool; the scrambled CGI scripts "
                "are replayed as a mix of CPU-intensive WebSTONE busy-spin "
                "scripts (80%) and balanced CPU/IO scripts (20%)",
)

#: The 4-hour segment of the UCB log the paper actually replays.
UCB_SEGMENT_REQUESTS = 128_668
UCB_SEGMENT_SPAN = 4 * 3600.0

KSU = TraceSpec(
    name="KSU", year=1998, n_requests=47_364, pct_cgi=29.1,
    mean_interval=18.486, html_size=482, cgi_size=8730,
    cgi_mix=(("search", 0.85), ("catalog", 0.15)),
    description="Kansas State online library; CGI replayed as WebGlimpse "
                "searches (~90% CPU, in-memory index) plus a 15% share of "
                "disk-bound record fetches",
)

ADL = TraceSpec(
    name="ADL", year=1997, n_requests=73_610, pct_cgi=44.3,
    mean_interval=22.418, html_size=2186, cgi_size=2027,
    cgi_mix=(("catalog", 0.85), ("search", 0.15)),
    description="Alexandria Digital Library testbed; CGI replayed against a "
                "replicated catalog database (~90% disk I/O) plus a 15% "
                "share of in-memory index searches",
)

TRACES: Dict[str, TraceSpec] = {t.name: t for t in (DEC, UCB, KSU, ADL)}

#: The three traces used in the paper's experiments (DEC excluded).
EXPERIMENT_TRACES: Tuple[TraceSpec, ...] = (UCB, KSU, ADL)


def get_trace(name: str) -> TraceSpec:
    """Look up a trace spec by (case-insensitive) name."""
    key = name.upper()
    try:
        return TRACES[key]
    except KeyError:
        raise ValueError(
            f"unknown trace {name!r}; known: {sorted(TRACES)}"
        ) from None
