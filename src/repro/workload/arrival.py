"""Arrival-time processes for synthetic traces.

The paper replays logged traces with intervals *scaled* to a target rate.
Our synthetic traces generate arrivals directly:

* ``poisson`` — exponential inter-arrivals; matches the queuing analysis.
* ``mmpp2`` — a two-state Markov-modulated Poisson process for bursty,
  flash-crowd-like traffic (Web arrivals are famously not Poisson at short
  time scales).
* ``uniform`` — deterministic spacing; useful for tests.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

ArrivalKind = Literal["poisson", "mmpp2", "uniform"]


def poisson_arrivals(rate: float, n: int,
                     rng: np.random.Generator,
                     start: float = 0.0) -> np.ndarray:
    """``n`` Poisson arrival times at ``rate`` per second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    gaps = rng.exponential(1.0 / rate, size=n)
    return start + np.cumsum(gaps)


def uniform_arrivals(rate: float, n: int,
                     start: float = 0.0) -> np.ndarray:
    """``n`` evenly spaced arrivals at ``rate`` per second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    return start + (np.arange(1, n + 1) / rate)


def mmpp2_arrivals(rate: float, n: int, rng: np.random.Generator,
                   burst_factor: float = 3.0,
                   mean_sojourn: float = 2.0,
                   start: float = 0.0) -> np.ndarray:
    """Two-state MMPP with overall mean ``rate``.

    The process alternates between a *calm* and a *burst* state with
    exponential sojourns of mean ``mean_sojourn`` seconds.  The burst state
    arrival rate is ``burst_factor`` times the calm rate; state rates are
    chosen so the long-run average equals ``rate``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    if mean_sojourn <= 0:
        raise ValueError("mean_sojourn must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    # Equal sojourn means => average rate is the mean of the two rates.
    calm = 2.0 * rate / (1.0 + burst_factor)
    rates = (calm, calm * burst_factor)

    times = np.empty(n)
    t = start
    state = 0
    state_left = rng.exponential(mean_sojourn)
    for i in range(n):
        while True:
            gap = rng.exponential(1.0 / rates[state])
            if gap <= state_left:
                state_left -= gap
                t += gap
                times[i] = t
                break
            # State flips before the next arrival: discard and re-draw in
            # the new state (memorylessness makes this exact).
            t += state_left
            state = 1 - state
            state_left = rng.exponential(mean_sojourn)
    return times


def make_arrivals(kind: ArrivalKind, rate: float, n: int,
                  rng: np.random.Generator, start: float = 0.0) -> np.ndarray:
    """Dispatch on the process name."""
    if kind == "poisson":
        return poisson_arrivals(rate, n, rng, start)
    if kind == "mmpp2":
        return mmpp2_arrivals(rate, n, rng, start=start)
    if kind == "uniform":
        return uniform_arrivals(rate, n, start)
    raise ValueError(f"unknown arrival kind {kind!r}")


def scale_intervals(arrivals: np.ndarray, target_rate: float) -> np.ndarray:
    """Rescale a trace's arrival times to a target mean rate.

    This is the paper's replay trick: "we scale intervals among requests so
    that requests in each log are issued to the cluster at various fast
    rates".  Relative burst structure is preserved.
    """
    arr = np.asarray(arrivals, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need at least two arrivals to scale")
    if np.any(np.diff(arr) < 0):
        raise ValueError("arrival times must be non-decreasing")
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    span = arr[-1] - arr[0]
    if span <= 0:
        raise ValueError("all arrivals coincide; cannot scale")
    current_rate = (arr.size - 1) / span
    return arr[0] + (arr - arr[0]) * (current_rate / target_rate)
