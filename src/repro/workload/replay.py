"""Trace replay: wire a generated trace, a policy, and a simulated cluster
together, and return the metrics report.

This is the experiment entry point used by the examples and the Figure-4/5
benchmark harnesses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control import ControlConfig

from repro.core.policies import Policy
from repro.core.sampling import DemandSampler
from repro.obs import Tracer, audit_cluster
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig
from repro.sim.failures import FailurePolicy
from repro.sim.metrics import MetricsReport
from repro.sim.resilience import ResilienceConfig
from repro.workload.request import Request

#: Environment switch: a truthy value makes every :func:`replay` run with
#: tracing on and a post-run trace audit (violations raise).  The pytest
#: benchmark suite sets this so all figure benches are audited.
AUDIT_ENV = "REPRO_AUDIT"


def _env_audit() -> bool:
    return os.environ.get(AUDIT_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


@dataclass(slots=True)
class ReplayResult:
    """A replay's report plus the objects needed for post-mortems."""

    report: MetricsReport
    cluster: Cluster
    #: The attached control loop when ``replay(control=...)`` was used
    #: (``repro.control.SimControlLoop``); its controller exposes the
    #: applied/proposed actions for post-mortems.
    control: Optional[object] = None

    @property
    def stretch(self) -> float:
        return self.report.overall.stretch


def replay(
    cfg: SimConfig,
    policy: Policy,
    requests: Sequence[Request],
    *,
    warmup_fraction: float = 0.1,
    drain: float = 30.0,
    max_events: Optional[int] = None,
    failure_policy: Optional[FailurePolicy] = None,
    resilience: Optional[ResilienceConfig] = None,
    tracer: Optional[Tracer] = None,
    audit: Optional[bool] = None,
    control: Optional["ControlConfig"] = None,
) -> ReplayResult:
    """Run one trace through one cluster configuration.

    Parameters
    ----------
    cfg:
        Cluster/OS constants (node count must match the policy).
    policy:
        Dispatch policy under test.
    requests:
        The trace; arrival times are absolute.
    warmup_fraction:
        Leading fraction of the trace span excluded from the metrics (queue
        fill-up transient).
    drain:
        Virtual seconds allowed past the last arrival for queues to empty.
    failure_policy, resilience:
        Passed through to :class:`Cluster` (crash semantics and the
        request-path resilience layer; both default off).
    tracer:
        Optional :class:`repro.obs.Tracer` to attach; spans survive on the
        tracer after the run.  ``None`` leaves tracing disabled unless
        ``audit`` turns it on.
    audit:
        Run the trace auditor over the finished run and raise
        :class:`repro.obs.TraceAuditError` on any invariant violation.
        Implies tracing (a throwaway tracer is created if none was passed).
        ``None`` (default) defers to the ``REPRO_AUDIT`` environment
        variable, so whole suites can be audited without plumbing.
    control:
        A :class:`repro.control.ControlConfig` to arm the online control
        plane for this run: a reconciliation loop estimates the workload
        from completions and re-solves Theorem 1 periodically, retuning
        theta'_2 / the RSRC weight and stepping the master set.  The
        loop is returned on ``ReplayResult.control``.
    """
    if not requests:
        raise ValueError("empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if audit is None:
        audit = _env_audit()
    if audit and tracer is None:
        tracer = Tracer()
    cluster = Cluster(cfg, policy, failure_policy=failure_policy,
                      resilience=resilience, tracer=tracer)
    control_loop = None
    if control is not None:
        from repro.control import SimControlLoop

        control_loop = SimControlLoop(cluster, control).start()
    first = min(q.arrival_time for q in requests)
    last = max(q.arrival_time for q in requests)
    warmup = first + (last - first) * warmup_fraction
    n = cluster.submit_many(requests)
    deadline = last + drain
    cluster.run(until=deadline, max_events=max_events)
    extensions = 0
    while any(node.active for node in cluster.nodes) and extensions < 20:
        deadline += drain
        cluster.run(until=deadline, max_events=max_events)
        extensions += 1
    report = cluster.metrics.report(warmup=warmup)
    if report.completed == 0:
        raise RuntimeError(
            f"no requests completed out of {n}; cluster hopelessly overloaded?"
        )
    if audit:
        audit_cluster(cluster).raise_if_failed()
    return ReplayResult(report=report, cluster=cluster,
                        control=control_loop)


def pretrain_sampler(requests: Sequence[Request],
                     sample_fraction: float = 0.02,
                     noise: float = 0.05,
                     seed: int = 0) -> DemandSampler:
    """Offline demand sampling for the M/S scheduler.

    Profiles a leading slice of the trace "on an unloaded system" with a
    little measurement noise, as the paper's off-line sampling would.
    """
    import numpy as np

    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    sampler = DemandSampler()
    n = max(1, int(len(requests) * sample_fraction))
    rng = np.random.default_rng(seed)
    sampler.train_offline(requests[:n], noise=noise, rng=rng)
    return sampler
