"""Session-structured workloads and client identity.

The paper's first criticism of DNS-rotation clustering is that it does not
actually balance load: "load imbalance may be caused by client-site IP
address caching" — a client resolves the site once and then sends *all* of
its requests to the same node.  Per-request randomisation papers over
this; to reproduce the effect the workload must have **sessions**: bursts
of requests from the same client.

:func:`sessionize` decorates any generated trace with session structure —
it groups requests into sessions (geometric lengths) and stamps each with
the issuing client's id, leaving arrival times and demands untouched so
the aggregate workload statistics stay exactly as generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.workload.request import Request


@dataclass(slots=True)
class SessionConfig:
    """Shape of the session structure laid over a trace."""

    #: Mean requests per session (geometric).
    mean_session_length: float = 8.0
    #: Pool of distinct clients; sessions draw clients uniformly.  With a
    #: small pool relative to concurrency, a few heavy clients dominate —
    #: the pathological case for affinity front ends.
    num_clients: int = 1000
    seed: int = 0

    def validate(self) -> None:
        if self.mean_session_length < 1.0:
            raise ValueError("mean_session_length must be >= 1")
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")


def sessionize(requests: Sequence[Request],
               config: SessionConfig | None = None) -> List[Request]:
    """Stamp a trace with session/client structure.

    Consecutive requests are grouped into sessions of geometric length;
    each session belongs to one client drawn from the pool.  Everything
    else about the trace (arrivals, demands, sizes) is preserved.
    """
    cfg = config or SessionConfig()
    cfg.validate()
    if not requests:
        return []
    rng = np.random.default_rng(cfg.seed)
    out: List[Request] = []
    remaining = 0
    client = -1
    p_end = 1.0 / cfg.mean_session_length
    for req in sorted(requests, key=lambda q: q.arrival_time):
        if remaining <= 0:
            remaining = int(rng.geometric(p_end))
            client = int(rng.integers(cfg.num_clients))
        remaining -= 1
        out.append(Request(
            req_id=req.req_id, arrival_time=req.arrival_time,
            kind=req.kind, cpu_demand=req.cpu_demand,
            io_demand=req.io_demand, mem_pages=req.mem_pages,
            size_bytes=req.size_bytes, type_key=req.type_key,
            cache_key=req.cache_key, client_id=client,
        ))
    return out


def client_concentration(requests: Sequence[Request]) -> float:
    """Herfindahl-style concentration of requests over clients, in
    (0, 1]; ``1/num_distinct_clients`` for a uniform spread, 1.0 when a
    single client issues everything."""
    if not requests:
        raise ValueError("empty trace")
    ids = [q.client_id for q in requests]
    _, counts = np.unique(ids, return_counts=True)
    shares = counts / counts.sum()
    return float((shares ** 2).sum())
