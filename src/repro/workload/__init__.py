"""Trace specifications, synthetic workload generation, and replay."""
