"""Synthetic trace generation matching the published Table-1 statistics.

The proprietary logs cannot be redistributed, so experiments regenerate
traces whose *statistics* match the paper's Table 1 — which is all the
scheduler ever sees, because the paper itself replaces every request body
(static fetches become SPECweb96 files, CGI becomes synthetic scripts whose
demand is controlled by the experiment's ``r``).

Calibration
-----------
A node serves the SPECweb96 mix at ``mu_h`` requests/second, so the *mean*
static service demand is pinned to exactly ``1/mu_h`` (demand is
proportional to the served file size, then rescaled).  Dynamic requests get
mean demand ``1/(mu_h * r)``; their CPU/IO split and variability come from
the trace's CGI profile(s).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workload.arrival import ArrivalKind, make_arrivals
from repro.workload.cgi_profiles import get_profile
from repro.workload.request import Request, RequestKind
from repro.workload.specweb import MEAN_FILE_SIZE, closest_file
from repro.workload.traces import TraceSpec

#: Lognormal sigma used to spread logged response sizes around the trace
#: mean before snapping them to the SPECweb96 file set.
_SIZE_SIGMA = 1.0

#: Working-set pages charged to a static request (request parsing buffers
#: plus the file block being streamed).
_STATIC_MEM_PAGES = 2

#: Share of a static request's demand that is fixed per-request overhead
#: (connection handling, parsing, headers); the rest scales with file size.
_STATIC_OVERHEAD_FRACTION = 0.5


def _lognormal_with_mean(mean: float, sigma: float, n: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Lognormal samples with an exact-mean parameterisation."""
    mu = np.log(mean) - sigma ** 2 / 2.0
    return rng.lognormal(mu, sigma, size=n)


def generate_trace(
    spec: TraceSpec,
    *,
    rate: float,
    n: Optional[int] = None,
    duration: Optional[float] = None,
    mu_h: float = 1200.0,
    r: float = 1.0 / 40.0,
    seed: int = 0,
    arrival: ArrivalKind = "poisson",
    start: float = 0.0,
    cacheable_fraction: float = 0.0,
    distinct_queries: int = 1000,
    zipf_s: float = 1.1,
) -> List[Request]:
    """Generate a synthetic trace in the image of ``spec``.

    Parameters
    ----------
    spec:
        Published trace characteristics (class mix, sizes).
    rate:
        Target aggregate arrival rate in requests/second — the paper's
        interval scaling ("requests in each log are issued to the cluster
        at various fast rates").
    n / duration:
        Trace length, by count or by virtual-time span (exactly one).
    mu_h:
        Static service rate of one node; pins the demand calibration.
    r:
        Ratio of dynamic to static service *rates* (CGI demand is ``1/r``
        times larger on average).
    seed, arrival, start:
        Randomness, arrival-process kind, and first-arrival offset.
    cacheable_fraction / distinct_queries / zipf_s:
        CGI result caching knobs: the fraction of dynamic requests whose
        output is cacheable, drawn from a bounded-Zipf popularity over
        ``distinct_queries`` distinct query strings (0.0 = no cache keys,
        the paper's base setting — "our work in this paper does not
        consider CGI caching").
    """
    if (n is None) == (duration is None):
        raise ValueError("specify exactly one of n or duration")
    if duration is not None:
        n = max(1, int(round(rate * duration)))
    assert n is not None
    if n < 1:
        raise ValueError("trace must contain at least one request")
    if mu_h <= 0 or r <= 0:
        raise ValueError("mu_h and r must be positive")
    if not 0.0 <= cacheable_fraction <= 1.0:
        raise ValueError("cacheable_fraction must be in [0, 1]")
    if distinct_queries < 1:
        raise ValueError("distinct_queries must be >= 1")

    rng = np.random.default_rng(seed)
    arrivals = make_arrivals(arrival, rate, n, rng, start=start)
    is_cgi = rng.random(n) < spec.cgi_fraction

    requests: List[Request] = [None] * n  # type: ignore[list-item]
    _fill_static(requests, spec, arrivals, ~is_cgi, mu_h, rng)
    _fill_dynamic(requests, spec, arrivals, is_cgi, mu_h, r, rng)
    if cacheable_fraction > 0.0:
        _assign_cache_keys(requests, is_cgi, cacheable_fraction,
                           distinct_queries, zipf_s, rng)
    return requests


def _assign_cache_keys(requests: List[Request], is_cgi: np.ndarray,
                       fraction: float, distinct: int, zipf_s: float,
                       rng: np.random.Generator) -> None:
    """Give cacheable dynamic requests bounded-Zipf content identities."""
    idx = np.flatnonzero(is_cgi)
    if idx.size == 0:
        return
    weights = 1.0 / np.arange(1, distinct + 1, dtype=float) ** zipf_s
    weights /= weights.sum()
    cacheable = rng.random(idx.size) < fraction
    queries = rng.choice(distinct, size=idx.size, p=weights)
    for j, i in enumerate(idx):
        if cacheable[j]:
            req = requests[i]
            requests[i] = Request(
                req_id=req.req_id, arrival_time=req.arrival_time,
                kind=req.kind, cpu_demand=req.cpu_demand,
                io_demand=req.io_demand, mem_pages=req.mem_pages,
                size_bytes=req.size_bytes, type_key=req.type_key,
                cache_key=f"{req.type_key}?q={queries[j]}",
            )


def _fill_static(out: List[Request], spec: TraceSpec, arrivals: np.ndarray,
                 mask: np.ndarray, mu_h: float,
                 rng: np.random.Generator) -> None:
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return
    # Logged sizes around the trace mean, snapped to the SPECweb96 set.
    logged = _lognormal_with_mean(spec.html_size, _SIZE_SIGMA, idx.size, rng)
    served = np.array([closest_file(int(s)) for s in logged], dtype=np.int64)
    # Per-request demand = fixed overhead (parse, syscalls, headers) plus a
    # size-proportional transfer part; server benchmarks are dominated by
    # the fixed part for small files.  Calibrated so the mean is 1/mu_h.
    proportional = served / MEAN_FILE_SIZE
    proportional /= proportional.mean()
    demands = (_STATIC_OVERHEAD_FRACTION
               + (1.0 - _STATIC_OVERHEAD_FRACTION) * proportional) / mu_h
    # Static service is pure CPU (parse, cache lookup, send): the file set
    # is cache-resident on an unloaded node.  Cache-miss disk reads are a
    # load effect and are added by the node at execution time.
    for i, size, d in zip(idx, served, demands):
        out[i] = Request(
            req_id=int(i),
            arrival_time=float(arrivals[i]),
            kind=RequestKind.STATIC,
            cpu_demand=float(d),
            io_demand=0.0,
            mem_pages=_STATIC_MEM_PAGES,
            size_bytes=int(size),
            type_key="static",
        )


def _fill_dynamic(out: List[Request], spec: TraceSpec, arrivals: np.ndarray,
                  mask: np.ndarray, mu_h: float, r: float,
                  rng: np.random.Generator) -> None:
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return
    profiles = [get_profile(name) for name, _ in spec.cgi_mix]
    weights = np.array([wt for _, wt in spec.cgi_mix])
    choice = rng.choice(len(profiles), size=idx.size, p=weights)
    mean_demand = 1.0 / (mu_h * r)
    sizes = _lognormal_with_mean(spec.cgi_size, _SIZE_SIGMA, idx.size, rng)

    for k, profile in enumerate(profiles):
        sel = np.flatnonzero(choice == k)
        if sel.size == 0:
            continue
        demands = profile.sample_demand(mean_demand, sel.size, rng)
        ws = profile.sample_w(sel.size, rng)
        pages = profile.sample_mem_pages(sel.size, rng)
        for j, d, w, pg in zip(sel, demands, ws, pages):
            i = idx[j]
            out[i] = Request(
                req_id=int(i),
                arrival_time=float(arrivals[i]),
                kind=RequestKind.DYNAMIC,
                cpu_demand=float(d * w),
                io_demand=float(d * (1.0 - w)),
                mem_pages=int(pg),
                size_bytes=int(sizes[j]),
                type_key=profile.type_key,
            )


def trace_statistics(requests: Sequence[Request]) -> dict:
    """Summary statistics in the shape of a Table-1 row.

    Returns a dict with ``n``, ``pct_cgi``, ``mean_interval``,
    ``html_size`` and ``cgi_size`` keys, plus demand means per class.
    """
    if not requests:
        raise ValueError("empty trace")
    arrivals = np.array([q.arrival_time for q in requests])
    order = np.argsort(arrivals)
    arrivals = arrivals[order]
    kinds = np.array([int(requests[i].kind) for i in order])
    sizes = np.array([requests[i].size_bytes for i in order])
    demands = np.array([requests[i].demand for i in order])
    dyn = kinds == int(RequestKind.DYNAMIC)

    intervals = np.diff(arrivals)
    return {
        "n": len(requests),
        "pct_cgi": 100.0 * float(dyn.mean()),
        "mean_interval": float(intervals.mean()) if intervals.size else 0.0,
        "html_size": float(sizes[~dyn].mean()) if (~dyn).any() else 0.0,
        "cgi_size": float(sizes[dyn].mean()) if dyn.any() else 0.0,
        "static_demand": float(demands[~dyn].mean()) if (~dyn).any() else 0.0,
        "cgi_demand": float(demands[dyn].mean()) if dyn.any() else 0.0,
    }
