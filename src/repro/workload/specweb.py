"""The SPECweb96 static file set.

"We replace all file fetches from the logs with the 40 representative files
from SPECWeb96.  For each file request in the log, the file in this set with
the closest size is returned."

SPECweb96 organises its working set into four size classes; each class holds
files at nine regular size steps, and classes are accessed with a fixed
frequency mix that makes small files dominate:

* class 0: 0.1 KB – 0.9 KB, 35 % of accesses
* class 1: 1 KB – 9 KB, 50 %
* class 2: 10 KB – 90 KB, 14 %
* class 3: 100 KB – 900 KB, 1 %

(The benchmark's per-directory layout makes the canonical set 36 distinct
sizes; the paper's "40 representative files" refers to the same mix.)
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

_KB = 1024

#: Access probability of each size class.
CLASS_WEIGHTS = (0.35, 0.50, 0.14, 0.01)

#: Base size of each class in bytes.
_CLASS_BASE = (102, 1 * _KB, 10 * _KB, 100 * _KB)

#: Distinct file sizes, ascending (class base times 1..9).
FILE_SIZES: tuple[int, ...] = tuple(
    sorted(base * step for base in _CLASS_BASE for step in range(1, 10))
)

#: Mean transferred size under the class mix (uniform within a class).
MEAN_FILE_SIZE: float = float(
    sum(w * np.mean([base * s for s in range(1, 10)])
        for w, base in zip(CLASS_WEIGHTS, _CLASS_BASE))
)


def closest_file(size_bytes: int, sizes: Sequence[int] = FILE_SIZES) -> int:
    """Map an arbitrary logged response size to the nearest fileset size.

    >>> closest_file(7400)
    7168
    >>> closest_file(0)
    102
    """
    if size_bytes < 0:
        raise ValueError("size must be >= 0")
    idx = bisect.bisect_left(sizes, size_bytes)
    if idx == 0:
        return sizes[0]
    if idx == len(sizes):
        return sizes[-1]
    before, after = sizes[idx - 1], sizes[idx]
    return before if size_bytes - before <= after - size_bytes else after


def sample_files(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` file sizes from the SPECweb96 class mix."""
    if n < 0:
        raise ValueError("n must be >= 0")
    classes = rng.choice(4, size=n, p=CLASS_WEIGHTS)
    steps = rng.integers(1, 10, size=n)
    bases = np.array(_CLASS_BASE)
    return bases[classes] * steps
