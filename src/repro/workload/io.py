"""Trace persistence: save and load request traces as JSON Lines.

Synthetic traces are cheap to regenerate, but persisting them lets
experiments be re-run bit-identically across machines, lets users edit
workloads by hand, and gives real-trace owners an import format: one JSON
object per line with the :class:`~repro.workload.request.Request` fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.workload.request import Request, RequestKind

#: Fields serialised per request, in a stable order.
_FIELDS = ("req_id", "arrival_time", "kind", "cpu_demand", "io_demand",
           "mem_pages", "size_bytes", "type_key", "cache_key",
           "client_id")

#: Format marker written as the first line.
_HEADER = {"format": "repro-trace", "version": 1}


def request_to_dict(req: Request) -> dict:
    """A JSON-safe mapping of one request."""
    out = {name: getattr(req, name) for name in _FIELDS}
    out["kind"] = int(req.kind)
    return out


def request_from_dict(data: dict) -> Request:
    """Inverse of :func:`request_to_dict`; validates via ``Request``."""
    unknown = set(data) - set(_FIELDS)
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    missing = {"req_id", "arrival_time", "kind", "cpu_demand",
               "io_demand"} - set(data)
    if missing:
        raise ValueError(f"missing request fields: {sorted(missing)}")
    kwargs = dict(data)
    kwargs["kind"] = RequestKind(int(kwargs["kind"]))
    return Request(**kwargs)


def save_trace(requests: Iterable[Request],
               path: Union[str, Path]) -> int:
    """Write a trace as JSON Lines.  Returns the number of requests."""
    path = Path(path)
    n = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(_HEADER) + "\n")
        for req in requests:
            fh.write(json.dumps(request_to_dict(req)) + "\n")
            n += 1
    return n


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a JSON Lines trace written by :func:`save_trace`."""
    path = Path(path)
    requests: List[Request] = []
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != _HEADER["format"]:
            raise ValueError(f"{path}: not a repro trace file")
        if header.get("version") != _HEADER["version"]:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                requests.append(request_from_dict(json.loads(line)))
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad request: {exc}") \
                    from exc
    if not requests:
        raise ValueError(f"{path}: trace contains no requests")
    return requests
