"""Request model shared by the workload generators and the simulator.

The paper distinguishes two request classes:

* **static** — a file fetch; tiny service demand (the SPECweb96 mix on a
  1200 req/s node averages ~0.83 ms).
* **dynamic** — CGI execution; service demand ``1/r`` times larger, with a
  class-dependent CPU/IO split (``w`` = CPU fraction).

A :class:`Request` carries everything the cluster needs to *execute* the
request (demands, memory footprint) plus everything the scheduler is allowed
to *know* (class and a ``type_key`` identifying the CGI script family, which
the offline demand sampler keys on).  Schedulers must not peek at the exact
demands — the paper is explicit that per-request cost prediction is
infeasible for general CGI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class RequestKind(enum.IntEnum):
    """Request class."""

    STATIC = 0
    DYNAMIC = 1


@dataclass(slots=True)
class Request:
    """One HTTP request to be replayed into a cluster.

    Parameters
    ----------
    req_id:
        Unique, dense identifier (index into the trace).
    arrival_time:
        Absolute virtual arrival time in seconds.
    kind:
        Static file fetch or dynamic (CGI) content generation.
    cpu_demand / io_demand:
        Service demand in seconds of CPU time and of disk time on an
        otherwise idle node.  Their sum is the request's *service demand*
        ``d`` used by the stretch-factor metric.
    mem_pages:
        Working-set size in pages; drives the demand-paging model.
    size_bytes:
        Response size (used by trace statistics, not by execution).
    type_key:
        Stable identifier of the request family ("static", "cgi:spin",
        "cgi:search", ...) used by the offline demand sampler to look up the
        CPU weight ``w``.
    cache_key:
        Identity of the produced content, for CGI result caching; ``None``
        marks uncacheable requests.
    """

    req_id: int
    arrival_time: float
    kind: RequestKind
    cpu_demand: float
    io_demand: float
    mem_pages: int = 0
    size_bytes: int = 0
    type_key: str = "static"
    #: Identity of the generated content for dynamic-content caching
    #: (None = uncacheable, e.g. personalised output).  See
    #: :mod:`repro.core.caching`.
    cache_key: Optional[str] = None
    #: Issuing client (session) identity; -1 = anonymous.  Drives client
    #: -affinity front ends (DNS caching) and session workloads.
    client_id: int = -1

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if self.cpu_demand < 0 or self.io_demand < 0:
            raise ValueError("demands must be >= 0")
        if self.cpu_demand == 0 and self.io_demand == 0:
            raise ValueError("request must demand some service")
        if self.mem_pages < 0:
            raise ValueError("mem_pages must be >= 0")

    @property
    def demand(self) -> float:
        """Total service demand ``d`` (seconds on an unloaded node)."""
        return self.cpu_demand + self.io_demand

    @property
    def is_dynamic(self) -> bool:
        return self.kind is RequestKind.DYNAMIC

    @property
    def cpu_fraction(self) -> float:
        """True CPU weight of this request (ground truth for the sampler)."""
        return self.cpu_demand / (self.cpu_demand + self.io_demand)
